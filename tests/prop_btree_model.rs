//! Model-based property test: the disk B+-tree must behave exactly like an
//! in-memory ordered multimap under arbitrary interleavings of inserts,
//! point lookups and range scans.

use std::collections::BTreeMap;
use std::sync::Arc;

use promips::btree::BTree;
use promips::storage::Pager;
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum Op {
    Insert(u64, u64),
    Get(u64),
    Range(u64, u64),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0u64..200, 0u64..1000).prop_map(|(k, v)| Op::Insert(k, v)),
        1 => (0u64..220).prop_map(Op::Get),
        1 => (0u64..220, 0u64..220).prop_map(|(a, b)| Op::Range(a.min(b), a.max(b))),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn btree_matches_ordered_multimap(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        // Tiny pages force deep trees and frequent splits.
        let pager = Arc::new(Pager::in_memory(64, 4096));
        let mut tree = BTree::create(pager).unwrap();
        let mut model: BTreeMap<u64, Vec<u64>> = BTreeMap::new();

        for op in ops {
            match op {
                Op::Insert(k, v) => {
                    tree.insert(k, v).unwrap();
                    model.entry(k).or_default().push(v);
                }
                Op::Get(k) => {
                    let mut got = tree.get_all(k).unwrap();
                    got.sort_unstable();
                    let mut want = model.get(&k).cloned().unwrap_or_default();
                    want.sort_unstable();
                    prop_assert_eq!(got, want, "get_all({})", k);
                }
                Op::Range(lo, hi) => {
                    let mut got: Vec<(u64, u64)> = tree
                        .range(lo, hi)
                        .unwrap()
                        .map(|r| r.unwrap())
                        .collect();
                    // Keys must come back sorted.
                    prop_assert!(got.windows(2).all(|w| w[0].0 <= w[1].0));
                    got.sort_unstable();
                    let mut want: Vec<(u64, u64)> = model
                        .range(lo..=hi)
                        .flat_map(|(&k, vs)| vs.iter().map(move |&v| (k, v)))
                        .collect();
                    want.sort_unstable();
                    prop_assert_eq!(got, want, "range({}, {})", lo, hi);
                }
            }
        }

        // Final invariants: full scan equals the model, length agrees.
        let total: usize = model.values().map(|v| v.len()).sum();
        prop_assert_eq!(tree.len() as usize, total);
        let mut got: Vec<(u64, u64)> = tree.scan_all().unwrap().map(|r| r.unwrap()).collect();
        prop_assert!(got.windows(2).all(|w| w[0].0 <= w[1].0));
        got.sort_unstable();
        let mut want: Vec<(u64, u64)> = model
            .iter()
            .flat_map(|(&k, vs)| vs.iter().map(move |&v| (k, v)))
            .collect();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn bulk_load_equals_incremental_inserts(
        mut pairs in proptest::collection::vec((0u64..500, 0u64..100), 0..300)
    ) {
        pairs.sort_unstable();
        let bulk_pager = Arc::new(Pager::in_memory(128, 4096));
        let bulk = BTree::bulk_load(bulk_pager, pairs.clone()).unwrap();

        let inc_pager = Arc::new(Pager::in_memory(128, 4096));
        let mut inc = BTree::create(inc_pager).unwrap();
        for &(k, v) in &pairs {
            inc.insert(k, v).unwrap();
        }

        let mut a: Vec<(u64, u64)> = bulk.scan_all().unwrap().map(|r| r.unwrap()).collect();
        let mut b: Vec<(u64, u64)> = inc.scan_all().unwrap().map(|r| r.unwrap()).collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
        prop_assert_eq!(bulk.len(), inc.len());
    }
}
