//! End-to-end integration tests of the full ProMIPS pipeline
//! (data generation → projection → iDistance → Quick-Probe → search),
//! checking the paper's central claims at test scale.

use promips::core::{ProMips, ProMipsConfig};
use promips::data::{exact_topk, DatasetSpec};
use promips::stats::Xoshiro256pp;

fn build(n: usize, c: f64, p: f64, seed: u64) -> (ProMips, promips::data::Dataset) {
    let ds = DatasetSpec::netflix().with_n(n).generate();
    let cfg = ProMipsConfig::builder().c(c).p(p).seed(seed).build();
    let index = ProMips::build_in_memory(&ds.data, cfg).unwrap();
    (index, ds)
}

#[test]
fn probability_guarantee_holds_empirically() {
    // With c = 0.9, p = 0.5: the fraction of queries whose top-1 result
    // satisfies ⟨o,q⟩ ≥ c·⟨o*,q⟩ must be at least p (it is far higher in
    // practice — the paper's Fig. 5 shows overall ratios above 0.95).
    let (index, ds) = build(3_000, 0.9, 0.5, 7);
    let mut satisfied = 0;
    let total = 40;
    for qi in 0..total {
        let q = ds.queries.row(qi);
        let res = index.search(q, 1).unwrap();
        let exact = exact_topk(&ds.data, q, 1)[0].1;
        if res.items[0].ip >= 0.9 * exact - 1e-9 {
            satisfied += 1;
        }
    }
    assert!(
        satisfied as f64 / total as f64 >= 0.5,
        "guarantee rate {satisfied}/{total} below p = 0.5"
    );
}

#[test]
fn topk_overall_ratio_beats_c() {
    let (index, ds) = build(3_000, 0.9, 0.5, 13);
    let k = 10;
    let mut ratios = Vec::new();
    for qi in 0..20 {
        let q = ds.queries.row(qi);
        let res = index.search(q, k).unwrap();
        let exact = exact_topk(&ds.data, q, k);
        let ratio: f64 = res
            .items
            .iter()
            .zip(&exact)
            .filter(|(_, e)| e.1 > 0.0)
            .map(|(r, e)| (r.ip / e.1).min(1.0))
            .sum::<f64>()
            / k as f64;
        ratios.push(ratio);
    }
    let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
    assert!(mean > 0.9, "mean overall ratio {mean} below c");
}

#[test]
fn quickprobe_and_incremental_agree_on_quality() {
    let (index, ds) = build(2_000, 0.8, 0.5, 3);
    let mut probe_sum = 0.0;
    let mut incr_sum = 0.0;
    for qi in 0..10 {
        let q = ds.queries.row(qi);
        let exact = exact_topk(&ds.data, q, 1)[0].1;
        probe_sum += index.search(q, 1).unwrap().items[0].ip / exact;
        incr_sum += index.search_incremental(q, 1).unwrap().items[0].ip / exact;
    }
    // Both algorithms provide the same guarantee; their mean quality should
    // be comparable (within 10% of each other).
    assert!(
        (probe_sum - incr_sum).abs() / 10.0 < 0.1,
        "{probe_sum} vs {incr_sum}"
    );
}

#[test]
fn results_are_exact_inner_products() {
    // The ip reported for every returned id must equal the true inner
    // product of that point with the query (verification is exact).
    let (index, ds) = build(1_500, 0.9, 0.5, 21);
    let q = ds.queries.row(0);
    let res = index.search(q, 15).unwrap();
    for item in &res.items {
        let true_ip = promips::linalg::dot(ds.data.row(item.id as usize), q);
        assert!((item.ip - true_ip).abs() < 1e-9, "id {}", item.id);
    }
}

#[test]
fn deterministic_given_seed() {
    let (a, ds) = build(1_200, 0.9, 0.5, 5);
    let (b, _) = build(1_200, 0.9, 0.5, 5);
    for qi in 0..5 {
        let q = ds.queries.row(qi);
        assert_eq!(
            a.search(q, 10).unwrap().ids(),
            b.search(q, 10).unwrap().ids()
        );
    }
}

#[test]
fn varying_k_returns_prefix_consistent_quality() {
    let (index, ds) = build(2_500, 0.9, 0.5, 17);
    let q = ds.queries.row(3);
    let r100 = index.search(q, 100).unwrap();
    assert_eq!(r100.items.len(), 100);
    // Top item should be stable across k.
    let r10 = index.search(q, 10).unwrap();
    assert_eq!(r10.items[0].id, r100.items[0].id);
}

#[test]
fn page_accesses_scale_with_k() {
    let (index, ds) = build(4_000, 0.9, 0.5, 31);
    let mut prev = 0u64;
    let mut grew = 0;
    for &k in &[10usize, 50, 100] {
        let mut pages = 0;
        for qi in 0..5 {
            index.reset_stats();
            let _ = index.search(ds.queries.row(qi), k).unwrap();
            pages += index.access_stats().logical_reads;
        }
        if pages >= prev {
            grew += 1;
        }
        prev = pages;
    }
    assert!(grew >= 2, "page accesses should not shrink as k grows");
}

#[test]
fn works_on_all_four_dataset_families() {
    for spec in [
        DatasetSpec::netflix().with_n(800),
        DatasetSpec::yahoo().with_n(800),
        DatasetSpec::p53().with_n(300).with_d(512),
        DatasetSpec::sift().with_n(800),
    ] {
        let name = spec.name;
        let ds = spec.generate();
        let cfg = ProMipsConfig::builder().seed(9).build();
        let index = ProMips::build_in_memory(&ds.data, cfg).unwrap();
        let res = index.search(ds.queries.row(0), 5).unwrap();
        assert_eq!(res.items.len(), 5, "dataset {name}");
        // Results sorted by ip.
        assert!(
            res.items.windows(2).all(|w| w[0].ip >= w[1].ip),
            "dataset {name}"
        );
    }
}

#[test]
fn random_gaussian_queries_are_handled() {
    // Queries need not come from the dataset distribution.
    let (index, _) = build(1_000, 0.9, 0.5, 41);
    let mut rng = Xoshiro256pp::seed_from_u64(77);
    for _ in 0..5 {
        let q: Vec<f32> = (0..300).map(|_| rng.normal() as f32).collect();
        let res = index.search(&q, 3).unwrap();
        assert_eq!(res.items.len(), 3);
    }
}
