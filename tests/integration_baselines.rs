//! Cross-method integration tests: every evaluated method answers the same
//! workload sanely, and the exact scanner agrees with brute force.

use std::sync::Arc;

use promips::baselines::h2alsh::{H2Alsh, H2AlshConfig};
use promips::baselines::pq::{PqConfig, PqMips};
use promips::baselines::rangelsh::{RangeLsh, RangeLshConfig};
use promips::baselines::{ExactScan, MipsMethod, ProMipsMethod};
use promips::core::{ProMips, ProMipsConfig};
use promips::data::{exact_topk, DatasetSpec};
use promips::storage::Pager;

fn methods_over(data: &promips::linalg::Matrix) -> Vec<Box<dyn MipsMethod>> {
    let promips_index =
        ProMips::build_in_memory(data, ProMipsConfig::builder().seed(3).build()).unwrap();
    let h2 = H2Alsh::build(
        data,
        H2AlshConfig::default(),
        Arc::new(Pager::in_memory(4096, 4096)),
    )
    .unwrap();
    let rl = RangeLsh::build(
        data,
        RangeLshConfig::default(),
        Arc::new(Pager::in_memory(4096, 4096)),
    )
    .unwrap();
    let pq = PqMips::build(
        data,
        PqConfig {
            cells: Some(16),
            train_sample: 1_000,
            ..Default::default()
        },
        Arc::new(Pager::in_memory(4096, 4096)),
    )
    .unwrap();
    vec![
        Box::new(ProMipsMethod::new(promips_index)),
        Box::new(h2),
        Box::new(rl),
        Box::new(pq),
    ]
}

#[test]
fn all_methods_return_reasonable_top1() {
    let ds = DatasetSpec::netflix().with_n(2_000).generate();
    let methods = methods_over(&ds.data);
    for method in &methods {
        let mut ratio_sum = 0.0;
        let trials = 10;
        for qi in 0..trials {
            let q = ds.queries.row(qi);
            let res = method.search(q, 5).unwrap();
            assert!(!res.is_empty(), "{}", method.name());
            let exact = exact_topk(&ds.data, q, 1)[0].1;
            ratio_sum += (res[0].ip / exact).min(1.0);
        }
        let mean = ratio_sum / trials as f64;
        assert!(mean > 0.8, "{} top-1 ratio {mean}", method.name());
    }
}

#[test]
fn all_methods_count_pages_and_sizes() {
    let ds = DatasetSpec::sift().with_n(1_500).generate();
    let methods = methods_over(&ds.data);
    for method in &methods {
        method.clear_cache();
        method.reset_stats();
        let _ = method.search(ds.queries.row(0), 10).unwrap();
        assert!(
            method.page_accesses() > 0,
            "{} counted no pages",
            method.name()
        );
        assert!(method.index_size_bytes() > 0, "{}", method.name());
    }
}

#[test]
fn reported_ips_are_exact_for_every_method() {
    let ds = DatasetSpec::yahoo().with_n(1_200).generate();
    let methods = methods_over(&ds.data);
    let q = ds.queries.row(1);
    for method in &methods {
        for nb in method.search(q, 8).unwrap() {
            let true_ip = promips::linalg::dot(ds.data.row(nb.id as usize), q);
            assert!(
                (nb.ip - true_ip).abs() < 1e-9,
                "{} reported wrong ip for id {}",
                method.name(),
                nb.id
            );
        }
    }
}

#[test]
fn exact_scan_agrees_with_ground_truth() {
    let ds = DatasetSpec::netflix().with_n(1_000).generate();
    let scan = ExactScan::new(&ds.data, 4);
    for qi in 0..5 {
        let q = ds.queries.row(qi);
        let a = scan.top_k(q, 10);
        let b = exact_topk(&ds.data, q, 10);
        assert_eq!(
            a.iter().map(|n| n.id).collect::<Vec<_>>(),
            b.iter().map(|&(id, _)| id).collect::<Vec<_>>()
        );
    }
}

#[test]
fn self_query_finds_high_ip_points() {
    // Under the paper's protocol queries are dataset points; every method
    // should surface points at least as good as c·⟨q,q⟩ for most queries.
    let ds = DatasetSpec::netflix().with_n(2_000).generate();
    let methods = methods_over(&ds.data);
    for method in &methods {
        let mut ok = 0;
        let trials = 10;
        for qi in 0..trials {
            let q = ds.queries.row(qi);
            let self_ip = promips::linalg::dot(q, q);
            let res = method.search(q, 1).unwrap();
            if res[0].ip >= 0.7 * self_ip {
                ok += 1;
            }
        }
        assert!(
            ok >= trials / 2,
            "{}: only {ok}/{trials} near self-ip",
            method.name()
        );
    }
}
