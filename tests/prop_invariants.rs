//! Property-based tests of the theory the paper's guarantees rest on:
//! Theorems 1–4, Lemma 2, the condition algebra, and index-vs-brute-force
//! agreement on random instances.

use promips::core::conditions::ConditionContext;
use promips::core::{ProMips, ProMipsConfig};
use promips::linalg::{dist, dot, norm1, sq_dist, sq_norm2, Matrix};
use promips::stats::{chi2_cdf, chi2_inv_cdf, Xoshiro256pp};
use proptest::prelude::*;

fn ctx(c: f64, p: f64, m: u32, max_sq: f64, q_sq: f64) -> ConditionContext {
    ConditionContext {
        c,
        p,
        m,
        max_sq_norm: max_sq,
        q_sq_norm: q_sq,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Theorem 1: if Condition A holds for some verified inner product,
    /// that inner product c-dominates EVERY point whose norm is below the
    /// max norm — checked against explicitly constructed points.
    #[test]
    fn condition_a_implies_c_bound(
        c in 0.5f64..0.99,
        max_norm in 0.5f64..50.0,
        q_norm in 0.5f64..50.0,
        other_frac in 0.0f64..1.0,
    ) {
        let max_sq = max_norm * max_norm;
        let q_sq = q_norm * q_norm;
        let ctx = ctx(c, 0.5, 6, max_sq, q_sq);
        // The smallest ip that satisfies Condition A:
        let ip = c * (max_sq + q_sq) / 2.0 + 1e-9;
        prop_assert!(ctx.condition_a(ip));
        // Any other point o with ‖o‖ ≤ max_norm has
        // ⟨o,q⟩ ≤ (‖o‖² + ‖q‖²)/2 ≤ (max² + ‖q‖²)/2 = ip/c,
        // hence ip ≥ c·⟨o,q⟩ — the c-AMIP bound.
        let other_ip_ub = (other_frac * max_sq + q_sq) / 2.0;
        prop_assert!(ip >= c * other_ip_ub - 1e-6);
    }

    /// Condition B is monotone in the projected distance and consistent
    /// with its compensation radius.
    #[test]
    fn condition_b_monotonicity_and_compensation(
        c in 0.5f64..0.99,
        p in 0.05f64..0.95,
        m in 2u32..16,
        max_sq in 1.0f64..100.0,
        q_sq in 0.1f64..100.0,
        ip_frac in -0.5f64..0.49,
    ) {
        let ctx = ctx(c, p, m, max_sq, q_sq);
        // Choose an ip below the Condition-A threshold so slack > 0.
        let ip = ip_frac * c * (max_sq + q_sq);
        prop_assume!(ctx.slack(ip) > 1e-9);
        let r = ctx.compensation_radius(ip).unwrap();
        // At radii above r, Condition B holds; below, it does not.
        prop_assert!(ctx.condition_b(r * r * 1.001, ip));
        prop_assert!(!ctx.condition_b(r * r * 0.999, ip));
        // Monotonicity in distance.
        prop_assert!(!ctx.condition_b(0.0, ip) || p <= 0.0);
    }

    /// χ² CDF/quantile are inverse, monotone, and bounded.
    #[test]
    fn chi2_cdf_quantile_inverse(m in 1u32..40, p in 0.001f64..0.999) {
        let x = chi2_inv_cdf(m, p);
        prop_assert!(x > 0.0);
        prop_assert!((chi2_cdf(m, x) - p).abs() < 1e-7);
    }

    /// The vector kernels satisfy the polarization identity the searching
    /// conditions rely on: dis² = ‖a‖² + ‖b‖² − 2⟨a,b⟩.
    #[test]
    fn polarization_identity(
        pairs in proptest::collection::vec((-30.0f32..30.0, -30.0f32..30.0), 1..64)
    ) {
        let a: Vec<f32> = pairs.iter().map(|p| p.0).collect();
        let b: Vec<f32> = pairs.iter().map(|p| p.1).collect();
        let lhs = sq_dist(&a, &b);
        let rhs = sq_norm2(&a) + sq_norm2(&b) - 2.0 * dot(&a, &b);
        prop_assert!((lhs - rhs).abs() <= 1e-5 * (1.0 + lhs.abs()));
    }

    /// Theorem 4: ‖o − q‖₂ ≤ ‖o‖₁ + ‖q‖₁ (the Quick-Probe upper bound).
    #[test]
    fn theorem4_upper_bound(
        pairs in proptest::collection::vec((-20.0f32..20.0, -20.0f32..20.0), 1..64)
    ) {
        let o: Vec<f32> = pairs.iter().map(|p| p.0).collect();
        let q: Vec<f32> = pairs.iter().map(|p| p.1).collect();
        prop_assert!(dist(&o, &q) <= norm1(&o) + norm1(&q) + 1e-6);
    }
}

/// Lemma 2 sanity at fixed data: the projected/original distance ratio has
/// roughly the χ²(m) mean (= m) over independent projections.
#[test]
fn lemma2_ratio_mean_is_m() {
    use promips::core::projection::Projection;
    let d = 48;
    let m = 7;
    let mut rng = Xoshiro256pp::seed_from_u64(2);
    let a: Vec<f32> = (0..d).map(|_| rng.normal() as f32).collect();
    let b: Vec<f32> = (0..d).map(|_| rng.normal() as f32).collect();
    let base = sq_dist(&a, &b);
    let trials = 600;
    let mean: f64 = (0..trials)
        .map(|t| {
            let proj = Projection::generate(m, d, 10_000 + t);
            sq_dist(&proj.project(&a), &proj.project(&b)) / base
        })
        .sum::<f64>()
        / trials as f64;
    assert!(
        (mean - m as f64).abs() < 0.6,
        "ratio mean {mean} should approximate m = {m}"
    );
}

/// The index's range search agrees with brute force on random instances —
/// the substrate invariant behind every candidate set in the system.
#[test]
fn range_search_matches_brute_force_randomized() {
    let mut rng = Xoshiro256pp::seed_from_u64(55);
    for trial in 0..3 {
        let n = 400 + trial * 137;
        let data = Matrix::from_rows(
            24,
            (0..n).map(|_| (0..24).map(|_| rng.normal() as f32).collect::<Vec<f32>>()),
        );
        let cfg = ProMipsConfig::builder().m(4).seed(trial as u64).build();
        let index = ProMips::build_in_memory(&data, cfg).unwrap();
        let q: Vec<f32> = (0..24).map(|_| rng.normal() as f32).collect();
        let pq = promips::core::projection::Projection::generate(4, 24, trial as u64);
        // Reconstruct the projection the index used (same seed), then
        // compare candidates against a brute-force scan of the projections.
        let proj_q = pq.project(&q);
        let r = 1.5;
        let mut got: Vec<u64> = index
            .idistance()
            .range_candidates(&proj_q, -1.0, r)
            .unwrap()
            .into_iter()
            .map(|c| c.id)
            .collect();
        got.sort_unstable();
        let mut expected: Vec<u64> = (0..n)
            .filter(|&i| dist(&pq.project(data.row(i)), &proj_q) <= r)
            .map(|i| i as u64)
            .collect();
        expected.sort_unstable();
        assert_eq!(got, expected, "trial {trial}");
    }
}
