//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the subset of proptest's API its test suites use: the `proptest!` macro,
//! `Strategy` with `prop_map`, range/tuple strategies, weighted
//! `prop_oneof!`, `collection::vec`, `num::f64::NORMAL`, and the
//! `prop_assert*`/`prop_assume!` macros.
//!
//! Differences from the real crate, chosen for simplicity:
//!
//! * **no shrinking** — a failing case panics with the generated inputs in
//!   scope, but no minimization pass runs;
//! * generation is **deterministic per test** (seeded from the test's name
//!   via FNV-1a), so failures reproduce across runs;
//! * `prop_assume!` rejects the case; a test aborts (passing vacuously,
//!   like real proptest's `Aborted` outcome) if rejections exceed
//!   16× the configured case count.

pub mod test_runner {
    /// Runner configuration. Only `cases` is honoured.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful (non-rejected) cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    /// Marker returned by `prop_assume!` when a case is rejected.
    #[derive(Debug)]
    pub struct Reject;

    /// Deterministic generator (splitmix64) used to drive strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds from an arbitrary string (the test's name), so each test
        /// gets a distinct but reproducible stream.
        pub fn from_name(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a offset basis
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            Self {
                state: h ^ 0x9E37_79B9_7F4A_7C15,
            }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            self.next_u64() % bound
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A value generator. Unlike real proptest there is no value tree: a
    /// strategy produces final values directly and nothing shrinks.
    pub trait Strategy {
        /// The type of generated values.
        type Value;
        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy adaptor produced by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A strategy always yielding clones of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            (self.start as f64 + rng.unit_f64() * (self.end as f64 - self.start as f64)) as f32
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty integer range strategy");
                    let span = (self.end as u64).wrapping_sub(self.start as u64);
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! signed_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty integer range strategy");
                    let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                    (self.start as i64).wrapping_add(rng.below(span) as i64) as $t
                }
            }
        )*};
    }
    signed_range_strategy!(i8, i16, i32, i64, isize);

    macro_rules! tuple_strategy {
        ($(($($s:ident / $idx:tt),+)),+ $(,)?) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )+};
    }
    tuple_strategy!(
        (A / 0),
        (A / 0, B / 1),
        (A / 0, B / 1, C / 2),
        (A / 0, B / 1, C / 2, D / 3),
        (A / 0, B / 1, C / 2, D / 3, E / 4),
        (A / 0, B / 1, C / 2, D / 3, E / 4, F / 5),
    );

    /// Weighted union over boxed strategies — the engine behind
    /// `prop_oneof!`.
    pub struct Union<T> {
        parts: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
        total: u64,
    }

    impl<T> Union<T> {
        /// Builds a union; weights must not all be zero.
        pub fn new(parts: Vec<(u32, Box<dyn Strategy<Value = T>>)>) -> Self {
            let total: u64 = parts.iter().map(|(w, _)| *w as u64).sum();
            assert!(total > 0, "prop_oneof! needs a positive total weight");
            Self { parts, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(self.total);
            for (w, s) in &self.parts {
                if pick < *w as u64 {
                    return s.generate(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weights sum checked in Union::new")
        }
    }

    /// Boxes a strategy (helper for `prop_oneof!` so the macro can rely on
    /// inference to unify the element type).
    pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec`s with lengths drawn from `len` and elements from
    /// `element`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `proptest::collection::vec` — vectors of `element` with length in
    /// `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod num {
    /// Strategies over `f64` bit patterns.
    pub mod f64 {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Generates normal (non-zero, non-subnormal, finite) `f64`s of
        /// either sign, spanning the full exponent range.
        #[derive(Debug, Clone, Copy)]
        pub struct NormalStrategy;

        /// `proptest::num::f64::NORMAL`.
        pub const NORMAL: NormalStrategy = NormalStrategy;

        impl Strategy for NormalStrategy {
            type Value = f64;
            fn generate(&self, rng: &mut TestRng) -> f64 {
                loop {
                    let v = f64::from_bits(rng.next_u64());
                    if v.is_normal() {
                        return v;
                    }
                }
            }
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Asserts a condition inside a `proptest!` body (panics on failure; this
/// shim performs no shrinking, so failure semantics match `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// `assert_eq!` inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// `assert_ne!` inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Rejects the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::Reject);
        }
    };
}

/// Weighted choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $(($weight as u32, $crate::strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $((1u32, $crate::strategy::boxed($strat))),+
        ])
    };
}

/// Declares property tests. Each `fn name(arg in strategy, ...)` block
/// becomes a `#[test]` that runs `cases` deterministic iterations.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { cfg = $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:pat in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::from_name(stringify!($name));
            let mut ran: u32 = 0;
            let mut attempts: u32 = 0;
            let max_attempts = cfg.cases.saturating_mul(16).max(16);
            while ran < cfg.cases && attempts < max_attempts {
                attempts += 1;
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                // The immediately-called closure gives `prop_assume!` an
                // early-return target without aborting the whole test fn.
                #[allow(clippy::redundant_closure_call)]
                let outcome = (move || -> ::core::result::Result<(), $crate::test_runner::Reject> {
                    $body
                    ::core::result::Result::Ok(())
                })();
                if outcome.is_ok() {
                    ran += 1;
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, PartialEq)]
    enum Pick {
        Small(u64),
        Big(u64),
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in -2.5f64..4.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.5..4.0).contains(&y));
        }

        #[test]
        fn vec_lengths_respected(v in crate::collection::vec(0u32..10, 2..9)) {
            prop_assert!((2..9).contains(&v.len()));
            prop_assert!(v.iter().all(|&e| e < 10));
        }

        #[test]
        fn assume_rejects(x in 0u64..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn oneof_and_map(p in prop_oneof![
            3 => (0u64..10).prop_map(Pick::Small),
            1 => (1000u64..1010).prop_map(Pick::Big),
        ]) {
            match p {
                Pick::Small(v) => prop_assert!(v < 10),
                Pick::Big(v) => prop_assert!((1000..1010).contains(&v)),
            }
        }

        #[test]
        fn normal_f64_is_normal(x in crate::num::f64::NORMAL) {
            prop_assert!(x.is_normal());
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let s = crate::collection::vec(0u64..1000, 1..20);
        let mut r1 = crate::test_runner::TestRng::from_name("fixed");
        let mut r2 = crate::test_runner::TestRng::from_name("fixed");
        assert_eq!(s.generate(&mut r1), s.generate(&mut r2));
    }
}
