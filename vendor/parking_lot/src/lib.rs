//! Offline stand-in for the `parking_lot` crate.
//!
//! This build environment has no access to crates.io, so the workspace
//! vendors the tiny slice of the `parking_lot` API the codebase uses,
//! implemented on `std::sync`. Semantics match `parking_lot` where it
//! matters to callers:
//!
//! * `lock()` returns the guard directly (no `Result`);
//! * poisoning is ignored — a panic while holding the lock does not poison
//!   it for later users (std's `PoisonError` is unwrapped to its inner
//!   guard).
//!
//! Fairness and the smaller-than-a-word footprint of the real crate are
//! not reproduced; nothing in this workspace depends on them.

use std::sync;

/// A mutex that never poisons. API subset of `parking_lot::Mutex`.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// A reader–writer lock that never poisons. API subset of
/// `parking_lot::RwLock`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Guard type returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Guard type returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn mutex_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = Arc::clone(&m);
                s.spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 4000);
    }

    #[test]
    fn lock_survives_panicking_holder() {
        let m = Arc::new(Mutex::new(1));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: no poisoning.
        assert_eq!(*m.lock(), 1);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }
}
