//! Directory-based persistence: one file per shard plus a manifest.
//!
//! Layout of a snapshot directory:
//!
//! ```text
//! <dir>/
//!   MANIFEST.pms      config scalars, per-shard kind / count / norm bound,
//!                     and the shard-local → global id maps
//!   shard_0000.pmx    indexed shard: a full ProMIPS page file
//!                     (identical format to [`promips_core::ProMips::save`])
//!   shard_0001.exact  exact-scan shard: raw row blob (magic, n, d, f32s)
//!   ...
//! ```
//!
//! Each shard file is self-contained — an indexed shard's `.pmx` can even
//! be opened directly with `ProMips::open` — so shards can later be placed
//! on different devices or hosts without touching the format.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use promips_core::ProMips;
use promips_idistance::layout::enc;
use promips_linalg::Matrix;
use promips_storage::{AccessStats, FileStorage, Pager, Storage};

use crate::config::ShardedConfig;
use crate::index::{ExactShard, Shard, ShardKind, ShardedProMips};
use crate::partition::PartitionStrategy;

const MANIFEST_MAGIC: u64 = 0x5AA2_D1CE_5059_0001;
const MANIFEST_VERSION: u64 = 1;
const EXACT_MAGIC: u64 = 0x5AA2_D1CE_E7AC_0001;
const MANIFEST_NAME: &str = "MANIFEST.pms";

fn shard_path(dir: &Path, si: usize, exact: bool) -> PathBuf {
    let ext = if exact { "exact" } else { "pmx" };
    dir.join(format!("shard_{si:04}.{ext}"))
}

fn write_exact(path: &Path, rows: &Matrix) -> io::Result<()> {
    let mut buf = Vec::with_capacity(24 + rows.as_slice().len() * 4);
    enc::put_u64(&mut buf, EXACT_MAGIC);
    enc::put_u64(&mut buf, rows.rows() as u64);
    enc::put_u64(&mut buf, rows.cols() as u64);
    enc::put_f32s(&mut buf, rows.as_slice());
    fs::write(path, buf)
}

fn read_exact(path: &Path, expect_d: usize) -> io::Result<Matrix> {
    let buf = fs::read(path)?;
    let mut pos = 0;
    if buf.len() < 24 || enc::get_u64(&buf, &mut pos) != EXACT_MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("bad exact-shard magic in {}", path.display()),
        ));
    }
    let n = enc::get_u64(&buf, &mut pos) as usize;
    let d = enc::get_u64(&buf, &mut pos) as usize;
    if d != expect_d && n != 0 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("exact shard dimensionality {d} != manifest {expect_d}"),
        ));
    }
    // Validate the header against the actual file length before decoding:
    // a truncated file or bit-rotted n/d must surface as InvalidData, not
    // a slice panic (or a capacity overflow) inside the readers.
    let fits = n
        .checked_mul(d)
        .and_then(|floats| floats.checked_mul(4))
        .is_some_and(|bytes| pos + bytes <= buf.len());
    if !fits {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "corrupt exact shard {}: header claims {n}×{d} floats, file has {} payload bytes",
                path.display(),
                buf.len() - pos
            ),
        ));
    }
    let data = enc::get_f32s(&buf, &mut pos, n * d);
    Ok(Matrix::from_vec(n, expect_d.max(d), data))
}

impl ShardedProMips {
    /// Builds the sharded index **directly into `dir`**: each indexed shard
    /// gets its own file-backed page device (`shard_NNNN.pmx`), exact-scan
    /// shards are written as row blobs, and the manifest is finalized — the
    /// directory is immediately reopenable with [`ShardedProMips::open`],
    /// with no page copying.
    pub fn build_in_dir(
        data: &Matrix,
        config: ShardedConfig,
        dir: impl AsRef<Path>,
    ) -> io::Result<Self> {
        let dir = dir.as_ref();
        fs::create_dir_all(dir)?;
        let strategy = config.strategy;
        let base = config.base.clone();
        let built = Self::build_impl(data, config, strategy.partitioner(), |si| {
            let storage = Arc::new(FileStorage::create(
                shard_path(dir, si, false),
                base.page_size,
            )?);
            Ok(Arc::new(Pager::new(
                storage,
                base.pool_pages,
                AccessStats::new_shared(),
            )))
        })?;
        for shard in &built.shards {
            if let ShardKind::Indexed(pm) = &shard.kind {
                pm.save()?; // aux + footer straight into the shard's file
            }
        }
        built.write_aux_and_manifest(dir)?;
        Ok(built)
    }

    /// Snapshots the index into `dir`: indexed shards append their
    /// persistence footer ([`ProMips::save`]) and have their pages copied
    /// into per-shard files; exact shards and the manifest are written
    /// alongside. Reopen with [`ShardedProMips::open`].
    ///
    /// Snapshot a given in-memory index at most once per directory: each
    /// call appends a fresh persistence footer to the live shard pagers
    /// (the last one always wins on reopen, but the pages accumulate).
    pub fn snapshot(&self, dir: impl AsRef<Path>) -> io::Result<()> {
        let dir = dir.as_ref();
        fs::create_dir_all(dir)?;
        for (si, shard) in self.shards.iter().enumerate() {
            if let ShardKind::Indexed(pm) = &shard.kind {
                pm.save()?;
                // Copy at the device level: going through Pager::read here
                // would charge a logical read per page to the shard's
                // access counters and churn its buffer pool.
                let src = pm.idistance().pager().storage();
                let dst = FileStorage::create(shard_path(dir, si, false), src.page_size())?;
                let mut page = vec![0u8; src.page_size()];
                for pid in 0..src.num_pages() {
                    src.read_page(pid, &mut page)?;
                    let id = dst.allocate()?;
                    debug_assert_eq!(id, pid, "copied pages must stay dense");
                    dst.write_page(id, &page)?;
                }
                dst.sync()?;
            }
        }
        self.write_aux_and_manifest(dir)
    }

    /// Writes exact-shard blobs and the manifest (shared by
    /// [`ShardedProMips::snapshot`] and [`ShardedProMips::build_in_dir`]).
    fn write_aux_and_manifest(&self, dir: &Path) -> io::Result<()> {
        for (si, shard) in self.shards.iter().enumerate() {
            if let ShardKind::Exact(ex) = &shard.kind {
                write_exact(&shard_path(dir, si, true), &ex.rows)?;
            }
        }
        let mut buf = Vec::new();
        enc::put_u64(&mut buf, MANIFEST_MAGIC);
        enc::put_u64(&mut buf, MANIFEST_VERSION);
        enc::put_u64(&mut buf, self.shards.len() as u64);
        enc::put_u64(&mut buf, self.d as u64);
        enc::put_u64(&mut buf, self.n_points);
        enc::put_u64(&mut buf, self.config.exact_threshold as u64);
        enc::put_u64(&mut buf, u64::from(self.config.prune));
        enc::put_u64(&mut buf, u64::from(self.config.cross_shard_floor));
        enc::put_u64(&mut buf, self.config.strategy.tag());
        enc::put_f64(&mut buf, self.config.base.c);
        enc::put_f64(&mut buf, self.config.base.p);
        enc::put_u64(&mut buf, self.config.base.m.map_or(u64::MAX, |m| m as u64));
        enc::put_u64(&mut buf, self.config.base.page_size as u64);
        enc::put_u64(&mut buf, self.config.base.pool_pages as u64);
        enc::put_u64(&mut buf, self.config.base.seed);
        let name = self.partitioner_name.as_bytes();
        enc::put_u64(&mut buf, name.len() as u64);
        buf.extend_from_slice(name);
        for shard in &self.shards {
            enc::put_u64(&mut buf, u64::from(shard.is_exact()));
            enc::put_u64(&mut buf, shard.ids.len() as u64);
            enc::put_f64(&mut buf, shard.max_norm);
            for &id in &shard.ids {
                enc::put_u64(&mut buf, id);
            }
        }
        fs::write(dir.join(MANIFEST_NAME), buf)
    }

    /// Reopens a snapshot directory written by [`ShardedProMips::snapshot`]
    /// or [`ShardedProMips::build_in_dir`].
    pub fn open(dir: impl AsRef<Path>) -> io::Result<Self> {
        let dir = dir.as_ref();
        let buf = fs::read(dir.join(MANIFEST_NAME))?;
        // Truncation guard: a partially written manifest must surface as
        // InvalidData, not a slice panic inside the `enc` readers.
        let need = |pos: usize, bytes: usize| -> io::Result<()> {
            if pos + bytes > buf.len() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "truncated sharded-index manifest: need {} bytes at offset {pos}, have {}",
                        bytes,
                        buf.len()
                    ),
                ));
            }
            Ok(())
        };
        // Fixed-size header: magic..seed plus the partitioner-name length
        // (16 little-endian 8-byte fields).
        const HEADER_BYTES: usize = 16 * 8;
        let mut pos = 0;
        if buf.len() < 16 || enc::get_u64(&buf, &mut pos) != MANIFEST_MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "bad sharded-index manifest magic",
            ));
        }
        need(0, HEADER_BYTES)?;
        let version = enc::get_u64(&buf, &mut pos);
        if version != MANIFEST_VERSION {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unsupported manifest version {version}"),
            ));
        }
        let n_shards = enc::get_u64(&buf, &mut pos) as usize;
        let d = enc::get_u64(&buf, &mut pos) as usize;
        let n_points = enc::get_u64(&buf, &mut pos);
        let exact_threshold = enc::get_u64(&buf, &mut pos) as usize;
        let prune = enc::get_u64(&buf, &mut pos) != 0;
        let cross_shard_floor = enc::get_u64(&buf, &mut pos) != 0;
        let strategy = PartitionStrategy::from_tag(enc::get_u64(&buf, &mut pos))
            .unwrap_or(PartitionStrategy::NormRange);
        let c = enc::get_f64(&buf, &mut pos);
        let p = enc::get_f64(&buf, &mut pos);
        let m = match enc::get_u64(&buf, &mut pos) {
            u64::MAX => None,
            m => Some(m as usize),
        };
        let page_size = enc::get_u64(&buf, &mut pos) as usize;
        let pool_pages = enc::get_u64(&buf, &mut pos) as usize;
        let seed = enc::get_u64(&buf, &mut pos);
        let name_len = enc::get_u64(&buf, &mut pos) as usize;
        need(pos, name_len)?;
        let partitioner_name = String::from_utf8_lossy(&buf[pos..pos + name_len]).into_owned();
        pos += name_len;

        let config = ShardedConfig {
            shards: n_shards,
            strategy,
            exact_threshold,
            prune,
            cross_shard_floor,
            base: promips_core::ProMipsConfig {
                c,
                p,
                m,
                idistance: Default::default(), // build-time only
                page_size,
                pool_pages,
                seed,
            },
        };

        let mut shards = Vec::with_capacity(n_shards.min(1 << 16));
        for si in 0..n_shards {
            need(pos, 24)?; // kind + count + max_norm
            let exact = enc::get_u64(&buf, &mut pos) != 0;
            let count = enc::get_u64(&buf, &mut pos) as usize;
            let max_norm = enc::get_f64(&buf, &mut pos);
            need(pos, count.saturating_mul(8))?;
            let ids: Vec<u64> = (0..count).map(|_| enc::get_u64(&buf, &mut pos)).collect();
            let kind = if exact {
                let rows = read_exact(&shard_path(dir, si, true), d)?;
                if rows.rows() != count {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!(
                            "exact shard {si} holds {} rows, manifest says {count}",
                            rows.rows()
                        ),
                    ));
                }
                ShardKind::Exact(ExactShard { rows })
            } else {
                let storage = Arc::new(FileStorage::open(shard_path(dir, si, false), page_size)?);
                let pager = Arc::new(Pager::new(storage, pool_pages, AccessStats::new_shared()));
                let pm = ProMips::open(pager)?;
                if pm.len() != count as u64 {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!(
                            "indexed shard {si} holds {} points, manifest says {count}",
                            pm.len()
                        ),
                    ));
                }
                ShardKind::Indexed(Box::new(pm))
            };
            shards.push(Shard {
                ids,
                max_norm,
                kind,
            });
        }

        Ok(Self {
            config,
            shards,
            d,
            n_points,
            partitioner_name,
        })
    }
}
