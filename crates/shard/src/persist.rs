//! Directory-based persistence: one data file per shard (named by
//! **generation**), one write-ahead log per shard, plus a manifest that is
//! only ever replaced atomically.
//!
//! Layout of an index directory:
//!
//! ```text
//! <dir>/
//!   MANIFEST.pms      config scalars, per-shard kind / generation / count /
//!                     norm bound, and the shard-local → global id maps —
//!                     always describing the last **compacted** state
//!   shard_0000.pmx    indexed shard, generation 0: a full ProMIPS page file
//!                     (identical format to [`promips_core::ProMips::save`])
//!   shard_0001.exact  exact-scan shard, generation 0: raw row blob
//!   shard_0002.g3.pmx generation 3 of shard 2 (written by compaction; the
//!                     manifest names the live generation)
//!   shard_0000.wal    per-shard write-ahead log: every mutation since the
//!                     shard's last compaction (see [`promips_wal`])
//!   ...
//! ```
//!
//! The durability contract: the **manifest + named generation files** hold
//! the compacted state, the **WALs** hold everything since. [`ShardedProMips::open`]
//! loads the former and replays the latter, so any crash point lands on
//! "compacted state + the prefix of mutations that reached disk". Manifest
//! replacement goes through [`promips_storage::write_file_atomic`]
//! (`MANIFEST.pms.tmp` → fsync → rename → directory fsync), which is what
//! makes a compaction's generation swap atomic.
//!
//! The manifest serializes only **generation** state — each shard's
//! committed id map and norm bound, never the delta overlay or tombstone
//! set (those are exactly what the WALs reconstruct). A compaction commit
//! therefore writes the manifest while readers and writers keep running:
//! it only needs the generation handles (under their read locks) plus the
//! [`crate::index::ShardedProMips`] manifest lock that serializes commits
//! against each other.
//!
//! Each shard file is self-contained — an indexed shard's `.pmx` can even
//! be opened directly with `ProMips::open` — so shards can later be placed
//! on different devices or hosts without touching the format.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use promips_core::{MutationError, ProMips};
use promips_idistance::layout::enc;
use promips_linalg::Matrix;
use promips_storage::{write_file_atomic, AccessStats, FileStorage, Pager, Storage};
use promips_wal::{SyncPolicy, Wal, WalConfig};

use crate::config::ShardedConfig;
use crate::index::{GenKind, Shard, ShardGeneration, ShardedProMips};
use crate::partition::PartitionStrategy;

const MANIFEST_MAGIC: u64 = 0x5AA2_D1CE_5059_0001;
const MANIFEST_VERSION: u64 = 2;
const EXACT_MAGIC: u64 = 0x5AA2_D1CE_E7AC_0001;
const MANIFEST_NAME: &str = "MANIFEST.pms";

/// Data-file path of shard `si` at `generation` (generation 0 keeps the
/// original `shard_NNNN.pmx` / `.exact` names, so v1 directories read
/// unchanged).
pub(crate) fn shard_path(dir: &Path, si: usize, exact: bool, generation: u64) -> PathBuf {
    let ext = if exact { "exact" } else { "pmx" };
    if generation == 0 {
        dir.join(format!("shard_{si:04}.{ext}"))
    } else {
        dir.join(format!("shard_{si:04}.g{generation}.{ext}"))
    }
}

/// Write-ahead-log path of shard `si`.
pub(crate) fn wal_path(dir: &Path, si: usize) -> PathBuf {
    dir.join(format!("shard_{si:04}.wal"))
}

fn exact_blob(rows: &Matrix, n_rows: usize) -> Vec<u8> {
    let floats = n_rows * rows.cols();
    let mut buf = Vec::with_capacity(24 + floats * 4);
    enc::put_u64(&mut buf, EXACT_MAGIC);
    enc::put_u64(&mut buf, n_rows as u64);
    enc::put_u64(&mut buf, rows.cols() as u64);
    enc::put_f32s(&mut buf, &rows.as_slice()[..floats]);
    buf
}

/// Writes the first `n_rows` rows of an exact shard as a blob, atomically
/// and fsynced (compaction publishes new generations through this before
/// the manifest swap makes them live).
pub(crate) fn write_exact_file(path: &Path, rows: &Matrix, n_rows: usize) -> io::Result<()> {
    write_file_atomic(path, &exact_blob(rows, n_rows))
}

fn read_exact(path: &Path, expect_d: usize) -> io::Result<Matrix> {
    promips_storage::faults::check(promips_storage::faults::IoOp::Read, path)?;
    let buf = fs::read(path)?;
    let mut pos = 0;
    if buf.len() < 24 || enc::get_u64(&buf, &mut pos) != EXACT_MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("bad exact-shard magic in {}", path.display()),
        ));
    }
    let n = enc::get_u64(&buf, &mut pos) as usize;
    let d = enc::get_u64(&buf, &mut pos) as usize;
    if d != expect_d && n != 0 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("exact shard dimensionality {d} != manifest {expect_d}"),
        ));
    }
    // Validate the header against the actual file length before decoding:
    // a truncated file or bit-rotted n/d must surface as InvalidData, not
    // a slice panic (or a capacity overflow) inside the readers.
    let fits = n
        .checked_mul(d)
        .and_then(|floats| floats.checked_mul(4))
        .is_some_and(|bytes| pos + bytes <= buf.len());
    if !fits {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "corrupt exact shard {}: header claims {n}×{d} floats, file has {} payload bytes",
                path.display(),
                buf.len() - pos
            ),
        ));
    }
    let data = enc::get_f32s(&buf, &mut pos, n * d);
    Ok(Matrix::from_vec(n, expect_d.max(d), data))
}

/// Encodes the WAL group-commit policy for the manifest.
fn sync_policy_tag(p: SyncPolicy) -> u64 {
    match p {
        SyncPolicy::Always => 0,
        SyncPolicy::Never => 1,
        SyncPolicy::EveryN(n) => 2 + n as u64,
    }
}

fn sync_policy_from_tag(tag: u64) -> SyncPolicy {
    match tag {
        0 => SyncPolicy::Always,
        1 => SyncPolicy::Never,
        n => SyncPolicy::EveryN((n - 2).min(u32::MAX as u64) as u32),
    }
}

impl ShardedProMips {
    /// Builds the sharded index **directly into `dir`**: each indexed shard
    /// gets its own file-backed page device (`shard_NNNN.pmx`), exact-scan
    /// shards are written as row blobs, and the manifest is finalized — the
    /// directory is immediately reopenable with [`ShardedProMips::open`],
    /// with no page copying. The returned index is **durable**: subsequent
    /// [`ShardedProMips::insert`]/[`ShardedProMips::delete`] calls are
    /// logged to per-shard WALs inside `dir`.
    pub fn build_in_dir(
        data: &Matrix,
        config: ShardedConfig,
        dir: impl AsRef<Path>,
    ) -> io::Result<Self> {
        let dir = dir.as_ref();
        fs::create_dir_all(dir)?;
        let strategy = config.strategy;
        let base = config.base.clone();
        let mut built = Self::build_impl(data, config, strategy.partitioner(), |si| {
            let storage = Arc::new(FileStorage::create(
                shard_path(dir, si, false, 0),
                base.page_size,
            )?);
            Ok(Arc::new(Pager::new(
                storage,
                base.pool_pages,
                AccessStats::new_shared(),
            )))
        })?;
        for shard in &built.shards {
            if let GenKind::Indexed(pm) = &shard.generation.read().kind {
                pm.save()?; // aux + footer straight into the shard's file
            }
        }
        built.dir = Some(dir.to_path_buf());
        let ns = built.shards.len();
        built.write_aux_and_manifest(dir, &vec![0; ns])?;
        Ok(built)
    }

    /// Snapshots the index into `dir`: indexed shards append their
    /// persistence footer ([`ProMips::save`]) and have their pages copied
    /// into per-shard files; exact shards and the manifest are written
    /// alongside. Reopen with [`ShardedProMips::open`]. Mutations and
    /// compactions are frozen for the duration (queries keep running).
    ///
    /// The index must have no pending mutations (a snapshot carries no
    /// WAL, so an uncompacted delta would be silently dropped) — call
    /// [`ShardedProMips::compact_all`] first. Snapshot a given in-memory
    /// index at most once per directory: each call appends a fresh
    /// persistence footer to the live shard pagers (the last one always
    /// wins on reopen, but the pages accumulate).
    pub fn snapshot(&self, dir: impl AsRef<Path>) -> io::Result<()> {
        // Freeze all mutation state (same order as repartition: mut_order →
        // compact locks → manifest). Readers are unaffected.
        let _order = self.mut_order.lock();
        let _compacting: Vec<_> = self.shards.iter().map(|s| s.compact_lock.lock()).collect();
        let _manifest = self.manifest_lock.lock();
        let (delta, tombstones) = self.shards.iter().fold((0, 0), |(di, ti), s| {
            let d = s.delta.read();
            (di + d.inserts.len(), ti + d.tombstones.len())
        });
        if delta + tombstones > 0 {
            return Err(MutationError::PendingMutations { delta, tombstones }.into());
        }
        let dir = dir.as_ref();
        fs::create_dir_all(dir)?;
        for (si, shard) in self.shards.iter().enumerate() {
            let gen = Arc::clone(&shard.generation.read());
            if let GenKind::Indexed(pm) = &gen.kind {
                pm.save()?;
                // Copy at the device level: going through Pager::read here
                // would charge a logical read per page to the shard's
                // access counters and churn its buffer pool.
                let src = pm.idistance().pager().storage();
                let dst = FileStorage::create(shard_path(dir, si, false, 0), src.page_size())?;
                let mut page = vec![0u8; src.page_size()];
                for pid in 0..src.num_pages() {
                    src.read_page(pid, &mut page)?;
                    let id = dst.allocate()?;
                    debug_assert_eq!(id, pid, "copied pages must stay dense");
                    dst.write_page(id, &page)?;
                }
                dst.sync()?;
            }
        }
        // A snapshot starts a fresh lineage: everything at generation 0.
        self.write_aux_and_manifest(dir, &vec![0; self.shards.len()])
    }

    /// Writes exact-shard blobs **and** the manifest, with every shard's
    /// generation *forced* to `generations[si]` — the full-directory paths
    /// ([`ShardedProMips::snapshot`], [`ShardedProMips::build_in_dir`]),
    /// which start a fresh generation-0 lineage in the target directory.
    /// The compaction commit calls [`ShardedProMips::write_manifest_with`]
    /// instead: its new generation files (including exact blobs) were
    /// already written and fsynced by the build step, and rewriting every
    /// *unchanged* exact shard's blob per commit would make compaction
    /// cost scale with total exact-shard bytes.
    pub(crate) fn write_aux_and_manifest(&self, dir: &Path, generations: &[u64]) -> io::Result<()> {
        let gens: Vec<Arc<ShardGeneration>> = self
            .shards
            .iter()
            .map(|s| Arc::clone(&s.generation.read()))
            .collect();
        for (si, gen) in gens.iter().enumerate() {
            if let GenKind::Exact(rows) = &gen.kind {
                write_exact_file(
                    &shard_path(dir, si, true, generations[si]),
                    rows,
                    gen.ids.len(),
                )?;
            }
        }
        self.encode_manifest(
            dir,
            &gens.iter().map(Arc::as_ref).collect::<Vec<_>>(),
            generations,
        )
    }

    /// Atomically replaces the manifest from the shards' **live generation
    /// handles**, with `overrides` substituting not-yet-swapped new
    /// generations — the compaction/repartition commit point. Callers hold
    /// the manifest lock; the generation read locks taken here are the
    /// only shard state touched, so readers and writers keep running.
    pub(crate) fn write_manifest_with(
        &self,
        dir: &Path,
        overrides: &[(usize, &ShardGeneration)],
    ) -> io::Result<()> {
        let current: Vec<Option<Arc<ShardGeneration>>> = self
            .shards
            .iter()
            .enumerate()
            .map(|(si, s)| {
                if overrides.iter().any(|&(oi, _)| oi == si) {
                    None
                } else {
                    Some(Arc::clone(&s.generation.read()))
                }
            })
            .collect();
        let gens: Vec<&ShardGeneration> = current
            .iter()
            .enumerate()
            .map(|(si, slot)| match slot {
                Some(arc) => arc.as_ref(),
                None => overrides
                    .iter()
                    .find(|&&(oi, _)| oi == si)
                    .map(|&(_, g)| g)
                    .expect("override present for every None slot"),
            })
            .collect();
        let generations: Vec<u64> = gens.iter().map(|g| g.generation).collect();
        self.encode_manifest(dir, &gens, &generations)
    }

    /// Serializes and atomically writes the manifest for the given
    /// per-shard generation views. What is recorded is each shard's
    /// **committed** state — the generation id maps and norm bounds; delta
    /// rows and tombstones live only in the WALs, so the committed state
    /// plus a replay reconstructs the live state without applying anything
    /// twice.
    fn encode_manifest(
        &self,
        dir: &Path,
        gens: &[&ShardGeneration],
        generations: &[u64],
    ) -> io::Result<()> {
        debug_assert_eq!(gens.len(), self.shards.len());
        debug_assert_eq!(generations.len(), self.shards.len());
        let committed_total: u64 = gens.iter().map(|g| g.ids.len() as u64).sum();
        let mut buf = Vec::new();
        enc::put_u64(&mut buf, MANIFEST_MAGIC);
        enc::put_u64(&mut buf, MANIFEST_VERSION);
        enc::put_u64(&mut buf, self.shards.len() as u64);
        enc::put_u64(&mut buf, self.d as u64);
        enc::put_u64(&mut buf, committed_total);
        enc::put_u64(&mut buf, self.config.exact_threshold as u64);
        enc::put_u64(&mut buf, u64::from(self.config.prune));
        enc::put_u64(&mut buf, u64::from(self.config.cross_shard_floor));
        enc::put_u64(&mut buf, self.config.strategy.tag());
        enc::put_f64(&mut buf, self.config.base.c);
        enc::put_f64(&mut buf, self.config.base.p);
        enc::put_u64(&mut buf, self.config.base.m.map_or(u64::MAX, |m| m as u64));
        enc::put_u64(&mut buf, self.config.base.page_size as u64);
        enc::put_u64(&mut buf, self.config.base.pool_pages as u64);
        enc::put_u64(&mut buf, self.config.base.seed);
        enc::put_u64(&mut buf, self.next_global_id.load(Ordering::Acquire));
        enc::put_u64(&mut buf, sync_policy_tag(self.config.wal_sync));
        let name = self.partitioner_name.as_bytes();
        enc::put_u64(&mut buf, name.len() as u64);
        buf.extend_from_slice(name);
        for (si, gen) in gens.iter().enumerate() {
            enc::put_u64(&mut buf, u64::from(gen.is_exact()));
            enc::put_u64(&mut buf, gen.ids.len() as u64);
            enc::put_f64(&mut buf, gen.built_max_norm);
            enc::put_u64(&mut buf, generations[si]);
            for &id in &gen.ids {
                enc::put_u64(&mut buf, id);
            }
        }
        // The swap is the commit point of every build, snapshot, and
        // compaction; a transient stall here (EINTR, a briefly saturated
        // device) should not abort an otherwise healthy commit. Re-running
        // the atomic write is idempotent — it rebuilds the tmp sibling
        // from scratch and the old manifest stays authoritative until the
        // rename lands.
        promips_storage::durability::retry::retry_io(&Default::default(), || {
            write_file_atomic(dir.join(MANIFEST_NAME), &buf)
        })
    }

    /// Reopens an index directory written by [`ShardedProMips::snapshot`],
    /// [`ShardedProMips::build_in_dir`], or compaction: loads the
    /// manifest-named generation of every shard, then **streams** each
    /// shard's write-ahead log (if present) through the replay path in
    /// bounded batches — a log is never buffered wholesale in memory, so
    /// recovery cost is flat in WAL size. With no WALs this is exactly the
    /// read-only open path — bit-identical results to the index that was
    /// saved.
    pub fn open(dir: impl AsRef<Path>) -> io::Result<Self> {
        let dir = dir.as_ref();
        let buf = fs::read(dir.join(MANIFEST_NAME))?;
        // Truncation guard: a partially written manifest must surface as
        // InvalidData, not a slice panic inside the `enc` readers.
        let need = |pos: usize, bytes: usize| -> io::Result<()> {
            if pos + bytes > buf.len() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "truncated sharded-index manifest: need {} bytes at offset {pos}, have {}",
                        bytes,
                        buf.len()
                    ),
                ));
            }
            Ok(())
        };
        let mut pos = 0;
        if buf.len() < 16 || enc::get_u64(&buf, &mut pos) != MANIFEST_MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "bad sharded-index manifest magic",
            ));
        }
        let version = enc::get_u64(&buf, &mut pos);
        if version != 1 && version != MANIFEST_VERSION {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unsupported manifest version {version}"),
            ));
        }
        // Fixed-size header: magic..seed, v2's next-id/wal-sync words, and
        // the partitioner-name length (little-endian 8-byte fields).
        let header_bytes = if version == 1 { 16 * 8 } else { 18 * 8 };
        need(0, header_bytes)?;
        let n_shards = enc::get_u64(&buf, &mut pos) as usize;
        let d = enc::get_u64(&buf, &mut pos) as usize;
        let n_points = enc::get_u64(&buf, &mut pos);
        let exact_threshold = enc::get_u64(&buf, &mut pos) as usize;
        let prune = enc::get_u64(&buf, &mut pos) != 0;
        let cross_shard_floor = enc::get_u64(&buf, &mut pos) != 0;
        let strategy = PartitionStrategy::from_tag(enc::get_u64(&buf, &mut pos))
            .unwrap_or(PartitionStrategy::NormRange);
        let c = enc::get_f64(&buf, &mut pos);
        let p = enc::get_f64(&buf, &mut pos);
        let m = match enc::get_u64(&buf, &mut pos) {
            u64::MAX => None,
            m => Some(m as usize),
        };
        let page_size = enc::get_u64(&buf, &mut pos) as usize;
        let pool_pages = enc::get_u64(&buf, &mut pos) as usize;
        let seed = enc::get_u64(&buf, &mut pos);
        let (mut next_global_id, wal_sync) = if version >= 2 {
            let next = enc::get_u64(&buf, &mut pos);
            let sync = sync_policy_from_tag(enc::get_u64(&buf, &mut pos));
            (next, sync)
        } else {
            // v1 manifests predate mutations: ids are dense 0..n.
            (n_points, SyncPolicy::Always)
        };
        let name_len = enc::get_u64(&buf, &mut pos) as usize;
        need(pos, name_len)?;
        let partitioner_name = String::from_utf8_lossy(&buf[pos..pos + name_len]).into_owned();
        pos += name_len;

        let config = ShardedConfig {
            shards: n_shards,
            strategy,
            exact_threshold,
            prune,
            cross_shard_floor,
            wal_sync,
            compaction: Default::default(), // runtime policy, not persisted
            degradation: Default::default(), // runtime policy, not persisted
            max_in_flight: 0,               // runtime policy, not persisted
            base: promips_core::ProMipsConfig {
                c,
                p,
                m,
                idistance: Default::default(), // build-time only
                page_size,
                pool_pages,
                seed,
            },
        };

        let mut shards = Vec::with_capacity(n_shards.min(1 << 16));
        for si in 0..n_shards {
            // kind + count + max_norm (+ generation in v2).
            need(pos, if version >= 2 { 32 } else { 24 })?;
            let exact = enc::get_u64(&buf, &mut pos) != 0;
            let count = enc::get_u64(&buf, &mut pos) as usize;
            let max_norm = enc::get_f64(&buf, &mut pos);
            let generation = if version >= 2 {
                enc::get_u64(&buf, &mut pos)
            } else {
                0
            };
            need(pos, count.saturating_mul(8))?;
            let ids: Vec<u64> = (0..count).map(|_| enc::get_u64(&buf, &mut pos)).collect();
            if let Some(&max_id) = ids.last() {
                next_global_id = next_global_id.max(max_id + 1);
            }
            let kind = if exact {
                let rows = read_exact(&shard_path(dir, si, true, generation), d)?;
                if rows.rows() != count {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!(
                            "exact shard {si} holds {} rows, manifest says {count}",
                            rows.rows()
                        ),
                    ));
                }
                GenKind::Exact(rows)
            } else {
                let storage = Arc::new(FileStorage::open(
                    shard_path(dir, si, false, generation),
                    page_size,
                )?);
                let pager = Arc::new(Pager::new(storage, pool_pages, AccessStats::new_shared()));
                let pm = ProMips::open(pager)?;
                if pm.len() != count as u64 {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!(
                            "indexed shard {si} holds {} points, manifest says {count}",
                            pm.len()
                        ),
                    ));
                }
                GenKind::Indexed(Box::new(pm))
            };
            shards.push(Shard::new(ShardGeneration {
                ids,
                built_max_norm: max_norm,
                generation,
                kind,
            }));
        }

        let index = Self {
            config,
            shards,
            d,
            n_points: AtomicU64::new(n_points),
            next_global_id: AtomicU64::new(next_global_id),
            mut_order: Mutex::new(()),
            manifest_lock: Mutex::new(()),
            dir: Some(dir.to_path_buf()),
            partitioner_name,
            in_flight: std::sync::atomic::AtomicUsize::new(0),
        };

        // Stream each shard's write-ahead log (where one exists) through
        // the replay path; records are decoded from a bounded sliding
        // window and applied one at a time, and torn tails are truncated
        // inside the open. Replay mutates only delta state, so the index
        // can be built first and the `Wal` handles attached after.
        let wal_cfg = WalConfig {
            sync: index.config.wal_sync,
        };
        for si in 0..n_shards {
            let wp = wal_path(dir, si);
            if !wp.exists() {
                continue;
            }
            let wal = Wal::open_streaming(&wp, wal_cfg, |rec| index.apply_replayed(si, rec))?;
            if wal.d() != d {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "WAL {} dimensionality {} != index {d}",
                        wp.display(),
                        wal.d()
                    ),
                ));
            }
            *index.shards[si].wal.lock() = Some(wal);
        }
        Ok(index)
    }
}
