//! Partitioners: how points are distributed across shards.
//!
//! The interesting implementation is [`NormRangePartitioner`], following
//! Norm-Range Partition (Yan et al., NeurIPS 2018, arXiv:1810.09104): MIPS
//! candidate quality is dominated by vector norms, so cutting the dataset
//! into contiguous **norm ranges** concentrates the likely winners in the
//! high-norm shards and gives every shard a tight inner-product upper bound
//! `‖q‖ · max_norm(shard)` (Cauchy–Schwarz) that the fan-out search uses to
//! prune whole shards. [`HashPartitioner`] is the neutral baseline: uniform
//! spread, no exploitable bound ordering.

use promips_linalg::{sq_norm2, Matrix};

/// Assigns every dataset row to one of `n_shards` shards.
///
/// Implementations must be deterministic in `data` (the sharded index's
/// reproducibility tests depend on it) and must keep the assignment stable
/// under `n_shards = 1` — every row to shard 0 — so a one-shard
/// [`crate::ShardedProMips`] reproduces the unsharded index bit-for-bit.
pub trait Partitioner: Send + Sync {
    /// Display name (recorded in snapshots and benchmark artifacts).
    fn name(&self) -> &'static str;

    /// Returns one shard id in `0..n_shards` per row of `data`.
    fn assign(&self, data: &Matrix, n_shards: usize) -> Vec<u32>;

    /// Routes a *single* freshly inserted point to a shard, given the
    /// current per-shard norm bounds (`max ‖o‖₂`, indexed by shard id).
    /// This is the mutation-time counterpart of [`Partitioner::assign`]:
    /// bulk builds see the whole dataset and can rank it, inserts must be
    /// placed against the boundaries the build left behind. The default
    /// routes everything to shard 0 (correct for one shard; custom
    /// partitioners should override).
    fn route(&self, point: &[f32], id: u64, shard_max_norms: &[f64]) -> u32 {
        let _ = (point, id, shard_max_norms);
        0
    }
}

/// Equal-count norm-range partitioning: rows are ranked by 2-norm
/// (ascending, ties by row id) and rank `r` of `n` goes to shard
/// `r · n_shards / n`. Shard `n_shards − 1` therefore holds the largest
/// norms — the shard the fan-out search probes first.
#[derive(Debug, Clone, Copy, Default)]
pub struct NormRangePartitioner;

impl Partitioner for NormRangePartitioner {
    fn name(&self) -> &'static str {
        "norm-range"
    }

    fn assign(&self, data: &Matrix, n_shards: usize) -> Vec<u32> {
        let n = data.rows();
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.sort_by(|&a, &b| {
            sq_norm2(data.row(a as usize))
                .total_cmp(&sq_norm2(data.row(b as usize)))
                .then(a.cmp(&b))
        });
        let mut assign = vec![0u32; n];
        for (rank, &row) in order.iter().enumerate() {
            assign[row as usize] = (rank * n_shards / n) as u32;
        }
        assign
    }

    /// An insert goes to the shard whose norm range it falls in: among
    /// shards whose bound covers the point (`max_norm ≥ ‖p‖`), the one
    /// with the **tightest** bound — that is the norm-range cell the point
    /// belongs to, and routing there leaves every other shard's
    /// Cauchy–Schwarz bound untouched. A point above every bound extends
    /// the highest-norm shard (ties break toward the smaller shard id, so
    /// routing is deterministic).
    fn route(&self, point: &[f32], _id: u64, shard_max_norms: &[f64]) -> u32 {
        let norm = sq_norm2(point).sqrt();
        let mut best_cover: Option<(f64, usize)> = None; // tightest covering bound
        let mut best_any = (f64::NEG_INFINITY, 0usize); // highest bound overall
        for (si, &b) in shard_max_norms.iter().enumerate() {
            if b > best_any.0 {
                best_any = (b, si);
            }
            if b >= norm && best_cover.is_none_or(|(cb, _)| b < cb) {
                best_cover = Some((b, si));
            }
        }
        best_cover.map_or(best_any.1, |(_, si)| si) as u32
    }
}

/// Norm-oblivious spread: a Fibonacci hash of the row id modulo the shard
/// count. Balances load without any norm ordering — the control arm for the
/// norm-range pruning experiments.
#[derive(Debug, Clone, Copy, Default)]
pub struct HashPartitioner;

impl Partitioner for HashPartitioner {
    fn name(&self) -> &'static str {
        "hash"
    }

    fn assign(&self, data: &Matrix, n_shards: usize) -> Vec<u32> {
        (0..data.rows() as u64)
            .map(|id| {
                let h = id.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32;
                (h % n_shards as u64) as u32
            })
            .collect()
    }

    /// Inserts hash exactly like builds (same Fibonacci hash of the global
    /// id), so a dataset built in bulk and one grown by inserts agree on
    /// placement.
    fn route(&self, _point: &[f32], id: u64, shard_max_norms: &[f64]) -> u32 {
        let h = id.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32;
        (h % shard_max_norms.len().max(1) as u64) as u32
    }
}

/// The built-in partitioner choices, as persistable configuration.
///
/// [`crate::ShardedProMips::build_with_partitioner`] accepts any
/// [`Partitioner`]; this enum names the two shipped ones so they can be
/// selected from a [`crate::ShardedConfig`] and recorded in a snapshot
/// manifest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PartitionStrategy {
    /// [`NormRangePartitioner`] (the default).
    #[default]
    NormRange,
    /// [`HashPartitioner`].
    Hash,
}

impl PartitionStrategy {
    /// The partitioner this strategy names.
    pub fn partitioner(&self) -> &'static dyn Partitioner {
        match self {
            PartitionStrategy::NormRange => &NormRangePartitioner,
            PartitionStrategy::Hash => &HashPartitioner,
        }
    }

    /// Stable tag used by the snapshot manifest.
    pub(crate) fn tag(&self) -> u64 {
        match self {
            PartitionStrategy::NormRange => 0,
            PartitionStrategy::Hash => 1,
        }
    }

    /// Inverse of [`PartitionStrategy::tag`].
    pub(crate) fn from_tag(tag: u64) -> Option<Self> {
        match tag {
            0 => Some(PartitionStrategy::NormRange),
            1 => Some(PartitionStrategy::Hash),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use promips_stats::Xoshiro256pp;

    fn random_data(n: usize, d: usize, seed: u64) -> Matrix {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        Matrix::from_rows(
            d,
            (0..n).map(|_| (0..d).map(|_| rng.normal() as f32).collect::<Vec<f32>>()),
        )
    }

    #[test]
    fn norm_range_counts_are_balanced() {
        let data = random_data(1003, 12, 1);
        let assign = NormRangePartitioner.assign(&data, 4);
        let mut counts = [0usize; 4];
        for &s in &assign {
            counts[s as usize] += 1;
        }
        // Equal-count ranks: shard sizes differ by at most one.
        assert!(counts.iter().all(|&c| c == 250 || c == 251), "{counts:?}");
    }

    #[test]
    fn norm_range_orders_shards_by_norm() {
        let data = random_data(600, 8, 2);
        let assign = NormRangePartitioner.assign(&data, 3);
        // Every point in a higher shard has norm >= every point in a lower
        // shard (up to rank ties, which equal norms make unobservable).
        let max_per: Vec<f64> = (0..3)
            .map(|s| {
                (0..600)
                    .filter(|&i| assign[i] == s)
                    .map(|i| sq_norm2(data.row(i)))
                    .fold(f64::NEG_INFINITY, f64::max)
            })
            .collect();
        let min_per: Vec<f64> = (0..3)
            .map(|s| {
                (0..600)
                    .filter(|&i| assign[i] == s)
                    .map(|i| sq_norm2(data.row(i)))
                    .fold(f64::INFINITY, f64::min)
            })
            .collect();
        assert!(max_per[0] <= min_per[1]);
        assert!(max_per[1] <= min_per[2]);
    }

    #[test]
    fn single_shard_maps_everything_to_zero() {
        let data = random_data(100, 6, 3);
        assert!(NormRangePartitioner
            .assign(&data, 1)
            .iter()
            .all(|&s| s == 0));
        assert!(HashPartitioner.assign(&data, 1).iter().all(|&s| s == 0));
    }

    #[test]
    fn hash_spreads_reasonably() {
        let data = random_data(4000, 4, 4);
        let assign = HashPartitioner.assign(&data, 8);
        let mut counts = [0usize; 8];
        for &s in &assign {
            counts[s as usize] += 1;
        }
        // Fibonacci hashing over sequential ids is near-uniform.
        assert!(
            counts.iter().all(|&c| c > 300 && c < 700),
            "skewed: {counts:?}"
        );
    }

    #[test]
    fn strategy_tags_roundtrip() {
        for s in [PartitionStrategy::NormRange, PartitionStrategy::Hash] {
            assert_eq!(PartitionStrategy::from_tag(s.tag()), Some(s));
        }
        assert_eq!(PartitionStrategy::from_tag(99), None);
    }
}
