//! Configuration for the sharded index.

use promips_core::ProMipsConfig;
use promips_wal::SyncPolicy;

use crate::compaction::CompactionPolicy;
use crate::error::DegradationPolicy;
use crate::partition::PartitionStrategy;

/// Build- and search-time parameters of a [`crate::ShardedProMips`].
#[derive(Debug, Clone)]
pub struct ShardedConfig {
    /// Number of shards `N ≥ 1`.
    pub shards: usize,
    /// How points are distributed across shards.
    pub strategy: PartitionStrategy,
    /// Shards with fewer points than this skip index construction and fall
    /// back to a blocked exact scan ("To Index or Not to Index", Abuzaid et
    /// al., arXiv:1706.01449: below a size/selectivity threshold a scan
    /// beats any index). `0` disables the fallback except for empty shards,
    /// which are always scan-backed.
    pub exact_threshold: usize,
    /// Whether the fan-out search prunes shards whose Cauchy–Schwarz bound
    /// `‖q‖ · max_norm(shard)` cannot beat the k-th inner product already
    /// verified in the seed shard. Pruning never changes the returned
    /// top-k; disabling it is for measurement.
    pub prune: bool,
    /// Whether surviving shards are searched with the seed shard's k-th
    /// inner product as a termination floor
    /// ([`promips_core::ProMips::search_with_floor`]): each shard then
    /// stops verifying as soon as it cannot improve the global result.
    /// **Approximate** — it can cost recall (the searching conditions fire
    /// earlier), which is why it defaults to off; shard pruning alone is
    /// exact. Turn it on for latency-bound fan-outs.
    pub cross_shard_floor: bool,
    /// Group-commit policy of the per-shard write-ahead logs (directory-
    /// backed indexes only; in-memory indexes take mutations volatilely).
    pub wal_sync: SyncPolicy,
    /// When [`crate::ShardedProMips::compact`] folds a shard's delta and
    /// tombstones into a fresh generation, and when it re-partitions.
    pub compaction: CompactionPolicy,
    /// What a shard failure mid-query does to the whole query:
    /// [`DegradationPolicy::FailFast`] (default) aborts with a typed
    /// error; [`DegradationPolicy::BestEffort`] returns the top-k over
    /// surviving shards, flagged degraded.
    pub degradation: DegradationPolicy,
    /// Admission limit: at most this many searches may run concurrently
    /// against the index; the excess is refused with
    /// [`crate::QueryError::Overloaded`] instead of queueing. `0` means
    /// unlimited (the default — no admission gate).
    pub max_in_flight: usize,
    /// Per-shard ProMIPS parameters. Shard `i` builds with
    /// `seed ⊕ (i · φ₆₄)`, so shard 0 of a one-shard config reproduces the
    /// unsharded index exactly.
    pub base: ProMipsConfig,
}

impl Default for ShardedConfig {
    fn default() -> Self {
        Self {
            shards: 4,
            strategy: PartitionStrategy::NormRange,
            exact_threshold: 128,
            prune: true,
            cross_shard_floor: false,
            wal_sync: SyncPolicy::Always,
            compaction: CompactionPolicy::default(),
            degradation: DegradationPolicy::FailFast,
            max_in_flight: 0,
            base: ProMipsConfig::default(),
        }
    }
}

impl ShardedConfig {
    /// Starts a builder with the defaults above.
    pub fn builder() -> ShardedConfigBuilder {
        ShardedConfigBuilder {
            config: Self::default(),
        }
    }

    /// Validates parameter domains (and the embedded base config).
    ///
    /// # Panics
    /// Panics if `shards` is zero or absurdly large (> 65 536).
    pub fn validate(&self) {
        assert!(
            (1..=65_536).contains(&self.shards),
            "shards must be in 1..=65536, got {}",
            self.shards
        );
        self.base.validate();
    }
}

/// Fluent builder for [`ShardedConfig`].
#[derive(Debug, Clone)]
pub struct ShardedConfigBuilder {
    config: ShardedConfig,
}

impl ShardedConfigBuilder {
    /// Sets the shard count.
    pub fn shards(mut self, n: usize) -> Self {
        self.config.shards = n;
        self
    }

    /// Sets the partition strategy.
    pub fn strategy(mut self, s: PartitionStrategy) -> Self {
        self.config.strategy = s;
        self
    }

    /// Sets the exact-scan fallback threshold (points).
    pub fn exact_threshold(mut self, points: usize) -> Self {
        self.config.exact_threshold = points;
        self
    }

    /// Enables or disables norm-bound shard pruning.
    pub fn prune(mut self, on: bool) -> Self {
        self.config.prune = on;
        self
    }

    /// Enables the (approximate, latency-oriented) cross-shard termination
    /// floor.
    pub fn cross_shard_floor(mut self, on: bool) -> Self {
        self.config.cross_shard_floor = on;
        self
    }

    /// Sets the WAL group-commit policy.
    pub fn wal_sync(mut self, policy: SyncPolicy) -> Self {
        self.config.wal_sync = policy;
        self
    }

    /// Sets the compaction policy.
    pub fn compaction(mut self, policy: CompactionPolicy) -> Self {
        self.config.compaction = policy;
        self
    }

    /// Sets the shard-failure degradation policy.
    pub fn degradation(mut self, policy: DegradationPolicy) -> Self {
        self.config.degradation = policy;
        self
    }

    /// Sets the admission limit (`0` = unlimited).
    pub fn max_in_flight(mut self, limit: usize) -> Self {
        self.config.max_in_flight = limit;
        self
    }

    /// Sets the per-shard ProMIPS configuration.
    pub fn base(mut self, base: ProMipsConfig) -> Self {
        self.config.base = base;
        self
    }

    /// Finalizes and validates the configuration.
    pub fn build(self) -> ShardedConfig {
        self.config.validate();
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let c = ShardedConfig::default();
        assert_eq!(c.shards, 4);
        assert_eq!(c.strategy, PartitionStrategy::NormRange);
        assert!(c.prune);
        c.validate();
    }

    #[test]
    fn builder_sets_fields() {
        let c = ShardedConfig::builder()
            .shards(8)
            .strategy(PartitionStrategy::Hash)
            .exact_threshold(10)
            .prune(false)
            .build();
        assert_eq!(c.shards, 8);
        assert_eq!(c.strategy, PartitionStrategy::Hash);
        assert_eq!(c.exact_threshold, 10);
        assert!(!c.prune);
    }

    #[test]
    #[should_panic]
    fn rejects_zero_shards() {
        ShardedConfig::builder().shards(0).build();
    }

    #[test]
    fn robustness_knobs_default_off() {
        let c = ShardedConfig::default();
        assert_eq!(c.degradation, DegradationPolicy::FailFast);
        assert_eq!(c.max_in_flight, 0);
        let c = ShardedConfig::builder()
            .degradation(DegradationPolicy::BestEffort)
            .max_in_flight(32)
            .build();
        assert_eq!(c.degradation, DegradationPolicy::BestEffort);
        assert_eq!(c.max_in_flight, 32);
    }
}
