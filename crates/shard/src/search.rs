//! Parallel fan-out search with norm-bound shard pruning, over **per-query
//! shard snapshots** so queries never block on (or get torn by) concurrent
//! mutations.
//!
//! Before any scoring, the query takes a [`crate::index::ShardSnapshot`]
//! of every shard: the generation `Arc`, a clone of the delta overlay
//! (`Arc`ed rows, copy-on-write tombstone set), and the live norm bound.
//! Everything after — seed probe, pruning, fan-out, merge — runs against
//! those frozen views, so a compaction swapping a generation mid-query or
//! a writer appending to a delta is simply invisible to this query and
//! fully visible to the next one.
//!
//! The query itself runs in two deterministic phases:
//!
//! 1. **Seed probe.** The shard with the largest norm bound (under
//!    norm-range partitioning, the high-norm shard — where the MIPS winner
//!    statistically lives) is searched first. Its k-th best inner product
//!    becomes the global *floor*.
//! 2. **Pruned fan-out.** Every other shard whose Cauchy–Schwarz bound
//!    `‖q‖₂ · max_norm(shard)` falls strictly below the floor is pruned —
//!    no point it holds can enter the global top-k. Surviving shards are
//!    searched concurrently under `std::thread::scope`, each with its own
//!    [`SearchScratch`].
//!
//! Per shard, the committed generation is searched through
//! [`promips_core::ProMips::search_masked`] with the snapshot's tombstone
//! set as the external dead mask (an exact generation runs a blocked
//! scan), and the delta overlay is verified exhaustively — the same
//! two-level read an LSM tree does, with the tombstone set filtering both
//! levels.
//!
//! Pruning is exact, never approximate: a pruned shard's best possible
//! inner product is beaten by k already-verified points, so the merged
//! top-k is identical with pruning on or off. With
//! [`crate::ShardedConfig::cross_shard_floor`] enabled, the floor is
//! additionally passed down to each shard's masked search, letting it stop
//! verifying as soon as it cannot improve the global result — a
//! latency/recall trade that is therefore **off by default**.
//!
//! The floor is fixed after phase 1 (workers never race to update it), so
//! results are **deterministic**: the same query against the same snapshot
//! returns the same items, ranks, and per-shard counts regardless of
//! thread count or scheduling.
//!
//! ## Query lifecycle
//!
//! Three lifecycle controls wrap the two phases (all off by default, all
//! zero-cost when off):
//!
//! * **Admission** — [`crate::ShardedConfig::max_in_flight`] bounds the
//!   searches running concurrently against the index; the excess is
//!   refused up front with [`QueryError::Overloaded`] instead of piling
//!   onto a saturated box (counted by `promips_queries_shed_total`).
//! * **Budgets** — the `*_budgeted` entry points carry a
//!   [`QueryBudget`] (deadline and/or cancellation token) down into every
//!   shard's scan and verify loops, which check it cooperatively once per
//!   block of work. An exceeded budget surfaces as
//!   [`QueryError::DeadlineExceeded`] / [`QueryError::Cancelled`].
//! * **Degradation** — [`crate::DegradationPolicy`] decides what one
//!   shard's failure (injected or real IO fault, per-shard deadline
//!   expiry, worker panic) does to the query: `FailFast` (default)
//!   aborts with a typed [`ShardError`] naming the shard — reported
//!   deterministically for the lowest failing shard index — while
//!   `BestEffort` drops the failed shard from the merge and returns the
//!   exact top-k over the survivors with
//!   [`crate::ShardedSearchResult::degraded`] set (counted by
//!   `promips_partial_results_total`, visible per shard in traces).

use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::Mutex;
use promips_core::{SearchItem, SearchScratch};
use promips_linalg::{dot, sq_norm2};
use promips_obs::{
    self as obs, budget_error, recorder, sampling, slow, BudgetChecker, BudgetExceeded, CounterId,
    HistoId, QueryBudget, QueryTrace, ShardSpan, StageNanos,
};

use crate::error::{DegradationPolicy, QueryError, ShardError, ShardErrorKind};
use crate::index::{GenKind, ShardSnapshot, ShardedProMips};
use crate::result::{ShardQueryStats, ShardedSearchResult};

/// Rows per cooperative budget check in the exact-scan and delta-overlay
/// loops (the indexed path checks per verified group inside the core).
/// With the checker's default clock stride this reads the clock every few
/// thousand rows — far below a page of verification work.
const EXACT_TICK_ROWS: usize = 256;

/// Reusable per-shard search buffers: one [`SearchScratch`] per shard,
/// individually locked so fan-out workers (at most one per shard) take
/// them without contention. Buffers grow to each shard's high-water mark
/// and are reused across queries.
pub struct ShardedScratch {
    per_shard: Vec<Mutex<SearchScratch>>,
}

impl ShardedScratch {
    /// A fresh scratch set for `shards` shards.
    pub fn new(shards: usize) -> Self {
        Self {
            per_shard: (0..shards)
                .map(|_| Mutex::new(SearchScratch::new()))
                .collect(),
        }
    }

    /// A scratch set sized for `index`.
    pub fn for_index(index: &ShardedProMips) -> Self {
        Self::new(index.shard_count())
    }
}

/// What one searched shard contributed.
struct ShardOutcome {
    /// Shard items mapped to **global** ids, best first.
    items: Vec<SearchItem>,
    verified: usize,
    screened: usize,
    /// Candidate rows the index stage emitted (0 for exact-scan shards).
    scanned: u64,
    /// Per-stage wall time inside this shard (all zero when the
    /// [`obs::set_timing_enabled`] kill-switch is off).
    stages: StageNanos,
    /// Wall time of the whole shard search call (0 with timing off).
    elapsed_ns: u64,
}

/// RAII admission permit: holds one slot of the index's in-flight gauge
/// and releases it on every exit path (success, error, panic unwind).
struct AdmissionPermit<'a> {
    gauge: &'a AtomicUsize,
}

impl Drop for AdmissionPermit<'_> {
    fn drop(&mut self) {
        self.gauge.fetch_sub(1, Ordering::AcqRel);
    }
}

/// Re-types a shard-level `io::Error`: budget expiries (riding the
/// `io::Result` plumbing from the core loops) are recovered into their
/// own kinds; everything else is a storage failure.
fn classify_shard_error(si: usize, e: io::Error) -> ShardError {
    let kind = match budget_error(&e) {
        Some(BudgetExceeded::Deadline) => ShardErrorKind::DeadlineExceeded,
        Some(BudgetExceeded::Cancelled) => ShardErrorKind::Cancelled,
        None => ShardErrorKind::Io(e),
    };
    ShardError {
        shard: si as u32,
        kind,
    }
}

/// Books the query-level counters for a failure that aborts the whole
/// query, leaves the postmortem trail (a flight-recorder event plus an
/// automatic [`recorder::ErrorDump`] of the ring), then promotes it.
fn fail_query(se: ShardError) -> QueryError {
    let reg = obs::global();
    match se.kind {
        ShardErrorKind::DeadlineExceeded => reg.counter(CounterId::DeadlinesExceeded).inc(),
        ShardErrorKind::Cancelled => reg.counter(CounterId::QueriesCancelled).inc(),
        _ => {}
    }
    reg.counter(CounterId::QueryFailures).inc();
    let kind = match se.kind {
        ShardErrorKind::Io(_) => "io",
        ShardErrorKind::DeadlineExceeded => "deadline",
        ShardErrorKind::Cancelled => "cancelled",
        ShardErrorKind::Poisoned => "poisoned",
    };
    recorder::emit(recorder::EventKind::QueryFailed {
        shard: se.shard,
        kind,
    });
    let qe = QueryError::from(se);
    recorder::capture_error(&qe);
    qe
}

impl ShardedProMips {
    /// c-k-AMIP search across all shards (allocates a fresh scratch set;
    /// high-throughput callers should hold a [`ShardedScratch`] and use
    /// [`ShardedProMips::search_with_scratch`]).
    pub fn search(&self, q: &[f32], k: usize) -> io::Result<ShardedSearchResult> {
        self.search_with_scratch(q, k, &ShardedScratch::for_index(self))
    }

    /// [`ShardedProMips::search`] with caller-provided per-shard scratch
    /// buffers, fanning out over all available cores.
    pub fn search_with_scratch(
        &self,
        q: &[f32],
        k: usize,
        scratch: &ShardedScratch,
    ) -> io::Result<ShardedSearchResult> {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        self.search_threaded(q, k, threads, scratch)
    }

    /// [`ShardedProMips::search_with_scratch`] with an explicit worker
    /// count for the fan-out phase. Results are identical for every thread
    /// count (see the module docs on determinism).
    ///
    /// Every `1-in-N`-th call (deterministic arrival counting, see
    /// [`promips_obs::sampling`]) is transparently routed through the
    /// tracing machinery and its trace offered to the slow-query log as
    /// an exemplar; results are unaffected — tracing only observes.
    pub fn search_threaded(
        &self,
        q: &[f32],
        k: usize,
        threads: usize,
        scratch: &ShardedScratch,
    ) -> io::Result<ShardedSearchResult> {
        if sampling::should_sample() {
            let mut trace = self.sampled_trace(k);
            let res = self
                .search_observed(q, k, threads, scratch, Some(&mut trace), None)
                .map_err(io::Error::from)?;
            slow::offer_sampled(&trace);
            return Ok(res);
        }
        self.search_observed(q, k, threads, scratch, None, None)
            .map_err(io::Error::from)
    }

    /// [`ShardedProMips::search_with_scratch`] under a [`QueryBudget`]:
    /// the deadline/cancellation token is checked cooperatively inside
    /// every shard's scan and verify loops, and failures come back typed.
    /// Under [`DegradationPolicy::BestEffort`] a budget that expires after
    /// some shards finished degrades the result instead of erroring.
    pub fn search_budgeted(
        &self,
        q: &[f32],
        k: usize,
        scratch: &ShardedScratch,
        budget: &QueryBudget,
    ) -> Result<ShardedSearchResult, QueryError> {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        self.search_budgeted_threaded(q, k, threads, scratch, budget)
    }

    /// [`ShardedProMips::search_budgeted`] with an explicit fan-out worker
    /// count. Participates in 1-in-N trace sampling exactly like
    /// [`ShardedProMips::search_threaded`].
    pub fn search_budgeted_threaded(
        &self,
        q: &[f32],
        k: usize,
        threads: usize,
        scratch: &ShardedScratch,
        budget: &QueryBudget,
    ) -> Result<ShardedSearchResult, QueryError> {
        if sampling::should_sample() {
            let mut trace = self.sampled_trace(k);
            let res =
                self.search_observed(q, k, threads, scratch, Some(&mut trace), Some(budget))?;
            slow::offer_sampled(&trace);
            return Ok(res);
        }
        self.search_observed(q, k, threads, scratch, None, Some(budget))
    }

    /// A fresh trace for a sampler-selected query (books the sampled
    /// counter so the exemplar rate is itself observable).
    fn sampled_trace(&self, k: usize) -> QueryTrace {
        obs::global().counter(CounterId::QueriesSampled).inc();
        QueryTrace {
            k,
            started_at_ns: obs::now_ns(),
            ..QueryTrace::default()
        }
    }

    /// [`ShardedProMips::search_with_scratch`] that additionally returns a
    /// per-query [`QueryTrace`]: stage wall time per shard (scan → screen
    /// → verify), the cross-shard merge, and every prune decision. The
    /// trace is also offered to the process-global slow-query log
    /// ([`promips_obs::slow`]). Tracing costs one small allocation and a
    /// handful of clock reads on top of the untraced path; stage timings
    /// inside it are all zero while the [`obs::set_timing_enabled`]
    /// kill-switch is off.
    pub fn search_traced(
        &self,
        q: &[f32],
        k: usize,
        scratch: &ShardedScratch,
    ) -> io::Result<(ShardedSearchResult, QueryTrace)> {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        self.search_traced_threaded(q, k, threads, scratch)
    }

    /// [`ShardedProMips::search_traced`] with an explicit fan-out worker
    /// count. With `threads == 1` the per-shard stage times are disjoint
    /// slices of the wall clock, so [`QueryTrace::coverage`] accounts for
    /// the end-to-end latency; with more workers, stage time is CPU time
    /// across threads and can exceed it.
    pub fn search_traced_threaded(
        &self,
        q: &[f32],
        k: usize,
        threads: usize,
        scratch: &ShardedScratch,
    ) -> io::Result<(ShardedSearchResult, QueryTrace)> {
        let mut trace = QueryTrace {
            k,
            started_at_ns: obs::now_ns(),
            ..QueryTrace::default()
        };
        let res = self
            .search_observed(q, k, threads, scratch, Some(&mut trace), None)
            .map_err(io::Error::from)?;
        slow::offer(&trace);
        Ok((res, trace))
    }

    /// [`ShardedProMips::search_budgeted`] with a [`QueryTrace`]: the
    /// trace carries the remaining budget at completion and flags every
    /// failed (excluded) shard, so a degraded answer is auditable.
    pub fn search_traced_budgeted(
        &self,
        q: &[f32],
        k: usize,
        scratch: &ShardedScratch,
        budget: &QueryBudget,
    ) -> Result<(ShardedSearchResult, QueryTrace), QueryError> {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let mut trace = QueryTrace {
            k,
            started_at_ns: obs::now_ns(),
            ..QueryTrace::default()
        };
        let res = self.search_observed(q, k, threads, scratch, Some(&mut trace), Some(budget))?;
        slow::offer(&trace);
        Ok((res, trace))
    }

    /// Takes an admission slot, or sheds the query when the configured
    /// limit is saturated.
    fn admit(&self) -> Result<AdmissionPermit<'_>, QueryError> {
        let in_flight = self.in_flight.fetch_add(1, Ordering::AcqRel);
        let limit = self.config.max_in_flight;
        if limit != 0 && in_flight >= limit {
            self.in_flight.fetch_sub(1, Ordering::AcqRel);
            obs::global().counter(CounterId::QueriesShed).inc();
            recorder::emit(recorder::EventKind::QueryShed {
                in_flight: in_flight as u64,
                limit: limit as u64,
            });
            return Err(QueryError::Overloaded { in_flight, limit });
        }
        Ok(AdmissionPermit {
            gauge: &self.in_flight,
        })
    }

    /// The one search path: phases and results are identical whether or
    /// not a trace is requested; tracing only *observes*. A `None` budget
    /// is the historical unbounded path, bit for bit.
    fn search_observed(
        &self,
        q: &[f32],
        k: usize,
        threads: usize,
        scratch: &ShardedScratch,
        trace: Option<&mut QueryTrace>,
        budget: Option<&QueryBudget>,
    ) -> Result<ShardedSearchResult, QueryError> {
        assert_eq!(q.len(), self.d, "query dimensionality mismatch");
        assert!(k >= 1, "k must be at least 1");
        assert_eq!(
            scratch.per_shard.len(),
            self.shards.len(),
            "scratch sized for {} shards, index has {}",
            scratch.per_shard.len(),
            self.shards.len()
        );
        // Load shedding happens before any real work: a refused query
        // costs two atomic ops and a counter bump. The permit's Drop
        // releases the slot on every path out of this function.
        let _permit = self.admit()?;
        let ns = self.shards.len();
        let q_norm = sq_norm2(q).sqrt();
        let policy = self.config.degradation;
        // A trace must measure wall time even when the aggregate-histogram
        // timing switch is off — the caller explicitly asked for it.
        let timing = obs::timing_enabled();
        let t_query = if timing || trace.is_some() {
            obs::now_ns()
        } else {
            0
        };

        // The query's isolation boundary: one consistent snapshot per
        // shard, taken up front. Everything below reads only these.
        let snaps: Vec<ShardSnapshot> = self.shards.iter().map(|s| s.snapshot()).collect();

        let mut outcomes: Vec<Option<ShardOutcome>> = (0..ns).map(|_| None).collect();
        let mut pruned = vec![false; ns];
        let mut failed = vec![false; ns];
        let mut failures: Vec<ShardError> = Vec::new();
        let mut attempted = 0usize;
        let mut seed_shard: Option<usize> = None;

        // One shard, fully contained: IO errors are re-typed, budget
        // expiries recovered, and a panicking worker is caught here (the
        // scratch and snapshot it held are query-local; shared state is
        // lock-free or guarded by non-poisoning locks).
        let search_one = |si: usize, floor: f64| -> Result<ShardOutcome, ShardError> {
            let res = catch_unwind(AssertUnwindSafe(|| {
                search_snapshot(
                    &snaps[si],
                    q,
                    k,
                    floor,
                    &mut scratch.per_shard[si].lock(),
                    budget,
                )
            }));
            match res {
                Ok(Ok(outcome)) => Ok(outcome),
                Ok(Err(e)) => Err(classify_shard_error(si, e)),
                Err(_) => Err(ShardError {
                    shard: si as u32,
                    kind: ShardErrorKind::Poisoned,
                }),
            }
        };

        // --- Phase 1: seed probe of the highest-norm-bound shard. ---------
        let mut kth_floor = f64::NEG_INFINITY;
        let mut fan_out: Vec<usize> = Vec::with_capacity(ns);
        if self.config.prune && ns > 1 {
            let seed = snaps
                .iter()
                .enumerate()
                .max_by(|(ia, a), (ib, b)| a.max_norm.total_cmp(&b.max_norm).then(ib.cmp(ia)))
                .map(|(i, _)| i)
                .expect("at least one shard");
            attempted += 1;
            match search_one(seed, f64::NEG_INFINITY) {
                Ok(outcome) => {
                    if outcome.items.len() >= k {
                        kth_floor = outcome.items[k - 1].ip;
                    }
                    outcomes[seed] = Some(outcome);
                }
                Err(se) => {
                    if policy == DegradationPolicy::FailFast {
                        return Err(fail_query(se));
                    }
                    // Degraded probe: no floor, so nothing is pruned and
                    // every other shard gets its chance to contribute.
                    failed[seed] = true;
                    failures.push(se);
                }
            }
            seed_shard = Some(seed);
            for (si, snap) in snaps.iter().enumerate() {
                if si == seed {
                    continue;
                }
                if q_norm * snap.max_norm < kth_floor {
                    pruned[si] = true; // cannot beat k verified points
                } else {
                    fan_out.push(si);
                }
            }
        } else {
            fan_out.extend(0..ns);
        }
        // Exact by construction: shard pruning only drops points strictly
        // below k verified inner products. The in-shard floor is the
        // opt-in approximate accelerator (see the module docs).
        let floor = if self.config.cross_shard_floor {
            kth_floor
        } else {
            f64::NEG_INFINITY
        };

        // --- Phase 2: parallel fan-out over surviving shards. -------------
        attempted += fan_out.len();
        let threads = threads.clamp(1, fan_out.len().max(1));
        if threads == 1 {
            for &si in &fan_out {
                match search_one(si, floor) {
                    Ok(outcome) => outcomes[si] = Some(outcome),
                    Err(se) => {
                        // Sequential fan-out visits shards in ascending
                        // index order, so this early return already
                        // reports the lowest failing shard.
                        if policy == DegradationPolicy::FailFast {
                            return Err(fail_query(se));
                        }
                        failed[si] = true;
                        failures.push(se);
                    }
                }
            }
        } else {
            let next = AtomicUsize::new(0);
            let fan_out_ref = &fan_out;
            let search_one = &search_one;
            let collected: Vec<(usize, Result<ShardOutcome, ShardError>)> =
                std::thread::scope(|s| {
                    let workers: Vec<_> = (0..threads)
                        .map(|_| {
                            s.spawn(|| {
                                let mut local: Vec<(usize, Result<ShardOutcome, ShardError>)> =
                                    Vec::new();
                                loop {
                                    let i = next.fetch_add(1, Ordering::Relaxed);
                                    if i >= fan_out_ref.len() {
                                        break;
                                    }
                                    let si = fan_out_ref[i];
                                    local.push((si, search_one(si, floor)));
                                }
                                local
                            })
                        })
                        .collect();
                    let mut out = Vec::with_capacity(fan_out_ref.len());
                    for w in workers {
                        out.extend(w.join().expect("shard fan-out worker panicked"));
                    }
                    out
                });
            let mut fan_failures: Vec<ShardError> = Vec::new();
            for (si, res) in collected {
                match res {
                    Ok(outcome) => outcomes[si] = Some(outcome),
                    Err(se) => {
                        failed[si] = true;
                        fan_failures.push(se);
                    }
                }
            }
            if policy == DegradationPolicy::FailFast && !fan_failures.is_empty() {
                // Workers finish in scheduling order; report the lowest
                // shard index so the error is thread-count invariant.
                fan_failures.sort_by_key(|e| e.shard);
                return Err(fail_query(fan_failures.remove(0)));
            }
            failures.extend(fan_failures);
        }

        // --- Degradation decision (BestEffort only from here on). ----------
        let mut degraded = false;
        if !failures.is_empty() {
            failures.sort_by_key(|e| e.shard);
            if failures.len() == attempted {
                // Nothing survived to merge — degrading to an empty answer
                // would hide a total outage. Error like fail-fast would.
                return Err(fail_query(failures.swap_remove(0)));
            }
            degraded = true;
            let reg = obs::global();
            reg.counter(CounterId::PartialResults).inc();
            recorder::emit(recorder::EventKind::QueryDegraded {
                failed_shards: failures.len() as u32,
                attempted: attempted as u32,
            });
            if failures
                .iter()
                .any(|e| matches!(e.kind, ShardErrorKind::DeadlineExceeded))
            {
                reg.counter(CounterId::DeadlinesExceeded).inc();
            }
            if failures
                .iter()
                .any(|e| matches!(e.kind, ShardErrorKind::Cancelled))
            {
                reg.counter(CounterId::QueriesCancelled).inc();
            }
        }

        // --- Merge: one global top-k over every contributed item. ---------
        let t_merge = if t_query != 0 { obs::now_ns() } else { 0 };
        let mut merged: Vec<SearchItem> = outcomes
            .iter()
            .flatten()
            .flat_map(|o| o.items.iter().copied())
            .collect();
        merged.sort_by(|a, b| b.ip.total_cmp(&a.ip).then(a.id.cmp(&b.id)));
        merged.truncate(k);

        let verified = outcomes.iter().flatten().map(|o| o.verified).sum();
        let screened = outcomes.iter().flatten().map(|o| o.screened).sum();
        let per_shard = (0..ns)
            .map(|si| ShardQueryStats {
                shard: si as u32,
                points: snaps[si].stored() as u64,
                pruned: pruned[si],
                failed: failed[si],
                exact: snaps[si].gen.is_exact(),
                verified: outcomes[si].as_ref().map_or(0, |o| o.verified),
                screened: outcomes[si].as_ref().map_or(0, |o| o.screened),
                returned: outcomes[si].as_ref().map_or(0, |o| o.items.len()),
                delta_len: snaps[si].inserts.len(),
                tombstones: snaps[si].tombstones.len(),
                wal_bytes: self.wal_bytes(si),
            })
            .collect();
        // The merge span covers the top-k merge *and* result assembly, so
        // a sequential trace's stages sum to (nearly) the wall clock.
        let merge_ns = if t_merge != 0 {
            obs::now_ns().saturating_sub(t_merge)
        } else {
            0
        };

        // Aggregate accounting. The per-shard layer owns the query-level
        // metrics; the core layer booked the in-shard stage histograms and
        // row counters while the shards ran.
        let reg = obs::global();
        reg.counter(CounterId::Queries).inc();
        let searched = outcomes.iter().flatten().count() as u64;
        reg.counter(CounterId::ShardsSearched).add(searched);
        reg.counter(CounterId::ShardsPruned)
            .add(pruned.iter().filter(|&&p| p).count() as u64);
        if timing {
            reg.histogram(HistoId::QueryLatencyNs)
                .record(obs::now_ns().saturating_sub(t_query));
            reg.histogram(HistoId::StageMergeNs).record(merge_ns);
            for o in outcomes.iter().flatten() {
                reg.histogram(HistoId::ShardSearchNs).record(o.elapsed_ns);
            }
        }
        let budget_remaining_ns = budget.and_then(|b| b.remaining_ns());
        if let Some(rem) = budget_remaining_ns {
            reg.histogram(HistoId::BudgetRemainingNs).record(rem);
        }
        if let Some(trace) = trace {
            trace.merge_ns = merge_ns;
            trace.degraded = degraded;
            trace.budget_remaining_ns = budget_remaining_ns;
            trace.shards = (0..ns)
                .map(|si| {
                    let mut span = ShardSpan {
                        shard: si,
                        pruned: pruned[si],
                        failed: failed[si],
                        seed: seed_shard == Some(si),
                        ..ShardSpan::default()
                    };
                    if let Some(o) = &outcomes[si] {
                        span.elapsed_ns = o.elapsed_ns;
                        span.stages = o.stages;
                        span.scanned = o.scanned;
                        span.screened = o.screened as u64;
                        span.verified = o.verified as u64;
                    }
                    span
                })
                .collect();
            trace.total_ns = obs::now_ns().saturating_sub(trace.started_at_ns);
        }

        Ok(ShardedSearchResult {
            items: merged,
            verified,
            screened,
            per_shard,
            degraded,
        })
    }
}

/// Searches one shard snapshot with the given floor, mapping item ids to
/// global ids. The committed generation is searched under the snapshot's
/// tombstone mask; the delta overlay is verified exhaustively on top.
///
/// A budget rides down into the indexed generation's scan/verify loops
/// (checked per page block and verification group there); the exact-scan
/// and delta-overlay loops here check it every [`EXACT_TICK_ROWS`] rows.
///
/// Observability: an indexed generation's stage breakdown comes from the
/// core search's span; exact-scan and delta-overlay scoring book to
/// `verify_ns` here (the core layer never sees those rows, so this layer
/// also tops up the verified-row counter for them).
fn search_snapshot(
    snap: &ShardSnapshot,
    q: &[f32],
    k: usize,
    floor: f64,
    scratch: &mut SearchScratch,
    budget: Option<&QueryBudget>,
) -> io::Result<ShardOutcome> {
    let t0 = obs::clock_start();
    let mut checker = BudgetChecker::new(budget);
    let mut stages = StageNanos::default();
    let mut scanned = 0u64;
    let dead = &snap.tombstones;
    let gen_ids = &snap.gen.ids;
    let (mut items, mut verified, screened) = match &snap.gen.kind {
        GenKind::Indexed(pm) => {
            let mask = |local: u64| dead.contains(&gen_ids[local as usize]);
            let mut span = ShardSpan::default();
            let res = pm.search_masked_budgeted(
                q,
                k,
                floor,
                &mask,
                snap.dead_base,
                scratch,
                Some(&mut span),
                budget,
            )?;
            stages = span.stages;
            scanned = span.scanned;
            let items: Vec<SearchItem> = res
                .items
                .iter()
                .map(|it| SearchItem {
                    id: gen_ids[it.id as usize],
                    ip: it.ip,
                })
                .collect();
            (items, res.verified, res.screened)
        }
        GenKind::Exact(rows) => {
            let tv = obs::clock_start();
            let mut items: Vec<SearchItem> = Vec::with_capacity(rows.rows());
            let mut verified = 0usize;
            let n = rows.rows();
            let mut lo = 0usize;
            while lo < n {
                checker.tick()?;
                let hi = (lo + EXACT_TICK_ROWS).min(n);
                rows.dot_rows(lo, hi, q, |i, ip| {
                    if !dead.contains(&gen_ids[i]) {
                        verified += 1;
                        if ip >= floor {
                            items.push(SearchItem { id: gen_ids[i], ip });
                        }
                    }
                });
                lo = hi;
            }
            stages.verify_ns += obs::elapsed_since(tv);
            (items, verified, 0)
        }
    };
    let base_verified = verified;
    // Delta overlay: every live appended row is verified exhaustively
    // (this is the drag compaction removes — see the bench's
    // query_vs_delta section).
    let tv = obs::clock_start();
    for (i, e) in snap.inserts.iter().enumerate() {
        if i % EXACT_TICK_ROWS == 0 {
            checker.tick()?;
        }
        if dead.contains(&e.gid) {
            continue;
        }
        let ip = dot(q, &e.row);
        verified += 1;
        if ip >= floor {
            items.push(SearchItem { id: e.gid, ip });
        }
    }
    items.sort_by(|a, b| b.ip.total_cmp(&a.ip).then(a.id.cmp(&b.id)));
    items.truncate(k);
    stages.verify_ns += obs::elapsed_since(tv);
    // Rows the core layer didn't see: exact-scan rows plus the delta
    // overlay (for an indexed generation, `base_verified` was already
    // booked by the core search).
    let extra = match &snap.gen.kind {
        GenKind::Indexed(_) => verified - base_verified,
        GenKind::Exact(_) => verified,
    };
    if extra > 0 {
        obs::global()
            .counter(CounterId::QueryVerified)
            .add(extra as u64);
    }
    Ok(ShardOutcome {
        items,
        verified,
        screened,
        scanned,
        stages,
        elapsed_ns: obs::elapsed_since(t0),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ShardedConfig;
    use promips_linalg::Matrix;
    use promips_stats::Xoshiro256pp;

    fn tiny_index(max_in_flight: usize) -> ShardedProMips {
        let mut rng = Xoshiro256pp::seed_from_u64(5);
        let data = Matrix::from_rows(
            8,
            (0..64).map(|_| (0..8).map(|_| rng.normal() as f32).collect::<Vec<f32>>()),
        );
        ShardedProMips::build_in_memory(
            &data,
            ShardedConfig::builder()
                .shards(2)
                .max_in_flight(max_in_flight)
                .build(),
        )
        .unwrap()
    }

    #[test]
    fn admission_sheds_at_the_limit_and_recovers() {
        let idx = tiny_index(2);
        let a = idx.admit().unwrap();
        let b = idx.admit().unwrap();
        match idx.admit() {
            Err(QueryError::Overloaded { in_flight, limit }) => {
                assert_eq!(in_flight, 2);
                assert_eq!(limit, 2);
            }
            Ok(_) => panic!("expected Overloaded, got an admission"),
            Err(other) => panic!("expected Overloaded, got {other:?}"),
        }
        // A shed attempt must not leak a slot: the gauge still reads 2.
        assert_eq!(idx.in_flight.load(Ordering::Acquire), 2);
        drop(a);
        let c = idx.admit().expect("slot freed by drop");
        drop(b);
        drop(c);
        assert_eq!(idx.in_flight.load(Ordering::Acquire), 0);
    }

    #[test]
    fn search_succeeds_while_permits_are_held_below_the_limit() {
        let idx = tiny_index(2);
        let _held = idx.admit().unwrap();
        let q: Vec<f32> = (0..8).map(|i| (i as f32).sin()).collect();
        let res = idx.search(&q, 3).unwrap();
        assert_eq!(res.items.len(), 3);
        // And at the limit the search itself is shed with a typed error.
        let _held2 = idx.admit().unwrap();
        let scratch = ShardedScratch::for_index(&idx);
        let err = idx
            .search_budgeted(&q, 3, &scratch, &QueryBudget::unlimited())
            .unwrap_err();
        assert!(matches!(err, QueryError::Overloaded { .. }));
        // The io::Result entry points surface the shed as WouldBlock.
        let ioerr = idx.search(&q, 3).unwrap_err();
        assert_eq!(ioerr.kind(), io::ErrorKind::WouldBlock);
    }

    #[test]
    fn unlimited_admission_never_sheds() {
        let idx = tiny_index(0);
        let permits: Vec<_> = (0..64).map(|_| idx.admit().unwrap()).collect();
        drop(permits);
        assert_eq!(idx.in_flight.load(Ordering::Acquire), 0);
    }
}
