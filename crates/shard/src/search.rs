//! Parallel fan-out search with norm-bound shard pruning.
//!
//! A query runs in two deterministic phases:
//!
//! 1. **Seed probe.** The shard with the largest norm bound (under
//!    norm-range partitioning, the high-norm shard — where the MIPS winner
//!    statistically lives) is searched first. Its k-th best inner product
//!    becomes the global *floor*.
//! 2. **Pruned fan-out.** Every other shard whose Cauchy–Schwarz bound
//!    `‖q‖₂ · max_norm(shard)` falls strictly below the floor is pruned —
//!    no point it holds can enter the global top-k. Surviving shards are
//!    searched concurrently under `std::thread::scope`, each with its own
//!    [`SearchScratch`].
//!
//! Pruning is exact, never approximate: a pruned shard's best possible
//! inner product is beaten by k already-verified points, so the merged
//! top-k is identical with pruning on or off. With
//! [`crate::ShardedConfig::cross_shard_floor`] enabled, the floor is
//! additionally passed down to
//! [`promips_core::ProMips::search_with_floor`], letting each surviving
//! shard stop verifying as soon as it cannot improve the global result —
//! a latency/recall trade that is therefore **off by default**.
//!
//! The floor is fixed after phase 1 (workers never race to update it), so
//! results are **deterministic**: the same query against the same index
//! returns the same items, ranks, and per-shard counts regardless of thread
//! count or scheduling.

use std::io;
use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::Mutex;
use promips_core::{SearchItem, SearchScratch};
use promips_linalg::sq_norm2;

use crate::index::{ShardKind, ShardedProMips};
use crate::result::{ShardQueryStats, ShardedSearchResult};

/// Reusable per-shard search buffers: one [`SearchScratch`] per shard,
/// individually locked so fan-out workers (at most one per shard) take
/// them without contention. Buffers grow to each shard's high-water mark
/// and are reused across queries.
pub struct ShardedScratch {
    per_shard: Vec<Mutex<SearchScratch>>,
}

impl ShardedScratch {
    /// A fresh scratch set for `shards` shards.
    pub fn new(shards: usize) -> Self {
        Self {
            per_shard: (0..shards)
                .map(|_| Mutex::new(SearchScratch::new()))
                .collect(),
        }
    }

    /// A scratch set sized for `index`.
    pub fn for_index(index: &ShardedProMips) -> Self {
        Self::new(index.shard_count())
    }
}

/// What one searched shard contributed.
struct ShardOutcome {
    /// Shard items mapped to **global** ids, best first.
    items: Vec<SearchItem>,
    verified: usize,
}

impl ShardedProMips {
    /// c-k-AMIP search across all shards (allocates a fresh scratch set;
    /// high-throughput callers should hold a [`ShardedScratch`] and use
    /// [`ShardedProMips::search_with_scratch`]).
    pub fn search(&self, q: &[f32], k: usize) -> io::Result<ShardedSearchResult> {
        self.search_with_scratch(q, k, &mut ShardedScratch::for_index(self))
    }

    /// [`ShardedProMips::search`] with caller-provided per-shard scratch
    /// buffers, fanning out over all available cores.
    pub fn search_with_scratch(
        &self,
        q: &[f32],
        k: usize,
        scratch: &mut ShardedScratch,
    ) -> io::Result<ShardedSearchResult> {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        self.search_threaded(q, k, threads, scratch)
    }

    /// [`ShardedProMips::search_with_scratch`] with an explicit worker
    /// count for the fan-out phase. Results are identical for every thread
    /// count (see the module docs on determinism).
    pub fn search_threaded(
        &self,
        q: &[f32],
        k: usize,
        threads: usize,
        scratch: &mut ShardedScratch,
    ) -> io::Result<ShardedSearchResult> {
        assert_eq!(q.len(), self.d, "query dimensionality mismatch");
        assert!(k >= 1, "k must be at least 1");
        assert_eq!(
            scratch.per_shard.len(),
            self.shards.len(),
            "scratch sized for {} shards, index has {}",
            scratch.per_shard.len(),
            self.shards.len()
        );
        let ns = self.shards.len();
        let q_norm = sq_norm2(q).sqrt();
        let mut outcomes: Vec<Option<ShardOutcome>> = (0..ns).map(|_| None).collect();
        let mut pruned = vec![false; ns];

        // --- Phase 1: seed probe of the highest-norm-bound shard. ---------
        let mut kth_floor = f64::NEG_INFINITY;
        let mut fan_out: Vec<usize> = Vec::with_capacity(ns);
        if self.config.prune && ns > 1 {
            let seed = self
                .shards
                .iter()
                .enumerate()
                .max_by(|(ia, a), (ib, b)| a.max_norm.total_cmp(&b.max_norm).then(ib.cmp(ia)))
                .map(|(i, _)| i)
                .expect("at least one shard");
            let outcome = self.search_shard(
                seed,
                q,
                k,
                f64::NEG_INFINITY,
                &mut scratch.per_shard[seed].lock(),
            )?;
            if outcome.items.len() >= k {
                kth_floor = outcome.items[k - 1].ip;
            }
            outcomes[seed] = Some(outcome);
            for (si, shard) in self.shards.iter().enumerate() {
                if si == seed {
                    continue;
                }
                if q_norm * shard.max_norm < kth_floor {
                    pruned[si] = true; // cannot beat k verified points
                } else {
                    fan_out.push(si);
                }
            }
        } else {
            fan_out.extend(0..ns);
        }
        // Exact by construction: shard pruning only drops points strictly
        // below k verified inner products. The in-shard floor is the
        // opt-in approximate accelerator (see the module docs).
        let floor = if self.config.cross_shard_floor {
            kth_floor
        } else {
            f64::NEG_INFINITY
        };

        // --- Phase 2: parallel fan-out over surviving shards. -------------
        let threads = threads.clamp(1, fan_out.len().max(1));
        if threads == 1 {
            for &si in &fan_out {
                let outcome =
                    self.search_shard(si, q, k, floor, &mut scratch.per_shard[si].lock())?;
                outcomes[si] = Some(outcome);
            }
        } else {
            let next = AtomicUsize::new(0);
            let fan_out_ref = &fan_out;
            let per_shard = &scratch.per_shard;
            let collected = std::thread::scope(|s| -> io::Result<Vec<(usize, ShardOutcome)>> {
                let workers: Vec<_> = (0..threads)
                    .map(|_| {
                        s.spawn(|| {
                            let mut local: Vec<(usize, io::Result<ShardOutcome>)> = Vec::new();
                            loop {
                                let i = next.fetch_add(1, Ordering::Relaxed);
                                if i >= fan_out_ref.len() {
                                    break;
                                }
                                let si = fan_out_ref[i];
                                let res =
                                    self.search_shard(si, q, k, floor, &mut per_shard[si].lock());
                                local.push((si, res));
                            }
                            local
                        })
                    })
                    .collect();
                let mut out = Vec::with_capacity(fan_out_ref.len());
                for w in workers {
                    for (si, res) in w.join().expect("shard fan-out worker panicked") {
                        out.push((si, res?));
                    }
                }
                Ok(out)
            })?;
            for (si, outcome) in collected {
                outcomes[si] = Some(outcome);
            }
        }

        // --- Merge: one global top-k over every contributed item. ---------
        let mut merged: Vec<SearchItem> = outcomes
            .iter()
            .flatten()
            .flat_map(|o| o.items.iter().copied())
            .collect();
        merged.sort_by(|a, b| b.ip.total_cmp(&a.ip).then(a.id.cmp(&b.id)));
        merged.truncate(k);

        let verified = outcomes.iter().flatten().map(|o| o.verified).sum();
        let per_shard = (0..ns)
            .map(|si| ShardQueryStats {
                shard: si as u32,
                points: self.shards[si].len(),
                pruned: pruned[si],
                exact: self.shards[si].is_exact(),
                verified: outcomes[si].as_ref().map_or(0, |o| o.verified),
                returned: outcomes[si].as_ref().map_or(0, |o| o.items.len()),
                delta_len: self.shards[si].delta_len(),
                tombstones: self.shards[si].tombstone_count(),
                wal_bytes: self.wal_bytes(si),
            })
            .collect();

        Ok(ShardedSearchResult {
            items: merged,
            verified,
            per_shard,
        })
    }

    /// Searches one shard with the given floor, mapping item ids to global
    /// ids. Indexed shards ride
    /// [`promips_core::ProMips::search_with_floor`]; exact shards run a
    /// blocked scan over their rows.
    fn search_shard(
        &self,
        si: usize,
        q: &[f32],
        k: usize,
        floor: f64,
        scratch: &mut SearchScratch,
    ) -> io::Result<ShardOutcome> {
        let shard = &self.shards[si];
        match &shard.kind {
            ShardKind::Indexed(pm) => {
                let res = pm.search_with_floor(q, k, floor, scratch)?;
                Ok(ShardOutcome {
                    items: res
                        .items
                        .iter()
                        .map(|it| SearchItem {
                            id: shard.ids[it.id as usize],
                            ip: it.ip,
                        })
                        .collect(),
                    verified: res.verified,
                })
            }
            ShardKind::Exact(ex) => Ok(ShardOutcome {
                items: exact_topk(&ex.rows, &ex.deleted, &shard.ids, q, k, floor),
                verified: ex.rows.rows() - ex.n_deleted,
            }),
        }
    }
}

/// Blocked exact top-k over a small shard: every live row is scored
/// through the shared `dot4`-blocked kernel
/// ([`promips_linalg::Matrix::dot_rows`]) — delta inserts are ordinary
/// appended rows, tombstoned rows are skipped — items below the floor are
/// dropped, and ties break by global id, the same total order the merge
/// and the indexed shards use.
fn exact_topk(
    rows: &promips_linalg::Matrix,
    deleted: &[bool],
    ids: &[u64],
    q: &[f32],
    k: usize,
    floor: f64,
) -> Vec<SearchItem> {
    let mut items: Vec<SearchItem> = Vec::with_capacity(rows.rows());
    rows.dot_rows(0, rows.rows(), q, |i, ip| {
        if !deleted[i] && ip >= floor {
            items.push(SearchItem { id: ids[i], ip });
        }
    });
    items.sort_by(|a, b| b.ip.total_cmp(&a.ip).then(a.id.cmp(&b.id)));
    items.truncate(k);
    items
}
