//! # Sharded ProMIPS
//!
//! A horizontal scaling layer over [`promips_core::ProMips`]: the dataset
//! is partitioned into `N` shards, each owning its **own storage file,
//! pager, and ProMIPS/iDistance index**, and queries fan out across shards
//! in parallel. The single-index code path is reused per shard, untouched.
//!
//! Two pieces of related work shape the design:
//!
//! * **Norm-Range Partition** (Yan et al., NeurIPS 2018, arXiv:1810.09104)
//!   — partitioning a MIPS dataset by vector norm concentrates likely
//!   winners in the high-norm shards and hands every shard a Cauchy–Schwarz
//!   inner-product bound `‖q‖₂ · max_norm(shard)`. The fan-out search
//!   probes the highest-norm shard first, then **prunes** every shard whose
//!   bound cannot beat the k-th inner product already verified — an exact
//!   optimization that never changes the returned top-k.
//! * **"To Index or Not to Index"** (Abuzaid et al., arXiv:1706.01449) —
//!   below a size threshold a blocked exact scan beats any index, so small
//!   (or empty) shards skip index construction entirely and answer queries
//!   with a `dot4`-blocked scan.
//!
//! ```
//! use promips_shard::{ShardedConfig, ShardedProMips};
//! use promips_linalg::Matrix;
//!
//! let mut rng = promips_stats::Xoshiro256pp::seed_from_u64(1);
//! let data = Matrix::from_rows(
//!     16,
//!     (0..1200).map(|_| (0..16).map(|_| rng.normal() as f32).collect::<Vec<f32>>()),
//! );
//! let config = ShardedConfig::builder().shards(4).build();
//! let index = ShardedProMips::build_in_memory(&data, config).unwrap();
//!
//! let q: Vec<f32> = (0..16).map(|_| rng.normal() as f32).collect();
//! let res = index.search(&q, 10).unwrap();
//! assert_eq!(res.items.len(), 10);
//! assert_eq!(res.per_shard.len(), 4);
//! ```
//!
//! A one-shard [`ShardedProMips`] returns **bit-identical** results to the
//! unsharded [`promips_core::ProMips`] built from the same
//! [`promips_core::ProMipsConfig`] — the compatibility contract the tests
//! pin down.

pub mod compaction;
pub mod config;
pub mod error;
pub mod index;
pub mod mutation;
pub mod partition;
pub mod persist;
pub mod result;
pub mod search;

pub use compaction::{CompactionPolicy, CompactionReport, Compactor};
pub use config::{ShardedConfig, ShardedConfigBuilder};
pub use error::{DegradationPolicy, QueryError, ShardError, ShardErrorKind};
pub use index::{Shard, ShardedProMips};
// Budgets are built by callers and handed to `search_budgeted`; re-export
// them so callers don't need a direct `promips_obs` dependency.
pub use promips_obs::{CancelToken, QueryBudget};
// Mutations report typed refusals; re-export the error so callers don't
// need a direct `promips_core` dependency to match on it.
pub use partition::{HashPartitioner, NormRangePartitioner, PartitionStrategy, Partitioner};
pub use promips_core::MutationError;
pub use result::{CompactionOutcome, ShardMaintenance, ShardQueryStats, ShardedSearchResult};
pub use search::ShardedScratch;
// The WAL group-commit knob appears in `ShardedConfig`; re-export it so
// callers don't need a direct `promips_wal` dependency.
pub use promips_wal::SyncPolicy;

#[cfg(test)]
mod tests {
    use super::*;
    use promips_core::{ProMips, ProMipsConfig};
    use promips_linalg::Matrix;
    use promips_stats::Xoshiro256pp;

    fn random_data(n: usize, d: usize, seed: u64) -> Matrix {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        Matrix::from_rows(
            d,
            (0..n).map(|_| (0..d).map(|_| rng.normal() as f32).collect::<Vec<f32>>()),
        )
    }

    fn random_queries(nq: usize, d: usize, seed: u64) -> Vec<Vec<f32>> {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        (0..nq)
            .map(|_| (0..d).map(|_| rng.normal() as f32).collect())
            .collect()
    }

    /// Exact top-k ids via the canonical ground-truth scanner (ties by
    /// smaller id, same total order the shard merge uses).
    fn exact_ids(data: &Matrix, q: &[f32], k: usize) -> Vec<u64> {
        promips_data::exact_topk(data, q, k)
            .into_iter()
            .map(|(id, _)| id)
            .collect()
    }

    fn recall(got: &[u64], truth: &[u64]) -> f64 {
        let hits = got.iter().filter(|id| truth.contains(id)).count();
        hits as f64 / truth.len() as f64
    }

    #[test]
    fn one_shard_matches_unsharded_bit_for_bit() {
        let data = random_data(900, 24, 11);
        let base = ProMipsConfig::builder().c(0.9).p(0.5).seed(42).build();
        let unsharded = ProMips::build_in_memory(&data, base.clone()).unwrap();
        let sharded = ShardedProMips::build_in_memory(
            &data,
            ShardedConfig::builder()
                .shards(1)
                .exact_threshold(0)
                .base(base)
                .build(),
        )
        .unwrap();
        assert_eq!(sharded.shard_count(), 1);
        assert!(!sharded.shards()[0].is_exact());

        for q in random_queries(12, 24, 7) {
            let a = unsharded.search(&q, 10).unwrap();
            let b = sharded.search(&q, 10).unwrap();
            assert_eq!(a.items, b.items, "one-shard results must be identical");
            assert_eq!(a.verified, b.verified);
            assert_eq!(a.screened, b.screened);
        }
    }

    #[test]
    fn pruning_never_changes_the_result() {
        // The skewed workload (log-uniform norms over ~3 decades, the
        // regime real MIPS embedding tables live in) is where the
        // Cauchy–Schwarz bound has teeth; i.i.d. Gaussian rows concentrate
        // all norms near `√d` and never prune.
        for (data, label) in [
            (random_data(1500, 20, 3), "gaussian"),
            (promips_data::gen::norm_skewed(1500, 20, 3), "skewed"),
        ] {
            let mk = |prune: bool| {
                ShardedProMips::build_in_memory(
                    &data,
                    ShardedConfig::builder()
                        .shards(6)
                        .prune(prune)
                        .base(ProMipsConfig::builder().seed(9).build())
                        .build(),
                )
                .unwrap()
            };
            let pruned = mk(true);
            let full = mk(false);
            let mut any_pruned = 0usize;
            for q in random_queries(15, 20, 31) {
                let a = pruned.search(&q, 8).unwrap();
                let b = full.search(&q, 8).unwrap();
                assert_eq!(a.items, b.items, "pruning must be exact ({label})");
                any_pruned += a.shards_pruned();
            }
            if label == "skewed" {
                // Under realistic norm skew the bound must actually fire,
                // or the pruning path is dead code.
                assert!(any_pruned > 0, "no shard was ever pruned on {label}");
            }
        }
    }

    #[test]
    fn cross_shard_floor_verifies_no_more_and_stays_deterministic() {
        let data = random_data(1600, 20, 119);
        let mk = |floor: bool| {
            ShardedProMips::build_in_memory(
                &data,
                ShardedConfig::builder()
                    .shards(5)
                    .cross_shard_floor(floor)
                    .base(ProMipsConfig::builder().seed(6).build())
                    .build(),
            )
            .unwrap()
        };
        let exact_mode = mk(false);
        let floor_mode = mk(true);
        let scratch = ShardedScratch::for_index(&floor_mode);
        for q in random_queries(10, 20, 121) {
            let a = exact_mode.search(&q, 8).unwrap();
            let b = floor_mode.search(&q, 8).unwrap();
            // The floor only ever *reduces* verification work, and every
            // item it keeps already beat the seed shard's k-th product.
            assert!(b.verified <= a.verified, "{} > {}", b.verified, a.verified);
            assert!(!b.items.is_empty());
            assert!(b.items.windows(2).all(|w| w[0].ip >= w[1].ip));
            // Deterministic across thread counts, like the exact mode.
            let c1 = floor_mode.search_threaded(&q, 8, 1, &scratch).unwrap();
            let c4 = floor_mode.search_threaded(&q, 8, 4, &scratch).unwrap();
            assert_eq!(c1.items, c4.items);
            assert_eq!(c1.items, b.items);
        }
    }

    #[test]
    fn results_are_thread_count_invariant() {
        let data = random_data(1200, 16, 5);
        let idx = ShardedProMips::build_in_memory(
            &data,
            ShardedConfig::builder()
                .shards(5)
                .base(ProMipsConfig::builder().seed(2).build())
                .build(),
        )
        .unwrap();
        let scratch = ShardedScratch::for_index(&idx);
        for q in random_queries(8, 16, 17) {
            let base = idx.search_threaded(&q, 7, 1, &scratch).unwrap();
            for threads in [2usize, 4, 16] {
                let other = idx.search_threaded(&q, 7, threads, &scratch).unwrap();
                assert_eq!(base.items, other.items, "threads={threads}");
                assert_eq!(base.verified, other.verified, "threads={threads}");
                for (a, b) in base.per_shard.iter().zip(&other.per_shard) {
                    assert_eq!(a, b, "threads={threads}");
                }
            }
        }
    }

    #[test]
    fn scratch_reuse_is_transparent() {
        let data = random_data(800, 12, 23);
        let idx =
            ShardedProMips::build_in_memory(&data, ShardedConfig::builder().shards(3).build())
                .unwrap();
        let shared = ShardedScratch::for_index(&idx);
        for q in random_queries(10, 12, 29) {
            let reused = idx.search_with_scratch(&q, 5, &shared).unwrap();
            let fresh = idx.search(&q, 5).unwrap();
            assert_eq!(reused.items, fresh.items);
            assert_eq!(reused.verified, fresh.verified);
        }
    }

    #[test]
    fn small_shards_fall_back_to_exact_scan() {
        let data = random_data(300, 10, 41);
        // Threshold larger than any shard: every shard is scan-backed.
        let idx = ShardedProMips::build_in_memory(
            &data,
            ShardedConfig::builder()
                .shards(4)
                .exact_threshold(1_000)
                .build(),
        )
        .unwrap();
        assert!(idx.shards().iter().all(|s| s.is_exact()));
        // All-exact sharding is a distributed exact scan: recall 1.0.
        for q in random_queries(10, 10, 43) {
            let res = idx.search(&q, 9).unwrap();
            assert_eq!(res.ids(), exact_ids(&data, &q, 9));
        }
    }

    #[test]
    fn mixed_exact_and_indexed_shards_cover_all_points() {
        // Hash partitioning + a threshold between the smallest and largest
        // shard sizes would need a skewed partitioner; instead force the
        // mix by thresholding between the (equal-count) norm-range shard
        // size and the full dataset.
        let data = random_data(700, 14, 51);
        let idx = ShardedProMips::build_in_memory(
            &data,
            ShardedConfig::builder()
                .shards(7)
                .exact_threshold(0) // all indexed
                .build(),
        )
        .unwrap();
        assert!(idx.shards().iter().all(|s| !s.is_exact()));
        assert_eq!(idx.shard_points().iter().sum::<u64>(), 700);
        // Every global id appears exactly once across shard id maps.
        let mut seen: Vec<u64> = idx.shards().iter().flat_map(|s| s.global_ids()).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..700u64).collect::<Vec<_>>());
    }

    #[test]
    fn norm_range_sharding_loses_no_recall_vs_unsharded() {
        // The acceptance experiment: same base config (equal per-shard
        // candidate budget rules), recall measured against brute force for
        // the sharded (norm-range, pruning on) and unsharded paths.
        let data = random_data(2000, 24, 61);
        let base = ProMipsConfig::builder().c(0.9).p(0.5).seed(13).build();
        let unsharded = ProMips::build_in_memory(&data, base.clone()).unwrap();
        let sharded = ShardedProMips::build_in_memory(
            &data,
            ShardedConfig::builder().shards(4).base(base).build(),
        )
        .unwrap();

        let queries = random_queries(25, 24, 67);
        let k = 10;
        let mut r_unsharded = 0.0;
        let mut r_sharded = 0.0;
        for q in &queries {
            let truth = exact_ids(&data, q, k);
            r_unsharded += recall(&unsharded.search(q, k).unwrap().ids(), &truth);
            r_sharded += recall(&sharded.search(q, k).unwrap().ids(), &truth);
        }
        r_unsharded /= queries.len() as f64;
        r_sharded /= queries.len() as f64;
        // Sharding must not cost recall (smaller per-shard indexes are
        // searched at least as accurately; pruning is exact). Allow a hair
        // of cross-platform rounding slack.
        assert!(
            r_sharded >= r_unsharded - 0.02,
            "sharded recall {r_sharded:.3} < unsharded {r_unsharded:.3}"
        );
    }

    #[test]
    fn k_larger_than_dataset_is_clamped() {
        let data = random_data(40, 8, 71);
        let idx =
            ShardedProMips::build_in_memory(&data, ShardedConfig::builder().shards(3).build())
                .unwrap();
        let q = vec![0.3f32; 8];
        let res = idx.search(&q, 100).unwrap();
        assert_eq!(res.items.len(), 40);
        let mut ids = res.ids();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 40, "duplicate or missing global ids");
    }

    #[test]
    fn more_shards_than_points_leaves_empties_searchable() {
        let data = random_data(5, 6, 81);
        let idx =
            ShardedProMips::build_in_memory(&data, ShardedConfig::builder().shards(8).build())
                .unwrap();
        assert_eq!(idx.shard_count(), 8);
        assert_eq!(idx.shard_points().iter().sum::<u64>(), 5);
        let q = vec![1.0f32; 6];
        let res = idx.search(&q, 3).unwrap();
        assert_eq!(res.ids(), exact_ids(&data, &q, 3));
    }

    #[test]
    fn per_shard_stats_account_for_every_shard() {
        let data = random_data(1000, 16, 91);
        let idx =
            ShardedProMips::build_in_memory(&data, ShardedConfig::builder().shards(4).build())
                .unwrap();
        let q = random_queries(1, 16, 97).pop().unwrap();
        let res = idx.search(&q, 10).unwrap();
        assert_eq!(res.per_shard.len(), 4);
        assert_eq!(res.per_shard.iter().map(|s| s.points).sum::<u64>(), 1000u64);
        assert_eq!(
            res.verified,
            res.per_shard.iter().map(|s| s.verified).sum::<usize>()
        );
        // A pruned shard verifies nothing.
        for s in &res.per_shard {
            if s.pruned {
                assert_eq!(s.verified, 0);
                assert_eq!(s.returned, 0);
            }
        }
    }

    #[test]
    fn hash_partitioner_works_end_to_end() {
        let data = random_data(900, 12, 101);
        let idx = ShardedProMips::build_in_memory(
            &data,
            ShardedConfig::builder()
                .shards(4)
                .strategy(PartitionStrategy::Hash)
                .build(),
        )
        .unwrap();
        assert_eq!(idx.partitioner_name(), "hash");
        for q in random_queries(6, 12, 103) {
            let res = idx.search(&q, 8).unwrap();
            assert_eq!(res.items.len(), 8);
            assert!(res.items.windows(2).all(|w| w[0].ip >= w[1].ip));
        }
    }
}
