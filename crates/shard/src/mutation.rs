//! The durable mutation path: inserts and deletes that route through the
//! partitioner, hit the owning shard's write-ahead log **before** touching
//! memory, and are visible to the very next query — all through `&self`,
//! so readers keep running while writers commit.
//!
//! Ordering contract (what makes the log *write-ahead*): a mutation is
//! appended to the shard's WAL first — honouring the group-commit policy
//! ([`crate::ShardedConfig::wal_sync`]) — and applied to the in-memory
//! overlay only afterwards. A crash between the two replays the record on
//! reopen; a crash before the append loses a mutation that was never
//! acknowledged. In-memory indexes (no directory) skip the log and take
//! mutations volatilely — same semantics, no durability.
//!
//! Concurrency protocol per mutation:
//!
//! 1. take the global `mut_order` mutex, assign/locate the global id, and
//!    route to the owning shard;
//! 2. acquire that shard's WAL mutex, **then** release `mut_order` — so
//!    per-shard WAL byte order always equals global-id order, without
//!    serializing fsyncs across shards;
//! 3. append to the WAL (fsync per policy) while holding only the WAL
//!    mutex — readers are never blocked on storage;
//! 4. take the shard's delta **write** lock for the in-memory apply (a few
//!    pointer pushes), then release everything.
//!
//! Deletes re-validate liveness *after* acquiring the WAL mutex: the mutex
//! freezes the shard's mutation state, so the WAL never carries a record
//! that turned into a no-op between the check and the append.
//!
//! Soundness under inserts: the searching conditions (Theorems 1–2) and
//! the cross-shard Cauchy–Schwarz pruning both lean on per-shard norm
//! bounds. [`crate::ShardedProMips::insert`] raises the shard's live bound
//! in place whenever an insert exceeds it, so the fan-out's seed-probe
//! ordering and pruning tests keep seeing a true upper bound. Deletes
//! leave the bound conservative (a bound referencing a tombstoned point
//! only enlarges searched ranges).

use std::io;
use std::sync::atomic::Ordering;
use std::sync::Arc;

use promips_core::MutationError;
use promips_linalg::sq_norm2;
use promips_obs::{CounterId, GaugeId, Registry};
use promips_wal::{Wal, WalConfig, WalRecord};

use crate::index::{DeltaInsert, Shard, ShardedProMips};
use crate::persist::wal_path;

impl ShardedProMips {
    /// Inserts a point, returning its global id. The point is routed to a
    /// shard by [`crate::Partitioner::route`] (norm-range placement under
    /// the default strategy), logged to that shard's WAL when the index is
    /// directory-backed, and entered into the shard's in-memory delta —
    /// searchable immediately, folded into the shard's index file at the
    /// next compaction. Concurrent readers are never blocked.
    pub fn insert(&self, point: &[f32]) -> Result<u64, MutationError> {
        self.insert_inner(point, true).map(|(gid, _)| gid)
    }

    /// Inserts a batch under **cross-shard group commit**: every record is
    /// appended to its shard's WAL with the fsync deferred, then each
    /// *touched* WAL is synced exactly once — a burst spanning `S` shards
    /// pays `S` fsyncs instead of one per point (under
    /// [`promips_wal::SyncPolicy::Always`], `points.len()` of them).
    /// Returns the assigned global ids, in order. The batch is durable
    /// when this returns; a crash mid-call can lose the (unacknowledged)
    /// tail, never a prefix of an earlier acknowledged call.
    pub fn insert_batch<'a, I>(&self, points: I) -> Result<Vec<u64>, MutationError>
    where
        I: IntoIterator<Item = &'a [f32]>,
    {
        let mut gids = Vec::new();
        let mut touched = vec![false; self.shards.len()];
        for point in points {
            let (gid, si) = self.insert_inner(point, false)?;
            gids.push(gid);
            touched[si] = true;
        }
        for (si, hit) in touched.iter().enumerate() {
            if *hit {
                if let Some(wal) = self.shards[si].wal.lock().as_mut() {
                    wal.sync()?;
                }
            }
        }
        Registry::global().counter(CounterId::InsertBatches).inc();
        Ok(gids)
    }

    fn insert_inner(&self, point: &[f32], sync_now: bool) -> Result<(u64, usize), MutationError> {
        assert_eq!(point.len(), self.d, "insert dimensionality mismatch");
        let order = self.mut_order.lock();
        let gid = self.next_global_id.fetch_add(1, Ordering::AcqRel);
        let si = self.route(point, gid);
        let shard = &self.shards[si];
        let mut wal = shard.wal.lock();
        drop(order); // WAL order for this shard is now fixed
        self.wal_append(
            si,
            &mut wal,
            &WalRecord::Insert {
                id: gid,
                vector: point.to_vec(),
            },
            sync_now,
        )?;
        let norm = sq_norm2(point).sqrt();
        {
            let mut delta = shard.delta.write();
            debug_assert!(
                delta.inserts.last().is_none_or(|e| e.gid < gid),
                "shard {si} delta would lose its ascending gid order"
            );
            delta.inserts.push(DeltaInsert {
                gid,
                row: Arc::from(point),
                norm,
            });
            if norm > delta.max_norm {
                delta.max_norm = norm;
            }
        }
        self.n_points.fetch_add(1, Ordering::AcqRel);
        let reg = Registry::global();
        reg.counter(CounterId::Inserts).inc();
        reg.gauge(GaugeId::DeltaRows).add(1);
        Ok((gid, si))
    }

    /// Deletes a point by global id. Typed refusals instead of a `bool`:
    /// [`MutationError::UnknownId`] for an id never assigned,
    /// [`MutationError::DeadId`] for one already tombstoned (or compacted
    /// away after deletion) — neither writes a log record, so the WAL
    /// never carries no-ops.
    pub fn delete(&self, gid: u64) -> Result<(), MutationError> {
        let order = self.mut_order.lock();
        let Some(si) = self.owning_shard(gid) else {
            drop(order);
            return Err(if gid >= self.next_global_id.load(Ordering::Acquire) {
                MutationError::UnknownId(gid)
            } else {
                // Assigned in the past but stored nowhere: it was deleted
                // and the tombstone has since been compacted away.
                MutationError::DeadId(gid)
            });
        };
        let shard = &self.shards[si];
        let mut wal = shard.wal.lock();
        drop(order);
        // Re-validate under the WAL mutex: the shard's mutation state is
        // frozen now, so this verdict holds through the append below.
        let in_gen = {
            let delta = shard.delta.read();
            if delta.tombstones.contains(&gid) {
                return Err(MutationError::DeadId(gid));
            }
            shard.generation.read().ids.binary_search(&gid).is_ok()
        };
        self.wal_append(si, &mut wal, &WalRecord::Delete { id: gid }, true)?;
        {
            let mut delta = shard.delta.write();
            Arc::make_mut(&mut delta.tombstones).insert(gid);
            if in_gen {
                delta.dead_base += 1;
            }
        }
        self.n_points.fetch_sub(1, Ordering::AcqRel);
        let reg = Registry::global();
        reg.counter(CounterId::Deletes).inc();
        reg.gauge(GaugeId::Tombstones).add(1);
        Ok(())
    }

    /// Whether a global id names a live point.
    pub fn contains(&self, gid: u64) -> bool {
        self.shards.iter().any(|s| {
            let delta = s.delta.read();
            if delta.tombstones.contains(&gid) {
                return false;
            }
            delta.inserts.binary_search_by_key(&gid, |e| e.gid).is_ok()
                || s.generation.read().ids.binary_search(&gid).is_ok()
        })
    }

    /// The shard storing `gid` (live or tombstoned), if any. Each shard's
    /// committed id map and delta are both ascending, so this is two
    /// binary searches per shard.
    pub(crate) fn owning_shard(&self, gid: u64) -> Option<usize> {
        self.shards.iter().position(|s| {
            let delta = s.delta.read();
            delta.inserts.binary_search_by_key(&gid, |e| e.gid).is_ok()
                || s.generation.read().ids.binary_search(&gid).is_ok()
        })
    }

    /// Routes a point via the configured partition strategy, against the
    /// shards' current (insert-raised) norm bounds.
    fn route(&self, point: &[f32], gid: u64) -> usize {
        let bounds: Vec<f64> = self
            .shards
            .iter()
            .map(|s| s.delta.read().max_norm)
            .collect();
        let si = self
            .config
            .strategy
            .partitioner()
            .route(point, gid, &bounds) as usize;
        assert!(
            si < self.shards.len(),
            "partitioner routed to shard {si} of {}",
            self.shards.len()
        );
        si
    }

    /// Appends a record to shard `si`'s WAL (no-op for in-memory indexes).
    /// The log file is created on the shard's first mutation. `sync_now =
    /// false` defers the fsync for group commit — the caller owns syncing
    /// before acknowledging.
    fn wal_append(
        &self,
        si: usize,
        slot: &mut Option<Wal>,
        rec: &WalRecord,
        sync_now: bool,
    ) -> io::Result<()> {
        let Some(dir) = &self.dir else {
            return Ok(());
        };
        if slot.is_none() {
            let wal = Wal::open_or_create_streaming(
                wal_path(dir, si),
                self.d,
                WalConfig {
                    sync: self.config.wal_sync,
                },
                |_rec| {
                    debug_assert!(
                        false,
                        "shard {si} WAL had unreplayed records outside open()"
                    );
                    Ok(())
                },
            )?;
            *slot = Some(wal);
        }
        slot.as_mut()
            .expect("just opened")
            .append_with_sync(rec, sync_now)
    }

    /// Replays one WAL record against shard `si` (used by
    /// [`crate::ShardedProMips::open`]; no concurrency at replay time, but
    /// the locked paths are reused so the invariants live in one place).
    ///
    /// Replay must be **idempotent against stale records**: a crash after
    /// a compaction's manifest swap but before its WAL rewrite leaves a
    /// log whose folded prefix is already in the live generation. A stale
    /// insert is recognised by its id being present somewhere
    /// (re-partitioning may have moved it to another shard) **or** by
    /// falling at or below the shard's current maximum id — global ids are
    /// assigned monotonically, so a genuinely unfolded insert is always
    /// larger than everything the shard holds, while a folded-then-deleted
    /// id (absent everywhere) is not. A stale delete finds no live point
    /// and no-ops on its own.
    pub(crate) fn apply_replayed(&self, si: usize, rec: WalRecord) -> io::Result<()> {
        match rec {
            WalRecord::Insert { id, vector } => {
                if vector.len() != self.d {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!(
                            "WAL record dimensionality {} != index {}",
                            vector.len(),
                            self.d
                        ),
                    ));
                }
                self.next_global_id.fetch_max(id + 1, Ordering::AcqRel);
                let shard = &self.shards[si];
                let stale = {
                    let delta = shard.delta.read();
                    let max_here = delta
                        .inserts
                        .last()
                        .map(|e| e.gid)
                        .or_else(|| shard.generation.read().ids.last().copied());
                    max_here.is_some_and(|m| m >= id) || self.owning_shard(id).is_some()
                };
                if !stale {
                    let norm = sq_norm2(&vector).sqrt();
                    let mut delta = shard.delta.write();
                    delta.inserts.push(DeltaInsert {
                        gid: id,
                        row: vector.into(),
                        norm,
                    });
                    if norm > delta.max_norm {
                        delta.max_norm = norm;
                    }
                    drop(delta);
                    self.n_points.fetch_add(1, Ordering::AcqRel);
                    // Replays re-grow the overlay, so the delta gauge must
                    // track them; the insert *counter* only counts fresh
                    // mutations (replays tick the WAL-replay counter).
                    Registry::global().gauge(GaugeId::DeltaRows).add(1);
                }
            }
            WalRecord::Delete { id } => {
                self.replay_delete(&self.shards[si], id);
            }
        }
        Ok(())
    }

    fn replay_delete(&self, shard: &Shard, gid: u64) {
        let in_gen = {
            let delta = shard.delta.read();
            if delta.tombstones.contains(&gid) {
                return; // already dead (torn-tail double delete)
            }
            let in_gen = shard.generation.read().ids.binary_search(&gid).is_ok();
            let in_delta = delta.inserts.binary_search_by_key(&gid, |e| e.gid).is_ok();
            if !in_gen && !in_delta {
                return; // stale: the point was folded away
            }
            in_gen
        };
        let mut delta = shard.delta.write();
        Arc::make_mut(&mut delta.tombstones).insert(gid);
        if in_gen {
            delta.dead_base += 1;
        }
        drop(delta);
        self.n_points.fetch_sub(1, Ordering::AcqRel);
        Registry::global().gauge(GaugeId::Tombstones).add(1);
    }

    /// Forces every shard's WAL to durable media regardless of the
    /// group-commit policy (e.g. before acknowledging a batch).
    pub fn sync_wal(&self) -> io::Result<()> {
        for shard in &self.shards {
            if let Some(wal) = shard.wal.lock().as_mut() {
                wal.sync()?;
            }
        }
        Ok(())
    }

    /// Total pending mutations (delta inserts + tombstones) across shards.
    pub fn pending_mutations(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                let delta = s.delta.read();
                delta.inserts.len() + delta.tombstones.len()
            })
            .sum()
    }
}
