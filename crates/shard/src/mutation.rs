//! The durable mutation path: inserts and deletes that route through the
//! partitioner, hit the owning shard's write-ahead log **before** touching
//! memory, and are visible to the very next query.
//!
//! Ordering contract (what makes the log *write-ahead*): a mutation is
//! appended to the shard's WAL first — honouring the group-commit policy
//! ([`crate::ShardedConfig::wal_sync`]) — and applied to the in-memory
//! shard only afterwards. A crash between the two replays the record on
//! reopen; a crash before the append loses a mutation that was never
//! acknowledged. In-memory indexes (no directory) skip the log and take
//! mutations volatilely — same semantics, no durability.
//!
//! Soundness under inserts: the searching conditions (Theorems 1–2) and
//! the cross-shard Cauchy–Schwarz pruning both lean on per-shard norm
//! bounds. Inside a shard, `ProMips::effective_max_sq_norm` already folds
//! the delta's max norm into the condition context; across shards,
//! [`apply`] raises `Shard::max_norm` in place whenever an insert exceeds
//! it, so the fan-out's seed-probe ordering and pruning tests keep seeing
//! a true upper bound. Deletes leave both bounds conservative (a bound
//! referencing a tombstoned point only enlarges searched ranges).

use std::io;

use promips_linalg::sq_norm2;
use promips_wal::{Wal, WalConfig, WalRecord};

use crate::index::{ShardKind, ShardedProMips};
use crate::persist::wal_path;

impl ShardedProMips {
    /// Inserts a point, returning its global id. The point is routed to a
    /// shard by [`crate::Partitioner::route`] (norm-range placement under
    /// the default strategy), logged to that shard's WAL when the index is
    /// directory-backed, and entered into the shard's in-memory delta —
    /// searchable immediately, folded into the shard's index file at the
    /// next compaction.
    pub fn insert(&mut self, point: &[f32]) -> io::Result<u64> {
        assert_eq!(point.len(), self.d, "insert dimensionality mismatch");
        let gid = self.next_global_id;
        let si = self.route(point, gid);
        self.wal_append(
            si,
            &WalRecord::Insert {
                id: gid,
                vector: point.to_vec(),
            },
        )?;
        self.apply_insert(si, gid, point);
        self.next_global_id = gid + 1;
        Ok(gid)
    }

    /// Deletes a point by global id. Returns whether a live point was
    /// tombstoned: ids that were never assigned, were already deleted, or
    /// were compacted away are refused (`Ok(false)`) **without** writing a
    /// log record — the WAL never carries no-ops.
    pub fn delete(&mut self, gid: u64) -> io::Result<bool> {
        let Some((si, local)) = self.locate_global(gid) else {
            return Ok(false);
        };
        let live = match &self.shards[si].kind {
            ShardKind::Indexed(pm) => !pm.is_deleted(local as u64),
            ShardKind::Exact(ex) => !ex.deleted[local],
        };
        if !live {
            return Ok(false);
        }
        self.wal_append(si, &WalRecord::Delete { id: gid })?;
        self.apply_delete(si, gid);
        Ok(true)
    }

    /// Whether a global id names a live point.
    pub fn contains(&self, gid: u64) -> bool {
        self.locate_global(gid)
            .is_some_and(|(si, local)| match &self.shards[si].kind {
                ShardKind::Indexed(pm) => !pm.is_deleted(local as u64),
                ShardKind::Exact(ex) => !ex.deleted[local],
            })
    }

    /// The shard that owns `gid` and its local offset, if stored. Each
    /// shard's id map is ascending (global ids are assigned monotonically
    /// and compaction re-sorts), so this is a binary search per shard.
    pub(crate) fn locate_global(&self, gid: u64) -> Option<(usize, usize)> {
        self.shards
            .iter()
            .enumerate()
            .find_map(|(si, s)| s.ids.binary_search(&gid).ok().map(|local| (si, local)))
    }

    /// Routes a point via the configured partition strategy, against the
    /// shards' current (insert-raised) norm bounds.
    fn route(&self, point: &[f32], gid: u64) -> usize {
        let bounds: Vec<f64> = self.shards.iter().map(|s| s.max_norm).collect();
        let si = self
            .config
            .strategy
            .partitioner()
            .route(point, gid, &bounds) as usize;
        assert!(
            si < self.shards.len(),
            "partitioner routed to shard {si} of {}",
            self.shards.len()
        );
        si
    }

    /// Appends a record to shard `si`'s WAL (no-op for in-memory indexes).
    /// The log file is created on the shard's first mutation.
    fn wal_append(&mut self, si: usize, rec: &WalRecord) -> io::Result<()> {
        let d = self.d;
        let sync = self.config.wal_sync;
        let Some(dur) = &mut self.durable else {
            return Ok(());
        };
        if dur.wals[si].is_none() {
            let (wal, replayed) =
                Wal::open_or_create(wal_path(&dur.dir, si), d, WalConfig { sync })?;
            debug_assert!(
                replayed.is_empty(),
                "shard {si} WAL had unreplayed records outside open()"
            );
            dur.wals[si] = Some(wal);
        }
        dur.wals[si].as_mut().expect("just opened").append(rec)
    }

    /// Applies an insert to shard `si`'s in-memory state (both the live
    /// mutation path and WAL replay come through here).
    pub(crate) fn apply_insert(&mut self, si: usize, gid: u64, point: &[f32]) {
        let shard = &mut self.shards[si];
        debug_assert!(
            shard.ids.last().is_none_or(|&last| last < gid),
            "shard {si} id map would lose its ascending order"
        );
        match &mut shard.kind {
            ShardKind::Indexed(pm) => {
                let local = pm.insert(point);
                debug_assert_eq!(local as usize, shard.ids.len(), "local id drift");
            }
            ShardKind::Exact(ex) => {
                ex.rows.push_row(point);
                ex.deleted.push(false);
            }
        }
        shard.ids.push(gid);
        let norm = sq_norm2(point).sqrt();
        if norm > shard.max_norm {
            shard.max_norm = norm;
        }
        self.n_points += 1;
    }

    /// Applies a delete of `gid` inside shard `si` if it names a live
    /// point there; returns whether it did (replay of a stale record — the
    /// id was compacted away, or deleted twice across a torn tail — is a
    /// no-op).
    pub(crate) fn apply_delete(&mut self, si: usize, gid: u64) -> bool {
        let shard = &mut self.shards[si];
        let Ok(local) = shard.ids.binary_search(&gid) else {
            return false;
        };
        let newly_dead = match &mut shard.kind {
            ShardKind::Indexed(pm) => pm.delete(local as u64),
            ShardKind::Exact(ex) => {
                if ex.deleted[local] {
                    false
                } else {
                    ex.deleted[local] = true;
                    ex.n_deleted += 1;
                    true
                }
            }
        };
        if newly_dead {
            self.n_points -= 1;
        }
        newly_dead
    }

    /// Replays one WAL record against shard `si` (used by
    /// [`crate::ShardedProMips::open`]).
    ///
    /// Replay must be **idempotent against stale records**: a crash after
    /// a compaction's manifest swap but before its WAL truncation leaves a
    /// log whose every record is already folded into the live generation.
    /// A stale insert is recognised by its id being present somewhere
    /// (re-partitioning may have moved it to another shard) **or** by
    /// falling at or below the shard's current maximum id — global ids are
    /// assigned monotonically, so a genuinely unfolded insert is always
    /// larger than everything the shard holds, while a folded-then-deleted
    /// id (absent everywhere) is not. A stale delete finds no live point
    /// and no-ops on its own.
    pub(crate) fn apply_replayed(&mut self, si: usize, rec: WalRecord) {
        match rec {
            WalRecord::Insert { id, vector } => {
                if id >= self.next_global_id {
                    self.next_global_id = id + 1;
                }
                let stale = self.shards[si].ids.last().is_some_and(|&last| last >= id)
                    || self.locate_global(id).is_some();
                if !stale {
                    self.apply_insert(si, id, &vector);
                }
            }
            WalRecord::Delete { id } => {
                self.apply_delete(si, id);
            }
        }
    }

    /// Forces every shard's WAL to durable media regardless of the
    /// group-commit policy (e.g. before acknowledging a batch).
    pub fn sync_wal(&mut self) -> io::Result<()> {
        if let Some(dur) = &mut self.durable {
            for wal in dur.wals.iter_mut().flatten() {
                wal.sync()?;
            }
        }
        Ok(())
    }

    /// Total pending mutations (delta inserts + tombstones) across shards.
    pub fn pending_mutations(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.delta_len() + s.tombstone_count())
            .sum()
    }
}
