//! Online, crash-safe compaction: folding a shard's delta and tombstones
//! into a fresh **generation** of its data file while readers keep
//! serving, and re-partitioning the whole index when the live norm
//! distribution has drifted off the shard boundaries.
//!
//! ## Shadow build
//!
//! Compaction never drains the live shard. It **freezes** a snapshot of
//! the overlay (the delta prefix and the tombstone `Arc` at freeze time),
//! builds the next generation entirely off to the side from committed
//! live rows + that frozen delta, and only then commits. Readers keep
//! serving the old generation merged with the *live* overlay the whole
//! time; writers keep appending past the freeze point. The commit splits
//! the overlay at the freeze point: the frozen prefix is now inside the
//! new generation, the suffix (everything that arrived during the build)
//! stays as the new delta. A failed build leaves zero footprint — the old
//! generation was never touched, so there is nothing to roll back.
//!
//! ## The generation/manifest protocol
//!
//! Every durable shard's data file carries a generation number in its name
//! (`shard_0007.pmx` is generation 0, `shard_0007.g3.pmx` generation 3).
//! The manifest names the **live** generation of every shard, and the
//! manifest itself is only ever replaced atomically (write
//! `MANIFEST.pms.tmp`, fsync, rename, fsync the directory — see
//! [`promips_storage::write_file_atomic`]). A commit therefore runs:
//!
//! 1. build generation `g+1` off-thread (new file, fsynced) — no locks;
//! 2. atomically swap the manifest to point at `g+1` — **the commit
//!    point**;
//! 3. atomically rewrite the shard's WAL down to the unfolded suffix
//!    (records that arrived after the freeze);
//! 4. swap the in-memory generation handle and split the overlay;
//! 5. best-effort delete of the generation-`g` file.
//!
//! A crash (or injected fault) in (1) leaves an orphan file and the old
//! manifest: the reopened index replays the intact WAL over generation
//! `g` and retries compaction later. A crash between (2) and (3) reopens
//! on `g+1` and replays WAL records whose folded prefix is already in the
//! file — which is why replay of a stale insert (id at or below the
//! shard's max, or present elsewhere) or stale delete (id absent) is
//! defined as a no-op. Nothing acknowledged is ever lost, nothing is ever
//! applied twice.
//!
//! ## What compaction re-decides
//!
//! Following "To Index or Not to Index" (arXiv:1706.01449), the
//! exact-scan-vs-index decision is re-taken per shard at every compaction
//! against [`crate::ShardedConfig::exact_threshold`]: a shard shrunk by
//! deletes drops its ProMIPS index for a blocked scan, one grown past the
//! threshold gains an index. The shard's norm bound is re-tightened over
//! the live rows, undoing the conservative growth deletes leave behind.
//!
//! ## Re-partitioning
//!
//! Norm-range partitioning (arXiv:1810.09104) only prunes well while the
//! shard boundaries track the **live** norm distribution; a stream of
//! skewed inserts can pile most live points into one shard.
//! [`ShardedProMips::repartition`] recomputes equal-count boundaries over
//! every live point and rebuilds all shards (one generation bump each,
//! one manifest swap, all WALs truncated); [`ShardedProMips::compact`]
//! triggers it automatically when
//! [`CompactionPolicy::repartition_skew`] is exceeded. Re-partitioning
//! freezes **writers** (it moves ids between shards, so the mutation
//! order lock is held throughout) but never readers.

use std::collections::HashSet;
use std::fs;
use std::io;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use promips_core::{ProMips, ProMipsConfig};
use promips_linalg::{sq_norm2, Matrix};
use promips_obs::{self as obs, recorder, CounterId, GaugeId, HistoId, Registry};
use promips_storage::{AccessStats, FileStorage, Pager};
use promips_wal::WalRecord;

use crate::index::{
    shard_seed, DeltaState, GenKind, ShardGeneration, ShardSnapshot, ShardedProMips,
};
use crate::persist::shard_path;
use crate::result::CompactionOutcome;

/// When the mutation lifecycle folds deltas and tombstones back into shard
/// files, and when it re-cuts the shard boundaries.
#[derive(Debug, Clone, Copy)]
pub struct CompactionPolicy {
    /// Compact a shard once its delta holds more than this fraction of its
    /// live points.
    pub max_delta_fraction: f64,
    /// Compact a shard once more than this fraction of its stored points
    /// are tombstones.
    pub max_tombstone_fraction: f64,
    /// Never trigger below this many pending mutations (delta +
    /// tombstones) — rebuilding a shard over single-digit deltas is pure
    /// overhead.
    pub min_mutations: usize,
    /// Re-partition the whole index when the largest shard's live count
    /// exceeds this multiple of the ideal (total / shards). `f64::INFINITY`
    /// disables skew-triggered re-partitioning.
    pub repartition_skew: f64,
}

impl Default for CompactionPolicy {
    fn default() -> Self {
        Self {
            max_delta_fraction: 0.25,
            max_tombstone_fraction: 0.25,
            min_mutations: 64,
            repartition_skew: 4.0,
        }
    }
}

impl CompactionPolicy {
    /// Whether a shard with the given live/delta/tombstone counts is due.
    pub fn due(&self, live: u64, delta: usize, tombstones: usize) -> bool {
        if delta + tombstones < self.min_mutations.max(1) {
            return false;
        }
        let base = (live as f64).max(1.0);
        delta as f64 / base > self.max_delta_fraction
            || tombstones as f64 / (live as f64 + tombstones as f64).max(1.0)
                > self.max_tombstone_fraction
    }
}

/// What one [`ShardedProMips::compact`] pass did.
#[derive(Debug, Clone, Default)]
pub struct CompactionReport {
    /// Shards folded into a new generation this pass.
    pub compacted: Vec<usize>,
    /// Whether the pass re-partitioned the whole index (which compacts
    /// every shard as a side effect).
    pub repartitioned: bool,
}

/// Sorts `ids` ascending and applies the same permutation (one gather
/// pass) to the rows of `rows` — restoring the "shard id maps are
/// ascending" invariant after a gather that returned rows in
/// sub-partition order.
pub(crate) fn sort_rows_by_ids(ids: &mut [u64], rows: &mut Matrix) {
    let n = ids.len();
    debug_assert_eq!(rows.rows(), n);
    if ids.windows(2).all(|w| w[0] < w[1]) {
        return; // already ascending (exact shards gather in id order)
    }
    let mut perm: Vec<u32> = (0..n as u32).collect();
    perm.sort_by_key(|&i| ids[i as usize]);
    let d = rows.cols();
    let mut flat: Vec<f32> = Vec::with_capacity(n * d);
    let mut ids_sorted: Vec<u64> = Vec::with_capacity(n);
    for &src in &perm {
        ids_sorted.push(ids[src as usize]);
        flat.extend_from_slice(rows.row(src as usize));
    }
    ids.copy_from_slice(&ids_sorted);
    *rows = Matrix::from_vec(n, d, flat);
}

/// Copies the live committed rows of a generation (everything the frozen
/// tombstone set doesn't kill) without consuming anything — the read side
/// of a shadow rebuild. Returns ids + flat rows (sub-partition order for
/// indexed generations; callers re-sort).
fn committed_live_rows(
    gen: &ShardGeneration,
    tombs: &HashSet<u64>,
) -> io::Result<(Vec<u64>, Vec<f32>)> {
    match &gen.kind {
        GenKind::Indexed(pm) => {
            let gen_ids = &gen.ids;
            let (locals, rows) =
                pm.live_rows_snapshot(&|l| tombs.contains(&gen_ids[l as usize]))?;
            let gids = locals.iter().map(|&l| gen_ids[l as usize]).collect();
            Ok((gids, rows.as_slice().to_vec()))
        }
        GenKind::Exact(rows) => {
            let mut gids: Vec<u64> = Vec::with_capacity(gen.ids.len());
            let mut flat: Vec<f32> = Vec::with_capacity(rows.as_slice().len());
            for (i, &gid) in gen.ids.iter().enumerate() {
                if !tombs.contains(&gid) {
                    gids.push(gid);
                    flat.extend_from_slice(rows.row(i));
                }
            }
            Ok((gids, flat))
        }
    }
}

/// Handle to the background compaction thread: wakes every `interval`,
/// runs one policy pass ([`ShardedProMips::compact`]), and exits when
/// stopped or dropped. Queries and writers keep running throughout — the
/// thread only ever holds the same short locks a foreground compaction
/// does.
pub struct Compactor {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<Option<io::Error>>>,
}

impl Compactor {
    /// Signals the thread, joins it, and returns the last compaction error
    /// it hit (if any) — transient errors don't kill the loop.
    pub fn stop(mut self) -> Option<io::Error> {
        self.stop.store(true, Ordering::Release);
        self.handle.take().and_then(|h| h.join().unwrap_or(None))
    }
}

impl Drop for Compactor {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl ShardedProMips {
    /// Imbalance of live points across shards: `max / ideal` where ideal is
    /// `total / shards`. 1.0 is perfectly balanced; an empty index reports
    /// 1.0.
    pub fn shard_skew(&self) -> f64 {
        let live: Vec<u64> = self.shards.iter().map(|s| s.live_len()).collect();
        let total: u64 = live.iter().sum();
        if total == 0 || live.len() <= 1 {
            return 1.0;
        }
        let max = live.iter().max().copied().unwrap_or(0);
        max as f64 * live.len() as f64 / total as f64
    }

    /// Spawns a background thread that runs [`ShardedProMips::compact`]
    /// every `interval`. Readers and writers are never blocked by it (see
    /// the module docs); stop it with [`Compactor::stop`] or by dropping
    /// the handle. Errs only when the OS refuses the thread (resource
    /// exhaustion) — a survivable condition the caller can back off from.
    pub fn start_compactor(self: &Arc<Self>, interval: Duration) -> io::Result<Compactor> {
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let index = Arc::clone(self);
        let handle = std::thread::Builder::new()
            .name("promips-compactor".into())
            .spawn(move || {
                let mut last_err = None;
                while !flag.load(Ordering::Acquire) {
                    if let Err(e) = index.compact() {
                        last_err = Some(e);
                    }
                    // Sleep in short slices so stop() returns promptly.
                    let mut slept = Duration::ZERO;
                    let slice =
                        Duration::from_millis(5).min(interval.max(Duration::from_micros(1)));
                    while slept < interval && !flag.load(Ordering::Acquire) {
                        std::thread::sleep(slice);
                        slept += slice;
                    }
                }
                last_err
            })?;
        Ok(Compactor {
            stop,
            handle: Some(handle),
        })
    }

    /// One policy-driven maintenance pass: re-partitions if the live skew
    /// exceeds [`CompactionPolicy::repartition_skew`] **and** at least one
    /// shard is due (re-partitioning folds every delta anyway), otherwise
    /// compacts each shard the policy marks due.
    pub fn compact(&self) -> io::Result<CompactionReport> {
        let policy = self.config.compaction;
        let is_due = |si: usize| {
            let s = &self.shards[si];
            let delta = s.delta.read();
            let stored = self.shards[si].generation.read().ids.len() + delta.inserts.len();
            let live = (stored - delta.tombstones.len()) as u64;
            policy.due(live, delta.inserts.len(), delta.tombstones.len())
        };
        let mut report = CompactionReport::default();
        if !(0..self.shards.len()).any(is_due) {
            return Ok(report);
        }
        if policy.repartition_skew.is_finite()
            && self.shards.len() > 1
            && self.shard_skew() > policy.repartition_skew
        {
            self.repartition()?;
            report.repartitioned = true;
            report.compacted = (0..self.shards.len()).collect();
            return Ok(report);
        }
        for si in 0..self.shards.len() {
            if is_due(si) && self.compact_shard(si)? {
                report.compacted.push(si);
            }
        }
        Ok(report)
    }

    /// Unconditionally compacts every shard with pending mutations (e.g.
    /// before [`ShardedProMips::snapshot`]). Returns the shards compacted.
    pub fn compact_all(&self) -> io::Result<Vec<usize>> {
        let mut done = Vec::new();
        for si in 0..self.shards.len() {
            if self.compact_shard(si)? {
                done.push(si);
            }
        }
        Ok(done)
    }

    /// Folds shard `si`'s frozen delta and tombstones into a fresh
    /// generation of its data file via a shadow build (see the module
    /// docs), then commits. Returns `false` when the shard had no pending
    /// mutations. Queries are served throughout from the old generation +
    /// live overlay; mutations that land during the build survive as the
    /// new delta. The exact-scan-vs-index decision and the shard's norm
    /// bound are both re-taken over the live rows.
    pub fn compact_shard(&self, si: usize) -> io::Result<bool> {
        let t0 = obs::clock_start();
        let res = self.compact_shard_inner(si);
        match &res {
            Ok(true) => {
                let reg = Registry::global();
                reg.counter(CounterId::Compactions).inc();
                if obs::timing_enabled() {
                    reg.histogram(HistoId::CompactionNs)
                        .record(obs::elapsed_since(t0));
                }
                let generation = self.shards[si].generation.read().generation;
                recorder::emit(recorder::EventKind::CompactionCompleted {
                    shard: si as u32,
                    generation,
                });
            }
            Ok(false) => {}
            // Covers shadow-build and commit failures alike: even the
            // swapped-but-WAL-rewrite-failed path reports Failed, since the
            // pass needs operator attention either way.
            Err(_) => {
                self.shards[si]
                    .last_compaction
                    .set(CompactionOutcome::Failed.as_code());
                recorder::emit(recorder::EventKind::CompactionFailed { shard: si as u32 });
            }
        }
        res
    }

    fn compact_shard_inner(&self, si: usize) -> io::Result<bool> {
        let shard = &self.shards[si];
        let _compacting = shard.compact_lock.lock();

        // ---- Freeze: a point-in-time view of the overlay. ----------------
        let (old_gen, frozen, frozen_tombs) = {
            let delta = shard.delta.read();
            if delta.inserts.is_empty() && delta.tombstones.is_empty() {
                return Ok(false);
            }
            (
                Arc::clone(&shard.generation.read()),
                delta.inserts.clone(),
                Arc::clone(&delta.tombstones),
            )
        };
        let split = frozen.len();

        // ---- Shadow build: no locks held, readers and writers run free. --
        let (mut gids, mut flat) = committed_live_rows(&old_gen, &frozen_tombs)?;
        for e in &frozen {
            if !frozen_tombs.contains(&e.gid) {
                gids.push(e.gid);
                flat.extend_from_slice(&e.row);
            }
        }
        let mut rows = Matrix::from_vec(gids.len(), self.d, flat);
        sort_rows_by_ids(&mut gids, &mut rows);
        let new_gen = self.build_generation(si, gids, rows, old_gen.generation + 1)?;

        // ---- Commit: manifest swap, WAL rewrite, handle swap. ------------
        self.commit_shard(si, &old_gen, new_gen, split, &frozen_tombs)?;
        Ok(true)
    }

    /// The commit step of one shard compaction (see the module docs for
    /// the crash windows each ordering decision covers).
    fn commit_shard(
        &self,
        si: usize,
        old_gen: &ShardGeneration,
        new_gen: ShardGeneration,
        split: usize,
        frozen_tombs: &HashSet<u64>,
    ) -> io::Result<()> {
        let shard = &self.shards[si];
        let _manifest = self.manifest_lock.lock();
        // The WAL mutex freezes this shard's mutation state for the whole
        // commit; readers never take it.
        let mut wal = shard.wal.lock();
        let new_gen = Arc::new(new_gen);

        // 1. Manifest swap — THE commit point. On failure nothing moved:
        //    the old generation stays authoritative on disk and in memory,
        //    and the new file is deleted.
        if let Some(dir) = self.dir.clone() {
            if let Err(e) = self.write_manifest_with(&dir, &[(si, &new_gen)]) {
                let _ =
                    fs::remove_file(shard_path(&dir, si, new_gen.is_exact(), new_gen.generation));
                return Err(e);
            }
        }

        // 2. Rewrite the WAL down to the unfolded suffix: inserts that
        //    arrived after the freeze (ascending gid — all larger than
        //    anything in the new generation), then deletes that arrived
        //    after the freeze (their targets all exist by then). The
        //    rewrite is atomic (tmp + rename); if it fails the old log
        //    survives intact, and replaying its folded prefix over the new
        //    generation is a no-op by the staleness rules.
        let mut rewrite_result = Ok(());
        if let Some(w) = wal.as_mut() {
            let suffix = {
                let delta = shard.delta.read();
                let mut recs: Vec<WalRecord> = delta.inserts[split..]
                    .iter()
                    .map(|e| WalRecord::Insert {
                        id: e.gid,
                        vector: e.row.to_vec(),
                    })
                    .collect();
                let mut late_tombs: Vec<u64> = delta
                    .tombstones
                    .iter()
                    .filter(|t| !frozen_tombs.contains(t))
                    .copied()
                    .collect();
                late_tombs.sort_unstable();
                recs.extend(late_tombs.into_iter().map(|id| WalRecord::Delete { id }));
                recs
            };
            rewrite_result = w.rewrite(&suffix);
        }

        // 3. Swap the generation handle and split the overlay — under the
        //    delta write lock so no reader ever pairs the new generation
        //    with the old overlay (or vice versa). This happens regardless
        //    of the rewrite outcome: the on-disk manifest already points
        //    at the new generation.
        {
            let mut delta = shard.delta.write();
            let mut gen_slot = shard.generation.write();
            let remaining = delta.inserts.split_off(split);
            let late_tombs: HashSet<u64> = delta
                .tombstones
                .iter()
                .filter(|t| !frozen_tombs.contains(t))
                .copied()
                .collect();
            let dead_base = late_tombs
                .iter()
                .filter(|t| new_gen.ids.binary_search(t).is_ok())
                .count();
            let mut max_norm = new_gen.built_max_norm;
            for e in &remaining {
                if e.norm > max_norm {
                    max_norm = e.norm;
                }
            }
            *delta = DeltaState {
                inserts: remaining,
                tombstones: Arc::new(late_tombs),
                max_norm,
                dead_base,
            };
            *gen_slot = Arc::clone(&new_gen);
        }
        // The frozen prefix left the overlay: fold it out of the global
        // gauges (strictly incremental — never recomputed from snapshots,
        // so several live indexes in one process stay additive).
        let reg = Registry::global();
        reg.counter(CounterId::GenerationSwaps).inc();
        reg.gauge(GaugeId::DeltaRows).sub(split as i64);
        reg.gauge(GaugeId::Tombstones)
            .sub(frozen_tombs.len() as i64);
        shard.note_generation_swap(CompactionOutcome::Compacted);
        recorder::emit(recorder::EventKind::GenerationSwap {
            shard: si as u32,
            generation: new_gen.generation,
        });

        // 4. The superseded file is garbage now; removal is best-effort
        //    (a crash here merely leaks a file the manifest never names).
        if let Some(dir) = &self.dir {
            let _ = fs::remove_file(shard_path(dir, si, old_gen.is_exact(), old_gen.generation));
        }
        rewrite_result
    }

    /// Recomputes norm-range boundaries over **every live point** and
    /// rebuilds all shards against them, migrating rows between shards.
    /// Global ids are preserved; every shard gets a generation bump, one
    /// manifest swap commits them all, and every WAL is truncated. Writers
    /// are frozen for the duration (ids move between shards, so the
    /// mutation-order lock is held throughout); **readers are not** — they
    /// serve the old generations until the swap. The whole live dataset is
    /// resident in memory for the duration.
    pub fn repartition(&self) -> io::Result<()> {
        let ns = self.shards.len();
        // Lock order: mut_order → all compact locks → manifest → all WALs
        // (each group ascending by shard id).
        let _order = self.mut_order.lock();
        let _compacting: Vec<_> = self.shards.iter().map(|s| s.compact_lock.lock()).collect();
        let _manifest = self.manifest_lock.lock();
        let mut wals: Vec<_> = self.shards.iter().map(|s| s.wal.lock()).collect();

        // All mutation state is frozen now; snapshot and gather live rows.
        let snaps: Vec<ShardSnapshot> = self.shards.iter().map(|s| s.snapshot()).collect();
        let live_total: usize = snaps.iter().map(|s| s.stored() - s.tombstones.len()).sum();
        let mut all_gids: Vec<u64> = Vec::with_capacity(live_total);
        let mut flat: Vec<f32> = Vec::with_capacity(live_total * self.d);
        for snap in &snaps {
            let (gids, rows) = committed_live_rows(&snap.gen, &snap.tombstones)?;
            all_gids.extend(gids);
            flat.extend_from_slice(&rows);
            for e in &snap.inserts {
                if !snap.tombstones.contains(&e.gid) {
                    all_gids.push(e.gid);
                    flat.extend_from_slice(&e.row);
                }
            }
        }
        let mut all_rows = Matrix::from_vec(all_gids.len(), self.d, flat);
        sort_rows_by_ids(&mut all_gids, &mut all_rows);

        // Fresh equal-count boundaries over the live distribution.
        let assign = self.config.strategy.partitioner().assign(&all_rows, ns);
        let mut members: Vec<Vec<usize>> = vec![Vec::new(); ns];
        for (i, &s) in assign.iter().enumerate() {
            assert!(
                (s as usize) < ns,
                "partitioner assigned row {i} to shard {s}"
            );
            members[s as usize].push(i);
        }

        // Shadow-build every new generation before committing anything: a
        // failed build deletes its files and leaves the old index — disk
        // and memory — untouched.
        let mut new_gens: Vec<Arc<ShardGeneration>> = Vec::with_capacity(ns);
        let discard = |gens: &[Arc<ShardGeneration>]| {
            if let Some(dir) = &self.dir {
                for (ri, g) in gens.iter().enumerate() {
                    let _ = fs::remove_file(shard_path(dir, ri, g.is_exact(), g.generation));
                }
            }
        };
        for (si, m) in members.iter().enumerate() {
            // Members are ascending row indices over ascending-gid rows, so
            // the per-shard id map stays ascending by construction.
            let gids: Vec<u64> = m.iter().map(|&i| all_gids[i]).collect();
            let rows = all_rows.gather(m);
            match self.build_generation(si, gids, rows, snaps[si].gen.generation + 1) {
                Ok(g) => new_gens.push(Arc::new(g)),
                Err(e) => {
                    discard(&new_gens);
                    return Err(e);
                }
            }
        }

        // One manifest swap commits every shard's new generation.
        if let Some(dir) = self.dir.clone() {
            let overrides: Vec<(usize, &ShardGeneration)> = new_gens
                .iter()
                .enumerate()
                .map(|(si, g)| (si, g.as_ref()))
                .collect();
            if let Err(e) = self.write_manifest_with(&dir, &overrides) {
                discard(&new_gens);
                return Err(e);
            }
        }

        // Everything is folded: truncate the logs. A failure here leaves a
        // stale-but-safe log (replay skips folded records), so finish the
        // in-memory swap first and report the error after.
        let mut first_err = None;
        for slot in wals.iter_mut() {
            if let Some(w) = slot.as_mut() {
                if let Err(e) = w.truncate() {
                    first_err.get_or_insert(e);
                }
            }
        }

        let reg = Registry::global();
        for (si, new_gen) in new_gens.into_iter().enumerate() {
            let shard = &self.shards[si];
            {
                let mut delta = shard.delta.write();
                let mut gen_slot = shard.generation.write();
                *delta = DeltaState::empty(new_gen.built_max_norm);
                *gen_slot = Arc::clone(&new_gen);
            }
            // Each shard's whole overlay was folded: undo its gauge
            // contribution from the frozen snapshot counts.
            reg.counter(CounterId::GenerationSwaps).inc();
            reg.gauge(GaugeId::DeltaRows)
                .sub(snaps[si].inserts.len() as i64);
            reg.gauge(GaugeId::Tombstones)
                .sub(snaps[si].tombstones.len() as i64);
            shard.note_generation_swap(CompactionOutcome::Repartitioned);
            recorder::emit(recorder::EventKind::GenerationSwap {
                shard: si as u32,
                generation: new_gen.generation,
            });
            if let Some(dir) = &self.dir {
                let old = &snaps[si].gen;
                let _ = fs::remove_file(shard_path(dir, si, old.is_exact(), old.generation));
            }
        }
        reg.counter(CounterId::Repartitions).inc();
        recorder::emit(recorder::EventKind::Repartitioned { shards: ns as u32 });
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Builds a fresh generation over `rows` (ids ascending), re-deciding
    /// exact-vs-indexed against the threshold. For durable indexes the new
    /// generation's data file is written and fsynced here — the manifest
    /// swap making it live is the caller's commit step. Pure shadow work:
    /// on failure the partial file is removed and nothing else changed.
    fn build_generation(
        &self,
        si: usize,
        ids: Vec<u64>,
        rows: Matrix,
        generation: u64,
    ) -> io::Result<ShardGeneration> {
        debug_assert!(ids.windows(2).all(|w| w[0] < w[1]), "ids must ascend");
        let built_max_norm = rows.iter_rows().map(sq_norm2).fold(0.0f64, f64::max).sqrt();
        let n = rows.rows();
        let kind = if n == 0 || n < self.config.exact_threshold {
            if let Some(dir) = &self.dir {
                crate::persist::write_exact_file(&shard_path(dir, si, true, generation), &rows, n)?;
            }
            GenKind::Exact(rows)
        } else {
            let mut cfg: ProMipsConfig = self.config.base.clone();
            cfg.seed = shard_seed(self.config.base.seed, si);
            let pager = match &self.dir {
                Some(dir) => {
                    let storage =
                        FileStorage::create(shard_path(dir, si, false, generation), cfg.page_size)?;
                    Arc::new(Pager::new(
                        Arc::new(storage),
                        cfg.pool_pages,
                        AccessStats::new_shared(),
                    ))
                }
                None => Arc::new(Pager::in_memory(cfg.page_size, cfg.pool_pages)),
            };
            // save() ends with a pager sync, completing step 1 of the
            // crash protocol for durable builds.
            let durable = self.dir.is_some();
            let built = ProMips::build_with_pager(&rows, cfg, pager).and_then(|pm| {
                if durable {
                    pm.save().map(|()| pm)
                } else {
                    Ok(pm)
                }
            });
            match built {
                Ok(pm) => GenKind::Indexed(Box::new(pm)),
                Err(e) => {
                    if let Some(dir) = &self.dir {
                        let _ = fs::remove_file(shard_path(dir, si, false, generation));
                    }
                    return Err(e);
                }
            }
        };
        Ok(ShardGeneration {
            ids,
            built_max_norm,
            generation,
            kind,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use promips_stats::Xoshiro256pp;

    #[test]
    fn policy_triggers_on_fractions_and_floor() {
        let p = CompactionPolicy::default();
        // Below the mutation floor: never due.
        assert!(!p.due(100, 10, 10));
        // Delta fraction: 300 delta over 1000 live > 0.25.
        assert!(p.due(1000, 300, 0));
        assert!(!p.due(1000, 100, 0));
        // Tombstone fraction: 300 dead of 1000 stored.
        assert!(p.due(700, 0, 300));
        assert!(!p.due(900, 0, 100));
        // Disabled repartition skew stays disabled.
        assert!(CompactionPolicy {
            repartition_skew: f64::INFINITY,
            ..p
        }
        .repartition_skew
        .is_infinite());
    }

    #[test]
    fn sort_rows_by_ids_permutes_rows_with_ids() {
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        for n in [0usize, 1, 2, 7, 64, 129] {
            let d = 5;
            let mut ids: Vec<u64> = (0..n as u64).map(|i| i * 3 + 1).collect();
            // Shuffle ids (Fisher–Yates via the repo rng).
            for i in (1..n).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                ids.swap(i, j);
            }
            // Row i's payload encodes its id so we can verify the pairing.
            let mut rows = Matrix::from_rows(
                d,
                ids.iter().map(|&id| {
                    (0..d)
                        .map(|c| (id * 10 + c as u64) as f32)
                        .collect::<Vec<_>>()
                }),
            );
            let mut ids2 = ids.clone();
            sort_rows_by_ids(&mut ids2, &mut rows);
            let mut expect = ids;
            expect.sort_unstable();
            assert_eq!(ids2, expect);
            for (i, &id) in ids2.iter().enumerate() {
                assert_eq!(rows.row(i)[0], (id * 10) as f32, "row {i} mispaired");
                assert_eq!(rows.row(i)[d - 1], (id * 10 + d as u64 - 1) as f32);
            }
        }
    }
}
