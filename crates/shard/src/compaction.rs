//! Crash-safe compaction: folding a shard's delta and tombstones into a
//! fresh **generation** of its data file, and re-partitioning the whole
//! index when the live norm distribution has drifted off the shard
//! boundaries.
//!
//! ## The generation/manifest protocol
//!
//! Every durable shard's data file carries a generation number in its name
//! (`shard_0007.pmx` is generation 0, `shard_0007.g3.pmx` generation 3).
//! The manifest names the **live** generation of every shard, and the
//! manifest itself is only ever replaced atomically (write
//! `MANIFEST.pms.tmp`, fsync, rename, fsync the directory — see
//! [`promips_storage::write_file_atomic`]). Compaction therefore runs:
//!
//! 1. build generation `g+1` from the shard's live rows (new file, fsynced);
//! 2. atomically swap the manifest to point at `g+1`;
//! 3. truncate the shard's WAL — its records are folded into `g+1`;
//! 4. best-effort delete of the generation-`g` file.
//!
//! A crash in (1) leaves an orphan file and the old manifest: the reopened
//! index replays the intact WAL over generation `g` and retries
//! compaction later. A crash between (2) and (3) reopens on `g+1` and
//! replays WAL records whose effects are already folded in — which is why
//! replay of a stale insert (id already present) or delete (id absent) is
//! defined as a no-op. Nothing acknowledged is ever lost, nothing is ever
//! applied twice.
//!
//! ## What compaction re-decides
//!
//! Following "To Index or Not to Index" (arXiv:1706.01449), the
//! exact-scan-vs-index decision is re-taken per shard at every compaction
//! against [`crate::ShardedConfig::exact_threshold`]: a shard shrunk by
//! deletes drops its ProMIPS index for a blocked scan, one grown past the
//! threshold gains an index. The shard's norm bound is re-tightened over
//! the live rows, undoing the conservative growth deletes leave behind.
//!
//! ## Re-partitioning
//!
//! Norm-range partitioning (arXiv:1810.09104) only prunes well while the
//! shard boundaries track the **live** norm distribution; a stream of
//! skewed inserts can pile most live points into one shard.
//! [`ShardedProMips::repartition`] recomputes equal-count boundaries over
//! every live point and rebuilds all shards (one generation bump each,
//! one manifest swap, all WALs truncated); [`ShardedProMips::compact`]
//! triggers it automatically when
//! [`CompactionPolicy::repartition_skew`] is exceeded.

use std::io;
use std::sync::Arc;

use promips_core::{ProMips, ProMipsConfig};
use promips_linalg::{sq_norm2, Matrix};
use promips_storage::{AccessStats, FileStorage, Pager};

use crate::index::{shard_seed, ExactShard, Shard, ShardKind, ShardedProMips};
use crate::persist::shard_path;

/// When the mutation lifecycle folds deltas and tombstones back into shard
/// files, and when it re-cuts the shard boundaries.
#[derive(Debug, Clone, Copy)]
pub struct CompactionPolicy {
    /// Compact a shard once its delta holds more than this fraction of its
    /// live points.
    pub max_delta_fraction: f64,
    /// Compact a shard once more than this fraction of its stored points
    /// are tombstones.
    pub max_tombstone_fraction: f64,
    /// Never trigger below this many pending mutations (delta +
    /// tombstones) — rebuilding a shard over single-digit deltas is pure
    /// overhead.
    pub min_mutations: usize,
    /// Re-partition the whole index when the largest shard's live count
    /// exceeds this multiple of the ideal (total / shards). `f64::INFINITY`
    /// disables skew-triggered re-partitioning.
    pub repartition_skew: f64,
}

impl Default for CompactionPolicy {
    fn default() -> Self {
        Self {
            max_delta_fraction: 0.25,
            max_tombstone_fraction: 0.25,
            min_mutations: 64,
            repartition_skew: 4.0,
        }
    }
}

impl CompactionPolicy {
    /// Whether a shard with the given live/delta/tombstone counts is due.
    pub fn due(&self, live: u64, delta: usize, tombstones: usize) -> bool {
        if delta + tombstones < self.min_mutations.max(1) {
            return false;
        }
        let base = (live as f64).max(1.0);
        delta as f64 / base > self.max_delta_fraction
            || tombstones as f64 / (live as f64 + tombstones as f64).max(1.0)
                > self.max_tombstone_fraction
    }
}

/// What one [`ShardedProMips::compact`] pass did.
#[derive(Debug, Clone, Default)]
pub struct CompactionReport {
    /// Shards folded into a new generation this pass.
    pub compacted: Vec<usize>,
    /// Whether the pass re-partitioned the whole index (which compacts
    /// every shard as a side effect).
    pub repartitioned: bool,
}

/// The infallible recovery shard: an in-memory exact scan over the given
/// live rows. Used when a compaction or re-partition build fails after
/// the drain — queries keep answering correctly from here, and durable
/// indexes still hold every mutation in their (untruncated) WALs.
fn fallback_exact_shard(ids: Vec<u64>, rows: Matrix) -> Shard {
    debug_assert_eq!(ids.len(), rows.rows());
    let max_norm = rows.iter_rows().map(sq_norm2).fold(0.0f64, f64::max).sqrt();
    Shard {
        ids,
        max_norm,
        built_max_norm: max_norm,
        kind: ShardKind::Exact(ExactShard::new(rows)),
    }
}

/// Sorts `ids` ascending and applies the same permutation (one gather
/// pass) to the rows of `rows` — restoring the "shard id maps are
/// ascending" invariant after a drain that returned rows in
/// sub-partition order.
pub(crate) fn sort_rows_by_ids(ids: &mut [u64], rows: &mut Matrix) {
    let n = ids.len();
    debug_assert_eq!(rows.rows(), n);
    if ids.windows(2).all(|w| w[0] < w[1]) {
        return; // already ascending (exact shards drain in id order)
    }
    let mut perm: Vec<u32> = (0..n as u32).collect();
    perm.sort_by_key(|&i| ids[i as usize]);
    let d = rows.cols();
    let mut flat: Vec<f32> = Vec::with_capacity(n * d);
    let mut ids_sorted: Vec<u64> = Vec::with_capacity(n);
    for &src in &perm {
        ids_sorted.push(ids[src as usize]);
        flat.extend_from_slice(rows.row(src as usize));
    }
    ids.copy_from_slice(&ids_sorted);
    *rows = Matrix::from_vec(n, d, flat);
}

impl ShardedProMips {
    /// Imbalance of live points across shards: `max / ideal` where ideal is
    /// `total / shards`. 1.0 is perfectly balanced; an empty index reports
    /// 1.0.
    pub fn shard_skew(&self) -> f64 {
        let total: u64 = self.shards.iter().map(|s| s.live_len()).sum();
        if total == 0 || self.shards.len() <= 1 {
            return 1.0;
        }
        let max = self.shards.iter().map(|s| s.live_len()).max().unwrap_or(0);
        max as f64 * self.shards.len() as f64 / total as f64
    }

    /// One policy-driven maintenance pass: re-partitions if the live skew
    /// exceeds [`CompactionPolicy::repartition_skew`] **and** at least one
    /// shard is due (re-partitioning folds every delta anyway), otherwise
    /// compacts each shard the policy marks due.
    pub fn compact(&mut self) -> io::Result<CompactionReport> {
        let policy = self.config.compaction;
        let any_due = (0..self.shards.len()).any(|si| {
            let s = &self.shards[si];
            policy.due(s.live_len(), s.delta_len(), s.tombstone_count())
        });
        let mut report = CompactionReport::default();
        if !any_due {
            return Ok(report);
        }
        if policy.repartition_skew.is_finite()
            && self.shards.len() > 1
            && self.shard_skew() > policy.repartition_skew
        {
            self.repartition()?;
            report.repartitioned = true;
            report.compacted = (0..self.shards.len()).collect();
            return Ok(report);
        }
        for si in 0..self.shards.len() {
            let s = &self.shards[si];
            if policy.due(s.live_len(), s.delta_len(), s.tombstone_count())
                && self.compact_shard(si)?
            {
                report.compacted.push(si);
            }
        }
        Ok(report)
    }

    /// Unconditionally compacts every shard with pending mutations (e.g.
    /// before [`ShardedProMips::snapshot`]). Returns the shards compacted.
    pub fn compact_all(&mut self) -> io::Result<Vec<usize>> {
        let mut done = Vec::new();
        for si in 0..self.shards.len() {
            if self.compact_shard(si)? {
                done.push(si);
            }
        }
        Ok(done)
    }

    /// Folds shard `si`'s delta and tombstones into a fresh generation of
    /// its data file (see the module docs for the crash protocol). Returns
    /// `false` when the shard had no pending mutations. The
    /// exact-scan-vs-index decision and the shard's norm bound are both
    /// re-taken over the live rows.
    pub fn compact_shard(&mut self, si: usize) -> io::Result<bool> {
        {
            let s = &self.shards[si];
            if s.delta_len() == 0 && s.tombstone_count() == 0 {
                return Ok(false);
            }
        }
        let (mut gids, mut rows) = self.take_shard_live_rows(si)?;
        sort_rows_by_ids(&mut gids, &mut rows);
        let next_gen = self.durable.as_ref().map(|d| d.generations[si] + 1);
        let old_exact = self.shards[si].is_exact();
        let new_shard = match self.build_shard_from_rows(si, gids, rows, next_gen) {
            Ok(s) => s,
            Err((e, gids, rows)) => {
                // The drain already folded the delta/tombstones into the
                // rows we hold, so a failed build (ENOSPC, …) must not
                // leave the drained husk live: fall back to an in-memory
                // exact scan over those rows — queries stay correct, and
                // the mutations are still in the untouched WAL.
                self.shards[si] = fallback_exact_shard(gids, rows);
                return Err(e);
            }
        };
        self.shards[si] = new_shard;
        self.commit_generations(&[(si, old_exact)])?;
        Ok(true)
    }

    /// Recomputes norm-range boundaries over **every live point** and
    /// rebuilds all shards against them, migrating rows between shards.
    /// Global ids are preserved; every shard gets a generation bump, one
    /// manifest swap commits them all, and every WAL is truncated. The
    /// whole live dataset is resident in memory for the duration.
    pub fn repartition(&mut self) -> io::Result<()> {
        let ns = self.shards.len();
        let live_total: usize = self.shards.iter().map(|s| s.live_len() as usize).sum();
        let mut all_gids: Vec<u64> = Vec::with_capacity(live_total);
        let mut flat: Vec<f32> = Vec::with_capacity(live_total * self.d);
        let mut old_exact: Vec<bool> = Vec::with_capacity(ns);
        for si in 0..ns {
            old_exact.push(self.shards[si].is_exact());
            let (gids, rows) = self.take_shard_live_rows(si)?;
            all_gids.extend(gids);
            flat.extend_from_slice(rows.as_slice());
        }
        let mut all_rows = Matrix::from_vec(all_gids.len(), self.d, flat);
        sort_rows_by_ids(&mut all_gids, &mut all_rows);

        // Fresh equal-count boundaries over the live distribution.
        let assign = self.config.strategy.partitioner().assign(&all_rows, ns);
        let mut members: Vec<Vec<usize>> = vec![Vec::new(); ns];
        for (i, &s) in assign.iter().enumerate() {
            assert!(
                (s as usize) < ns,
                "partitioner assigned row {i} to shard {s}"
            );
            members[s as usize].push(i);
        }

        // Build every new shard before swapping any in, so a failed build
        // can restore the whole index from the gathered rows (in-memory
        // exact scans per the fresh membership — correct for queries, and
        // every mutation is still in the untouched WALs).
        let mut new_shards: Vec<Shard> = Vec::with_capacity(ns);
        for (si, m) in members.iter().enumerate() {
            // Members are ascending row indices over ascending-gid rows, so
            // the per-shard id map stays ascending by construction.
            let gids: Vec<u64> = m.iter().map(|&i| all_gids[i]).collect();
            let rows = all_rows.gather(m);
            let next_gen = self.durable.as_ref().map(|d| d.generations[si] + 1);
            match self.build_shard_from_rows(si, gids, rows, next_gen) {
                Ok(s) => new_shards.push(s),
                Err((e, _, _)) => {
                    for (ri, rm) in members.iter().enumerate() {
                        let ids: Vec<u64> = rm.iter().map(|&i| all_gids[i]).collect();
                        self.shards[ri] = fallback_exact_shard(ids, all_rows.gather(rm));
                    }
                    return Err(e);
                }
            }
        }
        let changed: Vec<(usize, bool)> = (0..ns).map(|si| (si, old_exact[si])).collect();
        self.shards = new_shards;
        self.commit_generations(&changed)
    }

    /// Drains shard `si`'s live rows and their global ids (sub-partition
    /// order for indexed shards — callers re-sort). The shard's delta and
    /// tombstones are consumed; the caller must replace the shard.
    fn take_shard_live_rows(&mut self, si: usize) -> io::Result<(Vec<u64>, Matrix)> {
        let shard = &mut self.shards[si];
        match &mut shard.kind {
            ShardKind::Indexed(pm) => {
                let (locals, rows) = pm.take_live_rows()?;
                let gids = locals.iter().map(|&l| shard.ids[l as usize]).collect();
                Ok((gids, rows))
            }
            ShardKind::Exact(ex) => {
                let live = ex.rows.rows() - ex.n_deleted;
                let mut gids: Vec<u64> = Vec::with_capacity(live);
                let mut flat: Vec<f32> = Vec::with_capacity(live * ex.rows.cols());
                for i in 0..ex.rows.rows() {
                    if !ex.deleted[i] {
                        gids.push(shard.ids[i]);
                        flat.extend_from_slice(ex.rows.row(i));
                    }
                }
                let rows = Matrix::from_vec(gids.len(), ex.rows.cols(), flat);
                // Free the old copy eagerly (the shard is about to be
                // replaced) and keep the husk's counters consistent —
                // delta_len/tombstone_count must stay 0, not underflow,
                // if an error path observes it before the swap.
                ex.rows = Matrix::from_vec(0, 0, Vec::new());
                ex.deleted.clear();
                ex.base_rows = 0;
                ex.n_deleted = 0;
                Ok((gids, rows))
            }
        }
    }

    /// Builds a fresh shard over `rows` (ids ascending), re-deciding
    /// exact-vs-indexed against the threshold. For durable indexes
    /// (`gen = Some`), the new generation's data file is written and
    /// fsynced here — the manifest swap making it live is
    /// [`ShardedProMips::commit_generations`]'s job. On failure the
    /// drained ids/rows are handed back so the caller can restore a
    /// consistent in-memory shard instead of a drained husk.
    #[allow(clippy::result_large_err)] // the Err carries recovery payload
    fn build_shard_from_rows(
        &self,
        si: usize,
        ids: Vec<u64>,
        rows: Matrix,
        gen: Option<u64>,
    ) -> Result<Shard, (io::Error, Vec<u64>, Matrix)> {
        debug_assert!(ids.windows(2).all(|w| w[0] < w[1]), "ids must ascend");
        let max_norm = rows.iter_rows().map(sq_norm2).fold(0.0f64, f64::max).sqrt();
        let n = rows.rows();
        let kind = if n == 0 || n < self.config.exact_threshold {
            if let (Some(g), Some(dur)) = (gen, self.durable.as_ref()) {
                if let Err(e) = crate::persist::write_exact_file(
                    &shard_path(&dur.dir, si, true, g),
                    &rows,
                    rows.rows(),
                ) {
                    return Err((e, ids, rows));
                }
            }
            ShardKind::Exact(ExactShard::new(rows))
        } else {
            let mut cfg: ProMipsConfig = self.config.base.clone();
            cfg.seed = shard_seed(self.config.base.seed, si);
            let pager = match (gen, self.durable.as_ref()) {
                (Some(g), Some(dur)) => {
                    match FileStorage::create(shard_path(&dur.dir, si, false, g), cfg.page_size) {
                        Ok(storage) => Arc::new(Pager::new(
                            Arc::new(storage),
                            cfg.pool_pages,
                            AccessStats::new_shared(),
                        )),
                        Err(e) => return Err((e, ids, rows)),
                    }
                }
                _ => Arc::new(Pager::in_memory(cfg.page_size, cfg.pool_pages)),
            };
            // save() ends with a pager sync, completing step 1 of the
            // crash protocol for durable builds.
            let built = ProMips::build_with_pager(&rows, cfg, pager).and_then(|pm| {
                if gen.is_some() {
                    pm.save().map(|()| pm)
                } else {
                    Ok(pm)
                }
            });
            match built {
                Ok(pm) => ShardKind::Indexed(Box::new(pm)),
                Err(e) => return Err((e, ids, rows)),
            }
        };
        Ok(Shard {
            ids,
            max_norm,
            built_max_norm: max_norm,
            kind,
        })
    }

    /// Commits freshly built generations: bumps the in-memory generation
    /// counters, atomically swaps the manifest, and only then truncates
    /// the affected WALs and deletes the superseded generation files.
    /// `changed` lists `(shard, was_exact_before)` pairs. In-memory
    /// indexes return immediately — there is nothing durable to commit.
    fn commit_generations(&mut self, changed: &[(usize, bool)]) -> io::Result<()> {
        let Some(dur) = &mut self.durable else {
            return Ok(());
        };
        let mut old: Vec<(usize, u64, bool)> = Vec::with_capacity(changed.len());
        for &(si, was_exact) in changed {
            old.push((si, dur.generations[si], was_exact));
            dur.generations[si] += 1;
        }
        let dir = dur.dir.clone();
        let gens = dur.generations.clone();
        // The swap: after this rename lands, the new generations are the
        // authoritative state and the folded WAL records are redundant.
        self.write_manifest(&dir, &gens)?;
        let dur = self.durable.as_mut().expect("checked above");
        for &(si, old_gen, was_exact) in &old {
            if let Some(wal) = dur.wals[si].as_mut() {
                wal.truncate()?;
            }
            // The superseded file is garbage now; removal is best-effort
            // (a crash here merely leaks a file the manifest never names).
            let _ = std::fs::remove_file(shard_path(&dir, si, was_exact, old_gen));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use promips_stats::Xoshiro256pp;

    #[test]
    fn policy_triggers_on_fractions_and_floor() {
        let p = CompactionPolicy::default();
        // Below the mutation floor: never due.
        assert!(!p.due(100, 10, 10));
        // Delta fraction: 300 delta over 1000 live > 0.25.
        assert!(p.due(1000, 300, 0));
        assert!(!p.due(1000, 100, 0));
        // Tombstone fraction: 300 dead of 1000 stored.
        assert!(p.due(700, 0, 300));
        assert!(!p.due(900, 0, 100));
        // Disabled repartition skew stays disabled.
        assert!(CompactionPolicy {
            repartition_skew: f64::INFINITY,
            ..p
        }
        .repartition_skew
        .is_infinite());
    }

    #[test]
    fn sort_rows_by_ids_permutes_rows_with_ids() {
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        for n in [0usize, 1, 2, 7, 64, 129] {
            let d = 5;
            let mut ids: Vec<u64> = (0..n as u64).map(|i| i * 3 + 1).collect();
            // Shuffle ids (Fisher–Yates via the repo rng).
            for i in (1..n).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                ids.swap(i, j);
            }
            // Row i's payload encodes its id so we can verify the pairing.
            let mut rows = Matrix::from_rows(
                d,
                ids.iter().map(|&id| {
                    (0..d)
                        .map(|c| (id * 10 + c as u64) as f32)
                        .collect::<Vec<_>>()
                }),
            );
            let mut ids2 = ids.clone();
            sort_rows_by_ids(&mut ids2, &mut rows);
            let mut expect = ids;
            expect.sort_unstable();
            assert_eq!(ids2, expect);
            for (i, &id) in ids2.iter().enumerate() {
                assert_eq!(rows.row(i)[0], (id * 10) as f32, "row {i} mispaired");
                assert_eq!(rows.row(i)[d - 1], (id * 10 + d as u64 - 1) as f32);
            }
        }
    }
}
