//! Results of a sharded fan-out search, with per-shard diagnostics.

use promips_core::SearchItem;

/// Per-shard outcome of one fan-out query, including the maintenance
/// counters operators watch to see compaction debt accumulate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardQueryStats {
    /// Shard id.
    pub shard: u32,
    /// Points stored in the shard (live + tombstoned).
    pub points: u64,
    /// True when the norm bound pruned the shard without searching it.
    pub pruned: bool,
    /// True when this shard's search failed (IO fault, deadline, panic)
    /// and its contribution is missing from the merge — only ever set
    /// under [`crate::DegradationPolicy::BestEffort`]; fail-fast queries
    /// error instead of returning stats.
    pub failed: bool,
    /// True when the shard ran the exact-scan fallback instead of its
    /// ProMIPS index.
    pub exact: bool,
    /// Candidates whose exact inner product was computed in this shard
    /// (zero for pruned shards).
    pub verified: usize,
    /// Candidates the shard's SQ8 verification screen dropped without an
    /// exact rescore (zero for pruned or exact-scan shards, and for shards
    /// whose index file predates the verification tier).
    pub screened: usize,
    /// Items the shard contributed to the merge (before the global top-k
    /// cut).
    pub returned: usize,
    /// Uncompacted delta inserts the query had to verify exhaustively —
    /// when this grows, queries slow down and compaction is due.
    pub delta_len: usize,
    /// Tombstoned points still occupying the shard's file.
    pub tombstones: usize,
    /// Bytes in the shard's write-ahead log (0 for in-memory indexes).
    pub wal_bytes: u64,
}

/// How the last maintenance pass that touched a shard ended (see
/// [`ShardMaintenance::last_compaction`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CompactionOutcome {
    /// No compaction has run against this shard since it was opened.
    #[default]
    Never,
    /// The shard's delta/tombstones were folded into a new generation.
    Compacted,
    /// The whole index was re-partitioned, rebuilding this shard.
    Repartitioned,
    /// The last attempt errored (the old generation stayed live, or the
    /// swap landed but its WAL rewrite failed — either way an operator
    /// should look).
    Failed,
}

impl CompactionOutcome {
    /// Stable numeric code for the registry gauge that backs this field.
    pub(crate) fn as_code(self) -> i64 {
        match self {
            CompactionOutcome::Never => 0,
            CompactionOutcome::Compacted => 1,
            CompactionOutcome::Repartitioned => 2,
            CompactionOutcome::Failed => 3,
        }
    }

    pub(crate) fn from_code(code: i64) -> Self {
        match code {
            1 => CompactionOutcome::Compacted,
            2 => CompactionOutcome::Repartitioned,
            3 => CompactionOutcome::Failed,
            _ => CompactionOutcome::Never,
        }
    }
}

/// One shard's maintenance ledger (see
/// [`crate::ShardedProMips::maintenance_stats`]): how much uncompacted
/// state it carries and how big its write-ahead log has grown — the
/// numbers an operator (or [`crate::CompactionPolicy`]) watches to decide
/// when compaction is due.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardMaintenance {
    /// Shard id.
    pub shard: u32,
    /// Live (non-tombstoned) points.
    pub live: u64,
    /// Uncompacted delta inserts.
    pub delta_len: usize,
    /// Tombstoned points awaiting compaction.
    pub tombstones: usize,
    /// Bytes in the shard's write-ahead log (0 for in-memory indexes).
    pub wal_bytes: u64,
    /// Data-file generation (bumped by each compaction; 0 in-memory).
    pub generation: u64,
    /// Nanoseconds since the live generation was installed (built, opened,
    /// or swapped in by compaction) — how stale the committed file is.
    pub generation_age_ns: u64,
    /// How the last maintenance pass against this shard ended.
    pub last_compaction: CompactionOutcome,
}

/// Result of a sharded c-k-AMIP search: the merged global top-k plus what
/// each shard did.
#[derive(Debug, Clone)]
pub struct ShardedSearchResult {
    /// Top-k items by exact inner product, descending; ids are **global**
    /// dataset row ids.
    pub items: Vec<SearchItem>,
    /// Total candidates verified across all searched shards.
    pub verified: usize,
    /// Total candidates screened out (skipped without an exact rescore) by
    /// the shards' SQ8 verification tiers.
    pub screened: usize,
    /// Per-shard diagnostics, indexed by shard id.
    pub per_shard: Vec<ShardQueryStats>,
    /// True when at least one shard failed and was excluded from the
    /// merge under [`crate::DegradationPolicy::BestEffort`]: the items
    /// are the exact top-k over the **surviving** shards only. Always
    /// false for fail-fast (and healthy) queries.
    pub degraded: bool,
}

impl ShardedSearchResult {
    /// The best inner product found (None for an empty result).
    pub fn best_ip(&self) -> Option<f64> {
        self.items.first().map(|i| i.ip)
    }

    /// The ids in rank order.
    pub fn ids(&self) -> Vec<u64> {
        self.items.iter().map(|i| i.id).collect()
    }

    /// Number of shards actually searched.
    pub fn shards_searched(&self) -> usize {
        self.per_shard.iter().filter(|s| !s.pruned).count()
    }

    /// Number of shards pruned by the norm bound.
    pub fn shards_pruned(&self) -> usize {
        self.per_shard.iter().filter(|s| s.pruned).count()
    }

    /// Number of shards whose search failed and was excluded from the
    /// merge (non-zero only for degraded best-effort results).
    pub fn shards_failed(&self) -> usize {
        self.per_shard.iter().filter(|s| s.failed).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let r = ShardedSearchResult {
            items: vec![SearchItem { id: 9, ip: 4.0 }, SearchItem { id: 2, ip: 1.0 }],
            verified: 12,
            screened: 8,
            per_shard: vec![
                ShardQueryStats {
                    shard: 0,
                    points: 10,
                    pruned: false,
                    failed: false,
                    exact: false,
                    verified: 12,
                    screened: 8,
                    returned: 2,
                    delta_len: 0,
                    tombstones: 0,
                    wal_bytes: 0,
                },
                ShardQueryStats {
                    shard: 1,
                    points: 3,
                    pruned: true,
                    failed: true,
                    exact: true,
                    verified: 0,
                    screened: 0,
                    returned: 0,
                    delta_len: 1,
                    tombstones: 2,
                    wal_bytes: 64,
                },
            ],
            degraded: true,
        };
        assert_eq!(r.best_ip(), Some(4.0));
        assert_eq!(r.ids(), vec![9, 2]);
        assert_eq!(r.shards_searched(), 1);
        assert_eq!(r.shards_pruned(), 1);
        assert_eq!(r.shards_failed(), 1);
        assert!(r.degraded);
    }
}
