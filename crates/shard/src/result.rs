//! Results of a sharded fan-out search, with per-shard diagnostics.

use promips_core::SearchItem;

/// Per-shard outcome of one fan-out query.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardQueryStats {
    /// Shard id.
    pub shard: u32,
    /// Points stored in the shard.
    pub points: u64,
    /// True when the norm bound pruned the shard without searching it.
    pub pruned: bool,
    /// True when the shard ran the exact-scan fallback instead of its
    /// ProMIPS index.
    pub exact: bool,
    /// Candidates whose exact inner product was computed in this shard
    /// (zero for pruned shards).
    pub verified: usize,
    /// Items the shard contributed to the merge (before the global top-k
    /// cut).
    pub returned: usize,
}

/// Result of a sharded c-k-AMIP search: the merged global top-k plus what
/// each shard did.
#[derive(Debug, Clone)]
pub struct ShardedSearchResult {
    /// Top-k items by exact inner product, descending; ids are **global**
    /// dataset row ids.
    pub items: Vec<SearchItem>,
    /// Total candidates verified across all searched shards.
    pub verified: usize,
    /// Per-shard diagnostics, indexed by shard id.
    pub per_shard: Vec<ShardQueryStats>,
}

impl ShardedSearchResult {
    /// The best inner product found (None for an empty result).
    pub fn best_ip(&self) -> Option<f64> {
        self.items.first().map(|i| i.ip)
    }

    /// The ids in rank order.
    pub fn ids(&self) -> Vec<u64> {
        self.items.iter().map(|i| i.id).collect()
    }

    /// Number of shards actually searched.
    pub fn shards_searched(&self) -> usize {
        self.per_shard.iter().filter(|s| !s.pruned).count()
    }

    /// Number of shards pruned by the norm bound.
    pub fn shards_pruned(&self) -> usize {
        self.per_shard.iter().filter(|s| s.pruned).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let r = ShardedSearchResult {
            items: vec![SearchItem { id: 9, ip: 4.0 }, SearchItem { id: 2, ip: 1.0 }],
            verified: 12,
            per_shard: vec![
                ShardQueryStats {
                    shard: 0,
                    points: 10,
                    pruned: false,
                    exact: false,
                    verified: 12,
                    returned: 2,
                },
                ShardQueryStats {
                    shard: 1,
                    points: 3,
                    pruned: true,
                    exact: true,
                    verified: 0,
                    returned: 0,
                },
            ],
        };
        assert_eq!(r.best_ip(), Some(4.0));
        assert_eq!(r.ids(), vec![9, 2]);
        assert_eq!(r.shards_searched(), 1);
        assert_eq!(r.shards_pruned(), 1);
    }
}
