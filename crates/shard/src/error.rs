//! Typed query-lifecycle errors for the sharded fan-out.
//!
//! The fan-out used to ride plain `io::Result`: the first shard failure
//! aborted the whole query with whatever `io::Error` the shard produced,
//! and there was no way to tell a storage fault from an expired deadline,
//! a cancelled query, or a crashed worker. [`QueryError`] names the four
//! ways a sharded search can refuse to answer — and [`ShardError`] pins a
//! shard-level failure to the shard that produced it — so a serving layer
//! can route each one differently: retry elsewhere on
//! [`ShardErrorKind::Io`], shed load on [`QueryError::Overloaded`], and
//! simply report [`QueryError::DeadlineExceeded`] to the client that set
//! the budget.
//!
//! [`DegradationPolicy`] decides what a shard failure does to the query:
//! [`DegradationPolicy::FailFast`] (the default) aborts with a typed
//! error naming the shard, exactly like the historical behavior;
//! [`DegradationPolicy::BestEffort`] excludes the failed shard from the
//! merge and returns the top-k over the survivors with
//! [`crate::ShardedSearchResult::degraded`] set.

use std::fmt;
use std::io;

/// What the fan-out does when one shard's search fails mid-query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DegradationPolicy {
    /// The first shard failure aborts the whole query with a
    /// [`QueryError`] naming the shard. Deterministic: when several
    /// shards fail in one query, the lowest shard index is reported
    /// regardless of worker scheduling. The default — exact-or-error, no
    /// silent recall loss.
    #[default]
    FailFast,
    /// Failed shards are dropped from the merge; the query returns the
    /// best-effort top-k over surviving shards with
    /// [`crate::ShardedSearchResult::degraded`] set and the failed shards
    /// flagged in the per-shard stats. Only a query that loses **every**
    /// shard (or is refused by the admission gate) still errors.
    BestEffort,
}

/// Why one shard's search failed.
#[derive(Debug)]
pub enum ShardErrorKind {
    /// The shard's storage failed underneath the search.
    Io(io::Error),
    /// The query's deadline expired inside this shard.
    DeadlineExceeded,
    /// The query's cancellation token fired inside this shard.
    Cancelled,
    /// The shard's search worker panicked. The shard's shared state is
    /// suspect; under [`DegradationPolicy::BestEffort`] it is excluded
    /// like any other failure, but an operator should look.
    Poisoned,
}

/// One shard's search failure, naming the shard.
#[derive(Debug)]
pub struct ShardError {
    /// Index of the shard that failed.
    pub shard: u32,
    /// What went wrong inside it.
    pub kind: ShardErrorKind,
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            // The inner message rides along so markers (e.g. the fault
            // shim's) survive the wrapper.
            ShardErrorKind::Io(e) => write!(f, "shard {} failed: {e}", self.shard),
            ShardErrorKind::DeadlineExceeded => {
                write!(f, "shard {} hit the query deadline", self.shard)
            }
            ShardErrorKind::Cancelled => write!(f, "shard {} query cancelled", self.shard),
            ShardErrorKind::Poisoned => {
                write!(f, "shard {} search worker panicked", self.shard)
            }
        }
    }
}

impl std::error::Error for ShardError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match &self.kind {
            ShardErrorKind::Io(e) => Some(e),
            _ => None,
        }
    }
}

/// Why a sharded search returned no result.
#[derive(Debug)]
pub enum QueryError {
    /// The query's [`promips_obs::QueryBudget`] deadline expired (under
    /// [`DegradationPolicy::BestEffort`], only when no shard finished in
    /// time — a partial expiry degrades instead).
    DeadlineExceeded,
    /// The query's cancellation token fired.
    Cancelled,
    /// The admission gate refused the query: `in_flight` searches were
    /// already running against a limit of `limit`. Purely a load
    /// condition — retrying after backoff is reasonable.
    Overloaded { in_flight: usize, limit: usize },
    /// A shard failed and the policy said not to degrade (or every shard
    /// failed).
    Shard(ShardError),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::DeadlineExceeded => write!(f, "query budget deadline exceeded"),
            Self::Cancelled => write!(f, "query cancelled"),
            Self::Overloaded { in_flight, limit } => write!(
                f,
                "query shed by admission control: {in_flight} in flight, limit {limit}"
            ),
            Self::Shard(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for QueryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Shard(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ShardError> for QueryError {
    fn from(e: ShardError) -> Self {
        // A budget expiry is a property of the query, not the shard that
        // happened to notice it first: promote it to the query-level
        // variant so callers match one place.
        match e.kind {
            ShardErrorKind::DeadlineExceeded => Self::DeadlineExceeded,
            ShardErrorKind::Cancelled => Self::Cancelled,
            _ => Self::Shard(e),
        }
    }
}

impl From<QueryError> for io::Error {
    /// Kind mapping for callers on the plain `io::Result` search paths:
    /// deadline → `TimedOut`, overload → `WouldBlock` (both retryable
    /// conditions under [`promips_storage::retry`]'s transiency rules),
    /// shard IO keeps the underlying kind. The typed error stays
    /// downcastable via [`io::Error::get_ref`].
    fn from(e: QueryError) -> Self {
        let kind = match &e {
            QueryError::DeadlineExceeded => io::ErrorKind::TimedOut,
            QueryError::Cancelled => io::ErrorKind::Other,
            QueryError::Overloaded { .. } => io::ErrorKind::WouldBlock,
            QueryError::Shard(se) => match &se.kind {
                ShardErrorKind::Io(inner) => inner.kind(),
                ShardErrorKind::DeadlineExceeded => io::ErrorKind::TimedOut,
                _ => io::ErrorKind::Other,
            },
        };
        io::Error::new(kind, e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_shard_and_keeps_the_inner_message() {
        let e = ShardError {
            shard: 3,
            kind: ShardErrorKind::Io(io::Error::other("injected fault: Read #1")),
        };
        let msg = e.to_string();
        assert!(msg.contains("shard 3"), "{msg}");
        assert!(msg.contains("injected fault"), "{msg}");
    }

    #[test]
    fn budget_kinds_promote_to_query_level() {
        let q: QueryError = ShardError {
            shard: 1,
            kind: ShardErrorKind::DeadlineExceeded,
        }
        .into();
        assert!(matches!(q, QueryError::DeadlineExceeded));
        let q: QueryError = ShardError {
            shard: 1,
            kind: ShardErrorKind::Cancelled,
        }
        .into();
        assert!(matches!(q, QueryError::Cancelled));
        let q: QueryError = ShardError {
            shard: 1,
            kind: ShardErrorKind::Poisoned,
        }
        .into();
        assert!(matches!(q, QueryError::Shard(_)));
    }

    #[test]
    fn io_conversion_maps_kinds_and_stays_downcastable() {
        let e: io::Error = QueryError::DeadlineExceeded.into();
        assert_eq!(e.kind(), io::ErrorKind::TimedOut);
        let e: io::Error = QueryError::Overloaded {
            in_flight: 9,
            limit: 8,
        }
        .into();
        assert_eq!(e.kind(), io::ErrorKind::WouldBlock);
        assert!(e.to_string().contains("9 in flight"));
        let inner = io::Error::new(io::ErrorKind::PermissionDenied, "disk");
        let e: io::Error = QueryError::Shard(ShardError {
            shard: 0,
            kind: ShardErrorKind::Io(inner),
        })
        .into();
        assert_eq!(e.kind(), io::ErrorKind::PermissionDenied);
        let q = e
            .get_ref()
            .and_then(|i| i.downcast_ref::<QueryError>())
            .expect("typed error survives the io wrapper");
        assert!(matches!(q, QueryError::Shard(_)));
    }
}
