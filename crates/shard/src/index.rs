//! The sharded index: construction, shard bookkeeping, and the MVCC-lite
//! state layout that lets queries run concurrently with mutations.
//!
//! ## Isolation scheme
//!
//! Each [`Shard`] splits its state into an **immutable generation** and a
//! small **mutable overlay**:
//!
//! * [`ShardGeneration`] — the index (or exact-scan matrix) as of the
//!   shard's last (re)build, plus its committed id map and norm bound.
//!   Generations are never mutated; they are *replaced*, wholesale, behind
//!   an atomically swappable `RwLock<Arc<ShardGeneration>>` handle (the
//!   poor man's arc-swap — the write lock is held only for the pointer
//!   swap, never for IO).
//! * [`DeltaState`] — everything since that build: appended rows, the
//!   copy-on-write tombstone set, and the live norm bound. Guarded by a
//!   per-shard `RwLock` that readers hold only long enough to clone the
//!   overlay (rows are `Arc<[f32]>`, the tombstone set an `Arc<HashSet>`),
//!   so a query owns a consistent snapshot without blocking writers.
//!
//! A reader therefore **never blocks on a mutation**: inserts and deletes
//! take the delta write lock for a few pointer pushes (their fsync happens
//! *outside* any lock readers touch), and compaction builds the next
//! generation entirely off to the side before swapping the handle.
//!
//! Lock order (outer → inner): `mut_order` → `compact_lock` →
//! `manifest_lock` → `wal` → `delta` → `gen`. Every code path acquires
//! along this order, which is what makes the background compactor, the
//! writers, and the fan-out readers deadlock-free by construction.

use std::collections::HashSet;
use std::io;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};
use promips_core::{ProMips, ProMipsConfig};
use promips_linalg::{sq_norm2, Matrix};
use promips_storage::{AccessStatsSnapshot, Pager};
use promips_wal::Wal;

use crate::config::ShardedConfig;
use crate::partition::Partitioner;

/// Golden-ratio stride for deriving per-shard seeds; shard 0 keeps the base
/// seed so a one-shard build reproduces the unsharded index exactly.
const SEED_STRIDE: u64 = 0x9E37_79B9_7F4A_7C15;

/// Seed for shard `si` derived from the base config seed.
pub(crate) fn shard_seed(base: u64, si: usize) -> u64 {
    base ^ (si as u64).wrapping_mul(SEED_STRIDE)
}

/// What backs a generation's queries. (The indexed variant is boxed: a
/// `ProMips` handle is hundreds of bytes, an exact generation a matrix.)
pub(crate) enum GenKind {
    /// A full ProMIPS index over the generation's rows (own pager, own
    /// file). Built fresh at each compaction, so it carries no internal
    /// delta or tombstones — the shard-level overlay is the only one.
    Indexed(Box<ProMips>),
    /// Blocked exact scan (small or empty generations), following the
    /// small-shard regime of "To Index or Not to Index" (arXiv:1706.01449).
    Exact(Matrix),
}

/// One immutable generation of a shard: its committed id map, the norm
/// bound over those rows, and the query backend. Shared with readers as
/// `Arc<ShardGeneration>`; replaced (never mutated) by compaction.
pub(crate) struct ShardGeneration {
    /// Committed shard-local id → global id, ascending (so per-shard
    /// tie-breaking by local id agrees with global tie-breaking by global
    /// id, and membership checks are binary searches).
    pub ids: Vec<u64>,
    /// `max ‖o‖₂` over the committed rows (not squared).
    pub built_max_norm: f64,
    /// Monotone rebuild counter; durable shards name their data file by it.
    pub generation: u64,
    pub kind: GenKind,
}

impl ShardGeneration {
    pub(crate) fn is_exact(&self) -> bool {
        matches!(self.kind, GenKind::Exact(_))
    }
}

/// One row appended since the shard's last rebuild. The row is `Arc`ed so
/// query snapshots and compaction freezes share it without copying.
#[derive(Clone)]
pub(crate) struct DeltaInsert {
    pub gid: u64,
    pub row: Arc<[f32]>,
    /// `‖row‖₂`, precomputed at insert time.
    pub norm: f64,
}

/// The mutable overlay on top of a [`ShardGeneration`]: everything a query
/// must merge with the committed index to see the live state.
pub(crate) struct DeltaState {
    /// Rows appended since the last rebuild, ascending by global id
    /// (global ids are assigned monotonically and per-shard WAL order
    /// follows assignment order).
    pub inserts: Vec<DeltaInsert>,
    /// Global ids tombstoned since the last rebuild — committed rows and
    /// delta rows alike. Copy-on-write: a query clones the `Arc`, a delete
    /// clones the set only when a reader still holds it.
    pub tombstones: Arc<HashSet<u64>>,
    /// Live norm bound: `built_max_norm` raised in place by delta inserts.
    /// Deletes leave it conservative (a tombstoned max-norm point only
    /// enlarges searched ranges); compaction re-tightens it.
    pub max_norm: f64,
    /// How many tombstones target **committed** ids — the `dead_count`
    /// the masked index search needs for its `k` clamp.
    pub dead_base: usize,
}

impl DeltaState {
    pub(crate) fn empty(built_max_norm: f64) -> Self {
        Self {
            inserts: Vec::new(),
            tombstones: Arc::new(HashSet::new()),
            max_norm: built_max_norm,
            dead_base: 0,
        }
    }
}

/// A consistent point-in-time view of one shard, owned by a query for its
/// whole run: the generation `Arc` plus a clone of the overlay. Taking one
/// holds the delta read lock for the duration of two `Arc` clones and a
/// `Vec` clone of `Arc`ed rows.
pub(crate) struct ShardSnapshot {
    pub gen: Arc<ShardGeneration>,
    pub inserts: Vec<DeltaInsert>,
    pub tombstones: Arc<HashSet<u64>>,
    pub max_norm: f64,
    pub dead_base: usize,
}

impl ShardSnapshot {
    /// Points stored (committed + delta, live + tombstoned).
    pub(crate) fn stored(&self) -> usize {
        self.gen.ids.len() + self.inserts.len()
    }
}

/// One shard: an atomically swappable immutable generation, the mutable
/// delta/tombstone overlay, the shard's write-ahead log, and the lock a
/// compaction holds to keep rebuilds of the same shard from overlapping.
pub struct Shard {
    /// The committed generation handle. Swapped (under a brief write lock)
    /// by compaction; read-locked only long enough to clone the `Arc`.
    pub(crate) generation: RwLock<Arc<ShardGeneration>>,
    /// The mutable overlay. Writers hold the write lock for in-memory
    /// pushes only — never across IO.
    pub(crate) delta: RwLock<DeltaState>,
    /// The shard's write-ahead log (`None` until the first durable
    /// mutation, and always `None` for in-memory indexes). Doubles as the
    /// shard's **mutation lock**: holding it freezes the overlay against
    /// other mutators and against a compaction commit, which is what keeps
    /// the WAL byte order equal to the apply order.
    pub(crate) wal: Mutex<Option<Wal>>,
    /// Held across one shard compaction (freeze → shadow build → commit);
    /// [`crate::ShardedProMips::repartition`] takes all of them.
    pub(crate) compact_lock: Mutex<()>,
    /// [`promips_obs::now_ns`] timestamp of the live generation's install
    /// (build, open, or swap) — [`crate::ShardMaintenance`] reports the age.
    pub(crate) gen_installed_ns: promips_obs::Gauge,
    /// [`crate::CompactionOutcome`] code of the last maintenance pass that
    /// touched this shard (a registry-style gauge, updated incrementally by
    /// the compaction paths).
    pub(crate) last_compaction: promips_obs::Gauge,
}

impl Shard {
    pub(crate) fn new(generation: ShardGeneration) -> Self {
        let delta = DeltaState::empty(generation.built_max_norm);
        let shard = Self {
            generation: RwLock::new(Arc::new(generation)),
            delta: RwLock::new(delta),
            wal: Mutex::new(None),
            compact_lock: Mutex::new(()),
            gen_installed_ns: promips_obs::Gauge::NEW,
            last_compaction: promips_obs::Gauge::NEW,
        };
        shard.gen_installed_ns.set(promips_obs::now_ns() as i64);
        shard
    }

    /// Records a generation swap for the maintenance ledger: stamps the
    /// install time and the outcome of the pass that produced it.
    pub(crate) fn note_generation_swap(&self, outcome: crate::result::CompactionOutcome) {
        self.gen_installed_ns.set(promips_obs::now_ns() as i64);
        self.last_compaction.set(outcome.as_code());
    }

    /// A consistent snapshot of the shard (see [`ShardSnapshot`]). The
    /// delta read lock is held while the generation `Arc` is cloned, and
    /// commits swap both under the delta **write** lock, so the pair is
    /// always mutually consistent.
    pub(crate) fn snapshot(&self) -> ShardSnapshot {
        let delta = self.delta.read();
        let gen = Arc::clone(&self.generation.read());
        ShardSnapshot {
            gen,
            inserts: delta.inserts.clone(),
            tombstones: Arc::clone(&delta.tombstones),
            max_norm: delta.max_norm,
            dead_base: delta.dead_base,
        }
    }

    /// Number of points stored in this shard (live + tombstoned).
    pub fn len(&self) -> u64 {
        let delta = self.delta.read();
        (self.generation.read().ids.len() + delta.inserts.len()) as u64
    }

    /// True when the shard holds no points.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of live (non-tombstoned) points.
    pub fn live_len(&self) -> u64 {
        let delta = self.delta.read();
        (self.generation.read().ids.len() + delta.inserts.len() - delta.tombstones.len()) as u64
    }

    /// Points inserted since the shard's last (re)build — the in-memory
    /// delta that queries verify exhaustively and compaction folds away.
    pub fn delta_len(&self) -> usize {
        self.delta.read().inserts.len()
    }

    /// Tombstoned (deleted but not yet compacted) points.
    pub fn tombstone_count(&self) -> usize {
        self.delta.read().tombstones.len()
    }

    /// The shard's inner-product norm bound `max ‖o‖₂`, **including delta
    /// inserts**: [`crate::ShardedProMips::insert`] raises it in place
    /// whenever a new point's norm exceeds it, so Cauchy–Schwarz pruning
    /// and the seed-probe ordering stay sound under mutation (a tombstoned
    /// max-norm point only leaves the bound conservative). Compaction
    /// re-tightens it over the live rows.
    pub fn max_norm(&self) -> f64 {
        self.delta.read().max_norm
    }

    /// True when the shard answers queries by exact scan instead of an
    /// index.
    pub fn is_exact(&self) -> bool {
        self.generation.read().is_exact()
    }

    /// Global ids of the shard's points (committed generation first, then
    /// the delta), including tombstoned ids still awaiting compaction.
    pub fn global_ids(&self) -> Vec<u64> {
        let delta = self.delta.read();
        let gen = self.generation.read();
        let mut ids = gen.ids.clone();
        ids.extend(delta.inserts.iter().map(|e| e.gid));
        ids
    }

    /// Data-file generation (bumped by each compaction).
    pub fn generation_number(&self) -> u64 {
        self.generation.read().generation
    }
}

/// A sharded ProMIPS index: `N` shards, each owning its own storage
/// (pager + file), its own ProMIPS/iDistance index (or an exact-scan
/// fallback below [`ShardedConfig::exact_threshold`]), searched by a
/// norm-bound-pruned parallel fan-out (see [`crate::search`]).
///
/// All operations — including [`ShardedProMips::insert`],
/// [`ShardedProMips::delete`], and [`ShardedProMips::compact`] — take
/// `&self`; interior per-shard locking (see [`Shard`]) isolates readers
/// from writers, so the index can be shared across threads (`Arc<Self>`)
/// with queries running concurrently with mutations and background
/// compaction.
pub struct ShardedProMips {
    pub(crate) config: ShardedConfig,
    pub(crate) shards: Vec<Shard>,
    pub(crate) d: usize,
    /// Live (non-tombstoned) points across all shards.
    pub(crate) n_points: AtomicU64,
    /// Next global id handed out by [`ShardedProMips::insert`] (global ids
    /// are stable across compactions and re-partitions).
    pub(crate) next_global_id: AtomicU64,
    /// Serializes mutation *ordering*: held from global-id assignment until
    /// the owning shard's WAL lock is acquired, so per-shard WAL append
    /// order always equals global-id order. Re-partitioning holds it for
    /// its whole run (writes briefly block on writes; reads never do).
    pub(crate) mut_order: Mutex<()>,
    /// Serializes manifest replacement across shard commits.
    pub(crate) manifest_lock: Mutex<()>,
    /// Home directory of a durable index; `None` for in-memory builds,
    /// whose mutations are volatile.
    pub(crate) dir: Option<std::path::PathBuf>,
    /// Name of the partitioner that built the assignment (for reporting).
    pub(crate) partitioner_name: String,
    /// Searches currently running (admission-control gauge; see
    /// [`ShardedConfig::max_in_flight`]).
    pub(crate) in_flight: AtomicUsize,
}

impl ShardedProMips {
    /// Builds the sharded index with one in-memory page device per shard,
    /// using the partitioner named by `config.strategy`.
    pub fn build_in_memory(data: &Matrix, config: ShardedConfig) -> io::Result<Self> {
        let strategy = config.strategy;
        Self::build_with_partitioner(data, config, strategy.partitioner())
    }

    /// As [`ShardedProMips::build_in_memory`] with a caller-supplied
    /// [`Partitioner`] (`config.strategy` is ignored for the assignment but
    /// still recorded in snapshots).
    pub fn build_with_partitioner(
        data: &Matrix,
        config: ShardedConfig,
        partitioner: &dyn Partitioner,
    ) -> io::Result<Self> {
        let base = config.base.clone();
        Self::build_impl(data, config, partitioner, |_si| {
            Ok(Arc::new(Pager::in_memory(base.page_size, base.pool_pages)))
        })
    }

    /// Shared build path; `pager_for(si)` supplies the page device for each
    /// *indexed* shard (exact-scan shards keep their rows in memory and
    /// only touch disk at snapshot time).
    pub(crate) fn build_impl(
        data: &Matrix,
        config: ShardedConfig,
        partitioner: &dyn Partitioner,
        mut pager_for: impl FnMut(usize) -> io::Result<Arc<Pager>>,
    ) -> io::Result<Self> {
        config.validate();
        assert!(
            !data.is_empty(),
            "cannot build a sharded index over an empty dataset"
        );
        let n = data.rows();
        let d = data.cols();
        let assign = partitioner.assign(data, config.shards);
        assert_eq!(
            assign.len(),
            n,
            "partitioner returned {} assignments for {n} rows",
            assign.len()
        );

        // Membership lists in ascending global-id order (the id-map order
        // every tie-break rule depends on).
        let mut members: Vec<Vec<usize>> = vec![Vec::new(); config.shards];
        for (i, &s) in assign.iter().enumerate() {
            assert!(
                (s as usize) < config.shards,
                "partitioner assigned row {i} to shard {s} of {}",
                config.shards
            );
            members[s as usize].push(i);
        }

        let mut shards = Vec::with_capacity(config.shards);
        for (si, m) in members.iter().enumerate() {
            let ids: Vec<u64> = m.iter().map(|&i| i as u64).collect();
            let rows = data.gather(m);
            let max_norm = rows.iter_rows().map(sq_norm2).fold(0.0f64, f64::max).sqrt();
            let kind = if m.is_empty() || m.len() < config.exact_threshold {
                GenKind::Exact(rows)
            } else {
                let mut cfg: ProMipsConfig = config.base.clone();
                cfg.seed = shard_seed(config.base.seed, si);
                GenKind::Indexed(Box::new(ProMips::build_with_pager(
                    &rows,
                    cfg,
                    pager_for(si)?,
                )?))
            };
            shards.push(Shard::new(ShardGeneration {
                ids,
                built_max_norm: max_norm,
                generation: 0,
                kind,
            }));
        }

        Ok(Self {
            config,
            shards,
            d,
            n_points: AtomicU64::new(n as u64),
            next_global_id: AtomicU64::new(n as u64),
            mut_order: Mutex::new(()),
            manifest_lock: Mutex::new(()),
            dir: None,
            partitioner_name: partitioner.name().to_string(),
            in_flight: AtomicUsize::new(0),
        })
    }

    /// Total number of live points across all shards.
    pub fn len(&self) -> u64 {
        self.n_points.load(Ordering::Acquire)
    }

    /// True when no live points remain (a freshly built index never is;
    /// deleting everything gets here).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The next global id an insert will be assigned.
    pub fn next_global_id(&self) -> u64 {
        self.next_global_id.load(Ordering::Acquire)
    }

    /// True when the index is directory-backed and mutations are logged to
    /// per-shard WALs (false for in-memory builds, whose mutations are
    /// volatile).
    pub fn is_durable(&self) -> bool {
        self.dir.is_some()
    }

    /// Bytes in shard `si`'s write-ahead log (header included), or 0 when
    /// the shard has no log yet.
    pub fn wal_bytes(&self, si: usize) -> u64 {
        self.shards[si]
            .wal
            .lock()
            .as_ref()
            .map_or(0, |w| w.size_bytes())
    }

    /// Per-shard maintenance counters: live points, uncompacted delta,
    /// tombstones, WAL size, data-file generation plus its age, and how
    /// the last compaction pass ended — what an operator watches to see
    /// compaction debt accumulate.
    pub fn maintenance_stats(&self) -> Vec<crate::result::ShardMaintenance> {
        let now = promips_obs::now_ns();
        self.shards
            .iter()
            .enumerate()
            .map(|(si, s)| {
                let snap = s.snapshot();
                crate::result::ShardMaintenance {
                    shard: si as u32,
                    live: (snap.stored() - snap.tombstones.len()) as u64,
                    delta_len: snap.inserts.len(),
                    tombstones: snap.tombstones.len(),
                    wal_bytes: self.wal_bytes(si),
                    generation: snap.gen.generation,
                    generation_age_ns: now.saturating_sub(s.gen_installed_ns.get() as u64),
                    last_compaction: crate::result::CompactionOutcome::from_code(
                        s.last_compaction.get(),
                    ),
                }
            })
            .collect()
    }

    /// Age of the stalest shard generation, in nanoseconds — the value
    /// the SLO health evaluator compares against its
    /// `max_generation_age_ns` bound. `None` for an empty index.
    pub fn max_generation_age_ns(&self) -> Option<u64> {
        self.maintenance_stats()
            .iter()
            .map(|m| m.generation_age_ns)
            .max()
    }

    /// Original dimensionality `d`.
    pub fn d(&self) -> usize {
        self.d
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shards, in shard-id order.
    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// Per-shard point counts (shard-local stat used by the persistence
    /// tests and the benchmark report).
    pub fn shard_points(&self) -> Vec<u64> {
        self.shards.iter().map(|s| s.len()).collect()
    }

    /// The active configuration.
    pub fn config(&self) -> &ShardedConfig {
        &self.config
    }

    /// Name of the partitioner that built the shard assignment.
    pub fn partitioner_name(&self) -> &str {
        &self.partitioner_name
    }

    /// Switches the shard-failure degradation policy at runtime. The policy
    /// is not persisted: [`ShardedProMips::open`] always starts from the
    /// default ([`crate::DegradationPolicy::FailFast`]).
    pub fn set_degradation(&mut self, policy: crate::DegradationPolicy) {
        self.config.degradation = policy;
    }

    /// Sets the admission-control limit on concurrently executing queries
    /// (`0` = unlimited). Like the degradation policy, this is a runtime
    /// knob and is not persisted.
    pub fn set_max_in_flight(&mut self, limit: usize) {
        self.config.max_in_flight = limit;
    }

    /// Aggregated page-access counters over every indexed shard (exact
    /// shards are memory-resident and never touch a pager).
    pub fn access_stats(&self) -> AccessStatsSnapshot {
        let mut total = AccessStatsSnapshot::default();
        for s in &self.shards {
            if let GenKind::Indexed(pm) = &s.generation.read().kind {
                let snap = pm.access_stats();
                total.logical_reads += snap.logical_reads;
                total.cache_hits += snap.cache_hits;
                total.cache_misses += snap.cache_misses;
                total.writes += snap.writes;
            }
        }
        total
    }

    /// Resets every shard's page-access counters.
    pub fn reset_stats(&self) {
        for s in &self.shards {
            if let GenKind::Indexed(pm) = &s.generation.read().kind {
                pm.reset_stats();
            }
        }
    }

    /// Drops every shard's cached pages (cold-cache measurements).
    pub fn clear_cache(&self) {
        for s in &self.shards {
            if let GenKind::Indexed(pm) = &s.generation.read().kind {
                pm.clear_cache();
            }
        }
    }

    /// Sum of the paper's Index Size metric over indexed shards, plus the
    /// raw bytes of exact-scan shards, the delta overlays, and the id maps.
    pub fn index_size_bytes(&self) -> u64 {
        let mut total = 0u64;
        for s in &self.shards {
            let snap = s.snapshot();
            total += snap.stored() as u64 * 8;
            total += snap
                .inserts
                .iter()
                .map(|e| e.row.len() as u64 * 4)
                .sum::<u64>();
            match &snap.gen.kind {
                GenKind::Indexed(pm) => total += pm.index_size_bytes(),
                GenKind::Exact(rows) => total += (rows.as_slice().len() * 4) as u64,
            }
        }
        total
    }

    /// Total bytes across every shard's page file (data + index).
    pub fn file_size_bytes(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| match &s.generation.read().kind {
                GenKind::Indexed(pm) => pm.file_size_bytes(),
                GenKind::Exact(rows) => (rows.as_slice().len() * 4) as u64,
            })
            .sum()
    }
}
