//! The sharded index: construction and shard bookkeeping.

use std::io;
use std::sync::Arc;

use promips_core::{ProMips, ProMipsConfig};
use promips_linalg::{sq_norm2, Matrix};
use promips_storage::{AccessStatsSnapshot, Pager};

use crate::config::ShardedConfig;
use crate::partition::Partitioner;

/// Golden-ratio stride for deriving per-shard seeds; shard 0 keeps the base
/// seed so a one-shard build reproduces the unsharded index exactly.
const SEED_STRIDE: u64 = 0x9E37_79B9_7F4A_7C15;

/// Seed for shard `si` derived from the base config seed.
pub(crate) fn shard_seed(base: u64, si: usize) -> u64 {
    base ^ (si as u64).wrapping_mul(SEED_STRIDE)
}

/// A shard that fell below the exact-scan threshold: its rows live as a
/// plain matrix and queries run a blocked exact scan over them, following
/// the small-shard regime of "To Index or Not to Index" (arXiv:1706.01449).
///
/// Mutability mirrors the indexed shard's delta/tombstone scheme at scan
/// granularity: inserts append rows (the scan covers them immediately),
/// deletes flip a per-row tombstone bit the scan skips.
#[derive(Debug)]
pub(crate) struct ExactShard {
    /// Shard rows, local order (row `i` belongs to global id `ids[i]`).
    pub rows: Matrix,
    /// Tombstone bit per local row.
    pub deleted: Vec<bool>,
    /// Rows present at the last (re)build; everything past this is the
    /// in-memory delta (rebuilt away at compaction).
    pub base_rows: usize,
    /// Count of `true` bits in `deleted`.
    pub n_deleted: usize,
}

impl ExactShard {
    /// Wraps freshly (re)built rows: no delta, no tombstones.
    pub(crate) fn new(rows: Matrix) -> Self {
        let n = rows.rows();
        Self {
            rows,
            deleted: vec![false; n],
            base_rows: n,
            n_deleted: 0,
        }
    }
}

/// What backs a shard's queries. (The indexed variant is boxed: a
/// `ProMips` handle is hundreds of bytes, an exact shard a few pointers.)
pub(crate) enum ShardKind {
    /// A full ProMIPS index over the shard's rows (own pager, own file).
    Indexed(Box<ProMips>),
    /// Blocked exact scan (small or empty shards).
    Exact(ExactShard),
}

/// One shard: its global-id map, its norm bound, and its query backend.
pub struct Shard {
    /// Shard-local id → global id. Ascending (members are collected in
    /// global-id order), so per-shard tie-breaking by local id agrees with
    /// global tie-breaking by global id.
    pub(crate) ids: Vec<u64>,
    /// `max ‖o‖₂` over the shard (not squared): with Cauchy–Schwarz,
    /// `⟨o,q⟩ ≤ ‖q‖₂ · max_norm` bounds every inner product in the shard.
    /// Raised in place by delta inserts (see [`Shard::max_norm`]).
    pub(crate) max_norm: f64,
    /// The bound as of the last (re)build — what the manifest records,
    /// since WAL replay re-raises the live bound from the delta records.
    pub(crate) built_max_norm: f64,
    pub(crate) kind: ShardKind,
}

impl Shard {
    /// Number of points stored in this shard (live + tombstoned).
    pub fn len(&self) -> u64 {
        self.ids.len() as u64
    }

    /// True when the shard holds no points.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Number of live (non-tombstoned) points.
    pub fn live_len(&self) -> u64 {
        self.ids.len() as u64 - self.tombstone_count() as u64
    }

    /// Points inserted since the shard's last (re)build — the in-memory
    /// delta that queries verify exhaustively and compaction folds away.
    pub fn delta_len(&self) -> usize {
        match &self.kind {
            ShardKind::Indexed(pm) => pm.delta_len(),
            ShardKind::Exact(ex) => ex.rows.rows() - ex.base_rows,
        }
    }

    /// Tombstoned (deleted but not yet compacted) points.
    pub fn tombstone_count(&self) -> usize {
        match &self.kind {
            ShardKind::Indexed(pm) => pm.tombstone_count(),
            ShardKind::Exact(ex) => ex.n_deleted,
        }
    }

    /// The shard's inner-product norm bound `max ‖o‖₂`, **including delta
    /// inserts**: [`crate::ShardedProMips::insert`] raises it in place
    /// whenever a new point's norm exceeds it, so Cauchy–Schwarz pruning
    /// and the seed-probe ordering stay sound under mutation (a tombstoned
    /// max-norm point only leaves the bound conservative). Compaction
    /// re-tightens it over the live rows.
    pub fn max_norm(&self) -> f64 {
        self.max_norm
    }

    /// True when the shard answers queries by exact scan instead of an
    /// index.
    pub fn is_exact(&self) -> bool {
        matches!(self.kind, ShardKind::Exact(_))
    }

    /// The shard's ProMIPS index, when it has one.
    pub fn index(&self) -> Option<&ProMips> {
        match &self.kind {
            ShardKind::Indexed(pm) => Some(pm),
            ShardKind::Exact(_) => None,
        }
    }

    /// Global ids of the shard's points, in shard-local order.
    pub fn global_ids(&self) -> &[u64] {
        &self.ids
    }
}

/// A sharded ProMIPS index: `N` shards, each owning its own storage
/// (pager + file), its own ProMIPS/iDistance index (or an exact-scan
/// fallback below [`ShardedConfig::exact_threshold`]), searched by a
/// norm-bound-pruned parallel fan-out (see [`crate::search`]).
pub struct ShardedProMips {
    pub(crate) config: ShardedConfig,
    pub(crate) shards: Vec<Shard>,
    pub(crate) d: usize,
    /// Live (non-tombstoned) points across all shards.
    pub(crate) n_points: u64,
    /// Next global id handed out by [`ShardedProMips::insert`] (global ids
    /// are stable across compactions and re-partitions).
    pub(crate) next_global_id: u64,
    /// Directory-backed durability state; `None` for in-memory builds,
    /// whose mutations are volatile.
    pub(crate) durable: Option<DurableState>,
    /// Name of the partitioner that built the assignment (for reporting).
    pub(crate) partitioner_name: String,
}

/// What a directory-backed index needs to keep its mutations durable: the
/// snapshot directory, one write-ahead log handle per shard (opened on
/// first use), and each shard's data-file generation (bumped by every
/// compaction; the manifest names the live generation, so a crash mid-
/// compaction leaves the old generation authoritative).
pub(crate) struct DurableState {
    pub dir: std::path::PathBuf,
    pub wals: Vec<Option<promips_wal::Wal>>,
    pub generations: Vec<u64>,
}

impl ShardedProMips {
    /// Builds the sharded index with one in-memory page device per shard,
    /// using the partitioner named by `config.strategy`.
    pub fn build_in_memory(data: &Matrix, config: ShardedConfig) -> io::Result<Self> {
        let strategy = config.strategy;
        Self::build_with_partitioner(data, config, strategy.partitioner())
    }

    /// As [`ShardedProMips::build_in_memory`] with a caller-supplied
    /// [`Partitioner`] (`config.strategy` is ignored for the assignment but
    /// still recorded in snapshots).
    pub fn build_with_partitioner(
        data: &Matrix,
        config: ShardedConfig,
        partitioner: &dyn Partitioner,
    ) -> io::Result<Self> {
        let base = config.base.clone();
        Self::build_impl(data, config, partitioner, |_si| {
            Ok(Arc::new(Pager::in_memory(base.page_size, base.pool_pages)))
        })
    }

    /// Shared build path; `pager_for(si)` supplies the page device for each
    /// *indexed* shard (exact-scan shards keep their rows in memory and
    /// only touch disk at snapshot time).
    pub(crate) fn build_impl(
        data: &Matrix,
        config: ShardedConfig,
        partitioner: &dyn Partitioner,
        mut pager_for: impl FnMut(usize) -> io::Result<Arc<Pager>>,
    ) -> io::Result<Self> {
        config.validate();
        assert!(
            !data.is_empty(),
            "cannot build a sharded index over an empty dataset"
        );
        let n = data.rows();
        let d = data.cols();
        let assign = partitioner.assign(data, config.shards);
        assert_eq!(
            assign.len(),
            n,
            "partitioner returned {} assignments for {n} rows",
            assign.len()
        );

        // Membership lists in ascending global-id order (the id-map order
        // every tie-break rule depends on).
        let mut members: Vec<Vec<usize>> = vec![Vec::new(); config.shards];
        for (i, &s) in assign.iter().enumerate() {
            assert!(
                (s as usize) < config.shards,
                "partitioner assigned row {i} to shard {s} of {}",
                config.shards
            );
            members[s as usize].push(i);
        }

        let mut shards = Vec::with_capacity(config.shards);
        for (si, m) in members.iter().enumerate() {
            let ids: Vec<u64> = m.iter().map(|&i| i as u64).collect();
            let rows = data.gather(m);
            let max_norm = rows.iter_rows().map(sq_norm2).fold(0.0f64, f64::max).sqrt();
            let kind = if m.is_empty() || m.len() < config.exact_threshold {
                ShardKind::Exact(ExactShard::new(rows))
            } else {
                let mut cfg: ProMipsConfig = config.base.clone();
                cfg.seed = shard_seed(config.base.seed, si);
                ShardKind::Indexed(Box::new(ProMips::build_with_pager(
                    &rows,
                    cfg,
                    pager_for(si)?,
                )?))
            };
            shards.push(Shard {
                ids,
                max_norm,
                built_max_norm: max_norm,
                kind,
            });
        }

        Ok(Self {
            config,
            shards,
            d,
            n_points: n as u64,
            next_global_id: n as u64,
            durable: None,
            partitioner_name: partitioner.name().to_string(),
        })
    }

    /// Total number of live points across all shards.
    pub fn len(&self) -> u64 {
        self.n_points
    }

    /// True when no live points remain (a freshly built index never is;
    /// deleting everything gets here).
    pub fn is_empty(&self) -> bool {
        self.n_points == 0
    }

    /// The next global id an insert will be assigned.
    pub fn next_global_id(&self) -> u64 {
        self.next_global_id
    }

    /// True when the index is directory-backed and mutations are logged to
    /// per-shard WALs (false for in-memory builds, whose mutations are
    /// volatile).
    pub fn is_durable(&self) -> bool {
        self.durable.is_some()
    }

    /// Bytes in shard `si`'s write-ahead log (header included), or 0 when
    /// the shard has no log yet.
    pub fn wal_bytes(&self, si: usize) -> u64 {
        self.durable
            .as_ref()
            .and_then(|d| d.wals[si].as_ref())
            .map_or(0, |w| w.size_bytes())
    }

    /// Per-shard maintenance counters: live points, uncompacted delta,
    /// tombstones, WAL size, and data-file generation — what an operator
    /// watches to see compaction debt accumulate.
    pub fn maintenance_stats(&self) -> Vec<crate::result::ShardMaintenance> {
        self.shards
            .iter()
            .enumerate()
            .map(|(si, s)| crate::result::ShardMaintenance {
                shard: si as u32,
                live: s.live_len(),
                delta_len: s.delta_len(),
                tombstones: s.tombstone_count(),
                wal_bytes: self.wal_bytes(si),
                generation: self.durable.as_ref().map_or(0, |d| d.generations[si]),
            })
            .collect()
    }

    /// Original dimensionality `d`.
    pub fn d(&self) -> usize {
        self.d
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shards, in shard-id order.
    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// Per-shard point counts (shard-local stat used by the persistence
    /// tests and the benchmark report).
    pub fn shard_points(&self) -> Vec<u64> {
        self.shards.iter().map(|s| s.len()).collect()
    }

    /// The active configuration.
    pub fn config(&self) -> &ShardedConfig {
        &self.config
    }

    /// Name of the partitioner that built the shard assignment.
    pub fn partitioner_name(&self) -> &str {
        &self.partitioner_name
    }

    /// Aggregated page-access counters over every indexed shard (exact
    /// shards are memory-resident and never touch a pager).
    pub fn access_stats(&self) -> AccessStatsSnapshot {
        let mut total = AccessStatsSnapshot::default();
        for s in &self.shards {
            if let ShardKind::Indexed(pm) = &s.kind {
                let snap = pm.access_stats();
                total.logical_reads += snap.logical_reads;
                total.cache_hits += snap.cache_hits;
                total.cache_misses += snap.cache_misses;
                total.writes += snap.writes;
            }
        }
        total
    }

    /// Resets every shard's page-access counters.
    pub fn reset_stats(&self) {
        for s in &self.shards {
            if let ShardKind::Indexed(pm) = &s.kind {
                pm.reset_stats();
            }
        }
    }

    /// Drops every shard's cached pages (cold-cache measurements).
    pub fn clear_cache(&self) {
        for s in &self.shards {
            if let ShardKind::Indexed(pm) = &s.kind {
                pm.clear_cache();
            }
        }
    }

    /// Sum of the paper's Index Size metric over indexed shards, plus the
    /// raw bytes of exact-scan shards and the id maps.
    pub fn index_size_bytes(&self) -> u64 {
        let mut total = 0u64;
        for s in &self.shards {
            total += s.ids.len() as u64 * 8;
            match &s.kind {
                ShardKind::Indexed(pm) => total += pm.index_size_bytes(),
                ShardKind::Exact(ex) => total += (ex.rows.as_slice().len() * 4) as u64,
            }
        }
        total
    }

    /// Total bytes across every shard's page file (data + index).
    pub fn file_size_bytes(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| match &s.kind {
                ShardKind::Indexed(pm) => pm.file_size_bytes(),
                ShardKind::Exact(ex) => (ex.rows.as_slice().len() * 4) as u64,
            })
            .sum()
    }
}
