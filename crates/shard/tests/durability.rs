//! Durability of the sharded mutation lifecycle: WAL-backed inserts and
//! deletes must survive dropping the index mid-stream (the crash model),
//! replay must be idempotent against stale logs, compaction must fold and
//! truncate atomically, and a zero-mutation open must stay bit-identical
//! to the read-only path.

use promips_core::{ProMips, ProMipsConfig};
use promips_linalg::Matrix;
use promips_shard::{CompactionPolicy, MutationError, ShardedConfig, ShardedProMips};
use promips_stats::Xoshiro256pp;
use proptest::prelude::*;

fn random_data(n: usize, d: usize, seed: u64) -> Matrix {
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    Matrix::from_rows(
        d,
        (0..n).map(|_| (0..d).map(|_| rng.normal() as f32).collect::<Vec<f32>>()),
    )
}

fn random_queries(nq: usize, d: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    (0..nq)
        .map(|_| (0..d).map(|_| rng.normal() as f32).collect())
        .collect()
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("promips-dur-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A mutation op decoded from proptest's raw integers.
#[derive(Debug, Clone)]
enum Op {
    /// Insert a vector derived from the seed; `big` scales its norm up so
    /// routing exercises the bound-raising path.
    Insert { seed: u64, big: bool },
    /// Delete `target % (ids assigned so far)` — hits base points, fresh
    /// inserts, already-deleted ids, and never-assigned ids alike.
    Delete { target: u64 },
}

fn decode_ops(raw: &[(u8, u64)]) -> Vec<Op> {
    raw.iter()
        .map(|&(kind, v)| match kind % 4 {
            0 | 1 => Op::Insert {
                seed: v,
                big: kind % 4 == 1,
            },
            2 => Op::Delete { target: v },
            _ => Op::Delete { target: v % 64 },
        })
        .collect()
}

fn op_vector(seed: u64, big: bool, d: usize) -> Vec<f32> {
    let mut rng = Xoshiro256pp::seed_from_u64(seed ^ 0xD1CE);
    let scale = if big { 8.0 } else { 1.0 };
    (0..d).map(|_| (rng.normal() * scale) as f32).collect()
}

/// Applies `ops` identically to any ShardedProMips. Deletes may target
/// dead or never-assigned ids on purpose; those are typed refusals, not
/// failures.
fn apply_ops(idx: &ShardedProMips, ops: &[Op], d: usize) {
    for op in ops {
        match op {
            Op::Insert { seed, big } => {
                idx.insert(&op_vector(*seed, *big, d)).unwrap();
            }
            Op::Delete { target } => {
                let gid = target % idx.next_global_id().max(1);
                match idx.delete(gid) {
                    Ok(()) | Err(MutationError::DeadId(_)) | Err(MutationError::UnknownId(_)) => {}
                    Err(e) => panic!("delete({gid}) failed: {e}"),
                }
            }
        }
    }
}

fn assert_same_search(a: &ShardedProMips, b: &ShardedProMips, d: usize, qseed: u64, label: &str) {
    for (qi, q) in random_queries(6, d, qseed).iter().enumerate() {
        let ra = a.search(q, 8).unwrap();
        let rb = b.search(q, 8).unwrap();
        assert_eq!(ra.items, rb.items, "{label}: query {qi} diverged");
    }
}

/// Every live point with its exact inner product: a search with `k` = live
/// count clamps nowhere and exhaustively verifies, so this is
/// **structure-independent** ground truth — compaction and re-partitioning
/// rearrange the index but must preserve it (ips compared with a small
/// tolerance because delta entries are verified through the single-row
/// `dot` kernel and compacted rows through the blocked `dot4`, which may
/// round differently in the last ulp).
fn full_search_map(idx: &ShardedProMips, q: &[f32]) -> std::collections::BTreeMap<u64, f64> {
    let res = idx.search(q, idx.len() as usize).unwrap();
    res.items.iter().map(|it| (it.id, it.ip)).collect()
}

fn assert_equivalent_full(
    a: &std::collections::BTreeMap<u64, f64>,
    b: &std::collections::BTreeMap<u64, f64>,
    label: &str,
) {
    let ka: Vec<u64> = a.keys().copied().collect();
    let kb: Vec<u64> = b.keys().copied().collect();
    assert_eq!(ka, kb, "{label}: live id sets differ");
    for (id, ip_a) in a {
        let ip_b = b[id];
        assert!(
            (ip_a - ip_b).abs() <= 1e-6 * ip_a.abs().max(1.0),
            "{label}: id {id} ip {ip_a} vs {ip_b}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The acceptance property: after ANY sequence of sharded inserts and
    /// deletes, dropping the index mid-stream (no snapshot, no compaction
    /// — the manifest still describes the initial build) and reopening
    /// from disk yields search results identical to a fresh in-memory
    /// build over the same base data with the same surviving mutation
    /// stream applied.
    #[test]
    fn kill_and_reopen_equals_fresh_replay(
        raw_ops in proptest::collection::vec((0u8..4, 0u64..4000), 0..50),
        data_seed in 0u64..1000,
    ) {
        let d = 10;
        let ops = decode_ops(&raw_ops);
        let data = random_data(220, d, data_seed);
        let cfg = ShardedConfig::builder()
            .shards(3)
            .exact_threshold(50) // norm-range shards hold ~73: all indexed
            .base(ProMipsConfig::builder().seed(data_seed ^ 7).build())
            .build();
        let dir = temp_dir(&format!("kill-{data_seed}-{}", raw_ops.len()));

        // Durable index: build, mutate, drop without any shutdown ritual.
        let durable = ShardedProMips::build_in_dir(&data, cfg.clone(), &dir).unwrap();
        apply_ops(&durable, &ops, d);
        let live_before = durable.len();
        let next_before = durable.next_global_id();
        drop(durable);

        // Volatile twin: same base build, same ops.
        let twin = ShardedProMips::build_in_memory(&data, cfg).unwrap();
        apply_ops(&twin, &ops, d);

        let reopened = ShardedProMips::open(&dir).unwrap();
        prop_assert_eq!(reopened.len(), live_before);
        prop_assert_eq!(reopened.len(), twin.len());
        prop_assert_eq!(reopened.next_global_id(), next_before);
        for (qi, q) in random_queries(5, d, data_seed ^ 0x51).iter().enumerate() {
            let ra = reopened.search(q, 7).unwrap();
            let rb = twin.search(q, 7).unwrap();
            prop_assert_eq!(&ra.items, &rb.items, "query {} diverged", qi);
        }
        // Maintenance ledgers agree shard by shard (wal bytes aside).
        for (sa, sb) in reopened.maintenance_stats().iter().zip(twin.maintenance_stats()) {
            prop_assert_eq!(sa.live, sb.live);
            prop_assert_eq!(sa.delta_len, sb.delta_len);
            prop_assert_eq!(sa.tombstones, sb.tombstones);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

/// A 1-shard directory with zero mutations must open onto today's
/// read-only path bit-for-bit: same items as the plain unsharded index,
/// and no WAL file is ever created without a mutation.
#[test]
fn zero_mutation_open_is_bit_identical_to_readonly_path() {
    let d = 16;
    let data = random_data(500, d, 31);
    let base = ProMipsConfig::builder().c(0.9).p(0.5).seed(77).build();
    let unsharded = ProMips::build_in_memory(&data, base.clone()).unwrap();
    let dir = temp_dir("zero-mut");
    let built = ShardedProMips::build_in_dir(
        &data,
        ShardedConfig::builder()
            .shards(1)
            .exact_threshold(0)
            .base(base)
            .build(),
        &dir,
    )
    .unwrap();
    drop(built);

    assert!(
        !std::fs::read_dir(&dir).unwrap().any(|e| e
            .unwrap()
            .path()
            .extension()
            .is_some_and(|x| x == "wal")),
        "no mutations ⇒ no WAL files"
    );
    let reopened = ShardedProMips::open(&dir).unwrap();
    assert!(reopened.is_durable());
    for q in random_queries(10, d, 33) {
        let a = unsharded.search(&q, 9).unwrap();
        let b = reopened.search(&q, 9).unwrap();
        assert_eq!(a.items, b.items, "one-shard open must match unsharded");
        assert_eq!(a.verified, b.verified);
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Mutations are visible immediately, survive a drop+reopen through the
/// WAL alone, and the per-shard stats expose the accumulating debt.
#[test]
fn mutations_survive_reopen_via_wal() {
    let d = 8;
    let data = random_data(300, d, 5);
    let dir = temp_dir("wal-survive");
    let cfg = ShardedConfig::builder()
        .shards(2)
        .base(ProMipsConfig::builder().seed(3).build())
        .build();
    let idx = ShardedProMips::build_in_dir(&data, cfg, &dir).unwrap();

    let strong = vec![9.0f32; d];
    let gid = idx.insert(&strong).unwrap();
    assert_eq!(gid, 300);
    let q = vec![1.0f32; d];
    let res = idx.search(&q, 3).unwrap();
    assert_eq!(res.items[0].id, gid, "fresh insert must win immediately");
    let victim = res.items[1].id;
    idx.delete(victim).unwrap();
    assert!(
        matches!(idx.delete(victim), Err(MutationError::DeadId(id)) if id == victim),
        "double delete must be a typed DeadId refusal"
    );
    assert!(
        matches!(idx.delete(999_999), Err(MutationError::UnknownId(999_999))),
        "never-assigned id must be a typed UnknownId refusal"
    );
    assert_eq!(idx.len(), 300); // +1 insert, −1 delete

    // Stats surface the debt, including WAL bytes on the mutated shard.
    let stats = idx.search(&q, 3).unwrap();
    let delta_total: usize = stats.per_shard.iter().map(|s| s.delta_len).sum();
    let tomb_total: usize = stats.per_shard.iter().map(|s| s.tombstones).sum();
    let wal_total: u64 = stats.per_shard.iter().map(|s| s.wal_bytes).sum();
    assert_eq!(delta_total, 1);
    assert_eq!(tomb_total, 1);
    assert!(wal_total > 24, "WAL must hold the two records");
    drop(idx);

    let reopened = ShardedProMips::open(&dir).unwrap();
    assert_eq!(reopened.len(), 300);
    let res = reopened.search(&q, 3).unwrap();
    assert_eq!(res.items[0].id, gid, "insert lost across reopen");
    assert!(
        res.items.iter().all(|it| it.id != victim),
        "tombstone lost across reopen"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Compaction folds delta + tombstones into a new generation, truncates
/// the WAL only afterwards, removes the superseded file, re-tightens the
/// norm bound, and changes no search result.
#[test]
fn compaction_folds_truncates_and_preserves_results() {
    let d = 8;
    let data = random_data(400, d, 11);
    let dir = temp_dir("compact");
    let cfg = ShardedConfig::builder()
        .shards(2)
        .exact_threshold(32)
        .base(ProMipsConfig::builder().seed(13).build())
        .build();
    let idx = ShardedProMips::build_in_dir(&data, cfg, &dir).unwrap();
    let mut rng = Xoshiro256pp::seed_from_u64(17);
    let mut inserted = Vec::new();
    for _ in 0..60 {
        let v: Vec<f32> = (0..d).map(|_| (rng.normal() * 2.0) as f32).collect();
        inserted.push(idx.insert(&v).unwrap());
    }
    for gid in (0..400).step_by(7) {
        idx.delete(gid).unwrap();
    }
    let queries = random_queries(8, d, 19);
    let before: Vec<_> = queries.iter().map(|q| full_search_map(&idx, q)).collect();
    let live_before = idx.len();

    let compacted = idx.compact_all().unwrap();
    assert!(!compacted.is_empty());
    assert_eq!(
        idx.len(),
        live_before,
        "compaction must not change liveness"
    );
    for st in idx.maintenance_stats() {
        assert_eq!(st.delta_len, 0, "shard {} delta survived", st.shard);
        assert_eq!(st.tombstones, 0, "shard {} tombstones survived", st.shard);
        if st.wal_bytes > 0 {
            assert_eq!(st.wal_bytes, 24, "shard {} WAL not truncated", st.shard);
        }
    }
    for (q, b) in queries.iter().zip(&before) {
        assert_equivalent_full(&full_search_map(&idx, q), b, "compaction");
    }
    // Old generation files of compacted shards are gone, new ones exist.
    for &si in &compacted {
        let st = &idx.maintenance_stats()[si];
        assert!(st.generation >= 1, "shard {si} generation not bumped");
        let old_pmx = dir.join(format!("shard_{si:04}.pmx"));
        let old_exact = dir.join(format!("shard_{si:04}.exact"));
        assert!(
            !old_pmx.exists() && !old_exact.exists(),
            "shard {si}: superseded generation-0 file still present"
        );
    }

    // Reopen from the compacted state: nothing to replay, and the live
    // view (all points, exact ips) is unchanged.
    drop(idx);
    let reopened = ShardedProMips::open(&dir).unwrap();
    assert_eq!(reopened.len(), live_before);
    for (q, b) in queries.iter().zip(&before) {
        assert_equivalent_full(&full_search_map(&reopened, q), b, "reopen");
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The crash window between a compaction's manifest swap and its WAL
/// truncation: replaying an entirely stale log over the new generation
/// must change nothing (inserts are recognised as folded, deletes no-op).
#[test]
fn stale_wal_replay_after_compaction_crash_is_idempotent() {
    let d = 8;
    let data = random_data(250, d, 23);
    let dir = temp_dir("stale-wal");
    let cfg = ShardedConfig::builder()
        .shards(2)
        .base(ProMipsConfig::builder().seed(29).build())
        .build();
    let idx = ShardedProMips::build_in_dir(&data, cfg, &dir).unwrap();
    let g1 = idx.insert(&vec![4.0f32; d]).unwrap();
    let g2 = idx.insert(&vec![-3.0f32; d]).unwrap();
    idx.delete(5).unwrap();
    idx.delete(g2).unwrap(); // insert + delete of the same id in one log

    // Save the pre-compaction WALs, compact, then put the stale logs back
    // — exactly the on-disk state a crash before truncation leaves.
    let wal_files: Vec<_> = (0..2)
        .map(|si| dir.join(format!("shard_{si:04}.wal")))
        .collect();
    let saved: Vec<Option<Vec<u8>>> = wal_files.iter().map(|p| std::fs::read(p).ok()).collect();
    let queries = random_queries(6, d, 31);
    idx.compact_all().unwrap();
    let before: Vec<_> = queries.iter().map(|q| full_search_map(&idx, q)).collect();
    drop(idx);
    for (p, s) in wal_files.iter().zip(&saved) {
        if let Some(bytes) = s {
            std::fs::write(p, bytes).unwrap();
        }
    }

    let reopened = ShardedProMips::open(&dir).unwrap();
    assert_eq!(reopened.len(), 250); // 250 + 2 − 2
    assert!(reopened.contains(g1));
    assert!(!reopened.contains(g2), "folded delete resurrected");
    assert!(!reopened.contains(5), "folded delete resurrected");
    // The one permitted residue: an id inserted AND deleted within the
    // same stale log window replays as a dead delta entry (the insert is
    // indistinguishable from a fresh one until its delete follows) — net
    // liveness zero, washed out at the next compaction. Nothing else may
    // re-apply.
    let stats = reopened.maintenance_stats();
    let delta_total: usize = stats.iter().map(|s| s.delta_len).sum();
    let tomb_total: usize = stats.iter().map(|s| s.tombstones).sum();
    assert!(delta_total <= 1, "stale inserts re-applied: {delta_total}");
    assert_eq!(delta_total, tomb_total, "resurrection must be net-zero");
    for (q, b) in queries.iter().zip(&before) {
        assert_equivalent_full(&full_search_map(&reopened, q), b, "stale replay");
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Truncating the WAL mid-record (the torn-tail crash) recovers exactly
/// the prefix of complete records at the index level too.
#[test]
fn torn_wal_tail_recovers_complete_prefix() {
    let d = 6;
    let data = random_data(150, d, 41);
    let dir = temp_dir("torn");
    let cfg = ShardedConfig::builder()
        .shards(1)
        .exact_threshold(0)
        .base(ProMipsConfig::builder().seed(43).build())
        .build();
    let idx = ShardedProMips::build_in_dir(&data, cfg.clone(), &dir).unwrap();
    let mut rng = Xoshiro256pp::seed_from_u64(47);
    let vectors: Vec<Vec<f32>> = (0..5)
        .map(|_| (0..d).map(|_| rng.normal() as f32).collect())
        .collect();
    for v in &vectors {
        idx.insert(v).unwrap();
    }
    drop(idx);

    // Record layout: 8-byte record header + (1 tag + 8 id + 4d vector).
    let rec_len = 8 + 1 + 8 + 4 * d;
    let wal = dir.join("shard_0000.wal");
    let full = std::fs::read(&wal).unwrap();
    assert_eq!(full.len(), 24 + 5 * rec_len);

    for (keep, cut_extra) in [(4usize, 1usize), (4, rec_len - 1), (3, rec_len / 2), (0, 3)] {
        let cut = 24 + keep * rec_len + cut_extra;
        std::fs::write(&wal, &full[..cut]).unwrap();
        let reopened = ShardedProMips::open(&dir).unwrap();
        assert_eq!(
            reopened.len(),
            150 + keep as u64,
            "cut at {cut}: wrong survivor count"
        );
        // The surviving prefix behaves like applying exactly `keep` ops.
        let twin = ShardedProMips::build_in_memory(&data, cfg.clone()).unwrap();
        for v in &vectors[..keep] {
            twin.insert(v).unwrap();
        }
        assert_same_search(&reopened, &twin, d, 53, &format!("cut {cut}"));
        drop(reopened);
        // Reopening truncated the torn tail durably; restore for next cut.
        std::fs::write(&wal, &full).unwrap();
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Compaction re-decides exact-scan vs indexed per shard: growth past the
/// threshold gains an index, shrinkage below it drops back to a scan.
#[test]
fn compaction_redecides_exact_threshold() {
    let d = 6;
    let data = random_data(120, d, 61);
    let dir = temp_dir("redecide");
    let cfg = ShardedConfig::builder()
        .shards(2)
        .exact_threshold(80) // both shards (~60 points) start exact
        .base(ProMipsConfig::builder().seed(67).build())
        .build();
    let idx = ShardedProMips::build_in_dir(&data, cfg, &dir).unwrap();
    assert!(idx.shards().iter().all(|s| s.is_exact()));

    // Grow one norm range well past the threshold.
    let mut rng = Xoshiro256pp::seed_from_u64(71);
    for _ in 0..120 {
        let v: Vec<f32> = (0..d).map(|_| (rng.normal() * 6.0) as f32).collect();
        idx.insert(&v).unwrap();
    }
    idx.compact_all().unwrap();
    assert!(
        idx.shards().iter().any(|s| !s.is_exact()),
        "a shard grown past the threshold must gain an index"
    );
    // Shrink everything: delete most points, compaction drops the index.
    let next = idx.next_global_id();
    for gid in 0..next {
        let _ = idx.delete(gid % next); // dead ids refuse; that's the point
    }
    // Leave a handful alive by re-inserting.
    for _ in 0..5 {
        let v: Vec<f32> = (0..d).map(|_| rng.normal() as f32).collect();
        idx.insert(&v).unwrap();
    }
    idx.compact_all().unwrap();
    assert!(
        idx.shards().iter().all(|s| s.is_exact()),
        "shards shrunk below the threshold must drop their indexes"
    );
    assert_eq!(idx.len(), 5);
    // And the emptied/rebuilt state still reopens cleanly.
    drop(idx);
    let reopened = ShardedProMips::open(&dir).unwrap();
    assert_eq!(reopened.len(), 5);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Skewed inserts pile into the top norm shard; re-partitioning recuts
/// the boundaries over the live distribution, restores balance, keeps
/// global ids stable, and changes no search result.
#[test]
fn repartition_rebalances_without_changing_results() {
    let d = 8;
    let data = random_data(300, d, 83);
    let dir = temp_dir("repart");
    let cfg = ShardedConfig::builder()
        .shards(3)
        .exact_threshold(40)
        .base(ProMipsConfig::builder().seed(89).build())
        .build();
    let idx = ShardedProMips::build_in_dir(&data, cfg, &dir).unwrap();

    // A stream of very-high-norm inserts all routes to the top shard.
    let mut rng = Xoshiro256pp::seed_from_u64(97);
    for _ in 0..220 {
        let v: Vec<f32> = (0..d).map(|_| (rng.normal() * 10.0) as f32).collect();
        idx.insert(&v).unwrap();
    }
    let skew_before = idx.shard_skew();
    assert!(skew_before > 1.5, "inserts should have skewed the shards");

    let queries = random_queries(8, d, 101);
    let before: Vec<_> = queries.iter().map(|q| full_search_map(&idx, q)).collect();
    idx.repartition().unwrap();
    assert!(
        idx.shard_skew() < skew_before.min(1.2),
        "repartition must rebalance: {} -> {}",
        skew_before,
        idx.shard_skew()
    );
    for st in idx.maintenance_stats() {
        assert_eq!(st.delta_len + st.tombstones, 0);
    }
    for (q, b) in queries.iter().zip(&before) {
        assert_equivalent_full(&full_search_map(&idx, q), b, "repartition");
    }
    // Survives reopen (manifest names the new generations everywhere).
    drop(idx);
    let reopened = ShardedProMips::open(&dir).unwrap();
    for (q, b) in queries.iter().zip(&before) {
        assert_equivalent_full(&full_search_map(&reopened, q), b, "reopen");
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The policy-driven pass: under min_mutations nothing happens; past the
/// delta trigger the right shards compact; with skew past the threshold
/// the pass re-partitions instead.
#[test]
fn policy_pass_compacts_and_repartitions() {
    let d = 6;
    let data = random_data(200, d, 103);
    // Two shards cap the skew ratio at 2.0, so the trigger sits below it.
    let policy = CompactionPolicy {
        max_delta_fraction: 0.2,
        max_tombstone_fraction: 0.2,
        min_mutations: 10,
        repartition_skew: 1.4,
    };
    let idx = ShardedProMips::build_in_memory(
        &data,
        ShardedConfig::builder()
            .shards(2)
            .compaction(policy)
            .base(ProMipsConfig::builder().seed(107).build())
            .build(),
    )
    .unwrap();
    // Below the floor: no-op.
    idx.insert(&vec![0.5f32; d]).unwrap();
    let report = idx.compact().unwrap();
    assert!(report.compacted.is_empty() && !report.repartitioned);

    // Balanced-ish delta well past the fraction: plain compaction.
    let mut rng = Xoshiro256pp::seed_from_u64(109);
    for _ in 0..80 {
        let v: Vec<f32> = (0..d).map(|_| rng.normal() as f32).collect();
        idx.insert(&v).unwrap();
    }
    let report = idx.compact().unwrap();
    assert!(!report.compacted.is_empty());

    // Heavy one-sided growth: the pass escalates to a re-partition.
    for _ in 0..300 {
        let v: Vec<f32> = (0..d).map(|_| (rng.normal() * 12.0) as f32).collect();
        idx.insert(&v).unwrap();
    }
    assert!(idx.shard_skew() > 1.4);
    let report = idx.compact().unwrap();
    assert!(report.repartitioned, "skew past threshold must repartition");
    assert!(idx.shard_skew() < 1.2);
}

/// Snapshot refuses to silently drop pending mutations; after compaction
/// it round-trips them.
#[test]
fn snapshot_guards_pending_mutations() {
    let d = 6;
    let data = random_data(150, d, 113);
    let idx = ShardedProMips::build_in_memory(
        &data,
        ShardedConfig::builder()
            .shards(2)
            .base(ProMipsConfig::builder().seed(127).build())
            .build(),
    )
    .unwrap();
    let gid = idx.insert(&vec![3.0f32; d]).unwrap();
    let dir = temp_dir("snap-guard");
    let err = idx.snapshot(&dir).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);

    idx.compact_all().unwrap();
    idx.snapshot(&dir).unwrap();
    let reopened = ShardedProMips::open(&dir).unwrap();
    assert_eq!(reopened.len(), 151);
    assert!(reopened.contains(gid));
    let q = vec![1.0f32; d];
    assert_eq!(
        reopened.search(&q, 4).unwrap().items,
        idx.search(&q, 4).unwrap().items
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A failed compaction build (here: the index directory vanishes, so the
/// new generation file cannot be created) must leave the index exactly as
/// it was: the build is a shadow build that consumes nothing, so the old
/// generation keeps serving and the pending delta/tombstones survive to
/// be folded by a later, successful pass.
#[test]
fn failed_compaction_build_leaves_consistent_index() {
    let d = 8;
    let data = random_data(300, d, 139);
    let dir = temp_dir("fail-compact");
    let cfg = ShardedConfig::builder()
        .shards(2)
        .exact_threshold(32)
        .base(ProMipsConfig::builder().seed(149).build())
        .build();
    let idx = ShardedProMips::build_in_dir(&data, cfg, &dir).unwrap();
    let strong = vec![9.0f32; d];
    let gid = idx.insert(&strong).unwrap();
    idx.delete(3).unwrap();
    let q = vec![1.0f32; d];
    let before = full_search_map(&idx, &q);

    // Pull the directory out from under the next generation's build.
    std::fs::remove_dir_all(&dir).unwrap();
    let err = idx.compact_all().unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::NotFound);

    // The live view survived the failure untouched: the overlay still
    // holds the pending insert + tombstone, and the old generation keeps
    // serving (the strong insert still wins).
    assert_eq!(idx.len(), 300);
    assert_eq!(
        idx.pending_mutations(),
        2,
        "overlay must survive a failed build"
    );
    assert_equivalent_full(&full_search_map(&idx, &q), &before, "failed compaction");
    assert_eq!(idx.search(&q, 3).unwrap().items[0].id, gid);
    assert!(idx.contains(gid) && !idx.contains(3));
}

/// Volatile mutations on an in-memory index behave identically to the
/// durable path minus the files — including compaction.
#[test]
fn in_memory_mutations_and_compaction_work() {
    let d = 8;
    let data = random_data(250, d, 131);
    let cfg = ShardedConfig::builder()
        .shards(3)
        .base(ProMipsConfig::builder().seed(137).build())
        .build();
    let idx = ShardedProMips::build_in_memory(&data, cfg).unwrap();
    assert!(!idx.is_durable());
    let gid = idx.insert(&vec![7.0f32; d]).unwrap();
    idx.delete(0).unwrap();
    let q = vec![1.0f32; d];
    let before = idx.search(&q, 6).unwrap();
    assert_eq!(before.items[0].id, gid);
    idx.compact_all().unwrap();
    let after = idx.search(&q, 6).unwrap();
    assert_eq!(before.items, after.items);
    assert_eq!(idx.pending_mutations(), 0);
}
