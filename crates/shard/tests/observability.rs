//! End-to-end checks of the unified observability layer at the sharded
//! level: per-query stage traces must account for the measured latency,
//! the Prometheus exposition must carry the query/WAL/maintenance series,
//! and the registry gauges must track the real overlay state through
//! mutations, compaction, and re-partitioning.
//!
//! The registry, the timing switch, and the slow-query log are
//! process-global; every test here holds [`REG_LOCK`] so their
//! before/after deltas never interleave. (Each integration-test file is
//! its own process, so no other suite shares the registry.)

use std::io;
use std::sync::Mutex;

use promips_core::ProMipsConfig;
use promips_linalg::Matrix;
use promips_obs::{self as obs, recorder, sampling, slow, CounterId, GaugeId};
use promips_shard::{
    CompactionOutcome, DegradationPolicy, ShardedConfig, ShardedProMips, ShardedScratch, SyncPolicy,
};
use promips_stats::Xoshiro256pp;
use promips_storage::durability::faults::{self, FaultPlan, IoOp, Recurrence};

static REG_LOCK: Mutex<()> = Mutex::new(());

/// Poison-tolerant guard: a failed sibling test must not cascade.
fn reg_lock() -> std::sync::MutexGuard<'static, ()> {
    REG_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn random_rows(n: usize, d: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    (0..n)
        .map(|_| (0..d).map(|_| rng.normal() as f32).collect())
        .collect()
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("promips-obs-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn build_index(n: usize, d: usize, shards: usize) -> ShardedProMips {
    let data = Matrix::from_rows(d, random_rows(n, d, 11));
    let cfg = ShardedConfig::builder()
        .shards(shards)
        .base(ProMipsConfig::builder().seed(5).build())
        .build();
    ShardedProMips::build_in_memory(&data, cfg).unwrap()
}

/// The tentpole acceptance check: a sequential traced query's stage spans
/// (scan → screen → verify per shard, plus the merge) must explain at
/// least 95% of its own measured end-to-end latency. The index is large
/// enough that the untimed bookkeeping (snapshotting, phase setup) is
/// noise; the best run of several rides out scheduler hiccups.
#[test]
fn trace_accounts_for_query_latency() {
    let _guard = reg_lock();
    let d = 24;
    let idx = build_index(6000, d, 3);
    let scratch = ShardedScratch::for_index(&idx);
    let queries = random_rows(8, d, 99);

    let mut best = 0.0f64;
    for q in &queries {
        let (res, trace) = idx.search_traced_threaded(q, 10, 1, &scratch).unwrap();
        assert_eq!(res.items.len(), 10);
        assert_eq!(trace.shards.len(), idx.shard_count());
        assert!(trace.total_ns > 0, "traced query must measure wall time");
        assert_eq!(
            trace.shards.iter().filter(|s| s.seed).count(),
            1,
            "exactly one span seeds the floor"
        );
        best = best.max(trace.coverage());
    }
    assert!(
        best >= 0.95,
        "stage spans explain only {:.1}% of the measured latency",
        best * 100.0
    );
}

/// Traced and untraced searches return identical results — tracing only
/// observes — and a kept trace lands in the slow-query log.
#[test]
fn tracing_is_pure_observation_and_feeds_slow_log() {
    let _guard = reg_lock();
    let d = 16;
    let idx = build_index(2500, d, 3);
    let scratch = ShardedScratch::for_index(&idx);

    slow::configure(0, 4);
    slow::clear();
    for (qi, q) in random_rows(5, d, 77).iter().enumerate() {
        let plain = idx.search_threaded(q, 7, 1, &scratch).unwrap();
        let (traced, trace) = idx.search_traced_threaded(q, 7, 1, &scratch).unwrap();
        assert_eq!(
            plain.items, traced.items,
            "query {qi} diverged under tracing"
        );
        assert_eq!(plain.verified, traced.verified);
        assert_eq!(plain.screened, traced.screened);
        // The spans carry the same per-shard counts the stats report.
        for (span, st) in trace.shards.iter().zip(&traced.per_shard) {
            assert_eq!(span.verified as usize, st.verified);
            assert_eq!(span.screened as usize, st.screened);
            assert_eq!(span.pruned, st.pruned);
        }
        // render() never panics and names every shard.
        let text = trace.render();
        assert!(text.contains("shard"));
    }
    let kept = slow::snapshot();
    assert!(
        !kept.is_empty() && kept.len() <= 4,
        "threshold 0 keeps up to capacity traces, got {}",
        kept.len()
    );
    assert!(
        kept.windows(2).all(|w| w[0].total_ns() >= w[1].total_ns()),
        "slow log is ordered worst-first"
    );
    slow::configure(0, 16);
    slow::clear();
}

/// A sharded workload's Prometheus exposition carries the query-stage
/// summaries, WAL/compaction counters, and the overlay gauges — the
/// acceptance list of the observability issue.
#[test]
fn prometheus_exposition_covers_the_pipeline() {
    let _guard = reg_lock();
    let d = 12;
    let dir = temp_dir("prom");
    let data = Matrix::from_rows(d, random_rows(1500, d, 21));
    let cfg = ShardedConfig::builder()
        .shards(2)
        .wal_sync(SyncPolicy::Never)
        .base(ProMipsConfig::builder().seed(5).build())
        .build();
    let idx = ShardedProMips::build_in_dir(&data, cfg, &dir).unwrap();
    let scratch = ShardedScratch::for_index(&idx);

    // Mutate (WAL counters), query (latency + stage histograms), compact
    // (compaction counters) — then render.
    let mut gids = Vec::new();
    for row in random_rows(80, d, 22) {
        gids.push(idx.insert(&row).unwrap());
    }
    for gid in gids.iter().take(20) {
        idx.delete(*gid).unwrap();
    }
    for q in random_rows(4, d, 23) {
        idx.search_threaded(&q, 5, 1, &scratch).unwrap();
    }
    idx.compact_all().unwrap();

    let text = obs::global().snapshot().render_prometheus();
    for series in [
        "promips_queries_total",
        "promips_query_latency_ns{quantile=\"0.5\"}",
        "promips_query_latency_ns{quantile=\"0.99\"}",
        "promips_stage_scan_ns{quantile=\"0.5\"}",
        "promips_stage_verify_ns_count",
        "promips_shard_search_ns_sum",
        "promips_wal_appends_total",
        "promips_wal_syncs_total",
        "promips_compactions_total",
        "promips_generation_swaps_total",
        "promips_delta_rows",
        "promips_tombstones",
        "# TYPE promips_query_latency_ns summary",
    ] {
        assert!(
            text.contains(series),
            "exposition missing {series}:\n{text}"
        );
    }
    // The JSON view renders the same snapshot without panicking and is
    // non-trivial.
    let json = obs::global().snapshot().render_json();
    assert!(json.contains("\"promips_query_latency_ns\""));

    drop(idx);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Satellite acceptance for the telemetry tier: a best-effort query
/// degraded by an injected read fault lands in the slow-query log with
/// the degradation flagged first-class — `degraded`, the failed-shard
/// count — and the flight-recorder excerpt attached, showing both the
/// injected fault and the degradation event that explain it.
#[test]
fn degraded_best_effort_query_is_flagged_in_slow_log() {
    let _guard = reg_lock();
    let d = 8;
    let data = Matrix::from_rows(d, random_rows(240, d, 61));
    // prune(false): the faulted shard must actually be searched — a
    // pruned shard does no IO and would dodge the fault.
    let cfg = ShardedConfig::builder()
        .shards(3)
        .exact_threshold(0)
        .prune(false)
        .degradation(DegradationPolicy::BestEffort)
        .base(ProMipsConfig::builder().seed(63).build())
        .build();
    let dir = temp_dir("degraded-slow");
    let tag = dir.file_name().unwrap().to_string_lossy().into_owned();
    drop(ShardedProMips::build_in_dir(&data, cfg, &dir).unwrap());

    // Cold reopen (the policy is per-handle, not persisted), then every
    // page read of shard 0 fails.
    let mut idx = ShardedProMips::open(&dir).unwrap();
    idx.set_degradation(DegradationPolicy::BestEffort);
    let scratch = ShardedScratch::for_index(&idx);
    let q = &random_rows(1, d, 67)[0];

    slow::configure(0, 8);
    slow::clear();
    recorder::clear();
    faults::arm_with(
        FaultPlan {
            op: IoOp::Read,
            nth: 1,
            path_contains: Some(format!("{tag}/shard_0000")),
        },
        Recurrence::EveryNth(1),
        io::ErrorKind::Other,
    );
    let (res, trace) = idx.search_traced_threaded(q, 10, 1, &scratch).unwrap();
    faults::disarm();

    assert!(res.degraded, "the injected fault must degrade the query");
    assert!(trace.degraded, "the trace carries the verdict");

    let kept = slow::snapshot();
    let entry = kept
        .iter()
        .find(|e| e.degraded)
        .expect("degraded query must be retained and flagged");
    assert_eq!(entry.shards_failed, 1, "exactly shard 0 was excluded");
    assert!(!entry.sampled, "an explicit trace is not an exemplar");
    assert!(
        entry
            .events
            .iter()
            .any(|e| matches!(e.kind, recorder::EventKind::FaultInjected { op: "read" })),
        "the injected fault is in the attached flight recorder"
    );
    assert!(
        entry.events.iter().any(|e| matches!(
            e.kind,
            recorder::EventKind::QueryDegraded {
                failed_shards: 1,
                ..
            }
        )),
        "the degradation event is in the attached flight recorder"
    );
    let text = entry.render();
    assert!(
        text.contains("DEGRADED: 1 shard(s)"),
        "render must flag the degradation:\n{text}"
    );
    assert!(text.contains("flight recorder:"), "render attaches events");

    slow::configure(0, 16);
    slow::clear();
    recorder::clear();
    drop(idx);
    let _ = std::fs::remove_dir_all(&dir);
}

/// The always-on sampler promotes ordinary (untraced) searches into the
/// slow log as exemplars at its deterministic 1-in-N cadence.
#[test]
fn sampler_promotes_plain_searches_into_the_slow_log() {
    let _guard = reg_lock();
    let d = 12;
    let idx = build_index(1200, d, 2);
    let scratch = ShardedScratch::for_index(&idx);

    slow::configure(0, 32);
    slow::clear();
    sampling::set_sample_every(1); // sample every arrival: deterministic
    let sampled0 = obs::global().counter(CounterId::QueriesSampled).get();
    for q in random_rows(5, d, 71) {
        let plain = idx.search_threaded(&q, 7, 1, &scratch).unwrap();
        assert_eq!(plain.items.len(), 7);
    }
    sampling::set_sample_every(sampling::DEFAULT_SAMPLE_EVERY);

    assert_eq!(
        obs::global().counter(CounterId::QueriesSampled).get() - sampled0,
        5,
        "1-in-1 sampling traces every query"
    );
    let kept = slow::snapshot();
    let exemplars = kept.iter().filter(|e| e.sampled).count();
    assert!(
        exemplars >= 5,
        "all five sampled queries are retained as exemplars, got {exemplars}"
    );
    for e in kept.iter().filter(|e| e.sampled) {
        assert_eq!(e.trace.k, 7);
        assert!(e.trace.total_ns > 0, "exemplars carry real timings");
        assert!(e.render().contains("sampled exemplar"));
    }

    slow::configure(0, 16);
    slow::clear();
}

/// The delta/tombstone gauges move strictly incrementally with the
/// overlay: +1 per insert/delete, folded back out by compaction and
/// re-partitioning — so their process-wide values stay consistent no
/// matter how many indexes feed them.
#[test]
fn overlay_gauges_track_mutations_and_compaction() {
    let _guard = reg_lock();
    let d = 8;
    let idx = build_index(400, d, 2);
    let reg = obs::global();
    let delta0 = reg.gauge(GaugeId::DeltaRows).get();
    let tombs0 = reg.gauge(GaugeId::Tombstones).get();
    let inserts0 = reg.counter(CounterId::Inserts).get();
    let deletes0 = reg.counter(CounterId::Deletes).get();

    let mut gids = Vec::new();
    for row in random_rows(60, d, 31) {
        gids.push(idx.insert(&row).unwrap());
    }
    for gid in gids.iter().take(15) {
        idx.delete(*gid).unwrap();
    }
    assert_eq!(reg.gauge(GaugeId::DeltaRows).get() - delta0, 60);
    assert_eq!(reg.gauge(GaugeId::Tombstones).get() - tombs0, 15);
    assert_eq!(reg.counter(CounterId::Inserts).get() - inserts0, 60);
    assert_eq!(reg.counter(CounterId::Deletes).get() - deletes0, 15);

    // The gauges agree with the maintenance ledger's overlay totals.
    let stats = idx.maintenance_stats();
    let ledger_delta: usize = stats.iter().map(|s| s.delta_len).sum();
    let ledger_tombs: usize = stats.iter().map(|s| s.tombstones).sum();
    assert_eq!(
        ledger_delta as i64,
        reg.gauge(GaugeId::DeltaRows).get() - delta0
    );
    assert_eq!(
        ledger_tombs as i64,
        reg.gauge(GaugeId::Tombstones).get() - tombs0
    );

    // Compaction folds the overlay away and the gauges return to their
    // pre-test baseline.
    let compactions0 = reg.counter(CounterId::Compactions).get();
    idx.compact_all().unwrap();
    assert_eq!(reg.gauge(GaugeId::DeltaRows).get(), delta0);
    assert_eq!(reg.gauge(GaugeId::Tombstones).get(), tombs0);
    assert!(reg.counter(CounterId::Compactions).get() > compactions0);
}

/// `maintenance_stats()` reports each generation's age and the outcome of
/// the last maintenance pass, through the compact and repartition paths.
#[test]
fn maintenance_reports_generation_age_and_outcome() {
    let _guard = reg_lock();
    let d = 8;
    let idx = build_index(400, d, 2);

    for st in idx.maintenance_stats() {
        assert_eq!(st.last_compaction, CompactionOutcome::Never);
        assert!(st.generation_age_ns > 0, "build install time is stamped");
    }

    for row in random_rows(40, d, 51) {
        idx.insert(&row).unwrap();
    }
    // Sleep before snapshotting so the original generations carry a
    // recorded age comfortably larger than however long `compact_all`
    // plus the stats call can take — the rebuilt generations' ages are
    // measured after compaction, so the margin must cover it.
    std::thread::sleep(std::time::Duration::from_millis(50));
    let before = idx.maintenance_stats();
    idx.compact_all().unwrap();
    let after = idx.maintenance_stats();
    for (b, a) in before.iter().zip(&after) {
        if a.generation > b.generation {
            assert_eq!(a.last_compaction, CompactionOutcome::Compacted);
            assert!(
                a.generation_age_ns < b.generation_age_ns,
                "a fresh generation must be younger than the one it replaced"
            );
        }
    }

    idx.repartition().unwrap();
    for st in idx.maintenance_stats() {
        assert_eq!(st.last_compaction, CompactionOutcome::Repartitioned);
    }
}
