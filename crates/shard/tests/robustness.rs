//! Query-lifecycle robustness: deadlines and cancellation surface as
//! typed errors (fast, not after the full scan), degraded best-effort
//! answers are *exactly* the top-k over the surviving shards, and
//! transient IO faults on the write path are absorbed by bounded retry
//! without losing an acknowledged write.

use std::io;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use promips_core::ProMipsConfig;
use promips_linalg::{dot, Matrix};
use promips_shard::{
    CancelToken, DegradationPolicy, QueryBudget, QueryError, ShardErrorKind, ShardedConfig,
    ShardedProMips, ShardedScratch,
};
use promips_stats::Xoshiro256pp;
use promips_storage::durability::faults::{self, FaultPlan, IoOp, Recurrence};
use proptest::prelude::*;

/// The fault shim is process-global; every test that arms a plan holds
/// this for its whole body (plans are additionally path-scoped to the
/// test's own directory, so non-fault tests can never consume one).
static FAULT_LOCK: Mutex<()> = Mutex::new(());

fn random_data(n: usize, d: usize, seed: u64) -> Matrix {
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    Matrix::from_rows(
        d,
        (0..n).map(|_| (0..d).map(|_| rng.normal() as f32).collect::<Vec<f32>>()),
    )
}

fn random_queries(nq: usize, d: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    (0..nq)
        .map(|_| (0..d).map(|_| rng.normal() as f32).collect())
        .collect()
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("promips-robust-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

// --- budgets -------------------------------------------------------------

/// An already-expired deadline refuses the query with the typed error
/// before doing the scan work — well inside the budget + 10ms contract
/// (the generous bound here only absorbs CI scheduling noise).
#[test]
fn expired_deadline_returns_typed_error_fast() {
    let data = random_data(4000, 16, 3);
    let idx = ShardedProMips::build_in_memory(
        &data,
        ShardedConfig::builder()
            .shards(3)
            .exact_threshold(0)
            .base(ProMipsConfig::builder().seed(5).build())
            .build(),
    )
    .unwrap();
    let scratch = ShardedScratch::for_index(&idx);
    let q = &random_queries(1, 16, 7)[0];

    let t = Instant::now();
    let err = idx
        .search_budgeted(q, 10, &scratch, &QueryBudget::with_deadline_at(1))
        .unwrap_err();
    assert!(matches!(err, QueryError::DeadlineExceeded));
    assert!(
        t.elapsed() < Duration::from_millis(250),
        "expired budget took {:?} to surface",
        t.elapsed()
    );

    // Threaded fan-out classifies identically.
    let err = idx
        .search_budgeted_threaded(q, 10, 4, &scratch, &QueryBudget::with_deadline_at(1))
        .unwrap_err();
    assert!(matches!(err, QueryError::DeadlineExceeded));
}

/// A pre-cancelled token surfaces as `Cancelled`, distinct from a
/// deadline expiry, and cancellation wins even with a generous deadline.
#[test]
fn cancelled_token_returns_typed_error() {
    let data = random_data(800, 12, 11);
    let idx =
        ShardedProMips::build_in_memory(&data, ShardedConfig::builder().shards(2).build()).unwrap();
    let scratch = ShardedScratch::for_index(&idx);
    let q = &random_queries(1, 12, 13)[0];

    let token = CancelToken::new();
    token.cancel();
    let budget = QueryBudget::with_deadline(Duration::from_secs(60)).cancellable(token);
    let err = idx.search_budgeted(q, 5, &scratch, &budget).unwrap_err();
    assert!(matches!(err, QueryError::Cancelled), "got {err}");
}

/// A budget nobody exhausts is invisible: items, ranks, and per-shard
/// counters are bit-identical to the un-budgeted entry points.
#[test]
fn generous_budget_is_bit_identical_to_unbudgeted_search() {
    let data = promips_data::gen::norm_skewed(2500, 14, 17);
    let idx = ShardedProMips::build_in_memory(
        &data,
        ShardedConfig::builder()
            .shards(4)
            .base(ProMipsConfig::builder().seed(19).build())
            .build(),
    )
    .unwrap();
    let scratch = ShardedScratch::for_index(&idx);
    for (budget, label) in [
        (QueryBudget::unlimited(), "unlimited"),
        (QueryBudget::with_deadline(Duration::from_secs(120)), "2min"),
    ] {
        for q in random_queries(8, 14, 23) {
            let plain = idx.search_with_scratch(&q, 10, &scratch).unwrap();
            let budgeted = idx.search_budgeted(&q, 10, &scratch, &budget).unwrap();
            assert_eq!(plain.items, budgeted.items, "{label}: items diverged");
            assert_eq!(plain.verified, budgeted.verified, "{label}");
            assert_eq!(plain.screened, budgeted.screened, "{label}");
            assert!(!budgeted.degraded, "{label}: nothing failed");
            assert_eq!(budgeted.shards_failed(), 0, "{label}");
            let threaded = idx
                .search_budgeted_threaded(&q, 10, 4, &scratch, &budget)
                .unwrap();
            assert_eq!(plain.items, threaded.items, "{label}: threaded diverged");
        }
    }
}

/// The traced budgeted entry point records the remaining budget and
/// returns the same answer.
#[test]
fn traced_budgeted_search_carries_remaining_budget() {
    let data = random_data(600, 10, 29);
    let idx =
        ShardedProMips::build_in_memory(&data, ShardedConfig::builder().shards(2).build()).unwrap();
    let scratch = ShardedScratch::for_index(&idx);
    let q = &random_queries(1, 10, 31)[0];
    let budget = QueryBudget::with_deadline(Duration::from_secs(300));
    let (res, trace) = idx.search_traced_budgeted(q, 6, &scratch, &budget).unwrap();
    assert_eq!(res.items, idx.search(q, 6).unwrap().items);
    assert!(!trace.degraded);
    let remaining = trace.budget_remaining_ns.expect("deadline was set");
    assert!(remaining > 0 && remaining <= 300 * 1_000_000_000);
}

// --- degraded-mode invariants (property) ---------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Lifecycle invariants over arbitrary small workloads: a budgeted
    /// search under an unlimited budget matches the plain search and the
    /// exact ground truth; every returned inner product is the true dot
    /// product (never fabricated); results stay sorted and unique; and an
    /// expired budget always surfaces as the typed deadline error.
    #[test]
    fn budgeted_search_never_fabricates_and_expires_typed(
        n in 30usize..220,
        shards in 2usize..5,
        k in 1usize..12,
        seed in 0u64..1000,
    ) {
        let d = 8;
        let data = random_data(n, d, seed);
        let idx = ShardedProMips::build_in_memory(
            &data,
            ShardedConfig::builder()
                .shards(shards)
                .base(ProMipsConfig::builder().seed(seed ^ 0xA5).build())
                .build(),
        )
        .unwrap();
        let scratch = ShardedScratch::for_index(&idx);
        for q in random_queries(3, d, seed ^ 0x5A) {
            let plain = idx.search_with_scratch(&q, k, &scratch).unwrap();
            let budgeted = idx
                .search_budgeted(&q, k, &scratch, &QueryBudget::unlimited())
                .unwrap();
            prop_assert_eq!(&plain.items, &budgeted.items);
            prop_assert!(!budgeted.degraded);

            // Ground truth: ids match the exact scan, ips are real dots.
            let truth: Vec<u64> = promips_data::exact_topk(&data, &q, k)
                .into_iter()
                .map(|(id, _)| id)
                .collect();
            prop_assert_eq!(budgeted.ids(), truth);
            for w in budgeted.items.windows(2) {
                prop_assert!(
                    w[0].ip > w[1].ip || (w[0].ip == w[1].ip && w[0].id < w[1].id)
                );
            }
            for it in &budgeted.items {
                let want = dot(&q, data.row(it.id as usize));
                prop_assert!(
                    (it.ip - want).abs() <= 1e-6 * want.abs().max(1.0),
                    "fabricated ip for id {}: {} vs {}", it.id, it.ip, want
                );
            }

            // Expired budget: typed, never a partial Ok.
            let err = idx
                .search_budgeted(&q, k, &scratch, &QueryBudget::with_deadline_at(1))
                .unwrap_err();
            prop_assert!(matches!(err, QueryError::DeadlineExceeded));
        }
    }
}

// --- shard-failure degradation -------------------------------------------

/// The heart of the degradation contract, pinned against a ground-truth
/// twin. Two bit-identical durable indexes are built; in twin B every
/// point of shard 0 is deleted, so B's answer *is* the exact
/// survivors-only answer. Index A is reopened cold with a recurring read
/// fault on shard 0's pages:
///
/// * `FailFast` (default): the query aborts with a typed error naming
///   shard 0, on both the `io::Result` and the typed entry points.
/// * `BestEffort`: the query succeeds degraded — per-shard status flags
///   shard 0, and the items equal twin B's items exactly (the merge over
///   survivors is still the true top-k over every reachable point).
#[test]
fn read_fault_degrades_exactly_to_survivor_topk() {
    let _serial = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let d = 8;
    let data = random_data(240, d, 41);
    // prune(false): the faulted shard must actually be searched — a
    // pruned shard does no IO and would dodge the fault.
    let cfg = ShardedConfig::builder()
        .shards(3)
        .exact_threshold(0)
        .prune(false)
        .base(ProMipsConfig::builder().seed(43).build())
        .build();
    let dir_a = temp_dir("degrade-a");
    let dir_b = temp_dir("degrade-b");
    let tag_a = dir_a.file_name().unwrap().to_string_lossy().into_owned();
    drop(ShardedProMips::build_in_dir(&data, cfg.clone(), &dir_a).unwrap());
    drop(ShardedProMips::build_in_dir(&data, cfg, &dir_b).unwrap());

    // Twin B: delete everything shard 0 holds — its searches now return
    // the exact top-k over the surviving shards.
    let twin = ShardedProMips::open(&dir_b).unwrap();
    let shard0_ids = twin.shards()[0].global_ids();
    assert!(!shard0_ids.is_empty(), "shard 0 must hold points");
    for gid in &shard0_ids {
        twin.delete(*gid).unwrap();
    }

    // Index A: cold reopen, then every page read of shard 0 fails.
    let mut idx = ShardedProMips::open(&dir_a).unwrap();
    let scratch = ShardedScratch::for_index(&idx);
    let queries = random_queries(6, d, 47);
    faults::arm_with(
        FaultPlan {
            op: IoOp::Read,
            nth: 1,
            path_contains: Some(format!("{tag_a}/shard_0000")),
        },
        Recurrence::EveryNth(1),
        io::ErrorKind::Other,
    );

    // FailFast: typed abort naming the shard, injected marker intact.
    let err = idx
        .search_with_scratch(&queries[0], 10, &scratch)
        .unwrap_err();
    assert!(faults::is_injected(&err), "unexpected error: {err}");
    match err.get_ref().and_then(|e| e.downcast_ref::<QueryError>()) {
        Some(QueryError::Shard(se)) => {
            assert_eq!(se.shard, 0, "must name the failing shard");
            assert!(matches!(se.kind, ShardErrorKind::Io(_)));
        }
        other => panic!("expected a shard error, got {other:?}"),
    }
    let err = idx
        .search_budgeted(&queries[0], 10, &scratch, &QueryBudget::unlimited())
        .unwrap_err();
    assert!(
        matches!(&err, QueryError::Shard(se) if se.shard == 0),
        "got {err}"
    );

    // BestEffort: degraded success, exactly the survivor top-k.
    idx.set_degradation(DegradationPolicy::BestEffort);
    let twin_scratch = ShardedScratch::for_index(&twin);
    for q in &queries {
        let res = idx.search_with_scratch(q, 10, &scratch).unwrap();
        assert!(res.degraded, "a shard failed: result must say so");
        assert_eq!(res.shards_failed(), 1);
        assert!(
            res.per_shard[0].failed,
            "per-shard status must flag shard 0"
        );
        assert_eq!(res.per_shard[0].returned, 0);
        let want = twin.search_with_scratch(q, 10, &twin_scratch).unwrap();
        assert_eq!(
            res.items, want.items,
            "degraded answer must be the exact survivor top-k"
        );
    }
    faults::disarm();

    // Healthy again: full answers, not degraded, identical to a fresh
    // fault-free open of the same directory.
    let fresh = ShardedProMips::open(&dir_a).unwrap();
    let fresh_scratch = ShardedScratch::for_index(&fresh);
    let res = idx.search_with_scratch(&queries[0], 10, &scratch).unwrap();
    assert!(!res.degraded);
    assert_eq!(res.shards_failed(), 0);
    assert_eq!(
        res.items,
        fresh
            .search_with_scratch(&queries[0], 10, &fresh_scratch)
            .unwrap()
            .items
    );
    drop(fresh);
    std::fs::remove_dir_all(&dir_a).unwrap();
    std::fs::remove_dir_all(&dir_b).unwrap();
}

/// All shards failing is not "degraded", it is failure: `BestEffort`
/// returns the typed error rather than a confidently empty result.
#[test]
fn best_effort_with_every_shard_failed_is_an_error() {
    let _serial = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let d = 8;
    let data = random_data(120, d, 53);
    let cfg = ShardedConfig::builder()
        .shards(2)
        .exact_threshold(0)
        .prune(false)
        .degradation(DegradationPolicy::BestEffort)
        .base(ProMipsConfig::builder().seed(59).build())
        .build();
    let dir = temp_dir("allfail");
    let tag = dir.file_name().unwrap().to_string_lossy().into_owned();
    drop(ShardedProMips::build_in_dir(&data, cfg, &dir).unwrap());
    let idx = ShardedProMips::open(&dir).unwrap();
    let scratch = ShardedScratch::for_index(&idx);
    faults::arm_with(
        FaultPlan {
            op: IoOp::Read,
            nth: 1,
            path_contains: Some(format!("{tag}/shard_")),
        },
        Recurrence::EveryNth(1),
        io::ErrorKind::Other,
    );
    let err = idx
        .search_budgeted(
            &random_queries(1, d, 61)[0],
            5,
            &scratch,
            &QueryBudget::unlimited(),
        )
        .unwrap_err();
    assert!(matches!(err, QueryError::Shard(_)), "got {err}");
    faults::disarm();
    std::fs::remove_dir_all(&dir).unwrap();
}

// --- transient-fault retry -----------------------------------------------

/// A transient fault injected at EVERY retryable step of the write path,
/// one step at a time: each acknowledged insert must land through the
/// bounded retry (the armed one-shot provably fired), and a crash-reopen
/// preserves every acknowledged write.
#[test]
fn transient_fault_at_every_write_step_is_absorbed_by_retry() {
    let _serial = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let d = 8;
    let data = random_data(100, d, 67);
    let dir = temp_dir("retry-steps");
    let tag = dir.file_name().unwrap().to_string_lossy().into_owned();
    let cfg = ShardedConfig::builder()
        .shards(2)
        .base(ProMipsConfig::builder().seed(71).build())
        .build();
    let idx = ShardedProMips::build_in_dir(&data, cfg, &dir).unwrap();
    let mut live: Vec<u64> = Vec::new();

    // WAL append path: the record write and the group-commit fsync.
    for (op, kind) in [
        (IoOp::Write, io::ErrorKind::Interrupted),
        (IoOp::Write, io::ErrorKind::TimedOut),
        (IoOp::Fsync, io::ErrorKind::Interrupted),
        (IoOp::Fsync, io::ErrorKind::WouldBlock),
    ] {
        faults::arm_with(
            FaultPlan {
                op,
                nth: 1,
                path_contains: Some(format!("{tag}/shard_")),
            },
            Recurrence::Once,
            kind,
        );
        let row = vec![0.3f32; d];
        let gid = idx
            .insert(&row)
            .unwrap_or_else(|e| panic!("transient {op:?}/{kind:?} not retried: {e:?}"));
        assert!(!faults::disarm(), "armed {op:?} fault never fired");
        live.push(gid);
    }

    // Manifest-swap path: the tmp write, its fsync, and the rename are
    // each retried (compaction must commit through a transient stall).
    for op in [IoOp::Write, IoOp::Fsync, IoOp::Rename] {
        idx.insert(&[0.4f32; 8]).map(|gid| live.push(gid)).unwrap();
        faults::arm_with(
            FaultPlan {
                op,
                nth: 1,
                path_contains: Some(format!("{tag}/MANIFEST")),
            },
            Recurrence::Once,
            io::ErrorKind::Interrupted,
        );
        idx.compact_all()
            .unwrap_or_else(|e| panic!("transient manifest {op:?} not retried: {e}"));
        assert!(!faults::disarm(), "armed manifest {op:?} fault never fired");
        assert_eq!(idx.pending_mutations(), 0);
    }

    // Every acknowledged write survives a crash-reopen.
    idx.sync_wal().unwrap();
    drop(idx);
    let reopened = ShardedProMips::open(&dir).unwrap();
    assert_eq!(reopened.len(), 100 + live.len() as u64);
    let scratch = ShardedScratch::for_index(&reopened);
    let all = reopened
        .search_with_scratch(&[1.0f32; 8], usize::MAX / 2, &scratch)
        .unwrap();
    for gid in &live {
        assert!(
            all.items.iter().any(|it| it.id == *gid),
            "acknowledged write {gid} lost"
        );
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

/// A transient budget is bounded: a fault that keeps firing past the
/// retry attempts surfaces as the typed error, not an infinite loop.
#[test]
fn persistent_transient_fault_exhausts_the_retry_budget() {
    let _serial = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let d = 8;
    let data = random_data(60, d, 73);
    let dir = temp_dir("retry-exhaust");
    let tag = dir.file_name().unwrap().to_string_lossy().into_owned();
    let idx = ShardedProMips::build_in_dir(&data, ShardedConfig::builder().shards(1).build(), &dir)
        .unwrap();
    faults::arm_with(
        FaultPlan {
            op: IoOp::Fsync,
            nth: 1,
            path_contains: Some(format!("{tag}/shard_")),
        },
        Recurrence::EveryNth(1),
        io::ErrorKind::Interrupted,
    );
    let err = idx.insert(&[0.5f32; 8]).unwrap_err();
    faults::disarm();
    let e = match err {
        promips_shard::MutationError::Io(e) => e,
        other => panic!("expected an IO refusal, got {other:?}"),
    };
    assert!(faults::is_injected(&e), "unexpected error: {e}");
    assert_eq!(e.kind(), io::ErrorKind::Interrupted);
    std::fs::remove_dir_all(&dir).unwrap();
}
