//! Concurrency and fault-injection torture for the MVCC-lite sharded
//! index: queries racing writers and the background compactor must keep
//! every isolation invariant, and an injected IO failure at **any** step
//! of the compaction commit protocol must leave the index consistent,
//! reopenable, and missing no acknowledged write.
//!
//! Set `PROMIPS_STRESS=1` to scale the torture test up (more ops, more
//! reader threads) — the CI stress job runs that configuration.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use promips_core::ProMipsConfig;
use promips_linalg::{dot, sq_norm2, Matrix};
use promips_shard::{
    CompactionPolicy, MutationError, ShardedConfig, ShardedProMips, ShardedScratch, SyncPolicy,
};
use promips_stats::Xoshiro256pp;
use promips_storage::durability::faults::{self, FaultPlan, IoOp};

fn random_rows(n: usize, d: usize, seed: u64, scale: f64) -> Vec<Vec<f32>> {
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    (0..n)
        .map(|_| (0..d).map(|_| (rng.normal() * scale) as f32).collect())
        .collect()
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("promips-conc-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn stress() -> bool {
    std::env::var("PROMIPS_STRESS").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// The fault shim is process-global state; every test that arms a plan
/// holds this for its whole body so plans never replace each other.
/// (Plans are additionally path-scoped to the test's own directory, so a
/// concurrently running non-fault test can never consume one.)
static FAULT_LOCK: Mutex<()> = Mutex::new(());

/// The torture test: reader threads running full-time queries against an
/// index being mutated by a writer thread while the background compactor
/// folds generations underneath them all.
///
/// Invariants checked on every single query, mid-churn:
/// * results are sorted by inner product, global ids unique;
/// * every inner product respects the Cauchy–Schwarz bound
///   `‖q‖ · max‖o‖` over everything ever inserted (the per-shard norm
///   bounds behind pruning must never under-report);
/// * an exhaustive query (`k` ≥ live count) finds the planted
///   strong vector at rank 1 with its exact inner product — a recall
///   floor no torn snapshot could fake.
///
/// Afterwards: liveness bookkeeping matches the writer's ledger exactly,
/// and a drop + reopen (WAL replay over whatever generation mix the
/// compactor left) reproduces the same live id set.
#[test]
fn torture_queries_race_mutations_and_background_compaction() {
    let d = 10;
    let n_base = 300;
    let (n_ops, n_readers) = if stress() { (4000, 6) } else { (500, 3) };

    // Base data plus one planted high-norm row (gid 0) that is never
    // deleted: ~8× every other norm, so it must win every exhaustive
    // query outright.
    let strong: Vec<f32> = vec![8.0f32; d];
    let mut rows = vec![strong.clone()];
    rows.extend(random_rows(n_base - 1, d, 42, 1.0));
    let data = Matrix::from_rows(d, rows.iter().cloned());

    // Everything the writer will ever insert, precomputed so the norm
    // bound below is static.
    let inserts = random_rows(n_ops, d, 43, 2.0);
    let max_norm_ever = data
        .iter_rows()
        .map(sq_norm2)
        .chain(inserts.iter().map(|v| sq_norm2(v)))
        .fold(0.0f64, f64::max)
        .sqrt();

    let dir = temp_dir("torture");
    let cfg = ShardedConfig::builder()
        .shards(3)
        .exact_threshold(40)
        .wal_sync(SyncPolicy::EveryN(16))
        .compaction(CompactionPolicy {
            max_delta_fraction: 0.05,
            max_tombstone_fraction: 0.05,
            min_mutations: 24,
            repartition_skew: f64::INFINITY, // repartition tested separately
        })
        .base(ProMipsConfig::builder().seed(7).build())
        .build();
    let idx = Arc::new(ShardedProMips::build_in_dir(&data, cfg, &dir).unwrap());
    let compactor = idx.start_compactor(Duration::from_millis(3)).unwrap();

    let stop = AtomicBool::new(false);
    let scratch = ShardedScratch::for_index(&idx);
    let live = std::thread::scope(|s| {
        // Readers: hammer queries until the writer finishes.
        for r in 0..n_readers {
            let idx = &idx;
            let stop = &stop;
            let scratch = &scratch;
            let strong = &strong;
            s.spawn(move || {
                let mut rng = Xoshiro256pp::seed_from_u64(100 + r as u64);
                let mut i = 0usize;
                while !stop.load(Ordering::Acquire) {
                    let q: Vec<f32> = (0..d).map(|_| rng.normal() as f32).collect();
                    let res = idx.search_with_scratch(&q, 10, scratch).unwrap();
                    let q_norm = sq_norm2(&q).sqrt();
                    let mut seen = BTreeSet::new();
                    for w in res.items.windows(2) {
                        assert!(w[0].ip >= w[1].ip, "results must be sorted");
                    }
                    for it in &res.items {
                        assert!(seen.insert(it.id), "duplicate gid {} in top-k", it.id);
                        assert!(
                            it.ip <= q_norm * max_norm_ever + 1e-6,
                            "ip {} breaks the Cauchy–Schwarz ceiling {}",
                            it.ip,
                            q_norm * max_norm_ever
                        );
                    }
                    // Every ~8th query: exhaustive scan (k ≥ live count
                    // forces full verification) — the planted strong row
                    // must sit at rank 1 with its exact inner product.
                    if i.is_multiple_of(8) {
                        let qs: Vec<f32> =
                            (0..d).map(|_| 1.0 + 0.01 * rng.normal() as f32).collect();
                        let full = idx
                            .search_with_scratch(&qs, usize::MAX / 2, scratch)
                            .unwrap();
                        assert_eq!(full.items[0].id, 0, "strong row lost under churn");
                        let want = dot(&qs, strong);
                        assert!(
                            (full.items[0].ip - want).abs() <= 1e-5 * want.abs().max(1.0),
                            "strong ip drifted: {} vs {}",
                            full.items[0].ip,
                            want
                        );
                    }
                    i += 1;
                }
            });
        }

        // Writer: the only mutator; keeps an exact ledger of live gids.
        let mut live: BTreeSet<u64> = (0..n_base as u64).collect();
        let mut rng = Xoshiro256pp::seed_from_u64(9);
        let mut batch: Vec<&[f32]> = Vec::new();
        for (i, v) in inserts.iter().enumerate() {
            if i.is_multiple_of(13) && !batch.is_empty() {
                // Group-commit path: one fsync round per touched shard.
                for gid in idx.insert_batch(batch.drain(..)).unwrap() {
                    live.insert(gid);
                }
            }
            if i.is_multiple_of(3) {
                batch.push(v.as_slice());
            } else {
                live.insert(idx.insert(v).unwrap());
            }
            // Delete a random live gid (never the strong row at gid 0).
            if !i.is_multiple_of(2) {
                let nth = (rng.next_u64() as usize) % live.len();
                let victim = *live.iter().nth(nth).unwrap();
                if victim != 0 {
                    idx.delete(victim).unwrap();
                    live.remove(&victim);
                }
            }
        }
        for gid in idx.insert_batch(batch.drain(..)).unwrap() {
            live.insert(gid);
        }
        stop.store(true, Ordering::Release);
        live
    });

    assert!(
        compactor.stop().is_none(),
        "background compactor hit an IO error"
    );
    idx.sync_wal().unwrap();
    assert_eq!(idx.len(), live.len() as u64, "liveness ledger diverged");
    let gens: Vec<u64> = idx
        .maintenance_stats()
        .iter()
        .map(|s| s.generation)
        .collect();
    assert!(
        gens.iter().any(|&g| g > 0),
        "the background compactor never folded anything: {gens:?}"
    );

    // The quiesced live id set matches the ledger exactly.
    let scratch = ShardedScratch::for_index(&idx);
    let q = vec![1.0f32; d];
    let all = idx
        .search_with_scratch(&q, usize::MAX / 2, &scratch)
        .unwrap();
    let got: BTreeSet<u64> = all.items.iter().map(|it| it.id).collect();
    assert_eq!(got, live, "live id set diverged from the writer's ledger");

    // Crash-reopen: every acknowledged mutation survives the WAL + the
    // compactor's generation mix.
    drop(all);
    drop(idx);
    let reopened = ShardedProMips::open(&dir).unwrap();
    assert_eq!(reopened.len(), live.len() as u64);
    let scratch = ShardedScratch::for_index(&reopened);
    let all = reopened
        .search_with_scratch(&q, usize::MAX / 2, &scratch)
        .unwrap();
    let got: BTreeSet<u64> = all.items.iter().map(|it| it.id).collect();
    assert_eq!(
        got, live,
        "reopen lost or resurrected an acknowledged write"
    );
    assert_eq!(all.items[0].id, 0, "strong row lost across reopen");
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The background compactor alone (no foreground compact calls) must
/// drain accumulated mutation debt to zero once writers go quiet.
#[test]
fn background_compactor_drains_debt_when_quiescent() {
    let d = 8;
    let data = Matrix::from_rows(d, random_rows(200, d, 51, 1.0));
    let dir = temp_dir("drain");
    let cfg = ShardedConfig::builder()
        .shards(2)
        .compaction(CompactionPolicy {
            max_delta_fraction: 0.01,
            max_tombstone_fraction: 0.01,
            min_mutations: 8,
            repartition_skew: f64::INFINITY,
        })
        .base(ProMipsConfig::builder().seed(53).build())
        .build();
    let idx = Arc::new(ShardedProMips::build_in_dir(&data, cfg, &dir).unwrap());
    for v in random_rows(60, d, 57, 1.0) {
        idx.insert(&v).unwrap();
    }
    for gid in (0..200).step_by(5) {
        idx.delete(gid).unwrap();
    }
    assert!(idx.pending_mutations() > 0);

    let compactor = idx.start_compactor(Duration::from_millis(2)).unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    while idx.pending_mutations() > 0 {
        assert!(
            std::time::Instant::now() < deadline,
            "compactor failed to drain {} pending mutations",
            idx.pending_mutations()
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(compactor.stop().is_none());
    assert_eq!(idx.len(), 200 + 60 - 40);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Harness for the fault-injection tests: a small durable index with a
/// known mutation load, so each test can fail one specific IO step of the
/// compaction commit and assert the aftermath.
struct FaultRig {
    dir: std::path::PathBuf,
    tag: String,
    idx: ShardedProMips,
    /// Ledger of live gids after the mutations (all acknowledged +
    /// WAL-synced before any fault is armed).
    live: BTreeSet<u64>,
}

fn fault_rig(tag: &str, exact_threshold: usize) -> FaultRig {
    let d = 8;
    let data = Matrix::from_rows(d, random_rows(150, d, 61, 1.0));
    let dir = temp_dir(tag);
    let cfg = ShardedConfig::builder()
        .shards(2)
        .exact_threshold(exact_threshold)
        .base(ProMipsConfig::builder().seed(67).build())
        .build();
    let idx = ShardedProMips::build_in_dir(&data, cfg, &dir).unwrap();
    let mut live: BTreeSet<u64> = (0..150).collect();
    for v in random_rows(30, d, 71, 1.5) {
        live.insert(idx.insert(&v).unwrap());
    }
    for gid in (0..150).step_by(11) {
        idx.delete(gid).unwrap();
        live.remove(&gid);
    }
    idx.sync_wal().unwrap();
    FaultRig {
        tag: dir.file_name().unwrap().to_string_lossy().into_owned(),
        dir,
        idx,
        live,
    }
}

impl FaultRig {
    /// Arms a one-shot fault scoped to THIS rig's directory (so parallel
    /// tests can never consume it).
    fn arm(&self, op: IoOp, nth: u64, scope: &str) {
        faults::arm(FaultPlan {
            op,
            nth,
            path_contains: Some(format!("{}/{}", self.tag, scope)),
        });
    }

    fn live_ids(idx: &ShardedProMips) -> BTreeSet<u64> {
        let scratch = ShardedScratch::for_index(idx);
        idx.search_with_scratch(&[1.0f32; 8], usize::MAX / 2, &scratch)
            .unwrap()
            .items
            .iter()
            .map(|it| it.id)
            .collect()
    }

    /// The shared aftermath contract: the live index still serves the
    /// exact ledger, and a crash-reopen of the directory reproduces it —
    /// no acknowledged write lost, none applied twice.
    fn assert_intact_and_reopenable(self) {
        assert_eq!(Self::live_ids(&self.idx), self.live, "live view corrupted");
        drop(self.idx);
        let reopened = ShardedProMips::open(&self.dir).unwrap();
        assert_eq!(reopened.len(), self.live.len() as u64);
        assert_eq!(
            Self::live_ids(&reopened),
            self.live,
            "reopen lost or resurrected an acknowledged write"
        );
        std::fs::remove_dir_all(&self.dir).unwrap();
    }
}

/// Step 1 of the commit (shadow build): failing the new generation file's
/// write aborts the compaction with zero footprint — the overlay is not
/// drained, the old generation keeps serving, and a retry succeeds.
#[test]
fn fault_on_generation_build_write_aborts_cleanly() {
    let _serial = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    // High threshold ⇒ exact generations, whose blob writes go through
    // the shim's Write path.
    let rig = fault_rig("genwrite", 10_000);
    let pending = rig.idx.pending_mutations();
    rig.arm(IoOp::Write, 1, "shard_");
    let err = rig.idx.compact_all().unwrap_err();
    assert!(faults::is_injected(&err), "unexpected error: {err}");
    assert!(!faults::disarm(), "the armed fault never fired");
    assert_eq!(
        rig.idx.pending_mutations(),
        pending,
        "a failed shadow build must not drain the overlay"
    );
    // The retry folds everything the fault interrupted.
    assert!(!rig.idx.compact_all().unwrap().is_empty());
    assert_eq!(rig.idx.pending_mutations(), 0);
    rig.assert_intact_and_reopenable();
}

/// Step 2 (the commit point): failing the manifest's tmp-file fsync means
/// the swap never happened — on-disk and in-memory state both stay on the
/// old generation, and the intact WAL still carries every mutation.
#[test]
fn fault_on_manifest_fsync_keeps_old_generation_authoritative() {
    let _serial = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let rig = fault_rig("manifsync", 40);
    rig.arm(IoOp::Fsync, 1, "MANIFEST");
    let err = rig.idx.compact_all().unwrap_err();
    assert!(faults::is_injected(&err), "unexpected error: {err}");
    assert!(!faults::disarm());
    for st in rig.idx.maintenance_stats() {
        assert_eq!(
            st.generation, 0,
            "generation must not advance past a failed swap"
        );
    }
    assert!(
        rig.idx.pending_mutations() > 0,
        "overlay drained without a commit"
    );
    rig.assert_intact_and_reopenable();
}

/// Step 2 again, at the rename itself: the atomic-replace never lands, so
/// the old manifest (and generation) stay authoritative.
#[test]
fn fault_on_manifest_rename_keeps_old_generation_authoritative() {
    let _serial = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let rig = fault_rig("manirename", 40);
    rig.arm(IoOp::Rename, 1, "MANIFEST");
    let err = rig.idx.compact_all().unwrap_err();
    assert!(faults::is_injected(&err), "unexpected error: {err}");
    assert!(!faults::disarm());
    for st in rig.idx.maintenance_stats() {
        assert_eq!(st.generation, 0);
    }
    // A later, healthy pass commits; the directory then reopens on the
    // new generation.
    assert!(!rig.idx.compact_all().unwrap().is_empty());
    rig.assert_intact_and_reopenable();
}

/// Step 3 (after the commit point): the manifest already names the new
/// generation when the WAL rewrite fails. The commit must complete in
/// memory anyway — and reopening with the STALE log replays records whose
/// folded prefix is already in the generation, which the staleness rules
/// turn into no-ops. This is the live version of the crash window the
/// `stale_wal_replay_after_compaction_crash_is_idempotent` test covers
/// from cold.
#[test]
fn fault_on_wal_rewrite_after_manifest_swap_loses_nothing() {
    let _serial = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let rig = fault_rig("walrewrite", 40);
    // Only WAL IO routes through the shim on shard-named paths (the page
    // files write directly), so this fails the rewrite's rename into
    // place — the first shard-scoped rename of the commit.
    rig.arm(IoOp::Rename, 1, "shard_");
    let err = rig.idx.compact_all().unwrap_err();
    assert!(faults::is_injected(&err), "unexpected error: {err}");
    assert!(!faults::disarm());
    // Past the commit point: at least one shard advanced even though the
    // pass reported the rewrite failure.
    assert!(
        rig.idx
            .maintenance_stats()
            .iter()
            .any(|st| st.generation > 0),
        "manifest swap landed, so the generation must advance"
    );
    rig.assert_intact_and_reopenable();
}

/// A WAL append fsync failure surfaces to the writer as a typed IO error
/// and the in-memory apply is skipped: the un-acknowledged point is not
/// searchable, the index keeps serving, and the directory stays
/// reopenable (the torn record is allowed to survive — it was never
/// acknowledged — but nothing acknowledged may be lost).
#[test]
fn fault_on_wal_append_fsync_refuses_the_write_only() {
    let _serial = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let rig = fault_rig("walappend", 40);
    rig.arm(IoOp::Fsync, 1, "shard_");
    let err = match rig.idx.insert(&[0.5f32; 8]) {
        Err(MutationError::Io(e)) => e,
        other => panic!("expected an IO refusal, got {other:?}"),
    };
    assert!(faults::is_injected(&err), "unexpected error: {err}");
    assert!(!faults::disarm());
    // Not acknowledged ⇒ not searchable now.
    assert_eq!(FaultRig::live_ids(&rig.idx), rig.live);
    // A retry (healthy IO) succeeds and is immediately searchable; the
    // burned gid from the refused attempt stays a permanent skip.
    let mut rig = rig;
    let gid = rig.idx.insert(&[0.5f32; 8]).unwrap();
    rig.live.insert(gid);
    // The unsynced record of the refused insert may or may not have
    // reached the file; a reopen may legitimately resurrect it as an
    // unacknowledged extra. Pin the contract on the acknowledged set.
    assert_eq!(
        FaultRig::live_ids(&rig.idx),
        rig.live,
        "acked write not visible"
    );
    drop(rig.idx);
    let reopened = ShardedProMips::open(&rig.dir).unwrap();
    let got = FaultRig::live_ids(&reopened);
    assert!(
        got.is_superset(&rig.live),
        "reopen lost an acknowledged write"
    );
    assert!(
        got.len() <= rig.live.len() + 1,
        "more than the one unacked record resurrected"
    );
    std::fs::remove_dir_all(&rig.dir).unwrap();
}

/// Repartitioning commits all shards through one manifest swap; failing
/// that swap must leave every shard on its old generation with writers
/// unblocked afterwards.
#[test]
fn fault_on_repartition_manifest_swap_aborts_wholesale() {
    let _serial = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let rig = fault_rig("repart", 40);
    rig.arm(IoOp::Rename, 1, "MANIFEST");
    let err = rig.idx.repartition().unwrap_err();
    assert!(faults::is_injected(&err), "unexpected error: {err}");
    assert!(!faults::disarm());
    for st in rig.idx.maintenance_stats() {
        assert_eq!(st.generation, 0, "no shard may advance past a failed swap");
    }
    // Writers are not wedged by the abort.
    let mut rig = rig;
    let gid = rig.idx.insert(&[0.25f32; 8]).unwrap();
    rig.live.insert(gid);
    // And a healthy repartition completes on the same index.
    rig.idx.repartition().unwrap();
    assert_eq!(rig.idx.pending_mutations(), 0);
    rig.assert_intact_and_reopenable();
}

/// Degraded-mode torture: readers hammer a `BestEffort` index whose page
/// reads fail *probabilistically* (a recurring seeded plan, ~5% of reads)
/// while a writer mutates underneath. No query may panic; every Ok answer
/// — degraded or not — keeps the isolation invariants; every Err is the
/// injected fault, typed, never a torn result. Afterwards (faults
/// disarmed) the acknowledged-write ledger must hold exactly, live and
/// across a reopen.
#[test]
fn torture_best_effort_queries_survive_probabilistic_read_faults() {
    let _serial = FAULT_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    use promips_shard::DegradationPolicy;

    let d = 10;
    // Enough committed pages per shard that the tiny pool below keeps
    // missing (and thus keeps issuing faultable reads) all run long.
    let n_base = 6000;
    let (n_ops, n_readers) = if stress() { (2000, 6) } else { (400, 3) };

    let strong: Vec<f32> = vec![8.0f32; d];
    let mut rows = vec![strong.clone()];
    rows.extend(random_rows(n_base - 1, d, 81, 1.0));
    let data = Matrix::from_rows(d, rows.iter().cloned());
    let inserts = random_rows(n_ops, d, 83, 2.0);
    let max_norm_ever = data
        .iter_rows()
        .map(sq_norm2)
        .chain(inserts.iter().map(|v| sq_norm2(v)))
        .fold(0.0f64, f64::max)
        .sqrt();

    let dir = temp_dir("fault-torture");
    let tag = dir.file_name().unwrap().to_string_lossy().into_owned();
    // exact_threshold(0): every shard is indexed, so queries do real page
    // IO; a tiny pool keeps cache misses (and thus fault opportunities)
    // coming for the whole run. Pruning stays on — a pruned shard just
    // dodges its fault chance, which is fine.
    let cfg = ShardedConfig::builder()
        .shards(3)
        .exact_threshold(0)
        .degradation(DegradationPolicy::BestEffort)
        .wal_sync(SyncPolicy::EveryN(16))
        .base(ProMipsConfig::builder().seed(17).pool_pages(4).build())
        .build();
    let idx = Arc::new(ShardedProMips::build_in_dir(&data, cfg, &dir).unwrap());
    // Cold cache + a probabilistic read fault on THIS test's pages only.
    idx.clear_cache();
    faults::arm_with(
        FaultPlan {
            op: IoOp::Read,
            nth: 1,
            path_contains: Some(format!("{tag}/shard_")),
        },
        faults::Recurrence::Probabilistic {
            seed: 0xC0FFEE,
            p: 0.01,
        },
        std::io::ErrorKind::Other,
    );

    let stop = AtomicBool::new(false);
    let scratch = ShardedScratch::for_index(&idx);
    let (live, degraded_seen, refused_seen) = std::thread::scope(|s| {
        let mut readers = Vec::new();
        for r in 0..n_readers {
            let idx = &idx;
            let stop = &stop;
            let scratch = &scratch;
            readers.push(s.spawn(move || {
                let mut rng = Xoshiro256pp::seed_from_u64(200 + r as u64);
                let (mut degraded, mut refused) = (0u64, 0u64);
                while !stop.load(Ordering::Acquire) {
                    let q: Vec<f32> = (0..d).map(|_| rng.normal() as f32).collect();
                    match idx.search_with_scratch(&q, 10, scratch) {
                        Ok(res) => {
                            degraded += u64::from(res.degraded);
                            let q_norm = sq_norm2(&q).sqrt();
                            let mut seen = BTreeSet::new();
                            for w in res.items.windows(2) {
                                assert!(w[0].ip >= w[1].ip, "results must be sorted");
                            }
                            for it in &res.items {
                                assert!(seen.insert(it.id), "duplicate gid {}", it.id);
                                assert!(
                                    it.ip <= q_norm * max_norm_ever + 1e-6,
                                    "ip {} breaks the Cauchy–Schwarz ceiling",
                                    it.ip
                                );
                            }
                        }
                        // Every shard the query needed failed: the typed
                        // refusal must carry the injected marker — never
                        // a panic, never a fabricated answer.
                        Err(e) => {
                            assert!(faults::is_injected(&e), "unexpected error: {e}");
                            refused += 1;
                        }
                    }
                }
                (degraded, refused)
            }));
        }

        // Writer: WAL appends are Write/Fsync ops — unfaulted here — so
        // every mutation must be acknowledged and the ledger is exact.
        let mut live: BTreeSet<u64> = (0..n_base as u64).collect();
        let mut rng = Xoshiro256pp::seed_from_u64(19);
        for (i, v) in inserts.iter().enumerate() {
            live.insert(idx.insert(v).unwrap());
            if !i.is_multiple_of(2) {
                let nth = (rng.next_u64() as usize) % live.len();
                let victim = *live.iter().nth(nth).unwrap();
                if victim != 0 {
                    idx.delete(victim).unwrap();
                    live.remove(&victim);
                }
            }
        }
        stop.store(true, Ordering::Release);
        let (mut degraded, mut refused) = (0u64, 0u64);
        for h in readers {
            let (dg, rf) = h.join().unwrap();
            degraded += dg;
            refused += rf;
        }
        (live, degraded, refused)
    });
    faults::disarm();
    println!("fault torture: {degraded_seen} degraded answers, {refused_seen} typed refusals");

    // Faults off: the acknowledged ledger holds exactly, live and across
    // a crash-reopen.
    idx.sync_wal().unwrap();
    assert_eq!(idx.len(), live.len() as u64, "liveness ledger diverged");
    let scratch = ShardedScratch::for_index(&idx);
    let q = vec![1.0f32; d];
    let all = idx
        .search_with_scratch(&q, usize::MAX / 2, &scratch)
        .unwrap();
    let got: BTreeSet<u64> = all.items.iter().map(|it| it.id).collect();
    assert_eq!(got, live, "live id set diverged from the writer's ledger");
    assert_eq!(all.items[0].id, 0, "strong row lost under faulted churn");

    drop(all);
    drop(idx);
    let reopened = ShardedProMips::open(&dir).unwrap();
    assert_eq!(reopened.len(), live.len() as u64);
    let scratch = ShardedScratch::for_index(&reopened);
    let all = reopened
        .search_with_scratch(&q, usize::MAX / 2, &scratch)
        .unwrap();
    let got: BTreeSet<u64> = all.items.iter().map(|it| it.id).collect();
    assert_eq!(
        got, live,
        "reopen lost or resurrected an acknowledged write"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}
