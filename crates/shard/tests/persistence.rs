//! Sharded persistence: snapshot a `ShardedProMips` to a directory, reload
//! it, and require bit-identical behaviour — top-k items, per-shard point
//! counts, and the 1-shard configuration's equivalence to the plain
//! unsharded index.

use promips_core::{ProMips, ProMipsConfig};
use promips_linalg::Matrix;
use promips_shard::{PartitionStrategy, ShardedConfig, ShardedProMips};
use promips_stats::Xoshiro256pp;

fn random_data(n: usize, d: usize, seed: u64) -> Matrix {
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    Matrix::from_rows(
        d,
        (0..n).map(|_| (0..d).map(|_| rng.normal() as f32).collect::<Vec<f32>>()),
    )
}

fn random_queries(nq: usize, d: usize, seed: u64) -> Vec<Vec<f32>> {
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    (0..nq)
        .map(|_| (0..d).map(|_| rng.normal() as f32).collect())
        .collect()
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("promips-shard-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn snapshot_reload_is_bit_identical() {
    let dir = temp_dir("roundtrip");
    let data = random_data(1100, 18, 7);
    let cfg = ShardedConfig::builder()
        .shards(4)
        .exact_threshold(64)
        .base(ProMipsConfig::builder().c(0.9).p(0.5).seed(21).build())
        .build();
    let built = ShardedProMips::build_in_memory(&data, cfg).unwrap();
    built.snapshot(&dir).unwrap();

    let queries = random_queries(10, 18, 11);
    let before: Vec<_> = queries
        .iter()
        .map(|q| built.search(q, 10).unwrap())
        .collect();
    let points_before = built.shard_points();
    drop(built);

    let reopened = ShardedProMips::open(&dir).unwrap();
    assert_eq!(reopened.len(), 1100);
    assert_eq!(reopened.shard_count(), 4);
    assert_eq!(reopened.shard_points(), points_before);
    assert_eq!(reopened.partitioner_name(), "norm-range");
    assert_eq!(reopened.config().strategy, PartitionStrategy::NormRange);

    for (q, b) in queries.iter().zip(&before) {
        let a = reopened.search(q, 10).unwrap();
        assert_eq!(a.items, b.items, "reloaded top-k must be bit-identical");
        assert_eq!(a.verified, b.verified);
        for (x, y) in a.per_shard.iter().zip(&b.per_shard) {
            assert_eq!(x, y, "per-shard stats must survive the roundtrip");
        }
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn build_in_dir_equals_in_memory_build_and_reopens() {
    let dir = temp_dir("build-in-dir");
    let data = random_data(900, 14, 17);
    let cfg = ShardedConfig::builder()
        .shards(3)
        .base(ProMipsConfig::builder().seed(5).build())
        .build();
    let mem = ShardedProMips::build_in_memory(&data, cfg.clone()).unwrap();
    let disk = ShardedProMips::build_in_dir(&data, cfg, &dir).unwrap();

    let queries = random_queries(8, 14, 19);
    for q in &queries {
        let a = mem.search(q, 7).unwrap();
        let b = disk.search(q, 7).unwrap();
        assert_eq!(a.items, b.items, "storage backend must not change results");
    }
    drop(disk);

    let reopened = ShardedProMips::open(&dir).unwrap();
    assert_eq!(reopened.shard_points(), mem.shard_points());
    for q in &queries {
        let a = mem.search(q, 7).unwrap();
        let b = reopened.search(q, 7).unwrap();
        assert_eq!(a.items, b.items);
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn one_shard_snapshot_matches_unsharded_index() {
    // The compatibility pin: a persisted-and-reloaded 1-shard sharded index
    // must agree item-for-item with the plain ProMips built from the same
    // base config over the same data.
    let dir = temp_dir("one-shard");
    let data = random_data(800, 16, 29);
    let base = ProMipsConfig::builder().c(0.85).p(0.6).seed(77).build();
    let unsharded = ProMips::build_in_memory(&data, base.clone()).unwrap();
    let sharded = ShardedProMips::build_in_memory(
        &data,
        ShardedConfig::builder()
            .shards(1)
            .exact_threshold(0)
            .base(base)
            .build(),
    )
    .unwrap();
    assert_eq!(sharded.shard_points(), vec![800]);
    sharded.snapshot(&dir).unwrap();
    drop(sharded);

    let reopened = ShardedProMips::open(&dir).unwrap();
    assert_eq!(reopened.shard_points(), vec![800]);
    for q in random_queries(10, 16, 31) {
        let a = unsharded.search(&q, 9).unwrap();
        let b = reopened.search(&q, 9).unwrap();
        assert_eq!(a.items, b.items, "1-shard reload must equal unsharded");
        assert_eq!(a.verified, b.verified);
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn shard_files_carry_the_quantized_column() {
    // Each indexed shard's self-contained .pmx file must persist the SQ8
    // quantized region (format v2): opened directly with `ProMips::open`,
    // the shard reports the tier active, and the reloaded sharded index
    // keeps returning bit-identical results through the two-level scan.
    let dir = temp_dir("quantcol");
    let data = random_data(900, 16, 41);
    let cfg = ShardedConfig::builder()
        .shards(3)
        .exact_threshold(0) // all shards indexed
        .base(ProMipsConfig::builder().c(0.9).p(0.5).seed(13).build())
        .build();
    let built = ShardedProMips::build_in_memory(&data, cfg).unwrap();
    built.snapshot(&dir).unwrap();

    for si in 0..3 {
        let path = dir.join(format!("shard_{si:04}.pmx"));
        let storage = std::sync::Arc::new(promips_storage::FileStorage::open(&path, 4096).unwrap());
        let pager = std::sync::Arc::new(promips_storage::Pager::new(
            storage,
            256,
            promips_storage::AccessStats::new_shared(),
        ));
        let shard = ProMips::open(pager).unwrap();
        assert!(
            shard.idistance().quantized(),
            "shard {si} file lost the quantized tier"
        );
        assert_eq!(
            shard.idistance().quants().len(),
            shard.idistance().subparts().len()
        );
    }

    let queries = random_queries(6, 16, 43);
    let before: Vec<_> = queries
        .iter()
        .map(|q| built.search(q, 8).unwrap())
        .collect();
    drop(built);
    let reopened = ShardedProMips::open(&dir).unwrap();
    for (q, b) in queries.iter().zip(&before) {
        let a = reopened.search(q, 8).unwrap();
        assert_eq!(a.items, b.items);
        assert_eq!(a.verified, b.verified);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn exact_shards_survive_the_roundtrip() {
    let dir = temp_dir("exact");
    let data = random_data(150, 10, 41);
    // Threshold above every shard size: all four shards are scan-backed.
    let cfg = ShardedConfig::builder()
        .shards(4)
        .exact_threshold(1_000)
        .build();
    let built = ShardedProMips::build_in_memory(&data, cfg).unwrap();
    assert!(built.shards().iter().all(|s| s.is_exact()));
    built.snapshot(&dir).unwrap();
    let queries = random_queries(6, 10, 43);
    let before: Vec<_> = queries
        .iter()
        .map(|q| built.search(q, 5).unwrap())
        .collect();
    drop(built);

    let reopened = ShardedProMips::open(&dir).unwrap();
    assert!(reopened.shards().iter().all(|s| s.is_exact()));
    assert_eq!(reopened.shard_points().iter().sum::<u64>(), 150);
    for (q, b) in queries.iter().zip(&before) {
        assert_eq!(reopened.search(q, 5).unwrap().items, b.items);
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn snapshot_does_not_inflate_read_stats_or_evict_cache() {
    // The page copy must go through the raw storage device, not the
    // pager: logical-read counters are the paper's Page Access metric and
    // must not move, and the query working set must stay cached.
    let dir = temp_dir("stats");
    let data = random_data(600, 12, 53);
    let built =
        ShardedProMips::build_in_memory(&data, ShardedConfig::builder().shards(2).build()).unwrap();
    let q = random_queries(1, 12, 57).pop().unwrap();
    built.reset_stats();
    let _ = built.search(&q, 5).unwrap();
    let before = built.access_stats();
    built.snapshot(&dir).unwrap();
    let after = built.access_stats();
    assert_eq!(
        after.logical_reads, before.logical_reads,
        "snapshot charged logical reads to the shard pagers"
    );
    assert_eq!(after.cache_misses, before.cache_misses);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn open_rejects_truncated_manifest() {
    // Every truncation point must surface as an error, never a panic.
    let dir = temp_dir("truncated");
    let data = random_data(200, 8, 59);
    let built =
        ShardedProMips::build_in_memory(&data, ShardedConfig::builder().shards(2).build()).unwrap();
    built.snapshot(&dir).unwrap();
    let manifest = std::fs::read(dir.join("MANIFEST.pms")).unwrap();
    for cut in [17, 64, 127, 130, manifest.len() - 9, manifest.len() - 1] {
        std::fs::write(dir.join("MANIFEST.pms"), &manifest[..cut]).unwrap();
        assert!(
            ShardedProMips::open(&dir).is_err(),
            "truncation at {cut} bytes must error"
        );
    }
    // Restoring the full manifest restores openability.
    std::fs::write(dir.join("MANIFEST.pms"), &manifest).unwrap();
    assert!(ShardedProMips::open(&dir).is_ok());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn open_rejects_garbage_manifest() {
    let dir = temp_dir("garbage");
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("MANIFEST.pms"), b"not a manifest at all").unwrap();
    assert!(ShardedProMips::open(&dir).is_err());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn open_missing_dir_errors() {
    let dir = temp_dir("missing");
    assert!(ShardedProMips::open(&dir).is_err());
}
