//! Registry torture: writer threads hammering counters, gauges, and
//! histograms while reader threads snapshot concurrently. Verifies that
//! nothing is lost (counts conserved exactly at join) and that
//! concurrent snapshots are sane (monotonic counters, bounded values).
//!
//! The default configuration keeps `cargo test` quick; the CI stress
//! job sets `PROMIPS_STRESS=1` to scale writers, readers, and ops up.

use promips_obs::window::MetricsWindow;
use promips_obs::{recorder, CounterId, GaugeId, HistoId, Registry};
use std::sync::atomic::{AtomicBool, Ordering};
use std::thread;

struct Torture {
    writers: usize,
    readers: usize,
    ops_per_writer: u64,
}

fn config() -> Torture {
    if std::env::var("PROMIPS_STRESS").as_deref() == Ok("1") {
        Torture {
            writers: 8,
            readers: 4,
            ops_per_writer: 200_000,
        }
    } else {
        Torture {
            writers: 4,
            readers: 2,
            ops_per_writer: 20_000,
        }
    }
}

#[test]
fn counts_conserved_under_concurrent_snapshots() {
    // A dedicated static registry: same code path as `Registry::global()`
    // without cross-talk from other tests feeding the global one.
    static REG: Registry = Registry::new();
    let t = config();
    let done = AtomicBool::new(false);

    thread::scope(|s| {
        for w in 0..t.writers {
            let reg = &REG;
            s.spawn(move || {
                for i in 0..t.ops_per_writer {
                    reg.counter(CounterId::Queries).inc();
                    reg.counter(CounterId::Inserts).add(2);
                    // Net gauge effect per op is +1 via a transient +3/-2,
                    // so readers can observe intermediate levels.
                    reg.gauge(GaugeId::DeltaRows).add(3);
                    reg.gauge(GaugeId::DeltaRows).sub(2);
                    // Values spread across many log2 buckets.
                    reg.histogram(HistoId::QueryLatencyNs)
                        .record((i.wrapping_mul(2654435761) >> (w % 16)) % 1_000_000);
                }
            });
        }

        for _ in 0..t.readers {
            let reg = &REG;
            let done = &done;
            s.spawn(move || {
                let total_ops = t.writers as u64 * t.ops_per_writer;
                let mut last_queries = 0u64;
                let mut snaps = 0u64;
                while !done.load(Ordering::Acquire) {
                    let snap = reg.snapshot();
                    let queries = snap.counter(CounterId::Queries);
                    assert!(
                        queries >= last_queries,
                        "counter went backwards: {queries} < {last_queries}"
                    );
                    assert!(queries <= total_ops);
                    assert_eq!(
                        snap.counter(CounterId::Inserts) % 2,
                        0,
                        "inserts counted in indivisible twos"
                    );
                    // Gauge transits through +3 before the -2 lands, so
                    // any observed level stays within [0, ops + 3*writers].
                    let delta = snap.gauge(GaugeId::DeltaRows);
                    assert!(delta >= 0 && delta as u64 <= total_ops + 3 * t.writers as u64);
                    assert!(snap.histogram(HistoId::QueryLatencyNs).count() <= total_ops);
                    last_queries = queries;
                    snaps += 1;
                }
                assert!(snaps > 0);
            });
        }

        // Writers are the first `t.writers` spawned handles; scope joins
        // everything, but readers need the flag to stop first. Spawn a
        // watchdog that flips it once writers are done by polling the
        // counter total.
        let reg = &REG;
        let done = &done;
        s.spawn(move || {
            let total_ops = t.writers as u64 * t.ops_per_writer;
            while reg.counter(CounterId::Queries).get() < total_ops {
                thread::yield_now();
            }
            done.store(true, Ordering::Release);
        });
    });

    let total_ops = t.writers as u64 * t.ops_per_writer;
    let snap = REG.snapshot();
    assert_eq!(snap.counter(CounterId::Queries), total_ops);
    assert_eq!(snap.counter(CounterId::Inserts), 2 * total_ops);
    assert_eq!(snap.gauge(GaugeId::DeltaRows), total_ops as i64);
    let h = snap.histogram(HistoId::QueryLatencyNs);
    assert_eq!(h.count(), total_ops, "every histogram record retained");
    // All recorded values were < 1_000_000 < 2^20, and the estimate
    // interpolates at most to its bucket's upper bound.
    assert!(h.quantile(1.0) <= (1u64 << 20) as f64);
    assert_eq!(
        h.buckets[21..].iter().sum::<u64>(),
        0,
        "no sample can land above the 2^20 bucket"
    );
}

/// Window ticks racing with writers and concurrent windowed readers:
/// every interval delta is non-negative (saturating diffs never
/// underflow mid-write), concurrent views never over-count, and once
/// the writers join, the intervals sum to exactly the written total.
#[test]
fn window_ticks_conserve_counts_under_concurrent_writers() {
    static REG: Registry = Registry::new();
    // Capacity comfortably above any tick count this test performs, so
    // conservation is exact (nothing rotates out).
    static WINDOW: MetricsWindow = MetricsWindow::with_capacity(1 << 16);
    let t = config();
    let done = AtomicBool::new(false);
    let total_ops = t.writers as u64 * t.ops_per_writer;

    // Baseline before any writer starts, so every write falls inside
    // some interval.
    WINDOW.tick(&REG);

    thread::scope(|s| {
        for _ in 0..t.writers {
            let reg = &REG;
            s.spawn(move || {
                for i in 0..t.ops_per_writer {
                    reg.counter(CounterId::Queries).inc();
                    reg.histogram(HistoId::QueryLatencyNs).record(i % 4096);
                }
            });
        }

        // The ticker closes intervals as fast as it can while writers
        // run — the adversarial version of the 1 s aggregator cadence.
        let reg = &REG;
        let done = &done;
        s.spawn(move || {
            while !done.load(Ordering::Acquire) {
                WINDOW.tick(reg);
                thread::yield_now();
            }
        });

        for _ in 0..t.readers {
            s.spawn(move || {
                let mut views = 0u64;
                while !done.load(Ordering::Acquire) {
                    let v = WINDOW.window(u64::MAX);
                    assert!(
                        v.count(CounterId::Queries) <= total_ops,
                        "window over-counts: {} > {total_ops}",
                        v.count(CounterId::Queries)
                    );
                    assert!(v.snapshot.histogram(HistoId::QueryLatencyNs).count() <= total_ops);
                    views += 1;
                }
                assert!(views > 0);
            });
        }

        let reg = &REG;
        s.spawn(move || {
            while reg.counter(CounterId::Queries).get() < total_ops {
                thread::yield_now();
            }
            done.store(true, Ordering::Release);
        });
    });

    // One final tick captures whatever the last racing tick missed.
    WINDOW.tick(&REG);
    let v = WINDOW.window(u64::MAX);
    assert_eq!(v.count(CounterId::Queries), total_ops);
    assert_eq!(
        v.snapshot.histogram(HistoId::QueryLatencyNs).count(),
        total_ops,
        "interval deltas conserve every histogram record"
    );
}

/// Flight-recorder torture: concurrent emitters racing each other and
/// concurrent dumpers. Every dump is sorted, bounded, and made of
/// complete events; the final ring holds the newest CAPACITY sequences.
#[test]
fn recorder_dumps_stay_coherent_under_concurrent_emits() {
    let t = config();
    // Recorder events are rare in production; cap the op count so the
    // per-slot lock traffic doesn't dominate the suite.
    let ops_per_writer = t.ops_per_writer.min(20_000);
    let done = AtomicBool::new(false);
    let emitted = std::sync::atomic::AtomicU64::new(0);
    let total = t.writers as u64 * ops_per_writer;

    thread::scope(|s| {
        for w in 0..t.writers {
            let emitted = &emitted;
            s.spawn(move || {
                for i in 0..ops_per_writer {
                    recorder::emit(recorder::EventKind::GenerationSwap {
                        shard: w as u32,
                        generation: i,
                    });
                    emitted.fetch_add(1, Ordering::Release);
                }
            });
        }

        for _ in 0..t.readers {
            let done = &done;
            s.spawn(move || {
                let mut dumps = 0u64;
                while !done.load(Ordering::Acquire) {
                    let events = recorder::dump();
                    assert!(events.len() <= recorder::CAPACITY);
                    assert!(
                        events.windows(2).all(|p| p[0].seq < p[1].seq),
                        "dump must be strictly ordered by sequence"
                    );
                    dumps += 1;
                }
                assert!(dumps > 0);
            });
        }

        let done = &done;
        let emitted = &emitted;
        s.spawn(move || {
            while emitted.load(Ordering::Acquire) < total {
                thread::yield_now();
            }
            done.store(true, Ordering::Release);
        });
    });

    let events = recorder::dump();
    assert_eq!(events.len(), recorder::CAPACITY.min(total as usize));
    // The ring retains a suffix of the sequence space: the newest
    // CAPACITY claims all landed (a racer can only lose its slot to a
    // strictly newer event).
    let min_seq = events.first().unwrap().seq;
    let max_seq = events.last().unwrap().seq;
    assert_eq!(
        (max_seq - min_seq + 1) as usize,
        events.len(),
        "retained sequences are contiguous"
    );
}
