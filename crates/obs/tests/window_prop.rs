//! Property tests for the windowed-metrics ring: a windowed view merged
//! from per-interval snapshot deltas must agree with a fresh registry
//! fed the same samples — exactly at the bucket level, and within the
//! log2 histogram's factor-of-2 bound against the true order statistic.
//! Rotation edge cases (empty intervals, horizons shorter than one
//! interval, capacity overflow) ride along.

use promips_obs::window::{MetricsWindow, HORIZON_1S};
use promips_obs::{CounterId, HistoId, Registry, RegistrySnapshot};
use proptest::prelude::*;

/// Exact order statistic matching the histogram's rank convention.
fn exact_quantile(sorted: &[u64], p: f64) -> u64 {
    let n = sorted.len() as u64;
    let k = ((p * n as f64).ceil() as u64).clamp(1, n);
    sorted[(k - 1) as usize]
}

/// A fresh registry fed `samples` — the oracle a window is compared to.
fn oracle(samples: &[u64]) -> RegistrySnapshot {
    let r = Registry::new();
    for &v in samples {
        r.histogram(HistoId::QueryLatencyNs).record(v);
        r.counter(CounterId::Queries).inc();
    }
    r.snapshot()
}

/// Interval streams: up to 12 intervals of 0..30 samples each, values
/// spread across the full bucket range via a random shift. Empty
/// intervals are deliberately common.
fn intervals_strategy() -> impl Strategy<Value = Vec<Vec<u64>>> {
    proptest::collection::vec(
        proptest::collection::vec((0u64..1024, 0u32..40).prop_map(|(v, s)| v << s), 0..30),
        1..12,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Feeding a cumulative registry tick-by-tick and merging every
    /// interval back together recovers the fresh-registry oracle: the
    /// histogram buckets match exactly, and therefore every windowed
    /// quantile is within the same factor-of-2 of the true order
    /// statistic that a cumulative histogram guarantees.
    #[test]
    fn windowed_quantiles_match_a_fresh_registry(
        intervals in intervals_strategy(),
        p in 0.0f64..1.0,
    ) {
        let r = Registry::new();
        let w = MetricsWindow::with_capacity(intervals.len());
        w.tick_at(r.snapshot(), 0);
        for (i, batch) in intervals.iter().enumerate() {
            for &v in batch {
                r.histogram(HistoId::QueryLatencyNs).record(v);
                r.counter(CounterId::Queries).inc();
            }
            w.tick_at(r.snapshot(), (i as u64 + 1) * HORIZON_1S);
        }

        let all: Vec<u64> = intervals.iter().flatten().copied().collect();
        let want = oracle(&all);
        let view = w.window(intervals.len() as u64 * HORIZON_1S);

        prop_assert_eq!(view.intervals, intervals.len());
        prop_assert_eq!(view.count(CounterId::Queries), all.len() as u64);
        let got_h = view.snapshot.histogram(HistoId::QueryLatencyNs);
        let want_h = want.histogram(HistoId::QueryLatencyNs);
        prop_assert_eq!(&got_h.buckets[..], &want_h.buckets[..]);
        prop_assert_eq!(got_h.sum, want_h.sum);

        if !all.is_empty() {
            let mut sorted = all.clone();
            sorted.sort_unstable();
            for q in [0.0, p, 0.5, 0.99, 1.0] {
                let exact = exact_quantile(&sorted, q);
                let est = view.quantile(HistoId::QueryLatencyNs, q);
                if exact == 0 {
                    prop_assert_eq!(est, 0.0, "q={}: exact 0 must estimate 0", q);
                } else {
                    let ratio = est / exact as f64;
                    prop_assert!(
                        (0.5..=2.0).contains(&ratio),
                        "q={}: exact={} est={} ratio={}",
                        q, exact, est, ratio
                    );
                }
            }
        }
    }

    /// Rotation: with capacity for only the newest `cap` intervals, a
    /// full-horizon view equals the oracle over exactly those intervals
    /// — older activity has genuinely left the window.
    #[test]
    fn rotation_drops_history_exactly(
        intervals in intervals_strategy(),
        cap in 1usize..6,
    ) {
        let r = Registry::new();
        let w = MetricsWindow::with_capacity(cap);
        w.tick_at(r.snapshot(), 0);
        for (i, batch) in intervals.iter().enumerate() {
            for &v in batch {
                r.histogram(HistoId::QueryLatencyNs).record(v);
                r.counter(CounterId::Queries).inc();
            }
            w.tick_at(r.snapshot(), (i as u64 + 1) * HORIZON_1S);
        }

        let kept = cap.min(intervals.len());
        let surviving: Vec<u64> = intervals[intervals.len() - kept..]
            .iter()
            .flatten()
            .copied()
            .collect();
        let want = oracle(&surviving);
        let view = w.window(u64::MAX);

        prop_assert_eq!(view.intervals, kept);
        prop_assert_eq!(view.count(CounterId::Queries), surviving.len() as u64);
        prop_assert_eq!(
            &view.snapshot.histogram(HistoId::QueryLatencyNs).buckets[..],
            &want.histogram(HistoId::QueryLatencyNs).buckets[..]
        );
    }

    /// A horizon shorter than one interval returns exactly the newest
    /// interval — the finest resolution the ring has — never a partial
    /// or empty slice of it.
    #[test]
    fn short_horizon_returns_the_newest_interval(
        intervals in intervals_strategy(),
    ) {
        let r = Registry::new();
        let w = MetricsWindow::with_capacity(intervals.len());
        w.tick_at(r.snapshot(), 0);
        for (i, batch) in intervals.iter().enumerate() {
            for &v in batch {
                r.histogram(HistoId::QueryLatencyNs).record(v);
                r.counter(CounterId::Queries).inc();
            }
            w.tick_at(r.snapshot(), (i as u64 + 1) * HORIZON_1S);
        }

        let newest = intervals.last().unwrap();
        let want = oracle(newest);
        let view = w.window(1); // 1 ns: far below the 1 s interval span
        prop_assert_eq!(view.intervals, 1);
        prop_assert_eq!(view.elapsed_ns, HORIZON_1S);
        prop_assert_eq!(view.count(CounterId::Queries), newest.len() as u64);
        prop_assert_eq!(
            &view.snapshot.histogram(HistoId::QueryLatencyNs).buckets[..],
            &want.histogram(HistoId::QueryLatencyNs).buckets[..]
        );
    }
}
