//! Property tests for the log2 histogram: quantile estimates against
//! exact sorted percentiles (bounded relative error per bucket) and
//! associativity/commutativity of snapshot merging.

use promips_obs::{Histogram, HistogramSnapshot};
use proptest::prelude::*;

/// Exact order statistic matching the histogram's rank convention:
/// `k = ceil(p * n)` clamped to at least 1, value is the k-th smallest.
fn exact_quantile(sorted: &[u64], p: f64) -> u64 {
    let n = sorted.len() as u64;
    let k = ((p * n as f64).ceil() as u64).clamp(1, n);
    sorted[(k - 1) as usize]
}

fn snapshot_of(samples: &[u64]) -> HistogramSnapshot {
    let h = Histogram::new();
    for &v in samples {
        h.record(v);
    }
    h.snapshot()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The estimate shares a power-of-two bucket with the exact order
    /// statistic, so: exact zero => estimate exactly zero, otherwise
    /// the ratio estimate/exact is within [0.5, 2]. Sample values span
    /// the full bucket range via a random shift.
    #[test]
    fn quantile_within_one_bucket_of_exact(
        raw in proptest::collection::vec((0u64..1024, 0u32..54), 1..200),
        p in 0.0f64..1.0,
    ) {
        let samples: Vec<u64> = raw.iter().map(|&(v, shift)| v << shift).collect();
        let snap = snapshot_of(&samples);
        prop_assert_eq!(snap.count(), samples.len() as u64);

        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for q in [0.0, p, 0.5, 0.9, 0.99, 1.0] {
            let exact = exact_quantile(&sorted, q);
            let est = snap.quantile(q);
            if exact == 0 {
                prop_assert_eq!(est, 0.0, "q={}: exact 0 must estimate 0", q);
            } else {
                let ratio = est / exact as f64;
                prop_assert!(
                    (0.5..=2.0).contains(&ratio),
                    "q={}: exact={} est={} ratio={}",
                    q, exact, est, ratio
                );
            }
        }
    }

    /// Merging snapshots equals snapshotting the concatenated samples,
    /// in any association/order: (a+b)+c == a+(b+c) == (c+b)+a.
    #[test]
    fn merge_is_associative_and_commutative(
        a in proptest::collection::vec(0u64..1_000_000, 0..60),
        b in proptest::collection::vec(0u64..1_000_000, 0..60),
        c in proptest::collection::vec(0u64..1_000_000, 0..60),
    ) {
        let (sa, sb, sc) = (snapshot_of(&a), snapshot_of(&b), snapshot_of(&c));

        let mut left = sa; // (a + b) + c
        left.merge(&sb);
        left.merge(&sc);

        let mut right = sb; // a + (b + c)
        right.merge(&sc);
        let mut right_total = sa;
        right_total.merge(&right);

        let mut rev = sc; // (c + b) + a
        rev.merge(&sb);
        rev.merge(&sa);

        let mut concat = a.clone();
        concat.extend_from_slice(&b);
        concat.extend_from_slice(&c);
        let direct = snapshot_of(&concat);

        for other in [&right_total, &rev, &direct] {
            prop_assert_eq!(&left.buckets[..], &other.buckets[..]);
            prop_assert_eq!(left.sum, other.sum);
        }
    }
}
