//! Windowed metrics: a ring of per-interval [`RegistrySnapshot`] deltas
//! turning the registry's since-process-start totals into *rates* and
//! *sliding-window quantiles* — the numbers a serving layer actually
//! puts on a dashboard (instantaneous QPS, p99 over the last 10 s).
//!
//! Each [`MetricsWindow::tick`] snapshots a registry, subtracts the
//! previous snapshot ([`RegistrySnapshot::saturating_diff`]), and pushes
//! the per-interval delta into a bounded ring. A windowed view over any
//! horizon is then just the associative merge of the newest intervals
//! that cover it — counters and histogram buckets add, gauges keep the
//! newest level. Because the deltas reuse the registry's mergeable
//! snapshot type, windowed quantiles carry exactly the same factor-of-2
//! log2-bucket guarantee as the cumulative ones (property-tested in
//! `tests/window_prop.rs`).
//!
//! Ticking is driven either manually (tests, embedders with their own
//! scheduler) or by the optional background [`Aggregator`] thread, which
//! ticks the process-global registry into [`global`]'s window once per
//! interval. A tick costs one registry snapshot plus a fixed-size
//! subtraction — roughly a microsecond (measured by the
//! `windowed_metrics` bench section) — so a 1 s cadence is far below
//! the `obs_overhead` noise floor.

use crate::registry::{CounterId, HistoId, Registry, RegistrySnapshot};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// One-second horizon, in nanoseconds.
pub const HORIZON_1S: u64 = 1_000_000_000;
/// Ten-second horizon.
pub const HORIZON_10S: u64 = 10 * HORIZON_1S;
/// Sixty-second horizon.
pub const HORIZON_60S: u64 = 60 * HORIZON_1S;

/// Default ring capacity: 64 one-second intervals comfortably cover the
/// 60 s horizon with slack for scrape jitter.
pub const DEFAULT_INTERVALS: usize = 64;

/// Default aggregator cadence.
pub const DEFAULT_INTERVAL: Duration = Duration::from_secs(1);

/// One completed interval: the activity between two consecutive ticks.
#[derive(Clone, Debug)]
struct Interval {
    /// Wall time the interval spans (tick-to-tick), for rate math.
    elapsed_ns: u64,
    /// Counter/histogram activity within the interval; gauge levels at
    /// its end.
    delta: RegistrySnapshot,
}

#[derive(Debug, Default)]
struct State {
    /// Cumulative snapshot and timestamp of the previous tick; `None`
    /// until the first tick establishes the baseline.
    last: Option<(u64, RegistrySnapshot)>,
    /// Completed intervals, oldest at the front.
    ring: VecDeque<Interval>,
}

/// A bounded ring of per-interval registry deltas with sliding-window
/// views. All methods take `&self`; the ring is guarded by a mutex that
/// is only touched at tick/query cadence, never on the metric hot path.
#[derive(Debug)]
pub struct MetricsWindow {
    capacity: usize,
    state: Mutex<State>,
}

impl MetricsWindow {
    /// An empty window retaining up to [`DEFAULT_INTERVALS`] intervals.
    pub const fn new() -> Self {
        Self::with_capacity(DEFAULT_INTERVALS)
    }

    /// An empty window retaining up to `capacity` completed intervals
    /// (clamped to at least 1).
    pub const fn with_capacity(capacity: usize) -> Self {
        MetricsWindow {
            capacity: if capacity == 0 { 1 } else { capacity },
            state: Mutex::new(State {
                last: None,
                ring: VecDeque::new(),
            }),
        }
    }

    /// The process-global window, fed by [`Aggregator`] threads started
    /// via [`start_aggregator`] and read by health/exposition code.
    pub fn global() -> &'static MetricsWindow {
        static GLOBAL: MetricsWindow = MetricsWindow::new();
        &GLOBAL
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        // A poisoning panic can only come from a caller's assertion
        // failure mid-test; the state itself is always consistent.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Snapshot `reg` now and close the current interval.
    pub fn tick(&self, reg: &Registry) {
        self.tick_at(reg.snapshot(), crate::now_ns());
    }

    /// Deterministic core of [`tick`]: close the interval ending at
    /// `now_ns` with cumulative snapshot `snap`. The first call only
    /// records the baseline; a call with a non-advancing clock is
    /// folded into a zero-length interval rather than dropped, so
    /// counters are never lost.
    ///
    /// [`tick`]: MetricsWindow::tick
    pub fn tick_at(&self, snap: RegistrySnapshot, now_ns: u64) {
        let mut st = self.lock();
        match st.last.take() {
            None => st.last = Some((now_ns, snap)),
            Some((was_ns, was)) => {
                let delta = snap.saturating_diff(&was);
                st.ring.push_back(Interval {
                    elapsed_ns: now_ns.saturating_sub(was_ns),
                    delta,
                });
                while st.ring.len() > self.capacity {
                    st.ring.pop_front();
                }
                st.last = Some((now_ns, snap));
            }
        }
    }

    /// Number of completed intervals currently retained.
    pub fn intervals(&self) -> usize {
        self.lock().ring.len()
    }

    /// Drop every retained interval *and* the baseline, as if freshly
    /// constructed.
    pub fn clear(&self) {
        let mut st = self.lock();
        st.ring.clear();
        st.last = None;
    }

    /// Sliding view over (at least) the last `horizon_ns` of activity:
    /// the merge of the newest intervals whose spans cover the horizon.
    ///
    /// A horizon shorter than one interval returns just the newest
    /// interval — the finest resolution the ring has. With no completed
    /// intervals the view is empty (zero elapsed time, zero activity).
    pub fn window(&self, horizon_ns: u64) -> WindowedSnapshot {
        let st = self.lock();
        let mut covered = 0u64;
        let mut merged: Option<RegistrySnapshot> = None;
        let mut used = 0usize;
        for iv in st.ring.iter().rev() {
            if used > 0 && covered >= horizon_ns {
                break;
            }
            match merged.as_mut() {
                // The newest interval seeds the view, so its gauge
                // levels — the freshest — are the ones reported.
                None => merged = Some(iv.delta.clone()),
                Some(m) => {
                    for (dst, src) in m.counters.iter_mut().zip(&iv.delta.counters) {
                        *dst += src;
                    }
                    for (dst, src) in m.histograms.iter_mut().zip(&iv.delta.histograms) {
                        dst.merge(src);
                    }
                }
            }
            covered += iv.elapsed_ns;
            used += 1;
        }
        WindowedSnapshot {
            snapshot: merged.unwrap_or(RegistrySnapshot::ZERO),
            elapsed_ns: covered,
            intervals: used,
        }
    }
}

impl Default for MetricsWindow {
    fn default() -> Self {
        Self::new()
    }
}

/// A merged view over the newest intervals covering one horizon.
#[derive(Clone, Debug)]
pub struct WindowedSnapshot {
    /// Counter/histogram activity within the window; gauge levels from
    /// its newest interval.
    pub snapshot: RegistrySnapshot,
    /// Actual wall time the merged intervals span (can exceed the
    /// requested horizon by up to one interval, or fall short when the
    /// ring has not yet filled).
    pub elapsed_ns: u64,
    /// How many intervals were merged.
    pub intervals: usize,
}

impl WindowedSnapshot {
    /// Events of `id` within the window.
    pub fn count(&self, id: CounterId) -> u64 {
        self.snapshot.counter(id)
    }

    /// Events of `id` per second over the window's actual span; 0.0 for
    /// an empty window.
    pub fn rate_per_sec(&self, id: CounterId) -> f64 {
        if self.elapsed_ns == 0 {
            0.0
        } else {
            self.snapshot.counter(id) as f64 * 1e9 / self.elapsed_ns as f64
        }
    }

    /// The `p`-quantile of histogram `id` over the window's samples
    /// (same factor-of-2 estimate as the cumulative histogram).
    pub fn quantile(&self, id: HistoId, p: f64) -> f64 {
        self.snapshot.histogram(id).quantile(p)
    }
}

/// Handle to the background aggregator thread; stops and joins it on
/// drop (or explicitly via [`Aggregator::stop`]).
#[derive(Debug)]
pub struct Aggregator {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Aggregator {
    /// Signal the thread and wait for it to exit.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Aggregator {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Start a background thread ticking `reg` into `window` every
/// `interval`. The thread sleeps in short slices so dropping the
/// returned handle stops it promptly, and it performs one final tick on
/// shutdown so no tail activity is lost.
pub fn start_aggregator(
    window: &'static MetricsWindow,
    reg: &'static Registry,
    interval: Duration,
) -> std::io::Result<Aggregator> {
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = Arc::clone(&stop);
    let handle = std::thread::Builder::new()
        .name("promips-metrics-window".into())
        .spawn(move || {
            const SLICE: Duration = Duration::from_millis(10);
            window.tick(reg); // establish the baseline immediately
            'outer: loop {
                let mut remaining = interval;
                while !remaining.is_zero() {
                    if stop_flag.load(Ordering::Acquire) {
                        break 'outer;
                    }
                    let nap = remaining.min(SLICE);
                    std::thread::sleep(nap);
                    remaining = remaining.saturating_sub(nap);
                }
                window.tick(reg);
            }
            window.tick(reg);
        })?;
    Ok(Aggregator {
        stop,
        handle: Some(handle),
    })
}

/// [`start_aggregator`] wired to the process globals: the global
/// registry into the global window.
pub fn start_global_aggregator(interval: Duration) -> std::io::Result<Aggregator> {
    start_aggregator(MetricsWindow::global(), Registry::global(), interval)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap_with(queries: u64, latencies: &[u64]) -> RegistrySnapshot {
        let r = Registry::new();
        r.counter(CounterId::Queries).add(queries);
        for &v in latencies {
            r.histogram(HistoId::QueryLatencyNs).record(v);
        }
        r.snapshot()
    }

    #[test]
    fn first_tick_is_baseline_only() {
        let w = MetricsWindow::new();
        w.tick_at(snap_with(100, &[]), HORIZON_1S);
        assert_eq!(w.intervals(), 0);
        let view = w.window(HORIZON_60S);
        assert_eq!(view.intervals, 0);
        assert_eq!(view.elapsed_ns, 0);
        assert_eq!(view.rate_per_sec(CounterId::Queries), 0.0);
    }

    #[test]
    fn rates_come_from_interval_deltas_not_totals() {
        let w = MetricsWindow::new();
        // Baseline at t=0 with 1000 historical queries: the window must
        // never see them.
        w.tick_at(snap_with(1000, &[]), 0);
        w.tick_at(snap_with(1250, &[]), HORIZON_1S);
        w.tick_at(snap_with(1350, &[]), 2 * HORIZON_1S);
        let one = w.window(HORIZON_1S);
        assert_eq!(one.intervals, 1);
        assert_eq!(one.count(CounterId::Queries), 100);
        assert!((one.rate_per_sec(CounterId::Queries) - 100.0).abs() < 1e-9);
        let both = w.window(2 * HORIZON_1S);
        assert_eq!(both.intervals, 2);
        assert_eq!(both.count(CounterId::Queries), 350);
        assert!((both.rate_per_sec(CounterId::Queries) - 175.0).abs() < 1e-9);
    }

    #[test]
    fn ring_is_bounded_and_drops_oldest() {
        let w = MetricsWindow::with_capacity(3);
        let mut total = 0;
        w.tick_at(snap_with(0, &[]), 0);
        for i in 1..=10u64 {
            total += i;
            w.tick_at(snap_with(total, &[]), i * HORIZON_1S);
        }
        assert_eq!(w.intervals(), 3);
        // Only the last three intervals (deltas 8, 9, 10) survive.
        let view = w.window(3 * HORIZON_1S);
        assert_eq!(view.count(CounterId::Queries), 27);
    }

    #[test]
    fn windowed_quantiles_merge_interval_histograms() {
        let w = MetricsWindow::new();
        let r = Registry::new();
        w.tick_at(r.snapshot(), 0);
        r.histogram(HistoId::QueryLatencyNs).record(100);
        w.tick_at(r.snapshot(), HORIZON_1S);
        for _ in 0..99 {
            r.histogram(HistoId::QueryLatencyNs).record(100_000);
        }
        w.tick_at(r.snapshot(), 2 * HORIZON_1S);
        // Newest interval alone: all samples are 100_000.
        let newest = w.window(HORIZON_1S);
        assert!(newest.quantile(HistoId::QueryLatencyNs, 0.5) >= 50_000.0);
        // Across both intervals the single 100 ns sample is the minimum.
        let both = w.window(2 * HORIZON_1S);
        assert_eq!(
            both.snapshot.histogram(HistoId::QueryLatencyNs).count(),
            100
        );
        assert!(both.quantile(HistoId::QueryLatencyNs, 0.0) <= 200.0);
        assert!(both.quantile(HistoId::QueryLatencyNs, 0.99) >= 50_000.0);
    }

    #[test]
    fn aggregator_thread_ticks_and_stops() {
        // Uses the global registry/window: serialized against nothing
        // else in this file, and only checks its own monotone effects.
        let agg = start_global_aggregator(Duration::from_millis(20)).unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while MetricsWindow::global().intervals() == 0 {
            assert!(
                std::time::Instant::now() < deadline,
                "aggregator never completed an interval"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        agg.stop();
        let after = MetricsWindow::global().intervals();
        assert!(after >= 1);
        // Stopped means stopped: no further intervals appear.
        std::thread::sleep(Duration::from_millis(60));
        assert_eq!(MetricsWindow::global().intervals(), after);
    }
}
