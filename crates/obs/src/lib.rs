//! Unified observability layer: a process-global lock-free metrics
//! registry, per-query stage tracing, and a slow-query log.
//!
//! The crate is dependency-free and sits *below* the storage/WAL/core/
//! shard crates so every layer can feed the same registry without
//! dependency cycles. Three pieces:
//!
//! - [`Registry`]: fixed, enum-indexed arrays of atomic counters, gauges
//!   and log2-bucketed histograms. The hot path is a single relaxed
//!   `fetch_add` — no hashing, no locking, no allocation. Snapshots are
//!   plain values that merge associatively, and render to Prometheus
//!   text format or JSON.
//! - [`trace::QueryTrace`]: an opt-in per-query breakdown of where time
//!   went (scan → screen → verify → merge, with per-shard fan-out spans
//!   and prune decisions). Enabled per call; near-zero cost when off.
//! - [`slow`]: a bounded log retaining the N worst queries past a
//!   configurable latency threshold, each with its trace, lifecycle
//!   verdict, and a flight-recorder excerpt.
//!
//! On top of the registry sits the aggregation-and-diagnosis tier the
//! serving layer consumes:
//!
//! - [`window`]: a ring of per-interval snapshot deltas exposing
//!   rates/s and sliding-window quantiles over 1 s / 10 s / 60 s
//!   horizons, optionally fed by a background aggregator thread.
//! - [`recorder`]: a lock-light bounded flight recorder of structured
//!   lifecycle events (compactions, WAL replay, faults, shed/degraded
//!   queries, generation swaps).
//! - [`sampling`]: deterministic counter-based 1-in-N sampling that
//!   routes ordinary searches through the trace machinery.
//! - [`health`]: an SLO evaluator over windowed snapshots producing a
//!   typed [`health::HealthReport`] with JSON/Prometheus rendering.
//! - [`promcheck`]: a small Prometheus text-format checker used by CI
//!   and the render tests.
//!
//! Timing itself has a global kill-switch ([`set_timing_enabled`]) so
//! benchmarks can measure the instrumented path against a clock-free
//! baseline.

pub mod budget;
pub mod health;
mod metrics;
pub mod promcheck;
pub mod recorder;
mod registry;
mod render;
pub mod sampling;
pub mod slow;
pub mod trace;
pub mod window;

pub use budget::{budget_error, BudgetChecker, BudgetExceeded, CancelToken, QueryBudget};
pub use health::{HealthCheck, HealthReport, HealthStatus, SloPolicy};
pub use metrics::{bucket_upper_bound, Counter, Gauge, Histogram, HistogramSnapshot, BUCKETS};
pub use registry::{CounterId, GaugeId, HistoId, Registry, RegistrySnapshot};
pub use render::HistogramStyle;
pub use trace::{QueryTrace, ShardSpan, StageNanos};
pub use window::{MetricsWindow, WindowedSnapshot};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Shorthand for the process-global registry.
pub fn global() -> &'static Registry {
    Registry::global()
}

static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Monotonic nanoseconds since the first call in this process.
///
/// A `u64` of nanoseconds spans ~584 years, so wrap-around is not a
/// concern; using an in-process epoch keeps the value small and cheap
/// to subtract.
pub fn now_ns() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

static TIMING: AtomicBool = AtomicBool::new(true);

/// Global kill-switch for stage timing (default: enabled).
///
/// With timing disabled the query path skips every clock read and every
/// latency-histogram record; event counters (queries, scanned rows,
/// WAL appends, ...) still tick. This exists so the `obs_overhead`
/// bench can compare the default instrumented path against a clock-free
/// baseline.
pub fn set_timing_enabled(enabled: bool) {
    TIMING.store(enabled, Ordering::Relaxed);
}

/// Whether stage timing is currently enabled. A single relaxed load.
#[inline]
pub fn timing_enabled() -> bool {
    TIMING.load(Ordering::Relaxed)
}

/// `now_ns()` if timing is enabled, else 0. Call sites pair this with
/// [`elapsed_since`] so the disabled path performs no clock reads.
#[inline]
pub fn clock_start() -> u64 {
    if timing_enabled() {
        now_ns()
    } else {
        0
    }
}

/// Nanoseconds since a [`clock_start`] value; 0 when timing was off at
/// the start (start == 0 means "not measured", and a genuine 0-ns start
/// only occurs on the very first clock read in the process).
#[inline]
pub fn elapsed_since(start: u64) -> u64 {
    if start == 0 || !timing_enabled() {
        0
    } else {
        now_ns().saturating_sub(start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotonic() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
    }

    #[test]
    fn kill_switch_suppresses_clock_reads() {
        set_timing_enabled(false);
        let start = clock_start();
        assert_eq!(start, 0);
        assert_eq!(elapsed_since(start), 0);
        set_timing_enabled(true);
        let start = clock_start();
        // The process epoch was initialised above, so an enabled start
        // is strictly positive.
        assert!(start > 0);
    }
}
