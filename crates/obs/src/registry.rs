//! The process-global metrics registry.
//!
//! Metric identity is a closed enum per kind, so the registry is a
//! fixed array of atomics indexed by discriminant: registration is
//! compile-time, lookup is an array index, and the hot path never
//! hashes, locks, or allocates. New metrics are added by extending the
//! `metric_ids!` lists below.

use crate::metrics::{Counter, Gauge, Histogram, HistogramSnapshot};

/// Defines a metric-id enum plus `ALL`, `COUNT`, `name()` and `help()`.
macro_rules! metric_ids {
    ($(#[$meta:meta])* $vis:vis enum $enum_name:ident {
        $($variant:ident => $name:literal, $help:literal;)+
    }) => {
        $(#[$meta])*
        #[derive(Clone, Copy, Debug, PartialEq, Eq)]
        #[repr(usize)]
        $vis enum $enum_name {
            $($variant,)+
        }

        impl $enum_name {
            pub const ALL: &'static [$enum_name] = &[$($enum_name::$variant,)+];
            pub const COUNT: usize = Self::ALL.len();

            /// Exposition name (Prometheus metric name / JSON key).
            pub fn name(self) -> &'static str {
                match self { $($enum_name::$variant => $name,)+ }
            }

            /// One-line help string for `# HELP` lines.
            pub fn help(self) -> &'static str {
                match self { $($enum_name::$variant => $help,)+ }
            }
        }
    };
}

metric_ids! {
    /// Monotonic counters. Prometheus convention: names end in `_total`.
    pub enum CounterId {
        Queries => "promips_queries_total", "Top-k searches served by the sharded index";
        QueryScanned => "promips_query_scanned_rows_total", "Candidate rows produced by annulus range scans";
        QueryScreened => "promips_query_screened_rows_total", "Candidate rows rejected by the SQ8 screen without f32 rescore";
        QueryVerified => "promips_query_verified_rows_total", "Candidate rows verified against original f32 vectors";
        ShardsSearched => "promips_shards_searched_total", "Shards actually searched during fan-out";
        ShardsPruned => "promips_shards_pruned_total", "Shards skipped by the Cauchy-Schwarz norm bound";
        PageReads => "promips_page_reads_total", "Pager page reads (cache hits + misses)";
        PageCacheHits => "promips_page_cache_hits_total", "Pager reads served from the buffer pool";
        PageCacheMisses => "promips_page_cache_misses_total", "Pager reads that went to the backing file";
        PageWrites => "promips_page_writes_total", "Pager page writes";
        IoFsyncs => "promips_io_fsyncs_total", "File and directory fsync calls through storage::durability";
        IoRenames => "promips_io_renames_total", "Atomic renames through storage::durability";
        IoWrites => "promips_io_writes_total", "Durable write calls through storage::durability";
        IoFaultsInjected => "promips_io_faults_injected_total", "IO faults injected by the test fault plan";
        WalAppends => "promips_wal_appends_total", "Records appended to per-shard WALs";
        WalSyncs => "promips_wal_syncs_total", "WAL sync points (group commits)";
        WalReplayedRecords => "promips_wal_replayed_records_total", "WAL records replayed during recovery";
        Inserts => "promips_inserts_total", "Vectors inserted (durably applied)";
        Deletes => "promips_deletes_total", "Vectors deleted (tombstoned)";
        InsertBatches => "promips_insert_batches_total", "Group-committed insert batches";
        Compactions => "promips_compactions_total", "Per-shard compactions completed";
        Repartitions => "promips_repartitions_total", "Whole-index repartitions completed";
        GenerationSwaps => "promips_generation_swaps_total", "Shard generation handles atomically swapped";
        SlowQueries => "promips_slow_queries_total", "Traces accepted by the slow-query log";
        IoReads => "promips_io_reads_total", "Durable read calls through storage::durability";
        IoRetries => "promips_io_retries_total", "Transient IO failures retried by storage::durability::retry";
        DeadlinesExceeded => "promips_deadlines_exceeded_total", "Queries that hit their QueryBudget deadline";
        QueriesCancelled => "promips_queries_cancelled_total", "Queries stopped by a cancellation token";
        QueriesShed => "promips_queries_shed_total", "Queries refused by the admission gate (Overloaded)";
        PartialResults => "promips_partial_results_total", "Best-effort searches that returned a degraded result";
        QueryFailures => "promips_query_failures_total", "Queries aborted by a shard failure, deadline, or cancellation";
        QueriesSampled => "promips_queries_sampled_total", "Ordinary searches routed through tracing by the 1-in-N sampler";
        RecorderEvents => "promips_recorder_events_total", "Structured events captured by the flight recorder";
    }
}

metric_ids! {
    /// Signed level gauges.
    pub enum GaugeId {
        DeltaRows => "promips_delta_rows", "Rows living in unfrozen delta overlays across all shards";
        Tombstones => "promips_tombstones", "Live tombstones awaiting compaction across all shards";
    }
}

metric_ids! {
    /// Log2-bucketed histograms. `_ns` suffix means nanosecond samples.
    pub enum HistoId {
        QueryLatencyNs => "promips_query_latency_ns", "End-to-end sharded search latency";
        StageScanNs => "promips_stage_scan_ns", "Per-shard projection + annulus range scan time";
        StageScreenNs => "promips_stage_screen_ns", "Per-shard SQ8 screen+rescore verification time";
        StageVerifyNs => "promips_stage_verify_ns", "Per-shard plain f32 verification + delta overlay time";
        StageMergeNs => "promips_stage_merge_ns", "Cross-shard top-k merge + stats assembly time";
        ShardSearchNs => "promips_shard_search_ns", "Single-shard search time within fan-out";
        WalGroupCommitBatch => "promips_wal_group_commit_batch", "Appends amortized per WAL sync";
        CompactionNs => "promips_compaction_ns", "Per-shard compaction wall time";
        BudgetRemainingNs => "promips_budget_remaining_ns", "Remaining deadline budget when a budgeted search completed";
    }
}

/// Fixed-shape registry: one atomic slot per metric id.
///
/// Normally used through [`Registry::global`]; independent instances
/// can be constructed for tests (`Registry::new()` is const).
#[derive(Debug)]
pub struct Registry {
    counters: [Counter; CounterId::COUNT],
    gauges: [Gauge; GaugeId::COUNT],
    histograms: [Histogram; HistoId::COUNT],
}

impl Registry {
    pub const fn new() -> Self {
        Registry {
            counters: [Counter::NEW; CounterId::COUNT],
            gauges: [Gauge::NEW; GaugeId::COUNT],
            histograms: [Histogram::NEW; HistoId::COUNT],
        }
    }

    /// The process-global registry every pipeline layer feeds.
    pub fn global() -> &'static Registry {
        static GLOBAL: Registry = Registry::new();
        &GLOBAL
    }

    #[inline]
    pub fn counter(&self, id: CounterId) -> &Counter {
        &self.counters[id as usize]
    }

    #[inline]
    pub fn gauge(&self, id: GaugeId) -> &Gauge {
        &self.gauges[id as usize]
    }

    #[inline]
    pub fn histogram(&self, id: HistoId) -> &Histogram {
        &self.histograms[id as usize]
    }

    /// Point-in-time plain-value copy of every metric. Not atomic
    /// across metrics (each slot is read individually), which is the
    /// usual contract for scrape-style exposition.
    pub fn snapshot(&self) -> RegistrySnapshot {
        RegistrySnapshot {
            counters: core::array::from_fn(|i| self.counters[i].get()),
            gauges: core::array::from_fn(|i| self.gauges[i].get()),
            histograms: core::array::from_fn(|i| self.histograms[i].snapshot()),
        }
    }

    /// Render the current state in Prometheus text exposition format.
    pub fn render_prometheus(&self) -> String {
        self.snapshot().render_prometheus()
    }

    /// Render the current state as a JSON object.
    pub fn render_json(&self) -> String {
        self.snapshot().render_json()
    }
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

/// Plain-value snapshot of a [`Registry`]; merges element-wise, so
/// snapshots from several processes (or time slices) aggregate
/// associatively.
#[derive(Clone, Debug)]
pub struct RegistrySnapshot {
    pub counters: [u64; CounterId::COUNT],
    pub gauges: [i64; GaugeId::COUNT],
    pub histograms: [HistogramSnapshot; HistoId::COUNT],
}

impl RegistrySnapshot {
    /// The all-zero snapshot: identity element for [`merge`].
    ///
    /// [`merge`]: RegistrySnapshot::merge
    pub const ZERO: RegistrySnapshot = RegistrySnapshot {
        counters: [0; CounterId::COUNT],
        gauges: [0; GaugeId::COUNT],
        histograms: [HistogramSnapshot::EMPTY; HistoId::COUNT],
    };

    #[inline]
    pub fn counter(&self, id: CounterId) -> u64 {
        self.counters[id as usize]
    }

    #[inline]
    pub fn gauge(&self, id: GaugeId) -> i64 {
        self.gauges[id as usize]
    }

    #[inline]
    pub fn histogram(&self, id: HistoId) -> &HistogramSnapshot {
        &self.histograms[id as usize]
    }

    /// Element-wise accumulate (counters and histogram buckets add,
    /// gauges add as signed levels).
    pub fn merge(&mut self, other: &RegistrySnapshot) {
        for (dst, src) in self.counters.iter_mut().zip(&other.counters) {
            *dst += src;
        }
        for (dst, src) in self.gauges.iter_mut().zip(&other.gauges) {
            *dst += src;
        }
        for (dst, src) in self.histograms.iter_mut().zip(&other.histograms) {
            dst.merge(src);
        }
    }

    /// The activity between two snapshots of the *same* registry:
    /// counters and histogram buckets subtract (they are monotonic, so
    /// the difference is exactly the events recorded in between), while
    /// gauges — levels, not flows — keep their value at `self`, the
    /// later snapshot. Saturating subtraction guards against snapshot
    /// pairs torn by concurrent writers; genuinely ordered pairs never
    /// clamp. This is the per-interval delta `obs::window` accumulates.
    pub fn saturating_diff(&self, earlier: &RegistrySnapshot) -> RegistrySnapshot {
        let mut out = self.clone();
        for (dst, was) in out.counters.iter_mut().zip(&earlier.counters) {
            *dst = dst.saturating_sub(*was);
        }
        for (dst, (now, was)) in out
            .histograms
            .iter_mut()
            .zip(self.histograms.iter().zip(&earlier.histograms))
        {
            *dst = now.saturating_diff(was);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique_and_prefixed() {
        let mut names: Vec<&str> = CounterId::ALL
            .iter()
            .map(|c| c.name())
            .chain(GaugeId::ALL.iter().map(|g| g.name()))
            .chain(HistoId::ALL.iter().map(|h| h.name()))
            .collect();
        assert!(names.iter().all(|n| n.starts_with("promips_")));
        let total = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), total, "duplicate metric name");
    }

    #[test]
    fn local_registry_round_trip() {
        let r = Registry::new();
        r.counter(CounterId::Queries).add(3);
        r.gauge(GaugeId::DeltaRows).add(5);
        r.gauge(GaugeId::DeltaRows).sub(2);
        r.histogram(HistoId::QueryLatencyNs).record(1000);
        let s = r.snapshot();
        assert_eq!(s.counter(CounterId::Queries), 3);
        assert_eq!(s.gauge(GaugeId::DeltaRows), 3);
        assert_eq!(s.histogram(HistoId::QueryLatencyNs).count(), 1);
    }

    #[test]
    fn snapshot_diff_is_the_between_activity() {
        let r = Registry::new();
        r.counter(CounterId::Queries).add(3);
        r.gauge(GaugeId::DeltaRows).add(10);
        r.histogram(HistoId::QueryLatencyNs).record(100);
        let before = r.snapshot();
        r.counter(CounterId::Queries).add(4);
        r.gauge(GaugeId::DeltaRows).sub(6);
        r.histogram(HistoId::QueryLatencyNs).record(200);
        let after = r.snapshot();
        let delta = after.saturating_diff(&before);
        assert_eq!(delta.counter(CounterId::Queries), 4);
        assert_eq!(delta.histogram(HistoId::QueryLatencyNs).count(), 1);
        assert_eq!(delta.histogram(HistoId::QueryLatencyNs).sum, 200);
        // Gauges are levels: the delta carries the later snapshot's value.
        assert_eq!(delta.gauge(GaugeId::DeltaRows), 4);
    }

    #[test]
    fn snapshot_merge_accumulates() {
        let a = Registry::new();
        let b = Registry::new();
        a.counter(CounterId::Inserts).add(2);
        b.counter(CounterId::Inserts).add(5);
        a.histogram(HistoId::CompactionNs).record(10);
        b.histogram(HistoId::CompactionNs).record(20);
        let mut sa = a.snapshot();
        sa.merge(&b.snapshot());
        assert_eq!(sa.counter(CounterId::Inserts), 7);
        assert_eq!(sa.histogram(HistoId::CompactionNs).count(), 2);
        assert_eq!(sa.histogram(HistoId::CompactionNs).sum, 30);
    }
}
