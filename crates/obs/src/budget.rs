//! Query budgets: wall-clock deadlines and cooperative cancellation.
//!
//! A [`QueryBudget`] travels with one query from the sharded fan-out down
//! into the core scan and verify loops. Those loops are cooperative, not
//! preemptive: they call [`BudgetChecker::tick`] once per block of work
//! (a verified sub-partition group, a nearest-neighbour step), and the
//! checker amortizes the clock read over a stride of ticks so an armed
//! budget costs a handful of relaxed loads per block — and an absent one
//! costs a single branch.
//!
//! Deadlines are absolute [`now_ns`] values, so a budget can be handed to
//! worker threads without re-anchoring, and the remaining budget at
//! completion is a plain subtraction (recorded to the
//! `promips_budget_remaining_ns` histogram by the sharded layer).
//!
//! A [`BudgetExceeded`] converts into `io::Error` (and back, via
//! [`budget_error`]) so it can ride the existing `io::Result` plumbing of
//! the search path and be re-typed at the shard boundary.

use std::fmt;
use std::io;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::now_ns;

/// Shared cancellation flag: clone it into the serving thread, keep one
/// handle on the control side, flip it to stop the query at its next
/// cooperative check.
#[derive(Clone, Debug, Default)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation; every budget carrying this token fails its
    /// next check.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested. A single relaxed load.
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// Per-query execution budget: an optional absolute deadline plus an
/// optional cancellation token. The default budget is unlimited and
/// checks for free.
#[derive(Clone, Debug, Default)]
pub struct QueryBudget {
    /// Absolute [`now_ns`] deadline; `None` means no deadline.
    deadline_ns: Option<u64>,
    cancel: Option<CancelToken>,
}

impl QueryBudget {
    /// No deadline, no cancellation: checks always pass.
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// Deadline `timeout` from now.
    pub fn with_deadline(timeout: Duration) -> Self {
        let ns = u64::try_from(timeout.as_nanos()).unwrap_or(u64::MAX);
        Self {
            deadline_ns: Some(now_ns().saturating_add(ns)),
            cancel: None,
        }
    }

    /// Deadline at an absolute [`now_ns`] instant (already-expired values
    /// are legal: the first check fails).
    pub fn with_deadline_at(deadline_ns: u64) -> Self {
        Self {
            deadline_ns: Some(deadline_ns),
            cancel: None,
        }
    }

    /// Attaches a cancellation token (keep a clone to trigger it).
    pub fn cancellable(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }

    /// True when neither a deadline nor a token is armed — the zero-cost
    /// fast path.
    pub fn is_unlimited(&self) -> bool {
        self.deadline_ns.is_none() && self.cancel.is_none()
    }

    /// The absolute deadline, if one is armed.
    pub fn deadline_ns(&self) -> Option<u64> {
        self.deadline_ns
    }

    /// Nanoseconds left before the deadline (0 once expired); `None`
    /// without a deadline.
    pub fn remaining_ns(&self) -> Option<u64> {
        self.deadline_ns.map(|d| d.saturating_sub(now_ns()))
    }

    /// Unamortized check: reads the cancel flag and the clock.
    pub fn check(&self) -> Result<(), BudgetExceeded> {
        if let Some(tok) = &self.cancel {
            if tok.is_cancelled() {
                return Err(BudgetExceeded::Cancelled);
            }
        }
        if let Some(d) = self.deadline_ns {
            if now_ns() >= d {
                return Err(BudgetExceeded::Deadline);
            }
        }
        Ok(())
    }
}

/// Why a budgeted query stopped early.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BudgetExceeded {
    /// The wall-clock deadline passed.
    Deadline,
    /// The cancellation token fired.
    Cancelled,
}

impl fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Deadline => write!(f, "query budget deadline exceeded"),
            Self::Cancelled => write!(f, "query cancelled"),
        }
    }
}

impl std::error::Error for BudgetExceeded {}

impl From<BudgetExceeded> for io::Error {
    fn from(e: BudgetExceeded) -> Self {
        match e {
            BudgetExceeded::Deadline => io::Error::new(io::ErrorKind::TimedOut, e),
            BudgetExceeded::Cancelled => io::Error::other(e),
        }
    }
}

/// Recovers a [`BudgetExceeded`] from an `io::Error` produced by its
/// `From` conversion (possibly after crossing `io::Result` plumbing).
pub fn budget_error(e: &io::Error) -> Option<BudgetExceeded> {
    e.get_ref()
        .and_then(|inner| inner.downcast_ref::<BudgetExceeded>())
        .copied()
}

/// Amortizing cooperative checker: the cancel flag is one relaxed load
/// per [`BudgetChecker::tick`], the clock is read once per `stride`
/// ticks, and a `None` budget short-circuits to a single branch.
#[derive(Debug)]
pub struct BudgetChecker<'a> {
    budget: Option<&'a QueryBudget>,
    stride: u32,
    countdown: u32,
}

impl<'a> BudgetChecker<'a> {
    /// Clock-read stride of [`BudgetChecker::new`]: with per-group ticks
    /// this bounds deadline overshoot to ~16 groups of verification.
    pub const DEFAULT_STRIDE: u32 = 16;

    pub fn new(budget: Option<&'a QueryBudget>) -> Self {
        Self::with_stride(budget, Self::DEFAULT_STRIDE)
    }

    /// As [`BudgetChecker::new`] with an explicit clock-read stride
    /// (clamped to at least 1).
    pub fn with_stride(budget: Option<&'a QueryBudget>, stride: u32) -> Self {
        // An unlimited budget degrades to the no-budget fast path.
        let budget = budget.filter(|b| !b.is_unlimited());
        let stride = stride.max(1);
        Self {
            budget,
            stride,
            // First tick reads the clock, so an already-expired deadline
            // fails before any real work is done.
            countdown: 1,
        }
    }

    /// One cooperative check. Call once per unit of bounded work (a
    /// verified group, an iterator step).
    #[inline]
    pub fn tick(&mut self) -> Result<(), BudgetExceeded> {
        let Some(b) = self.budget else {
            return Ok(());
        };
        if let Some(tok) = &b.cancel {
            if tok.is_cancelled() {
                return Err(BudgetExceeded::Cancelled);
            }
        }
        self.countdown -= 1;
        if self.countdown == 0 {
            self.countdown = self.stride;
            if let Some(d) = b.deadline_ns {
                if now_ns() >= d {
                    return Err(BudgetExceeded::Deadline);
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_budget_always_passes() {
        let b = QueryBudget::unlimited();
        assert!(b.is_unlimited());
        assert!(b.check().is_ok());
        assert_eq!(b.remaining_ns(), None);
        let mut c = BudgetChecker::new(Some(&b));
        for _ in 0..1000 {
            assert!(c.tick().is_ok());
        }
    }

    #[test]
    fn expired_deadline_fails_first_tick() {
        let b = QueryBudget::with_deadline_at(0);
        assert_eq!(b.check(), Err(BudgetExceeded::Deadline));
        assert_eq!(b.remaining_ns(), Some(0));
        let mut c = BudgetChecker::new(Some(&b));
        assert_eq!(c.tick(), Err(BudgetExceeded::Deadline));
    }

    #[test]
    fn generous_deadline_passes() {
        let b = QueryBudget::with_deadline(Duration::from_secs(3600));
        assert!(b.check().is_ok());
        assert!(b.remaining_ns().unwrap() > 0);
        let mut c = BudgetChecker::new(Some(&b));
        for _ in 0..100 {
            assert!(c.tick().is_ok());
        }
    }

    #[test]
    fn cancellation_fires_on_every_tick() {
        let tok = CancelToken::new();
        let b = QueryBudget::unlimited().cancellable(tok.clone());
        assert!(!b.is_unlimited());
        let mut c = BudgetChecker::with_stride(Some(&b), 1000);
        assert!(c.tick().is_ok());
        tok.cancel();
        // Cancellation is checked on every tick, not just at clock
        // strides.
        assert_eq!(c.tick(), Err(BudgetExceeded::Cancelled));
        assert_eq!(b.check(), Err(BudgetExceeded::Cancelled));
    }

    #[test]
    fn io_error_round_trip() {
        let e: io::Error = BudgetExceeded::Deadline.into();
        assert_eq!(e.kind(), io::ErrorKind::TimedOut);
        assert_eq!(budget_error(&e), Some(BudgetExceeded::Deadline));
        let e: io::Error = BudgetExceeded::Cancelled.into();
        assert_eq!(budget_error(&e), Some(BudgetExceeded::Cancelled));
        let plain = io::Error::new(io::ErrorKind::TimedOut, "not a budget error");
        assert_eq!(budget_error(&plain), None);
    }

    #[test]
    fn amortized_checker_eventually_sees_deadline() {
        // Deadline in the past, but stride 64: the first tick still reads
        // the clock (countdown starts at 1).
        let b = QueryBudget::with_deadline_at(1);
        let mut c = BudgetChecker::with_stride(Some(&b), 64);
        assert_eq!(c.tick(), Err(BudgetExceeded::Deadline));
    }
}
