//! SLO health evaluation over windowed metrics: the typed verdict a
//! `/healthz` endpoint serves, computed from a [`WindowedSnapshot`]
//! rather than since-process-start totals (an outage an hour ago must
//! not fail today's health check).
//!
//! [`SloPolicy`] holds the objectives — windowed p99 latency, error
//! rate, shed rate, degraded-result rate, and (optionally, supplied by
//! the index layer) maximum generation age. [`SloPolicy::evaluate`]
//! grades each objective three ways: meeting the objective is
//! [`HealthStatus::Ok`], within the warning fraction of the limit is
//! [`HealthStatus::Warn`], and over the limit is
//! [`HealthStatus::Fail`]; the report's overall status is the worst
//! check. The report renders to JSON (for `/healthz` bodies) and to
//! Prometheus gauges (so dashboards can alert on the same verdict the
//! endpoint serves).

use crate::registry::{CounterId, HistoId};
use crate::window::WindowedSnapshot;
use std::fmt;

/// Verdict for one check (and, as the worst across checks, the whole
/// report). Ordered: `Ok < Warn < Fail`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum HealthStatus {
    Ok,
    Warn,
    Fail,
}

impl HealthStatus {
    /// Stable lowercase name (JSON/Prometheus label value).
    pub fn name(self) -> &'static str {
        match self {
            HealthStatus::Ok => "ok",
            HealthStatus::Warn => "warn",
            HealthStatus::Fail => "fail",
        }
    }

    /// Numeric gauge encoding: 0 ok, 1 warn, 2 fail.
    pub fn code(self) -> u8 {
        match self {
            HealthStatus::Ok => 0,
            HealthStatus::Warn => 1,
            HealthStatus::Fail => 2,
        }
    }
}

impl fmt::Display for HealthStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One evaluated objective.
#[derive(Clone, Debug)]
pub struct HealthCheck {
    /// Stable identifier (`windowed_p99_latency`, `error_rate`, ...).
    pub name: &'static str,
    pub status: HealthStatus,
    /// Observed value (ns for latencies/ages, a 0..1 fraction for
    /// rates).
    pub value: f64,
    /// The policy limit the value is graded against.
    pub limit: f64,
}

/// The service-level objectives a window must meet.
///
/// Rates are fractions of query arrivals within the window; latency
/// and age limits are nanoseconds. `warn_fraction` grades a check
/// [`HealthStatus::Warn`] once its value crosses that fraction of the
/// limit — early warning before the SLO is actually broken.
#[derive(Clone, Copy, Debug)]
pub struct SloPolicy {
    /// Window horizon to evaluate, in ns (default 10 s).
    pub horizon_ns: u64,
    /// Maximum acceptable windowed p99 query latency, ns.
    pub max_p99_latency_ns: u64,
    /// Maximum fraction of arrivals aborted by failure.
    pub max_error_rate: f64,
    /// Maximum fraction of arrivals refused by admission control.
    pub max_shed_rate: f64,
    /// Maximum fraction of served queries that returned degraded.
    pub max_degraded_rate: f64,
    /// Warn once a value exceeds this fraction of its limit.
    pub warn_fraction: f64,
    /// Maximum acceptable shard generation age, ns — evaluated only
    /// when the caller supplies the observed age (the index layer owns
    /// that number; see `ShardedProMips::max_generation_age_ns`).
    pub max_generation_age_ns: u64,
}

impl Default for SloPolicy {
    fn default() -> Self {
        SloPolicy {
            horizon_ns: crate::window::HORIZON_10S,
            max_p99_latency_ns: 100_000_000, // 100 ms
            max_error_rate: 0.01,
            max_shed_rate: 0.05,
            max_degraded_rate: 0.05,
            warn_fraction: 0.8,
            max_generation_age_ns: 0, // 0 = no age objective
        }
    }
}

impl SloPolicy {
    fn grade(&self, name: &'static str, value: f64, limit: f64) -> HealthCheck {
        let status = if value > limit {
            HealthStatus::Fail
        } else if value > limit * self.warn_fraction {
            HealthStatus::Warn
        } else {
            HealthStatus::Ok
        };
        HealthCheck {
            name,
            status,
            value,
            limit,
        }
    }

    /// Evaluate the policy against a windowed view (taken at
    /// `self.horizon_ns` by the caller). An idle window — no arrivals —
    /// is healthy by definition: rates are 0 and the p99 of no samples
    /// is 0.
    pub fn evaluate(&self, w: &WindowedSnapshot) -> HealthReport {
        self.evaluate_with_generation_age(w, None)
    }

    /// [`evaluate`] plus the index layer's observed maximum generation
    /// age (the staleness objective only the shard layer can measure).
    ///
    /// [`evaluate`]: SloPolicy::evaluate
    pub fn evaluate_with_generation_age(
        &self,
        w: &WindowedSnapshot,
        generation_age_ns: Option<u64>,
    ) -> HealthReport {
        let served = w.count(CounterId::Queries);
        let failures = w.count(CounterId::QueryFailures);
        let shed = w.count(CounterId::QueriesShed);
        let degraded = w.count(CounterId::PartialResults);
        let arrivals = served + failures + shed;
        let rate = |num: u64, den: u64| {
            if den == 0 {
                0.0
            } else {
                num as f64 / den as f64
            }
        };

        let mut checks = vec![
            self.grade(
                "windowed_p99_latency",
                w.quantile(HistoId::QueryLatencyNs, 0.99),
                self.max_p99_latency_ns as f64,
            ),
            self.grade("error_rate", rate(failures, arrivals), self.max_error_rate),
            self.grade("shed_rate", rate(shed, arrivals), self.max_shed_rate),
            self.grade(
                "degraded_rate",
                rate(degraded, served),
                self.max_degraded_rate,
            ),
        ];
        if self.max_generation_age_ns > 0 {
            if let Some(age) = generation_age_ns {
                checks.push(self.grade(
                    "generation_age",
                    age as f64,
                    self.max_generation_age_ns as f64,
                ));
            }
        }
        let status = checks
            .iter()
            .map(|c| c.status)
            .max()
            .unwrap_or(HealthStatus::Ok);
        HealthReport {
            status,
            horizon_ns: self.horizon_ns,
            window_elapsed_ns: w.elapsed_ns,
            queries_per_sec: w.rate_per_sec(CounterId::Queries),
            checks,
        }
    }
}

/// The typed `/healthz` verdict: overall status, the window it was
/// computed over, and every graded objective.
#[derive(Clone, Debug)]
pub struct HealthReport {
    pub status: HealthStatus,
    /// The horizon the policy asked for, ns.
    pub horizon_ns: u64,
    /// The wall time the evaluated window actually covered, ns.
    pub window_elapsed_ns: u64,
    /// Serving rate over the window, for context.
    pub queries_per_sec: f64,
    pub checks: Vec<HealthCheck>,
}

impl HealthReport {
    /// `true` iff no check failed (warnings still count as healthy —
    /// they exist to page humans *before* this flips).
    pub fn healthy(&self) -> bool {
        self.status != HealthStatus::Fail
    }

    /// JSON body for a `/healthz` response.
    pub fn render_json(&self) -> String {
        use std::fmt::Write;
        let mut out = String::with_capacity(512);
        write!(
            out,
            "{{\n  \"status\": \"{}\",\n  \"healthy\": {},\n  \"horizon_ns\": {},\n  \"window_elapsed_ns\": {},\n  \"queries_per_sec\": {},\n  \"checks\": [",
            self.status,
            self.healthy(),
            self.horizon_ns,
            self.window_elapsed_ns,
            self.queries_per_sec,
        )
        .unwrap();
        for (i, c) in self.checks.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write!(
                out,
                "\n    {{\"name\": \"{}\", \"status\": \"{}\", \"value\": {}, \"limit\": {}}}",
                c.name, c.status, c.value, c.limit
            )
            .unwrap();
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Prometheus gauges mirroring the verdict: an overall
    /// `promips_health_status` plus one `promips_health_check{check=...}`
    /// per objective (0 ok, 1 warn, 2 fail).
    pub fn render_prometheus(&self) -> String {
        use std::fmt::Write;
        let mut out = String::with_capacity(512);
        out.push_str("# HELP promips_health_status Overall SLO verdict (0 ok, 1 warn, 2 fail)\n");
        out.push_str("# TYPE promips_health_status gauge\n");
        writeln!(out, "promips_health_status {}", self.status.code()).unwrap();
        out.push_str(
            "# HELP promips_health_check Per-objective SLO verdict (0 ok, 1 warn, 2 fail)\n",
        );
        out.push_str("# TYPE promips_health_check gauge\n");
        for c in &self.checks {
            writeln!(
                out,
                "promips_health_check{{check=\"{}\"}} {}",
                c.name,
                c.status.code()
            )
            .unwrap();
        }
        out
    }

    /// One human-readable line per check.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::with_capacity(256);
        writeln!(
            out,
            "health: {} (window {:.1}s, {:.1} qps)",
            self.status,
            self.window_elapsed_ns as f64 / 1e9,
            self.queries_per_sec,
        )
        .unwrap();
        for c in &self.checks {
            writeln!(
                out,
                "  [{:>4}] {:<22} value {:.4} limit {:.4}",
                c.status, c.name, c.value, c.limit
            )
            .unwrap();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;
    use crate::window::{MetricsWindow, HORIZON_10S, HORIZON_1S};

    fn window_after(f: impl Fn(&Registry)) -> WindowedSnapshot {
        let r = Registry::new();
        let w = MetricsWindow::new();
        w.tick_at(r.snapshot(), 0);
        f(&r);
        w.tick_at(r.snapshot(), HORIZON_1S);
        w.window(HORIZON_10S)
    }

    #[test]
    fn idle_window_is_healthy() {
        let report = SloPolicy::default().evaluate(&window_after(|_| {}));
        assert_eq!(report.status, HealthStatus::Ok);
        assert!(report.healthy());
        assert_eq!(report.checks.len(), 4, "no age objective without input");
    }

    #[test]
    fn breached_error_rate_fails_and_warn_precedes() {
        let policy = SloPolicy {
            max_error_rate: 0.10,
            ..Default::default()
        };
        // 5 failures out of 58 arrivals ≈ 8.6%: inside the limit but
        // past the 80% warning line.
        let warn = policy.evaluate(&window_after(|r| {
            r.counter(CounterId::Queries).add(53);
            r.counter(CounterId::QueryFailures).add(5);
        }));
        assert_eq!(report_check(&warn, "error_rate").status, HealthStatus::Warn);
        assert_eq!(warn.status, HealthStatus::Warn);
        assert!(warn.healthy(), "warn still serves");

        // 20 of 120 arrivals failed: objective broken.
        let fail = policy.evaluate(&window_after(|r| {
            r.counter(CounterId::Queries).add(100);
            r.counter(CounterId::QueryFailures).add(20);
        }));
        assert_eq!(report_check(&fail, "error_rate").status, HealthStatus::Fail);
        assert_eq!(fail.status, HealthStatus::Fail);
        assert!(!fail.healthy());
    }

    #[test]
    fn p99_and_generation_age_objectives() {
        let policy = SloPolicy {
            max_p99_latency_ns: 1_000_000,
            max_generation_age_ns: 60 * HORIZON_1S,
            ..Default::default()
        };
        let w = window_after(|r| {
            for _ in 0..100 {
                r.histogram(HistoId::QueryLatencyNs).record(100_000_000);
            }
            r.counter(CounterId::Queries).add(100);
        });
        let report = policy.evaluate_with_generation_age(&w, Some(120 * HORIZON_1S));
        assert_eq!(
            report_check(&report, "windowed_p99_latency").status,
            HealthStatus::Fail
        );
        assert_eq!(
            report_check(&report, "generation_age").status,
            HealthStatus::Fail
        );
        assert_eq!(report.checks.len(), 5);
    }

    #[test]
    fn renderings_carry_the_verdict() {
        let report = SloPolicy::default().evaluate(&window_after(|r| {
            r.counter(CounterId::Queries).add(10);
        }));
        let json = report.render_json();
        assert!(json.contains("\"status\": \"ok\""));
        assert!(json.contains("\"healthy\": true"));
        assert!(json.contains("\"error_rate\""));
        let prom = report.render_prometheus();
        assert!(prom.contains("# TYPE promips_health_status gauge"));
        assert!(prom.contains("promips_health_status 0"));
        assert!(prom.contains("promips_health_check{check=\"shed_rate\"} 0"));
        assert!(report.render().contains("windowed_p99_latency"));
    }

    fn report_check<'a>(r: &'a HealthReport, name: &str) -> &'a HealthCheck {
        r.checks
            .iter()
            .find(|c| c.name == name)
            .unwrap_or_else(|| panic!("missing check {name}"))
    }
}
