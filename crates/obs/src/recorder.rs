//! Flight recorder: a lock-light, bounded, process-global ring buffer
//! of structured lifecycle events — compaction outcomes, WAL
//! replay/retry, injected faults, shed/degraded/failed queries,
//! generation swaps — the postmortem trail an operator reads when a
//! query comes back degraded.
//!
//! Writers claim a slot with one atomic `fetch_add` and fill it under a
//! per-slot mutex held for a single `Option` store, so concurrent
//! emitters never serialize on a global lock and readers never block
//! the write path for long. Events are rare (maintenance, faults,
//! lifecycle edges — never per-row), so the cost is irrelevant next to
//! what they describe; the structure exists so a dump taken *during* a
//! storm still sees every writer make progress.
//!
//! Dumps are taken automatically: the slow-query log attaches the
//! current ring to every entry it keeps, and a query that aborts with
//! an error captures an [`ErrorDump`] via [`capture_error`].

use crate::registry::{CounterId, Registry};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Ring capacity. Sized for diagnosis, not archival: enough to hold the
/// maintenance/fault context leading up to a bad query, small enough
/// that a dump clones in microseconds.
pub const CAPACITY: usize = 128;

/// Error dumps retained (newest-N) by [`capture_error`].
pub const ERROR_DUMPS: usize = 8;

/// What happened, with the structured context each event type carries.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// A shard compaction folded its overlay into a fresh generation.
    CompactionCompleted { shard: u32, generation: u64 },
    /// A shard compaction failed and left the old generation in place.
    CompactionFailed { shard: u32 },
    /// The whole index was rebalanced across shards.
    Repartitioned { shards: u32 },
    /// A shard atomically swapped in a new generation handle.
    GenerationSwap { shard: u32, generation: u64 },
    /// A WAL replayed committed records on open (torn bytes were
    /// truncated from the tail).
    WalReplayed { records: u64, torn_bytes: u64 },
    /// A transient IO failure was retried by the durability layer.
    IoRetried { attempt: u32 },
    /// The test fault plan injected an IO failure.
    FaultInjected { op: &'static str },
    /// The admission gate refused a query.
    QueryShed { in_flight: u64, limit: u64 },
    /// A best-effort query dropped failed shards and degraded.
    QueryDegraded { failed_shards: u32, attempted: u32 },
    /// A query aborted with an error (the shard and failure kind).
    QueryFailed { shard: u32, kind: &'static str },
}

/// One recorded event: a process-unique sequence number, the capture
/// time ([`crate::now_ns`] clock), and the structured payload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Event {
    pub seq: u64,
    pub at_ns: u64,
    pub kind: EventKind,
}

impl Event {
    /// One human-readable line, `[seq @ ms] description`.
    pub fn render(&self) -> String {
        let ms = self.at_ns / 1_000_000;
        let body = match &self.kind {
            EventKind::CompactionCompleted { shard, generation } => {
                format!("compaction completed: shard {shard} -> generation {generation}")
            }
            EventKind::CompactionFailed { shard } => {
                format!("compaction FAILED: shard {shard}")
            }
            EventKind::Repartitioned { shards } => {
                format!("repartitioned index across {shards} shards")
            }
            EventKind::GenerationSwap { shard, generation } => {
                format!("generation swap: shard {shard} -> generation {generation}")
            }
            EventKind::WalReplayed {
                records,
                torn_bytes,
            } => {
                format!("wal replay: {records} records ({torn_bytes} torn bytes truncated)")
            }
            EventKind::IoRetried { attempt } => {
                format!("io retry: attempt {attempt} failed transiently")
            }
            EventKind::FaultInjected { op } => format!("fault injected: {op}"),
            EventKind::QueryShed { in_flight, limit } => {
                format!("query shed: {in_flight} in flight >= limit {limit}")
            }
            EventKind::QueryDegraded {
                failed_shards,
                attempted,
            } => {
                format!("query degraded: {failed_shards}/{attempted} attempted shards failed")
            }
            EventKind::QueryFailed { shard, kind } => {
                format!("query failed: shard {shard} ({kind})")
            }
        };
        format!("[{:>6} @{:>8}ms] {body}", self.seq, ms)
    }
}

// One mutex per slot: emitters on different slots never contend, and
// two emitters CAPACITY apart racing for the same slot resolve by
// sequence number (the later one wins, which is also the newer event).
#[allow(clippy::declare_interior_mutable_const)]
const EMPTY_SLOT: Mutex<Option<Event>> = Mutex::new(None);
static SLOTS: [Mutex<Option<Event>>; CAPACITY] = [EMPTY_SLOT; CAPACITY];
static NEXT_SEQ: AtomicU64 = AtomicU64::new(0);

fn slot_lock(i: usize) -> std::sync::MutexGuard<'static, Option<Event>> {
    SLOTS[i].lock().unwrap_or_else(|e| e.into_inner())
}

/// Record one event. Lock-light: one relaxed `fetch_add` to claim a
/// slot, one per-slot store. Also ticks
/// `promips_recorder_events_total`.
pub fn emit(kind: EventKind) {
    let seq = NEXT_SEQ.fetch_add(1, Ordering::Relaxed);
    let event = Event {
        seq,
        at_ns: crate::now_ns(),
        kind,
    };
    {
        let mut slot = slot_lock((seq % CAPACITY as u64) as usize);
        // A stale racer (sequence lapped by a full ring revolution)
        // must not overwrite a newer event.
        if slot.as_ref().is_none_or(|old| old.seq < seq) {
            *slot = Some(event);
        }
    }
    Registry::global().counter(CounterId::RecorderEvents).inc();
}

/// The retained events, oldest first. A concurrent dump sees each slot
/// at some point in time — always a complete event, possibly missing
/// the very newest writes.
pub fn dump() -> Vec<Event> {
    let mut events: Vec<Event> = (0..CAPACITY).filter_map(|i| slot_lock(i).clone()).collect();
    events.sort_by_key(|e| e.seq);
    events
}

/// Render [`dump`] as one line per event.
pub fn render_dump() -> String {
    let mut out = String::new();
    for e in dump() {
        out.push_str(&e.render());
        out.push('\n');
    }
    out
}

/// Empty every slot (sequence numbers keep counting; they are
/// process-unique forever).
pub fn clear() {
    for i in 0..CAPACITY {
        *slot_lock(i) = None;
    }
}

/// The flight-recorder ring captured at the moment a query aborted.
#[derive(Clone, Debug)]
pub struct ErrorDump {
    pub at_ns: u64,
    /// Display form of the error that triggered the capture.
    pub error: String,
    /// The ring at capture time, oldest first.
    pub events: Vec<Event>,
}

static ERRORS: Mutex<Vec<ErrorDump>> = Mutex::new(Vec::new());

fn errors_lock() -> std::sync::MutexGuard<'static, Vec<ErrorDump>> {
    ERRORS.lock().unwrap_or_else(|e| e.into_inner())
}

/// Automatic postmortem: snapshot the ring against `error`, retaining
/// the newest [`ERROR_DUMPS`] captures. Called by the query path when a
/// search aborts with an error.
pub fn capture_error(error: &dyn std::fmt::Display) {
    let dump = ErrorDump {
        at_ns: crate::now_ns(),
        error: error.to_string(),
        events: dump(),
    };
    let mut g = errors_lock();
    g.push(dump);
    let overflow = g.len().saturating_sub(ERROR_DUMPS);
    if overflow > 0 {
        g.drain(..overflow);
    }
}

/// Retained error captures, oldest first.
pub fn error_dumps() -> Vec<ErrorDump> {
    errors_lock().clone()
}

/// Drop all retained error captures.
pub fn clear_error_dumps() {
    errors_lock().clear();
}

// The ring is process-global; every unit test in this crate that emits
// or clears it serializes on this lock so clear()/dump() pairs never
// interleave across test threads.
#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static TEST_LOCK: Mutex<()> = Mutex::new(());
    TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_are_ordered_and_bounded() {
        let _g = test_lock();
        clear();
        for i in 0..(CAPACITY as u64 + 10) {
            emit(EventKind::IoRetried { attempt: i as u32 });
        }
        let events = dump();
        assert_eq!(events.len(), CAPACITY, "ring is bounded");
        assert!(
            events.windows(2).all(|w| w[0].seq < w[1].seq),
            "dump is ordered by sequence"
        );
        // The oldest 10 events were overwritten.
        match &events[0].kind {
            EventKind::IoRetried { attempt } => assert!(*attempt >= 10),
            other => panic!("unexpected event {other:?}"),
        }
        clear();
        assert!(dump().is_empty());
    }

    #[test]
    fn render_mentions_the_payload() {
        let _g = test_lock();
        clear();
        emit(EventKind::QueryDegraded {
            failed_shards: 1,
            attempted: 3,
        });
        let text = render_dump();
        assert!(text.contains("query degraded: 1/3"), "got: {text}");
        clear();
    }

    #[test]
    fn error_dumps_snapshot_the_ring_and_stay_bounded() {
        let _g = test_lock();
        clear();
        clear_error_dumps();
        emit(EventKind::FaultInjected { op: "read" });
        for i in 0..(ERROR_DUMPS + 3) {
            capture_error(&format!("boom {i}"));
        }
        let dumps = error_dumps();
        assert_eq!(dumps.len(), ERROR_DUMPS, "error captures are bounded");
        assert!(
            dumps[0].error.contains("boom 3"),
            "oldest surviving capture"
        );
        assert!(dumps.iter().all(|d| d
            .events
            .iter()
            .any(|e| e.kind == EventKind::FaultInjected { op: "read" })));
        clear();
        clear_error_dumps();
    }
}
