//! Lock-free metric primitives: counters, gauges, and log2-bucketed
//! histograms. Every mutation is a single relaxed atomic RMW; snapshots
//! are plain values that merge associatively.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// Monotonic event counter.
#[derive(Debug)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Const initializer usable in array-repeat position. Every use
    /// copies a fresh zeroed atomic — that is the point; mutate through
    /// a place (array slot, struct field), never through `NEW` itself.
    #[allow(clippy::declare_interior_mutable_const)]
    pub const NEW: Counter = Counter(AtomicU64::new(0));

    pub const fn new() -> Self {
        Self::NEW
    }

    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

impl Default for Counter {
    fn default() -> Self {
        Self::new()
    }
}

/// Signed level gauge (rows in delta overlays, live tombstones, ...).
///
/// Gauge discipline across the codebase is strictly incremental
/// (`add`/`sub` per event) rather than recompute-from-snapshot: several
/// index instances — parallel tests, multiple open directories — share
/// the process-global registry, and increments compose where absolute
/// stores would fight.
#[derive(Debug)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Const initializer usable in array-repeat position (see
    /// [`Counter::NEW`]).
    #[allow(clippy::declare_interior_mutable_const)]
    pub const NEW: Gauge = Gauge(AtomicI64::new(0));

    pub const fn new() -> Self {
        Self::NEW
    }

    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    #[inline]
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn sub(&self, n: i64) {
        self.0.fetch_sub(n, Ordering::Relaxed);
    }

    #[inline]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

impl Default for Gauge {
    fn default() -> Self {
        Self::new()
    }
}

/// Bucket count for [`Histogram`]: bucket 0 holds exact zeros and
/// bucket `i >= 1` covers the half-open range `[2^(i-1), 2^i)`, so 64
/// power-of-two buckets plus the zero bucket span all of `u64`.
pub const BUCKETS: usize = 65;

#[inline]
fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Largest sample value bucket `b` can hold: 0 for the zero bucket,
/// otherwise `2^b - 1` (bucket `b` covers `[2^(b-1), 2^b)` and samples
/// are integers). These are the `le` bounds of the cumulative-`_bucket`
/// Prometheus exposition.
#[inline]
pub fn bucket_upper_bound(b: usize) -> u64 {
    if b == 0 {
        0
    } else if b >= 64 {
        u64::MAX
    } else {
        (1u64 << b) - 1
    }
}

/// Lock-free histogram over `u64` samples (latencies in ns, batch
/// sizes) with log2 bucketing. Recording is two relaxed `fetch_add`s.
///
/// Log2 buckets trade resolution for a fixed footprint: any quantile
/// estimate lands in the same power-of-two bucket as the exact order
/// statistic, bounding the estimate within a factor of 2 (property-
/// tested in `tests/histogram_prop.rs`).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
}

impl Histogram {
    /// Const initializer usable in array-repeat position (see
    /// [`Counter::NEW`]).
    #[allow(clippy::declare_interior_mutable_const)]
    pub const NEW: Histogram = {
        #[allow(clippy::declare_interior_mutable_const)]
        const Z: AtomicU64 = AtomicU64::new(0);
        Histogram {
            buckets: [Z; BUCKETS],
            sum: AtomicU64::new(0),
        }
    };

    pub const fn new() -> Self {
        Self::NEW
    }

    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKETS];
        for (dst, src) in buckets.iter_mut().zip(&self.buckets) {
            *dst = src.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Plain-value copy of a [`Histogram`]; merges element-wise (and is
/// therefore associative and commutative), estimates quantiles.
#[derive(Clone, Copy, Debug)]
pub struct HistogramSnapshot {
    pub buckets: [u64; BUCKETS],
    pub sum: u64,
}

impl HistogramSnapshot {
    pub const EMPTY: HistogramSnapshot = HistogramSnapshot {
        buckets: [0; BUCKETS],
        sum: 0,
    };

    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum as f64 / n as f64
        }
    }

    /// Element-wise accumulate: `self` becomes the histogram of the
    /// union of both sample sets.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (dst, src) in self.buckets.iter_mut().zip(&other.buckets) {
            *dst += src;
        }
        self.sum += other.sum;
    }

    /// Per-bucket difference against an `earlier` snapshot of the same
    /// histogram: the histogram of exactly the samples recorded between
    /// the two snapshots. Buckets and sums are monotonic, so with
    /// genuinely ordered snapshots no clamping occurs; saturation only
    /// guards against torn non-atomic snapshot pairs.
    pub fn saturating_diff(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let mut out = HistogramSnapshot::EMPTY;
        for (dst, (now, was)) in out
            .buckets
            .iter_mut()
            .zip(self.buckets.iter().zip(&earlier.buckets))
        {
            *dst = now.saturating_sub(*was);
        }
        out.sum = self.sum.saturating_sub(earlier.sum);
        out
    }

    /// Estimate the `p`-quantile (`p` in [0, 1]) of the recorded
    /// samples.
    ///
    /// The rank is `k = ceil(p * count)` clamped to at least 1 (so
    /// `p = 0` means the minimum sample and `p = 1` the maximum), the
    /// same convention as the exact "k-th of the sorted samples". The
    /// estimate interpolates linearly by rank within the containing
    /// log2 bucket `[2^(b-1), 2^b)`, so it sits within a factor of 2 of
    /// the exact order statistic and is exact for zero samples.
    /// Returns 0.0 for an empty histogram.
    pub fn quantile(&self, p: f64) -> f64 {
        let count = self.count();
        if count == 0 {
            return 0.0;
        }
        let k = ((p * count as f64).ceil() as u64).clamp(1, count);
        let mut cum = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            cum += n;
            if cum >= k {
                if b == 0 {
                    return 0.0;
                }
                let lo = (1u128 << (b - 1)) as f64;
                let hi = (1u128 << b) as f64;
                // Rank position of k within this bucket, in (0, 1].
                let frac = (k - (cum - n)) as f64 / n as f64;
                return lo + (hi - lo) * frac;
            }
        }
        unreachable!("k <= count, so some bucket must contain rank k");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        g.add(10);
        g.sub(3);
        assert_eq!(g.get(), 7);
        g.set(-2);
        assert_eq!(g.get(), -2);
    }

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
    }

    #[test]
    fn quantile_within_factor_two() {
        let h = Histogram::new();
        for v in [0u64, 1, 3, 100, 100, 2500, 40_000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 7);
        assert_eq!(s.quantile(0.0), 0.0); // min sample is an exact zero
        let med = s.quantile(0.5); // exact median is 100
        assert!((50.0..=200.0).contains(&med), "median estimate {med}");
        let max = s.quantile(1.0); // exact max is 40_000
        assert!((20_000.0..=80_000.0).contains(&max), "max estimate {max}");
        assert!((s.mean() - 42_704.0 / 7.0).abs() < 1e-9);
    }

    #[test]
    fn diff_recovers_the_between_snapshot_samples() {
        let h = Histogram::new();
        h.record(5);
        h.record(900);
        let before = h.snapshot();
        h.record(7);
        h.record(7);
        let after = h.snapshot();
        let delta = after.saturating_diff(&before);
        assert_eq!(delta.count(), 2);
        assert_eq!(delta.sum, 14);
        assert_eq!(delta.buckets[bucket_of(7)], 2);
        // Diffing in the wrong order saturates instead of wrapping.
        let wrong = before.saturating_diff(&after);
        assert_eq!(wrong.count(), 0);
        assert_eq!(wrong.sum, 0);
    }

    #[test]
    fn bucket_upper_bounds_cover_their_buckets() {
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(1), 1);
        assert_eq!(bucket_upper_bound(2), 3);
        assert_eq!(bucket_upper_bound(64), u64::MAX);
        for v in [0u64, 1, 2, 3, 4, 1000, u64::MAX] {
            let b = bucket_of(v);
            assert!(v <= bucket_upper_bound(b));
            if b > 0 {
                assert!(v > bucket_upper_bound(b - 1));
            }
        }
    }

    #[test]
    fn merge_is_elementwise() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record(5);
        a.record(9);
        b.record(5);
        let mut sa = a.snapshot();
        let sb = b.snapshot();
        sa.merge(&sb);
        assert_eq!(sa.count(), 3);
        assert_eq!(sa.sum, 19);
    }
}
