//! Exposition: Prometheus text format and JSON, rendered from a
//! [`RegistrySnapshot`] so a scrape sees one consistent point in time.

use crate::metrics::bucket_upper_bound;
use crate::registry::{CounterId, GaugeId, HistoId, RegistrySnapshot};
use std::fmt::Write;

/// How histograms are published in the Prometheus exposition.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HistogramStyle {
    /// `{quantile="..."}` sample lines plus `_sum`/`_count`
    /// (pre-computed factor-of-2 quantile estimates; cheap to scrape,
    /// not aggregatable across instances).
    Summary,
    /// Native `_bucket{le="..."}` series with cumulative counts ending
    /// in `+Inf`, plus `_sum`/`_count` — the log2 bucket boundaries
    /// published directly, so Prometheus can aggregate across
    /// instances and compute `histogram_quantile` server-side.
    CumulativeBuckets,
}

/// Quantiles published per histogram. Log2 buckets make any of these a
/// factor-of-2 estimate; p50/p90/p99 is the conventional trio.
const QUANTILES: [(f64, &str); 3] = [(0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99")];

fn fmt_f64(v: f64) -> String {
    // Prometheus accepts plain decimal; avoid exponent noise for the
    // integral values that dominate (bucket bounds, counts).
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

impl RegistrySnapshot {
    /// Prometheus text exposition format, version 0.0.4, with
    /// histograms published summary-style (see
    /// [`render_prometheus_style`] for the native-histogram variant).
    ///
    /// [`render_prometheus_style`]: RegistrySnapshot::render_prometheus_style
    pub fn render_prometheus(&self) -> String {
        self.render_prometheus_style(HistogramStyle::Summary)
    }

    /// Prometheus text exposition with the chosen histogram style.
    pub fn render_prometheus_style(&self, style: HistogramStyle) -> String {
        let mut out = String::with_capacity(4096);
        for &id in CounterId::ALL {
            let name = id.name();
            writeln!(out, "# HELP {name} {}", id.help()).unwrap();
            writeln!(out, "# TYPE {name} counter").unwrap();
            writeln!(out, "{name} {}", self.counter(id)).unwrap();
        }
        for &id in GaugeId::ALL {
            let name = id.name();
            writeln!(out, "# HELP {name} {}", id.help()).unwrap();
            writeln!(out, "# TYPE {name} gauge").unwrap();
            writeln!(out, "{name} {}", self.gauge(id)).unwrap();
        }
        for &id in HistoId::ALL {
            let name = id.name();
            let h = self.histogram(id);
            writeln!(out, "# HELP {name} {}", id.help()).unwrap();
            match style {
                HistogramStyle::Summary => {
                    writeln!(out, "# TYPE {name} summary").unwrap();
                    for (p, label) in QUANTILES {
                        writeln!(
                            out,
                            "{name}{{quantile=\"{label}\"}} {}",
                            fmt_f64(h.quantile(p))
                        )
                        .unwrap();
                    }
                }
                HistogramStyle::CumulativeBuckets => {
                    writeln!(out, "# TYPE {name} histogram").unwrap();
                    // Cumulative counts over the log2 bucket bounds.
                    // Trailing all-zero buckets collapse into +Inf so an
                    // idle histogram is 2 lines, not 66; the bounds are
                    // exact for integer samples (bucket b holds values
                    // <= 2^b - 1).
                    let highest = h.buckets.iter().rposition(|&n| n != 0).map_or(0, |b| b + 1);
                    let mut cum = 0u64;
                    for (b, &n) in h.buckets.iter().enumerate().take(highest) {
                        cum += n;
                        writeln!(
                            out,
                            "{name}_bucket{{le=\"{}\"}} {cum}",
                            bucket_upper_bound(b)
                        )
                        .unwrap();
                    }
                    writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count()).unwrap();
                }
            }
            writeln!(out, "{name}_sum {}", h.sum).unwrap();
            writeln!(out, "{name}_count {}", h.count()).unwrap();
        }
        out
    }

    /// One JSON object: metric name -> value; histograms become
    /// `{count, sum, mean, p50, p90, p99}` sub-objects.
    pub fn render_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n");
        let mut first = true;
        let mut field = |out: &mut String, name: &str, value: String| {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            write!(out, "  \"{name}\": {value}").unwrap();
        };
        for &id in CounterId::ALL {
            field(&mut out, id.name(), self.counter(id).to_string());
        }
        for &id in GaugeId::ALL {
            field(&mut out, id.name(), self.gauge(id).to_string());
        }
        for &id in HistoId::ALL {
            let h = self.histogram(id);
            let body = format!(
                "{{\"count\": {}, \"sum\": {}, \"mean\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}}}",
                h.count(),
                h.sum,
                fmt_f64(h.mean()),
                fmt_f64(h.quantile(0.5)),
                fmt_f64(h.quantile(0.9)),
                fmt_f64(h.quantile(0.99)),
            );
            field(&mut out, id.name(), body);
        }
        out.push_str("\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::HistogramStyle;
    use crate::registry::{CounterId, HistoId, Registry};

    #[test]
    fn cumulative_bucket_style_is_cumulative_and_ends_in_inf() {
        let r = Registry::new();
        // Samples 0, 1, 3, 3, 9: buckets 0->1, 1->1, 2->2, 4->1.
        for v in [0u64, 1, 3, 3, 9] {
            r.histogram(HistoId::QueryLatencyNs).record(v);
        }
        let text = r
            .snapshot()
            .render_prometheus_style(HistogramStyle::CumulativeBuckets);
        assert!(text.contains("# TYPE promips_query_latency_ns histogram"));
        assert!(text.contains("promips_query_latency_ns_bucket{le=\"0\"} 1"));
        assert!(text.contains("promips_query_latency_ns_bucket{le=\"1\"} 2"));
        assert!(text.contains("promips_query_latency_ns_bucket{le=\"3\"} 4"));
        assert!(text.contains("promips_query_latency_ns_bucket{le=\"7\"} 4"));
        assert!(text.contains("promips_query_latency_ns_bucket{le=\"15\"} 5"));
        assert!(text.contains("promips_query_latency_ns_bucket{le=\"+Inf\"} 5"));
        assert!(text.contains("promips_query_latency_ns_sum 16"));
        assert!(text.contains("promips_query_latency_ns_count 5"));
        // An untouched histogram collapses to just the +Inf bucket.
        assert!(text.contains("promips_compaction_ns_bucket{le=\"+Inf\"} 0"));
        assert!(!text.contains("promips_compaction_ns_bucket{le=\"0\"}"));
        // No summary-style series in this rendering.
        assert!(!text.contains("quantile="));
    }

    #[test]
    fn both_styles_pass_the_format_checker() {
        let r = Registry::new();
        r.counter(CounterId::Queries).add(3);
        for v in [100u64, 2000, 30_000] {
            r.histogram(HistoId::QueryLatencyNs).record(v);
        }
        for style in [HistogramStyle::Summary, HistogramStyle::CumulativeBuckets] {
            let text = r.snapshot().render_prometheus_style(style);
            if let Err(errors) = crate::promcheck::check_exposition(&text) {
                panic!("{style:?} exposition invalid: {errors:#?}");
            }
        }
    }

    #[test]
    fn prometheus_has_types_quantiles_and_values() {
        let r = Registry::new();
        r.counter(CounterId::Queries).add(7);
        for v in [100u64, 200, 400, 800] {
            r.histogram(HistoId::QueryLatencyNs).record(v);
        }
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE promips_queries_total counter"));
        assert!(text.contains("promips_queries_total 7"));
        assert!(text.contains("# TYPE promips_query_latency_ns summary"));
        assert!(text.contains("promips_query_latency_ns{quantile=\"0.5\"}"));
        assert!(text.contains("promips_query_latency_ns{quantile=\"0.99\"}"));
        assert!(text.contains("promips_query_latency_ns_sum 1500"));
        assert!(text.contains("promips_query_latency_ns_count 4"));
    }

    #[test]
    fn json_is_one_object_per_metric() {
        let r = Registry::new();
        r.counter(CounterId::Inserts).inc();
        let json = r.render_json();
        assert!(json.starts_with('{') && json.trim_end().ends_with('}'));
        assert!(json.contains("\"promips_inserts_total\": 1"));
        assert!(json.contains("\"promips_query_latency_ns\": {\"count\": 0"));
    }
}
