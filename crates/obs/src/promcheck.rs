//! A small in-repo Prometheus text-exposition checker, used by CI (via
//! `examples/observe.rs`) and by render tests to keep the exposition
//! valid as metrics are added.
//!
//! Checked invariants, per the text-format spec:
//!
//! - every line is a comment (`# HELP` / `# TYPE`), blank, or a sample
//!   `name{labels} value` with a parseable float value;
//! - every `# TYPE` declaration is followed by at least one sample of
//!   that family, and every sample belongs to a declared family whose
//!   type admits its shape (`_sum`/`_count` only for summary and
//!   histogram, `quantile` labels only for summaries, `_bucket`+`le`
//!   only for histograms, bare series for counters/gauges);
//! - label values are properly quoted with only `\\`, `\"` and `\n`
//!   escapes;
//! - every histogram's `_bucket` series has non-decreasing cumulative
//!   counts over increasing `le` bounds, ends with `le="+Inf"`, and the
//!   `+Inf` count equals the family's `_count`.
//!
//! This is a *checker*, not a full parser: it validates what this
//! crate's renderers emit (and what a scrape endpoint must uphold), and
//! returns every violation rather than stopping at the first.

use std::collections::BTreeMap;

#[derive(Debug, Default)]
struct Family {
    kind: Option<String>,
    samples: usize,
    /// Histogram bookkeeping: (le, cumulative count) in emission order.
    buckets: Vec<(f64, f64)>,
    saw_inf_last: bool,
    count_value: Option<f64>,
}

/// Validate `text` as Prometheus text exposition. `Ok(())` or every
/// violation found, each as one human-readable string.
pub fn check_exposition(text: &str) -> Result<(), Vec<String>> {
    let mut errors: Vec<String> = Vec::new();
    let mut families: BTreeMap<String, Family> = BTreeMap::new();

    for (ln, line) in text.lines().enumerate() {
        let ln = ln + 1;
        if line.trim().is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.splitn(2, ' ');
            let name = it.next().unwrap_or("").to_string();
            let kind = it.next().unwrap_or("").trim().to_string();
            if name.is_empty() || kind.is_empty() {
                errors.push(format!("line {ln}: malformed TYPE line: {line:?}"));
                continue;
            }
            if !matches!(kind.as_str(), "counter" | "gauge" | "summary" | "histogram") {
                errors.push(format!("line {ln}: unknown metric type {kind:?}"));
            }
            let fam = families.entry(name.clone()).or_default();
            if fam.kind.is_some() {
                errors.push(format!("line {ln}: duplicate TYPE for {name}"));
            }
            fam.kind = Some(kind);
            continue;
        }
        if line.starts_with('#') {
            continue; // HELP or free comment
        }
        match parse_sample(line) {
            Err(e) => errors.push(format!("line {ln}: {e}")),
            Ok(sample) => record_sample(&mut families, &mut errors, ln, sample),
        }
    }

    for (name, fam) in &families {
        let Some(kind) = fam.kind.as_deref() else {
            errors.push(format!("series {name} has samples but no # TYPE line"));
            continue;
        };
        if fam.samples == 0 {
            errors.push(format!("# TYPE {name} {kind} has no samples"));
        }
        if kind == "histogram" {
            check_histogram(name, fam, &mut errors);
        }
    }

    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

struct Sample {
    name: String,
    labels: Vec<(String, String)>,
    value: f64,
}

/// `name{k="v",...} value` or `name value`.
fn parse_sample(line: &str) -> Result<Sample, String> {
    let (series, value_str) = split_series_value(line)?;
    let (name, labels_str) = match series.find('{') {
        None => (series, None),
        Some(b) => {
            if !series.ends_with('}') {
                return Err(format!("unterminated label set in {series:?}"));
            }
            (&series[..b], Some(&series[b + 1..series.len() - 1]))
        }
    };
    if name.is_empty()
        || !name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        || name.chars().next().is_some_and(|c| c.is_ascii_digit())
    {
        return Err(format!("invalid metric name {name:?}"));
    }
    let labels = match labels_str {
        None => Vec::new(),
        Some(s) => parse_labels(s)?,
    };
    let value = parse_value(value_str)?;
    Ok(Sample {
        name: name.to_string(),
        labels,
        value,
    })
}

/// Split a sample line into the series part and the value part at the
/// last space outside any quoted label value.
fn split_series_value(line: &str) -> Result<(&str, &str), String> {
    let mut in_quotes = false;
    let mut escaped = false;
    let mut last_space = None;
    for (i, c) in line.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_quotes => escaped = true,
            '"' => in_quotes = !in_quotes,
            ' ' if !in_quotes => last_space = Some(i),
            _ => {}
        }
    }
    if in_quotes {
        return Err(format!("unterminated quoted label value in {line:?}"));
    }
    let sp = last_space.ok_or_else(|| format!("no value on sample line {line:?}"))?;
    Ok((line[..sp].trim_end(), line[sp + 1..].trim()))
}

fn parse_labels(s: &str) -> Result<Vec<(String, String)>, String> {
    let mut labels = Vec::new();
    let mut rest = s;
    while !rest.is_empty() {
        let eq = rest
            .find('=')
            .ok_or_else(|| format!("label without '=' in {s:?}"))?;
        let key = rest[..eq].trim();
        if key.is_empty() || !key.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
            return Err(format!("invalid label name {key:?}"));
        }
        rest = &rest[eq + 1..];
        if !rest.starts_with('"') {
            return Err(format!("unquoted label value after {key}"));
        }
        // Walk the quoted value honouring escapes.
        let mut end = None;
        let mut escaped = false;
        for (i, c) in rest.char_indices().skip(1) {
            if escaped {
                if !matches!(c, '\\' | '"' | 'n') {
                    return Err(format!("invalid escape '\\{c}' in label {key}"));
                }
                escaped = false;
                continue;
            }
            match c {
                '\\' => escaped = true,
                '"' => {
                    end = Some(i);
                    break;
                }
                '\n' => return Err(format!("raw newline in label {key}")),
                _ => {}
            }
        }
        let end = end.ok_or_else(|| format!("unterminated value for label {key}"))?;
        labels.push((key.to_string(), rest[1..end].to_string()));
        rest = &rest[end + 1..];
        if let Some(r) = rest.strip_prefix(',') {
            rest = r.trim_start();
        } else if !rest.is_empty() {
            return Err(format!("junk after label value: {rest:?}"));
        }
    }
    Ok(labels)
}

fn parse_value(s: &str) -> Result<f64, String> {
    match s {
        "+Inf" => Ok(f64::INFINITY),
        "-Inf" => Ok(f64::NEG_INFINITY),
        "NaN" => Ok(f64::NAN),
        _ => s
            .parse::<f64>()
            .map_err(|_| format!("unparseable sample value {s:?}")),
    }
}

/// The family a sample belongs to, given the histogram/summary series
/// suffixes.
fn family_of(name: &str) -> (&str, &str) {
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(base) = name.strip_suffix(suffix) {
            return (base, suffix);
        }
    }
    (name, "")
}

fn record_sample(
    families: &mut BTreeMap<String, Family>,
    errors: &mut Vec<String>,
    ln: usize,
    sample: Sample,
) {
    let (base, suffix) = family_of(&sample.name);
    // A `_sum`/`_count`/`_bucket` suffix only binds to a declared
    // summary/histogram family; otherwise the full name is the family
    // (a counter legitimately named `x_count` stays series `x_count`).
    let (family_name, suffix) = match families.get(base).and_then(|f| f.kind.as_deref()) {
        Some("summary") | Some("histogram") if !suffix.is_empty() => (base.to_string(), suffix),
        _ => (sample.name.clone(), ""),
    };
    let fam = families.entry(family_name.clone()).or_default();
    fam.samples += 1;
    let kind = fam.kind.as_deref().unwrap_or("");
    match kind {
        "counter" | "gauge" => {
            if !suffix.is_empty() {
                errors.push(format!(
                    "line {ln}: {kind} {family_name} cannot have a {suffix} series"
                ));
            }
            if kind == "counter" && sample.value < 0.0 {
                errors.push(format!("line {ln}: counter {family_name} is negative"));
            }
        }
        "summary" => match suffix {
            "" => {
                if !sample.labels.iter().any(|(k, _)| k == "quantile") {
                    errors.push(format!(
                        "line {ln}: summary {family_name} sample without quantile label"
                    ));
                }
            }
            "_sum" | "_count" => {}
            _ => errors.push(format!(
                "line {ln}: summary {family_name} cannot have a {suffix} series"
            )),
        },
        "histogram" => match suffix {
            "_bucket" => {
                let le = sample.labels.iter().find(|(k, _)| k == "le");
                match le {
                    None => errors.push(format!(
                        "line {ln}: histogram bucket of {family_name} without le label"
                    )),
                    Some((_, v)) => match parse_value(v) {
                        Ok(bound) => {
                            fam.saw_inf_last = bound.is_infinite() && bound > 0.0;
                            fam.buckets.push((bound, sample.value));
                        }
                        Err(_) => errors.push(format!(
                            "line {ln}: unparseable le bound {v:?} on {family_name}"
                        )),
                    },
                }
            }
            "_count" => fam.count_value = Some(sample.value),
            "_sum" => {}
            _ => errors.push(format!(
                "line {ln}: histogram {family_name} must use _bucket/_sum/_count series"
            )),
        },
        _ => {} // undeclared family: reported once at the end
    }
}

fn check_histogram(name: &str, fam: &Family, errors: &mut Vec<String>) {
    if fam.buckets.is_empty() {
        errors.push(format!("histogram {name} has no _bucket series"));
        return;
    }
    if !fam.saw_inf_last {
        errors.push(format!(
            "histogram {name}: _bucket series must end with le=\"+Inf\""
        ));
    }
    for pair in fam.buckets.windows(2) {
        let ((le_a, count_a), (le_b, count_b)) = (pair[0], pair[1]);
        if le_b <= le_a {
            errors.push(format!(
                "histogram {name}: le bounds not increasing ({le_a} then {le_b})"
            ));
        }
        if count_b < count_a {
            errors.push(format!(
                "histogram {name}: cumulative counts decrease at le={le_b} ({count_a} -> {count_b})"
            ));
        }
    }
    let inf_count = fam.buckets.last().map(|&(_, c)| c);
    if let (Some(inf), Some(total)) = (inf_count, fam.count_value) {
        if inf != total {
            errors.push(format!(
                "histogram {name}: +Inf bucket {inf} != _count {total}"
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn errs(text: &str) -> Vec<String> {
        check_exposition(text).err().unwrap_or_default()
    }

    #[test]
    fn accepts_a_well_formed_exposition() {
        let text = "\
# HELP promips_queries_total Queries served\n\
# TYPE promips_queries_total counter\n\
promips_queries_total 42\n\
# TYPE promips_delta_rows gauge\n\
promips_delta_rows -3\n\
# TYPE promips_query_latency_ns summary\n\
promips_query_latency_ns{quantile=\"0.5\"} 1000\n\
promips_query_latency_ns_sum 5000\n\
promips_query_latency_ns_count 5\n\
# TYPE promips_lat histogram\n\
promips_lat_bucket{le=\"0\"} 1\n\
promips_lat_bucket{le=\"1\"} 2\n\
promips_lat_bucket{le=\"+Inf\"} 4\n\
promips_lat_sum 37\n\
promips_lat_count 4\n\
# TYPE promips_health_check gauge\n\
promips_health_check{check=\"p99 \\\"tail\\\"\",extra=\"a\\nb\"} 0\n";
        assert_eq!(errs(text), Vec::<String>::new());
    }

    #[test]
    fn rejects_type_without_samples_and_samples_without_type() {
        let text = "# TYPE promips_a counter\n\npromips_b 1\n";
        let errors = errs(text);
        assert!(
            errors
                .iter()
                .any(|e| e.contains("promips_a") && e.contains("no samples")),
            "{errors:?}"
        );
        assert!(
            errors
                .iter()
                .any(|e| e.contains("promips_b") && e.contains("no # TYPE")),
            "{errors:?}"
        );
    }

    #[test]
    fn rejects_bad_labels_and_values() {
        assert!(
            !errs("# TYPE a counter\na{l=\"x} 1\n").is_empty(),
            "unterminated quote"
        );
        assert!(
            !errs("# TYPE a counter\na{l=\"x\\q\"} 1\n").is_empty(),
            "bad escape"
        );
        assert!(
            !errs("# TYPE a counter\na{l=x} 1\n").is_empty(),
            "unquoted value"
        );
        assert!(
            !errs("# TYPE a counter\na notanumber\n").is_empty(),
            "bad value"
        );
        assert!(!errs("# TYPE a counter\na\n").is_empty(), "no value");
    }

    #[test]
    fn rejects_broken_histograms() {
        // Missing +Inf terminator.
        let text = "# TYPE h histogram\nh_bucket{le=\"1\"} 1\nh_sum 1\nh_count 1\n";
        assert!(errs(text).iter().any(|e| e.contains("+Inf")));
        // Non-cumulative counts.
        let text = "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\nh_bucket{le=\"+Inf\"} 5\nh_sum 1\nh_count 5\n";
        assert!(errs(text).iter().any(|e| e.contains("decrease")));
        // le bounds out of order.
        let text = "# TYPE h histogram\nh_bucket{le=\"2\"} 1\nh_bucket{le=\"1\"} 2\nh_bucket{le=\"+Inf\"} 2\nh_sum 1\nh_count 2\n";
        assert!(errs(text).iter().any(|e| e.contains("not increasing")));
        // +Inf disagrees with _count.
        let text = "# TYPE h histogram\nh_bucket{le=\"+Inf\"} 4\nh_sum 1\nh_count 5\n";
        assert!(errs(text).iter().any(|e| e.contains("!= _count")));
    }

    #[test]
    fn counter_shape_violations_are_reported() {
        let text = "# TYPE a counter\na -1\n";
        assert!(errs(text).iter().any(|e| e.contains("negative")));
    }
}
