//! Always-on sampled tracing: a deterministic, counter-based 1-in-N
//! decision that routes ordinary (untraced) searches through the
//! [`crate::trace::QueryTrace`] machinery so the slow-query log keeps
//! seeing real exemplars without the caller opting in per query.
//!
//! The decision is one relaxed `fetch_add` on a process-global counter
//! — no RNG, no wall clock — so test runs are exactly reproducible:
//! every N-th arrival samples, whatever thread it lands on. The sampled
//! query pays the normal tracing cost (one allocation, a handful of
//! clock reads); the other N-1 pay a single atomic increment, which is
//! why the default stays inside the `obs_overhead` 2% bar.

use std::sync::atomic::{AtomicU64, Ordering};

/// Default cadence: every 64th untraced search is traced.
pub const DEFAULT_SAMPLE_EVERY: u64 = 64;

static SAMPLE_EVERY: AtomicU64 = AtomicU64::new(DEFAULT_SAMPLE_EVERY);
static ARRIVALS: AtomicU64 = AtomicU64::new(0);

/// Set the sampling cadence: every `n`-th untraced search is traced.
/// `0` disables sampling entirely (the arrival counter stops ticking).
pub fn set_sample_every(n: u64) {
    SAMPLE_EVERY.store(n, Ordering::Relaxed);
}

/// Current cadence (0 = disabled).
pub fn sample_every() -> u64 {
    SAMPLE_EVERY.load(Ordering::Relaxed)
}

/// Count one arrival and decide: `true` exactly once every
/// [`sample_every`] calls. Disabled sampling costs one relaxed load.
#[inline]
pub fn should_sample() -> bool {
    let n = SAMPLE_EVERY.load(Ordering::Relaxed);
    if n == 0 {
        return false;
    }
    ARRIVALS.fetch_add(1, Ordering::Relaxed).is_multiple_of(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    // The arrival counter is process-global: serialize tests touching it.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn cadence_is_exactly_one_in_n() {
        let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let was = sample_every();
        set_sample_every(4);
        // The global counter's phase is arbitrary (other tests may have
        // ticked it), but the cadence is exact: over any 16 consecutive
        // arrivals exactly 4 sample, spaced exactly 4 apart.
        let hits: Vec<usize> = (0..16usize).filter(|_| should_sample()).collect();
        assert_eq!(hits.len(), 4, "1-in-4 over 16 arrivals, got {hits:?}");
        assert!(
            hits.windows(2).all(|w| w[1] - w[0] == 4),
            "sampling drifted: {hits:?}"
        );
        set_sample_every(was);
    }

    #[test]
    fn zero_disables_sampling() {
        let _g = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let was = sample_every();
        set_sample_every(0);
        assert!((0..100).all(|_| !should_sample()));
        set_sample_every(1);
        assert!((0..10).all(|_| should_sample()), "1 means every query");
        set_sample_every(was);
    }
}
