//! Per-query stage tracing.
//!
//! A [`QueryTrace`] is an opt-in breakdown of a single sharded search:
//! wall time split across scan → screen → verify per shard, the
//! cross-shard merge, and the fan-out decisions (which shards were
//! pruned by the norm bound, which seeded the floor). Traces are plain
//! data — the query path fills one in only when the caller asked for
//! it, so the untraced path stays allocation- and clock-free apart from
//! the always-on aggregate histograms.

/// Nanoseconds spent in each in-shard stage of one search.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StageNanos {
    /// Projection, Quick-Probe annulus location, and iDistance range
    /// scans producing the candidate stream.
    pub scan_ns: u64,
    /// The SQ8 screen+rescore verification tier (code fetch, i8 screen,
    /// survivor rescore).
    pub screen_ns: u64,
    /// Plain f32 verification, delta-overlay scoring, and the shortfall
    /// nearest-neighbor sweep.
    pub verify_ns: u64,
}

impl StageNanos {
    pub fn total(&self) -> u64 {
        self.scan_ns + self.screen_ns + self.verify_ns
    }

    pub fn accumulate(&mut self, other: &StageNanos) {
        self.scan_ns += other.scan_ns;
        self.screen_ns += other.screen_ns;
        self.verify_ns += other.verify_ns;
    }
}

/// One shard's slice of a fan-out.
#[derive(Clone, Copy, Debug, Default)]
pub struct ShardSpan {
    pub shard: usize,
    /// Skipped entirely by the Cauchy–Schwarz norm bound; every timing
    /// and count field is zero.
    pub pruned: bool,
    /// Searched in phase 1 to seed the cross-shard floor.
    pub seed: bool,
    /// The shard's search failed (IO fault, deadline, poisoned worker)
    /// and a best-effort merge excluded it; count fields cover whatever
    /// completed before the failure was detected (usually zero).
    pub failed: bool,
    /// Wall time of this shard's search call.
    pub elapsed_ns: u64,
    pub stages: StageNanos,
    pub scanned: u64,
    pub screened: u64,
    pub verified: u64,
}

/// Full per-query trace, assembled by the sharded search layer.
#[derive(Clone, Debug, Default)]
pub struct QueryTrace {
    pub k: usize,
    /// Monotonic [`crate::now_ns`] timestamp when the query started.
    pub started_at_ns: u64,
    /// End-to-end wall time of the sharded search call.
    pub total_ns: u64,
    /// Cross-shard top-k merge and result assembly.
    pub merge_ns: u64,
    /// One or more shards failed and the result is a best-effort merge
    /// over the survivors (`BestEffort` degradation policy).
    pub degraded: bool,
    /// Remaining deadline budget when the search completed, if the query
    /// carried one (0 means the deadline fired).
    pub budget_remaining_ns: Option<u64>,
    /// One span per shard, pruned shards included (with zero timings).
    pub shards: Vec<ShardSpan>,
}

impl QueryTrace {
    /// Stage totals summed across shards (pruned spans contribute 0).
    pub fn stages(&self) -> StageNanos {
        let mut agg = StageNanos::default();
        for span in &self.shards {
            agg.accumulate(&span.stages);
        }
        agg
    }

    /// Nanoseconds accounted to a named stage: scan/screen/verify sums
    /// plus the merge.
    pub fn stage_total_ns(&self) -> u64 {
        self.stages().total() + self.merge_ns
    }

    /// Nanoseconds the trace accounts for: the measured wall time of
    /// every shard span plus the merge. (The stage sums are a finer
    /// breakdown *within* the spans and deliberately exclude per-shard
    /// bookkeeping like candidate-heap maintenance, so they run a little
    /// below the span times.)
    pub fn accounted_ns(&self) -> u64 {
        self.shards.iter().map(|s| s.elapsed_ns).sum::<u64>() + self.merge_ns
    }

    /// Fraction of the end-to-end wall time explained by the trace's
    /// spans ([`QueryTrace::accounted_ns`]), in [0, 1] for a sequential
    /// fan-out. (With a threaded fan-out, span time is CPU time across
    /// workers and can exceed the wall clock.)
    pub fn coverage(&self) -> f64 {
        if self.total_ns == 0 {
            return 0.0;
        }
        self.accounted_ns() as f64 / self.total_ns as f64
    }

    pub fn shards_pruned(&self) -> usize {
        self.shards.iter().filter(|s| s.pruned).count()
    }

    /// Shards whose search failed and were excluded by a best-effort
    /// merge.
    pub fn shards_failed(&self) -> usize {
        self.shards.iter().filter(|s| s.failed).count()
    }

    pub fn shards_searched(&self) -> usize {
        self.shards.len() - self.shards_pruned()
    }

    /// Compact one-line-per-shard rendering for logs and examples.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let st = self.stages();
        writeln!(
            out,
            "query k={} total={}us (scan={}us screen={}us verify={}us merge={}us, coverage={:.1}%){}{}",
            self.k,
            self.total_ns / 1_000,
            st.scan_ns / 1_000,
            st.screen_ns / 1_000,
            st.verify_ns / 1_000,
            self.merge_ns / 1_000,
            self.coverage() * 100.0,
            if self.degraded { " DEGRADED" } else { "" },
            match self.budget_remaining_ns {
                Some(ns) => format!(" budget-left={}us", ns / 1_000),
                None => String::new(),
            },
        )
        .unwrap();
        for s in &self.shards {
            if s.pruned {
                writeln!(out, "  shard {:>3}: pruned (norm bound)", s.shard).unwrap();
            } else if s.failed {
                writeln!(out, "  shard {:>3}: FAILED (excluded from merge)", s.shard).unwrap();
            } else {
                writeln!(
                    out,
                    "  shard {:>3}: {}us{} scanned={} screened={} verified={}",
                    s.shard,
                    s.elapsed_ns / 1_000,
                    if s.seed { " [seed]" } else { "" },
                    s.scanned,
                    s.screened,
                    s.verified,
                )
                .unwrap();
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> QueryTrace {
        QueryTrace {
            k: 10,
            started_at_ns: 1,
            total_ns: 1_000,
            merge_ns: 50,
            degraded: false,
            budget_remaining_ns: None,
            shards: vec![
                ShardSpan {
                    shard: 0,
                    seed: true,
                    elapsed_ns: 600,
                    stages: StageNanos {
                        scan_ns: 300,
                        screen_ns: 200,
                        verify_ns: 80,
                    },
                    scanned: 40,
                    screened: 30,
                    verified: 10,
                    ..Default::default()
                },
                ShardSpan {
                    shard: 1,
                    pruned: true,
                    ..Default::default()
                },
                ShardSpan {
                    shard: 2,
                    elapsed_ns: 330,
                    stages: StageNanos {
                        scan_ns: 150,
                        screen_ns: 100,
                        verify_ns: 60,
                    },
                    scanned: 20,
                    screened: 12,
                    verified: 8,
                    ..Default::default()
                },
            ],
        }
    }

    #[test]
    fn aggregates_and_coverage() {
        let t = sample_trace();
        let st = t.stages();
        assert_eq!(st.scan_ns, 450);
        assert_eq!(st.screen_ns, 300);
        assert_eq!(st.verify_ns, 140);
        assert_eq!(t.stage_total_ns(), 940);
        assert_eq!(t.accounted_ns(), 980);
        assert!((t.coverage() - 0.98).abs() < 1e-12);
        assert_eq!(t.shards_pruned(), 1);
        assert_eq!(t.shards_searched(), 2);
    }

    #[test]
    fn render_mentions_every_shard() {
        let text = sample_trace().render();
        assert!(text.contains("shard   0"));
        assert!(text.contains("[seed]"));
        assert!(text.contains("pruned (norm bound)"));
        assert!(text.contains("coverage=98.0%"));
    }
}
