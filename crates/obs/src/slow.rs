//! Slow-query capture: a bounded, process-global log retaining the N
//! worst queries whose end-to-end latency crossed a threshold — each as
//! a structured [`SlowQueryEntry`] carrying the trace, the lifecycle
//! verdict (degraded? how many shards failed? budget left?), and a
//! flight-recorder excerpt captured at retention time.
//!
//! Entries arrive from two paths: explicitly traced queries
//! (`search_traced*`) and the 1-in-N exemplars the always-on sampler
//! promotes out of the ordinary search path ([`crate::sampling`]); the
//! untraced hot path never touches this module's mutex. Keeping the
//! worst-N (rather than the latest-N) means a burst of mildly-slow
//! queries cannot evict the one pathological trace you actually want
//! to inspect.

use crate::recorder;
use crate::registry::{CounterId, Registry};
use crate::trace::QueryTrace;
use std::sync::Mutex;

const DEFAULT_CAPACITY: usize = 16;

/// One retained slow query: the trace plus the first-class lifecycle
/// fields an operator triages by, and the flight-recorder events that
/// led up to it.
#[derive(Clone, Debug)]
pub struct SlowQueryEntry {
    /// The full per-shard stage breakdown.
    pub trace: QueryTrace,
    /// The query returned a partial (best-effort) result.
    pub degraded: bool,
    /// Shards excluded from the merge by failure.
    pub shards_failed: usize,
    /// Deadline budget left at completion (`None` for unbudgeted
    /// queries).
    pub budget_remaining_ns: Option<u64>,
    /// `true` when this entry is a 1-in-N sampler exemplar rather than
    /// an explicitly traced query.
    pub sampled: bool,
    /// Flight-recorder ring at retention time, oldest first — the
    /// maintenance/fault context surrounding the slow query.
    pub events: Vec<recorder::Event>,
}

impl SlowQueryEntry {
    /// End-to-end latency of the retained query.
    pub fn total_ns(&self) -> u64 {
        self.trace.total_ns
    }

    /// The trace rendering plus the lifecycle verdict and the attached
    /// flight-recorder excerpt.
    pub fn render(&self) -> String {
        let mut out = self.trace.render();
        if self.sampled {
            out.push_str("  (sampled exemplar)\n");
        }
        if self.degraded {
            out.push_str(&format!(
                "  DEGRADED: {} shard(s) excluded by failure\n",
                self.shards_failed
            ));
        }
        if !self.events.is_empty() {
            out.push_str("  flight recorder:\n");
            for e in &self.events {
                out.push_str("    ");
                out.push_str(&e.render());
                out.push('\n');
            }
        }
        out
    }
}

struct SlowLog {
    threshold_ns: u64,
    capacity: usize,
    /// Sorted by `total_ns` descending; index 0 is the worst query.
    entries: Vec<SlowQueryEntry>,
}

static LOG: Mutex<Option<SlowLog>> = Mutex::new(None);

fn with_log<R>(f: impl FnOnce(&mut SlowLog) -> R) -> R {
    let mut guard = LOG.lock().unwrap_or_else(|e| e.into_inner());
    let log = guard.get_or_insert_with(|| SlowLog {
        threshold_ns: 0,
        capacity: DEFAULT_CAPACITY,
        entries: Vec::new(),
    });
    f(log)
}

/// Set the capture threshold and retained-entry capacity. The default
/// is threshold 0 (every offered trace qualifies) and capacity 16.
/// Shrinking the capacity drops the mildest retained entries.
pub fn configure(threshold_ns: u64, capacity: usize) {
    with_log(|log| {
        log.threshold_ns = threshold_ns;
        log.capacity = capacity;
        log.entries.truncate(capacity);
    });
}

/// Current capture threshold in nanoseconds.
pub fn threshold_ns() -> u64 {
    with_log(|log| log.threshold_ns)
}

/// Offer an explicitly requested trace for retention (see
/// [`offer_sampled`] for the sampler's exemplars). Returns `true` if it
/// was kept: it crossed the threshold and ranked among the worst N by
/// total latency. Kept entries bump `promips_slow_queries_total` and
/// capture the flight-recorder ring.
pub fn offer(trace: &QueryTrace) -> bool {
    offer_with(trace, false)
}

/// [`offer`] for the 1-in-N sampler: the kept entry is flagged as an
/// exemplar.
pub fn offer_sampled(trace: &QueryTrace) -> bool {
    offer_with(trace, true)
}

fn offer_with(trace: &QueryTrace, sampled: bool) -> bool {
    // Cheap pre-checks under the lock; the recorder dump (slot scan +
    // clone) happens only for traces that will actually be kept.
    let admitted = with_log(|log| {
        if log.capacity == 0 || trace.total_ns < log.threshold_ns {
            return false;
        }
        !(log.entries.len() == log.capacity
            && trace.total_ns <= log.entries.last().map_or(0, |t| t.total_ns()))
    });
    if !admitted {
        return false;
    }
    let entry = SlowQueryEntry {
        degraded: trace.degraded,
        shards_failed: trace.shards.iter().filter(|s| s.failed).count(),
        budget_remaining_ns: trace.budget_remaining_ns,
        sampled,
        events: recorder::dump(),
        trace: trace.clone(),
    };
    let kept = with_log(|log| {
        // Re-check under the lock: a racing offer may have filled the
        // log with worse entries since the pre-check.
        if log.capacity == 0 || entry.total_ns() < log.threshold_ns {
            return false;
        }
        if log.entries.len() == log.capacity
            && entry.total_ns() <= log.entries.last().map_or(0, |t| t.total_ns())
        {
            return false;
        }
        let at = log
            .entries
            .partition_point(|t| t.total_ns() >= entry.total_ns());
        log.entries.insert(at, entry);
        log.entries.truncate(log.capacity);
        true
    });
    if kept {
        Registry::global().counter(CounterId::SlowQueries).inc();
    }
    kept
}

/// Retained entries, worst first.
pub fn snapshot() -> Vec<SlowQueryEntry> {
    with_log(|log| log.entries.clone())
}

/// Drop all retained entries (threshold and capacity are kept).
pub fn clear() {
    with_log(|log| log.entries.clear());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::ShardSpan;

    fn trace(total_ns: u64) -> QueryTrace {
        QueryTrace {
            total_ns,
            ..Default::default()
        }
    }

    /// One test exercises the whole lifecycle: the log is process-global
    /// state, so independent `#[test]`s would race each other's
    /// `configure`/`clear` calls.
    #[test]
    fn threshold_capacity_and_worst_n_ordering() {
        // The recorder ring feeds kept entries; hold its test lock so
        // the recorder's own tests cannot clear it mid-offer.
        let _rec = recorder::test_lock();
        configure(100, 3);
        clear();
        assert!(!offer(&trace(99)), "below threshold must be rejected");
        assert!(offer(&trace(500)));
        assert!(offer(&trace(300)));
        assert!(offer(&trace(800)));
        // Log is full with {800, 500, 300}: a milder trace bounces, a
        // worse one evicts the mildest.
        assert!(!offer(&trace(200)));
        assert!(offer(&trace(600)));
        let kept: Vec<u64> = snapshot().iter().map(|t| t.total_ns()).collect();
        assert_eq!(kept, vec![800, 600, 500]);

        configure(100, 2);
        let kept: Vec<u64> = snapshot().iter().map(|t| t.total_ns()).collect();
        assert_eq!(kept, vec![800, 600], "shrink drops the mildest");

        clear();
        assert!(snapshot().is_empty());
        configure(0, DEFAULT_CAPACITY);

        // Entries carry the lifecycle fields first-class and the
        // recorder excerpt; sampled offers are flagged.
        let mut t = trace(1_000);
        t.degraded = true;
        t.budget_remaining_ns = Some(42);
        t.shards = vec![
            ShardSpan {
                shard: 0,
                failed: true,
                ..Default::default()
            },
            ShardSpan {
                shard: 1,
                ..Default::default()
            },
        ];
        recorder::emit(recorder::EventKind::QueryDegraded {
            failed_shards: 1,
            attempted: 2,
        });
        assert!(offer_sampled(&t));
        let kept = snapshot();
        let entry = &kept[0];
        assert!(entry.degraded);
        assert_eq!(entry.shards_failed, 1);
        assert_eq!(entry.budget_remaining_ns, Some(42));
        assert!(entry.sampled);
        assert!(entry
            .events
            .iter()
            .any(|e| matches!(e.kind, recorder::EventKind::QueryDegraded { .. })));
        let text = entry.render();
        assert!(
            text.contains("DEGRADED"),
            "render flags degradation: {text}"
        );
        assert!(text.contains("sampled exemplar"));
        assert!(text.contains("flight recorder"));
        clear();
    }
}
