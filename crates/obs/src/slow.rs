//! Slow-query capture: a bounded, process-global log retaining the N
//! worst [`QueryTrace`]s whose end-to-end latency crossed a threshold.
//!
//! Only *traced* queries are offered (the untraced hot path never
//! touches this module), so the mutex here costs nothing unless the
//! caller opted into tracing. Keeping the worst-N (rather than the
//! latest-N) means a burst of mildly-slow queries cannot evict the one
//! pathological trace you actually want to inspect.

use crate::registry::{CounterId, Registry};
use crate::trace::QueryTrace;
use std::sync::Mutex;

const DEFAULT_CAPACITY: usize = 16;

struct SlowLog {
    threshold_ns: u64,
    capacity: usize,
    /// Sorted by `total_ns` descending; index 0 is the worst query.
    traces: Vec<QueryTrace>,
}

static LOG: Mutex<Option<SlowLog>> = Mutex::new(None);

fn with_log<R>(f: impl FnOnce(&mut SlowLog) -> R) -> R {
    let mut guard = LOG.lock().unwrap_or_else(|e| e.into_inner());
    let log = guard.get_or_insert_with(|| SlowLog {
        threshold_ns: 0,
        capacity: DEFAULT_CAPACITY,
        traces: Vec::new(),
    });
    f(log)
}

/// Set the capture threshold and retained-trace capacity. The default
/// is threshold 0 (every offered trace qualifies) and capacity 16.
/// Shrinking the capacity drops the mildest retained traces.
pub fn configure(threshold_ns: u64, capacity: usize) {
    with_log(|log| {
        log.threshold_ns = threshold_ns;
        log.capacity = capacity;
        log.traces.truncate(capacity);
    });
}

/// Current capture threshold in nanoseconds.
pub fn threshold_ns() -> u64 {
    with_log(|log| log.threshold_ns)
}

/// Offer a trace for retention. Returns `true` if it was kept (it
/// crossed the threshold and ranked among the worst N by total
/// latency). Kept traces bump the `promips_slow_queries_total` counter.
pub fn offer(trace: &QueryTrace) -> bool {
    let kept = with_log(|log| {
        if log.capacity == 0 || trace.total_ns < log.threshold_ns {
            return false;
        }
        if log.traces.len() == log.capacity
            && trace.total_ns <= log.traces.last().map_or(0, |t| t.total_ns)
        {
            return false;
        }
        let at = log.traces.partition_point(|t| t.total_ns >= trace.total_ns);
        log.traces.insert(at, trace.clone());
        log.traces.truncate(log.capacity);
        true
    });
    if kept {
        Registry::global().counter(CounterId::SlowQueries).inc();
    }
    kept
}

/// Retained traces, worst first.
pub fn snapshot() -> Vec<QueryTrace> {
    with_log(|log| log.traces.clone())
}

/// Drop all retained traces (threshold and capacity are kept).
pub fn clear() {
    with_log(|log| log.traces.clear());
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(total_ns: u64) -> QueryTrace {
        QueryTrace {
            total_ns,
            ..Default::default()
        }
    }

    /// One test exercises the whole lifecycle: the log is process-global
    /// state, so independent `#[test]`s would race each other's
    /// `configure`/`clear` calls.
    #[test]
    fn threshold_capacity_and_worst_n_ordering() {
        configure(100, 3);
        clear();
        assert!(!offer(&trace(99)), "below threshold must be rejected");
        assert!(offer(&trace(500)));
        assert!(offer(&trace(300)));
        assert!(offer(&trace(800)));
        // Log is full with {800, 500, 300}: a milder trace bounces, a
        // worse one evicts the mildest.
        assert!(!offer(&trace(200)));
        assert!(offer(&trace(600)));
        let kept: Vec<u64> = snapshot().iter().map(|t| t.total_ns).collect();
        assert_eq!(kept, vec![800, 600, 500]);

        configure(100, 2);
        let kept: Vec<u64> = snapshot().iter().map(|t| t.total_ns).collect();
        assert_eq!(kept, vec![800, 600], "shrink drops the mildest");

        clear();
        assert!(snapshot().is_empty());
        configure(0, DEFAULT_CAPACITY);
    }
}
