//! Steady-state allocation accounting for the **screen+rescore**
//! verification tier.
//!
//! The tier adds two buffers to the verify path (`FetchBuffers::codes`
//! for the fetched u8 code rows, `FetchBuffers::qcodes` for the i8
//! quantized query). Like the f32 fetch arena they live in
//! `SearchScratch`, grow once to their high-water mark, and must never
//! allocate again: a warm search performs only the per-*search* constant
//! allocations every search pays (the `TopK` heap and the sorted result
//! vector) — **zero** allocations per screened or rescored candidate.
//!
//! This file holds exactly one test on purpose: the counting allocator is
//! process-global, and a sibling test running in another thread would
//! pollute the counter. (`scan_alloc.rs` / `quant_scan_alloc.rs` in
//! `promips_idistance` are the scan-path twins.)

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use promips_core::{ProMips, ProMipsConfig, SearchScratch};
use promips_idistance::IDistanceConfig;
use promips_linalg::Matrix;
use promips_stats::Xoshiro256pp;

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// Warms the scratch on `q`, then returns the allocation count of one
/// further (fully warm) search plus that search's candidate accounting.
fn warm_search_allocs(
    index: &ProMips,
    q: &[f32],
    k: usize,
    scratch: &mut SearchScratch,
) -> (u64, usize, usize) {
    for _ in 0..3 {
        index.search_with_scratch(q, k, scratch).unwrap();
    }
    let before = allocs();
    let res = index.search_with_scratch(q, k, scratch).unwrap();
    (allocs() - before, res.verified, res.screened)
}

#[test]
fn warm_screen_rescore_does_not_allocate_per_candidate() {
    let n = 3_000;
    let d = 24;
    let k = 16;
    let mut rng = Xoshiro256pp::seed_from_u64(63);
    let data = Matrix::from_rows(
        d,
        (0..n).map(|_| (0..d).map(|_| rng.normal() as f32).collect::<Vec<f32>>()),
    );
    let mk = |verify_quantize: bool| {
        let cfg = ProMipsConfig::builder()
            .c(0.9)
            .p(0.5)
            .seed(17)
            .idistance(IDistanceConfig {
                verify_quantize,
                ..Default::default()
            })
            .build();
        ProMips::build_in_memory(&data, cfg).unwrap()
    };
    let tiered = mk(true);
    let plain = mk(false);
    let q: Vec<f32> = (0..d).map(|_| rng.normal() as f32).collect();
    let mut scratch = SearchScratch::new();

    let (tier_allocs, verified, screened) = warm_search_allocs(&tiered, &q, k, &mut scratch);
    assert!(
        screened > 0 && verified > 0,
        "query must exercise both screen and rescore (screened {screened}, \
         verified {verified})"
    );
    // Steady state: a second warm search allocates exactly as much.
    let (again, _, _) = warm_search_allocs(&tiered, &q, k, &mut scratch);
    assert_eq!(
        tier_allocs, again,
        "warm screen+rescore search is not in allocation steady state"
    );
    // The screen machinery itself is allocation-free: with the tier off
    // the same query on the same scratch pays the same per-search
    // constants (TopK heap + result vector), nothing more or less.
    let (plain_allocs, plain_verified, _) = warm_search_allocs(&plain, &q, k, &mut scratch);
    assert_eq!(
        tier_allocs, plain_allocs,
        "the verification screen must add zero warm allocations over the \
         pure-f32 path"
    );
    // And the count is a tiny per-search constant, provably not
    // per-candidate: hundreds of candidates flow through the verify path.
    let candidates = (verified + screened).max(plain_verified);
    assert!(
        candidates > 100,
        "workload too small to distinguish per-search from per-candidate \
         ({candidates} candidates)"
    );
    assert!(
        (tier_allocs as usize) * 16 < candidates,
        "{tier_allocs} warm allocations against {candidates} candidates — \
         the verify path is allocating per candidate"
    );
}
