//! Property tests: the SQ8 screen+rescore verification tier must be
//! **bit-identical** to pure-f32 verification — same items (ids *and*
//! inner-product bits), same radii, same termination cause — across page
//! sizes that straddle record and field boundaries, floor mode on and off,
//! the shortfall loop, and degenerate or near-boundary queries. Screening
//! may only ever *reduce* the number of exact inner products computed.

use std::sync::Arc;

use promips_core::{ProMips, ProMipsConfig, SearchResult, SearchScratch};
use promips_idistance::IDistanceConfig;
use promips_linalg::Matrix;
use promips_stats::Xoshiro256pp;
use promips_storage::Pager;
use proptest::prelude::*;

fn random_data(n: usize, d: usize, seed: u64) -> Matrix {
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    Matrix::from_rows(
        d,
        (0..n).map(|_| (0..d).map(|_| rng.normal() as f32).collect::<Vec<f32>>()),
    )
}

/// Builds the same dataset twice: once with the verification tier, once
/// pure-f32. Everything else — projection seed, clustering, layout — is
/// identical, so any result divergence is the screen's fault.
fn build_pair(data: &Matrix, page_size: usize, seed: u64) -> (ProMips, ProMips) {
    let mk = |verify_quantize: bool| {
        let cfg = ProMipsConfig::builder()
            .c(0.9)
            .p(0.5)
            .seed(seed ^ 0xABCD)
            .page_size(page_size)
            .idistance(IDistanceConfig {
                verify_quantize,
                ..Default::default()
            })
            .build();
        let pager = Arc::new(Pager::in_memory(page_size, (1 << 24) / page_size));
        ProMips::build_with_pager(data, cfg, pager).unwrap()
    };
    let tiered = mk(true);
    let plain = mk(false);
    assert!(tiered.idistance().verify_quantized());
    assert!(!plain.idistance().verify_quantized());
    (tiered, plain)
}

fn assert_bit_identical(a: &SearchResult, b: &SearchResult, what: &str) {
    assert_eq!(a.items, b.items, "{what}: items diverged");
    assert_eq!(a.termination, b.termination, "{what}: termination diverged");
    assert_eq!(a.probe_radius, b.probe_radius, "{what}: probe radius");
    assert_eq!(a.final_radius, b.final_radius, "{what}: final radius");
    assert_eq!(a.compensated, b.compensated, "{what}: compensation flag");
    assert!(
        a.verified <= b.verified,
        "{what}: screen must never verify more ({} > {})",
        a.verified,
        b.verified
    );
    assert_eq!(b.screened, 0, "{what}: pure-f32 path must not screen");
    assert_eq!(
        a.screened + a.verified,
        b.screened + b.verified,
        "{what}: every candidate is either screened or verified"
    );
}

/// Case count for the random parity sweep: the default keeps `cargo test`
/// quick; the CI stress job sets `PROMIPS_STRESS=1` to sweep much wider.
fn parity_cases() -> u32 {
    if std::env::var("PROMIPS_STRESS").as_deref() == Ok("1") {
        64
    } else {
        8
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(parity_cases()))]

    /// Random datasets and queries across the page sizes that exercise
    /// clean alignment (4096), tiny pages (64), and sizes that are not
    /// multiples of 4 (70, 130) so code rows and f32 rows straddle page
    /// boundaries mid-field. k sweeps from 1 to n (the latter forces the
    /// shortfall loop and exhaustive verification).
    #[test]
    fn screen_rescore_is_bit_identical(
        n in 120usize..320,
        d in 6usize..20,
        ps_pick in 0usize..4,
        seed in 0u64..1_000,
    ) {
        let page_size = [4096usize, 64, 70, 130][ps_pick];
        let data = random_data(n, d, seed);
        let (tiered, plain) = build_pair(&data, page_size, seed);
        let mut sa = SearchScratch::new();
        let mut sb = SearchScratch::new();
        let mut rng = Xoshiro256pp::seed_from_u64(seed ^ 0x5EED);
        for (qi, k) in [1usize, 5, 16, n].into_iter().enumerate() {
            let q: Vec<f32> = (0..d).map(|_| rng.normal() as f32).collect();
            let a = tiered.search_with_scratch(&q, k, &mut sa).unwrap();
            let b = plain.search_with_scratch(&q, k, &mut sb).unwrap();
            assert_bit_identical(&a, &b, &format!("query {qi}, k={k}"));

            // Floor mode: screen against an externally verified k-th best.
            // A floor taken from the plain result's own items sits exactly
            // on the screen threshold — the nastiest near-boundary case.
            if let Some(mid) = b.items.get(b.items.len() / 2) {
                let fa = tiered.search_with_floor(&q, k, mid.ip, &mut sa).unwrap();
                let fb = plain.search_with_floor(&q, k, mid.ip, &mut sb).unwrap();
                assert_bit_identical(&fa, &fb, &format!("floored query {qi}, k={k}"));
            }
        }
    }
}

/// Deterministic near-boundary and degenerate queries: data rows
/// themselves (their own inner product is exactly the k-th best — the
/// screen threshold lands *on* a candidate), scaled rows, the zero query
/// (degenerate symmetric quantizer), and a constant query.
#[test]
fn boundary_queries_are_bit_identical() {
    let d = 16;
    let data = random_data(500, d, 404);
    let (tiered, plain) = build_pair(&data, 4096, 404);
    let mut sa = SearchScratch::new();
    let mut sb = SearchScratch::new();

    let mut queries: Vec<Vec<f32>> = Vec::new();
    for i in [0usize, 13, 255, 499] {
        queries.push(data.row(i).to_vec());
        queries.push(data.row(i).iter().map(|x| x * 1000.0).collect());
        queries.push(data.row(i).iter().map(|x| x * 1e-6).collect());
    }
    queries.push(vec![0.0; d]);
    queries.push(vec![1.0; d]);

    let mut total_screened = 0usize;
    for (qi, q) in queries.iter().enumerate() {
        for k in [1usize, 3, 10] {
            let a = tiered.search_with_scratch(q, k, &mut sa).unwrap();
            let b = plain.search_with_scratch(q, k, &mut sb).unwrap();
            assert_bit_identical(&a, &b, &format!("boundary query {qi}, k={k}"));
            total_screened += a.screened;
        }
    }
    assert!(
        total_screened > 0,
        "the screen never fired — the tier is inert"
    );
}

/// The shortfall loop (fewer than k candidates inside the probe radius)
/// must stay pure-f32 and bit-identical: while the heap is short the
/// running k-th is −∞, so screening is provably inert there.
#[test]
fn shortfall_loop_is_bit_identical() {
    let d = 12;
    // Tiny dataset + large k: the range pass almost never finds k
    // candidates, so the shortfall loop runs on most queries.
    let data = random_data(60, d, 77);
    let (tiered, plain) = build_pair(&data, 64, 77);
    let mut sa = SearchScratch::new();
    let mut sb = SearchScratch::new();
    let mut rng = Xoshiro256pp::seed_from_u64(78);
    for _ in 0..20 {
        let q: Vec<f32> = (0..d).map(|_| rng.normal() as f32).collect();
        for k in [25usize, 50, 60] {
            let a = tiered.search_with_scratch(&q, k, &mut sa).unwrap();
            let b = plain.search_with_scratch(&q, k, &mut sb).unwrap();
            assert_bit_identical(&a, &b, &format!("shortfall k={k}"));
        }
    }
}

/// Batch search must equal sequential search item-for-item with the tier
/// on (each worker screens independently with its own scratch).
#[test]
fn batched_screened_search_matches_sequential() {
    let d = 14;
    let data = random_data(400, d, 91);
    let (tiered, _) = build_pair(&data, 4096, 91);
    let mut rng = Xoshiro256pp::seed_from_u64(92);
    let queries: Vec<Vec<f32>> = (0..12)
        .map(|_| (0..d).map(|_| rng.normal() as f32).collect())
        .collect();
    let refs: Vec<&[f32]> = queries.iter().map(|q| q.as_slice()).collect();
    let batch = tiered.search_batch_threaded(&refs, 7, 4).unwrap();
    let mut scratch = SearchScratch::new();
    for (q, got) in refs.iter().zip(&batch) {
        let want = tiered.search_with_scratch(q, 7, &mut scratch).unwrap();
        assert_eq!(got.items, want.items);
        assert_eq!(got.verified, want.verified);
        assert_eq!(got.screened, want.screened);
    }
}
