//! Allocation accounting for the observability instrumentation on the
//! warm query path.
//!
//! The metrics registry is fixed atomic arrays and the stage timers are
//! plain `u64` reads, so instrumentation must add **zero** allocations to
//! a warm search — with timing enabled (the default) or disabled (the
//! kill-switch path the `obs_overhead` bench compares against). A warm
//! search still pays only the per-search constants (the `TopK` heap and
//! the sorted result vector), exactly as before the observability layer
//! landed.
//!
//! One test per file: the counting allocator is process-global (see
//! `verify_alloc.rs`).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use promips_core::{ProMips, ProMipsConfig, SearchScratch};
use promips_linalg::Matrix;
use promips_stats::Xoshiro256pp;

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

/// Warms the scratch, then returns the allocation count of one fully
/// warm search and its verified-candidate count.
fn warm_search_allocs(
    index: &ProMips,
    q: &[f32],
    k: usize,
    scratch: &mut SearchScratch,
) -> (u64, usize) {
    for _ in 0..3 {
        index.search_with_scratch(q, k, scratch).unwrap();
    }
    let before = allocs();
    let res = index.search_with_scratch(q, k, scratch).unwrap();
    (allocs() - before, res.verified)
}

#[test]
fn instrumented_warm_search_does_not_allocate() {
    let n = 3_000;
    let d = 24;
    let k = 16;
    let mut rng = Xoshiro256pp::seed_from_u64(64);
    let data = Matrix::from_rows(
        d,
        (0..n).map(|_| (0..d).map(|_| rng.normal() as f32).collect::<Vec<f32>>()),
    );
    let cfg = ProMipsConfig::builder().c(0.9).p(0.5).seed(17).build();
    let index = ProMips::build_in_memory(&data, cfg).unwrap();
    let q: Vec<f32> = (0..d).map(|_| rng.normal() as f32).collect();
    let mut scratch = SearchScratch::new();

    // Touch the registry and the clock epoch up front so their one-time
    // lazy initialisation doesn't charge the first measured search.
    promips_obs::set_timing_enabled(true);
    let _ = promips_obs::now_ns();
    let _ = promips_obs::global().snapshot();

    let (timed, verified) = warm_search_allocs(&index, &q, k, &mut scratch);
    assert!(
        verified > 100,
        "workload too small to distinguish per-search from per-candidate \
         ({verified} verified)"
    );
    // Steady state with timing on.
    let (timed_again, _) = warm_search_allocs(&index, &q, k, &mut scratch);
    assert_eq!(
        timed, timed_again,
        "instrumented warm search is not in allocation steady state"
    );
    // The kill-switch path allocates exactly as much: recording into the
    // registry and skipping the clock are both allocation-free.
    promips_obs::set_timing_enabled(false);
    let (untimed, _) = warm_search_allocs(&index, &q, k, &mut scratch);
    promips_obs::set_timing_enabled(true);
    assert_eq!(
        timed, untimed,
        "stage timing changes the warm-path allocation count"
    );
    // And it stays a tiny per-search constant, not per-candidate.
    assert!(
        (timed as usize) * 16 < verified,
        "{timed} warm allocations against {verified} verified candidates — \
         the instrumented search path is allocating per candidate"
    );
}
