//! On-disk format compatibility for the verification tier.
//!
//! The SQ8 screen+rescore tier introduced format v3: a u8 code column for
//! the original vectors plus per-sub-partition `OrigQuant` directories.
//! Files written by older builds must keep working:
//!
//! * **v1** (no quantized tiers at all) and **v2** (scan tier only) files
//!   reopen and search correctly with the verification tier **silently
//!   disabled** — no config flag, no error, just pure-f32 verification.
//! * Because the screen is bit-identical by construction, a reopened
//!   v1/v2 file must return exactly the same items as a fresh v3 build of
//!   the same data — only the `screened`/`verified` accounting differs.
//! * v3 files roundtrip with the tier intact.

use std::sync::Arc;

use promips_core::{ProMips, ProMipsConfig};
use promips_idistance::IDistanceConfig;
use promips_linalg::Matrix;
use promips_stats::Xoshiro256pp;
use promips_storage::{AccessStats, FileStorage, Pager};

fn random_data(n: usize, d: usize, seed: u64) -> Matrix {
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    Matrix::from_rows(
        d,
        (0..n).map(|_| (0..d).map(|_| rng.normal() as f32).collect::<Vec<f32>>()),
    )
}

fn config_for(quantize: bool, verify_quantize: bool) -> ProMipsConfig {
    ProMipsConfig::builder()
        .c(0.9)
        .p(0.5)
        .seed(21)
        .idistance(IDistanceConfig {
            quantize,
            verify_quantize,
            ..Default::default()
        })
        .build()
}

/// Builds with the given tier combination, saves, reopens from the file,
/// and returns the reopened handle (dropping the original).
fn save_reopen(data: &Matrix, dir: &std::path::Path, name: &str, cfg: ProMipsConfig) -> ProMips {
    let path = dir.join(name);
    let page_size = cfg.page_size;
    let storage = Arc::new(FileStorage::create(&path, page_size).unwrap());
    let pager = Arc::new(Pager::new(storage, 1024, AccessStats::new_shared()));
    let built = ProMips::build_with_pager(data, cfg, pager).unwrap();
    built.save().unwrap();
    drop(built);

    let storage = Arc::new(FileStorage::open(&path, page_size).unwrap());
    let pager = Arc::new(Pager::new(storage, 1024, AccessStats::new_shared()));
    ProMips::open(pager).unwrap()
}

#[test]
fn v1_and_v2_files_search_with_verify_tier_silently_disabled() {
    let d = 18;
    let data = random_data(700, d, 55);
    let dir = std::env::temp_dir().join(format!("promips-fmt-compat-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    // The reference: a current-format build with both tiers on.
    let v3 = ProMips::build_in_memory(&data, config_for(true, true)).unwrap();
    assert!(v3.idistance().quantized());
    assert!(v3.idistance().verify_quantized());

    // v1: no quantized region at all. v2: scan tier only.
    let v1 = save_reopen(&data, &dir, "v1.pmx", config_for(false, false));
    let v2 = save_reopen(&data, &dir, "v2.pmx", config_for(true, false));
    assert!(!v1.idistance().quantized());
    assert!(!v1.idistance().verify_quantized());
    assert!(v2.idistance().quantized());
    assert!(!v2.idistance().verify_quantized());

    let mut rng = Xoshiro256pp::seed_from_u64(56);
    let mut v3_screened = 0usize;
    for _ in 0..10 {
        let q: Vec<f32> = (0..d).map(|_| rng.normal() as f32).collect();
        for k in [1usize, 7, 20] {
            let want = v3.search(&q, k).unwrap();
            v3_screened += want.screened;
            for (legacy, label) in [(&v1, "v1"), (&v2, "v2")] {
                let got = legacy.search(&q, k).unwrap();
                assert_eq!(got.items, want.items, "{label}: items diverged from v3");
                assert_eq!(got.termination, want.termination, "{label}: termination");
                assert_eq!(got.probe_radius, want.probe_radius, "{label}: probe radius");
                assert_eq!(got.final_radius, want.final_radius, "{label}: final radius");
                assert_eq!(
                    got.screened, 0,
                    "{label}: legacy formats must never screen — the tier \
                     has no codes to screen with"
                );
                assert!(
                    got.verified >= want.verified,
                    "{label}: pure-f32 verification can only do more exact \
                     inner products, not fewer"
                );
            }
        }
    }
    assert!(
        v3_screened > 0,
        "the v3 reference never screened — the comparison is vacuous"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn v3_files_roundtrip_with_verify_tier_intact() {
    let d = 16;
    let data = random_data(600, d, 81);
    let dir = std::env::temp_dir().join(format!("promips-fmt-v3-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    let fresh = ProMips::build_in_memory(&data, config_for(true, true)).unwrap();
    let reopened = save_reopen(&data, &dir, "v3.pmx", config_for(true, true));
    assert!(reopened.idistance().verify_quantized());

    let mut rng = Xoshiro256pp::seed_from_u64(82);
    let mut screened = 0usize;
    for _ in 0..8 {
        let q: Vec<f32> = (0..d).map(|_| rng.normal() as f32).collect();
        let a = fresh.search(&q, 9).unwrap();
        let b = reopened.search(&q, 9).unwrap();
        assert_eq!(a.items, b.items);
        assert_eq!(a.verified, b.verified);
        assert_eq!(a.screened, b.screened);
        screened += b.screened;
    }
    assert!(screened > 0, "reopened v3 file never screened — tier lost");
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The odd combination: verification tier on, scan tier off. The v3
/// footer must encode the *absence* of the scan-quant region and reopen
/// with exactly that tier mix.
#[test]
fn verify_only_builds_roundtrip() {
    let d = 14;
    let data = random_data(400, d, 33);
    let dir = std::env::temp_dir().join(format!("promips-fmt-vonly-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();

    let reopened = save_reopen(&data, &dir, "vonly.pmx", config_for(false, true));
    assert!(!reopened.idistance().quantized());
    assert!(reopened.idistance().verify_quantized());

    let fresh = ProMips::build_in_memory(&data, config_for(false, true)).unwrap();
    let mut rng = Xoshiro256pp::seed_from_u64(34);
    for _ in 0..6 {
        let q: Vec<f32> = (0..d).map(|_| rng.normal() as f32).collect();
        let a = fresh.search(&q, 5).unwrap();
        let b = reopened.search(&q, 5).unwrap();
        assert_eq!(a.items, b.items);
        assert_eq!(a.screened, b.screened);
    }
    std::fs::remove_dir_all(&dir).unwrap();
}
