//! Optimized projected dimension (paper Section V-B).
//!
//! Quick-Probe groups points by their `m`-bit codes: `2^m` groups of
//! `n / 2^m` expected points. Computing the group lower bounds costs
//! `2^m (m + 1)` and scanning one group costs `n / 2^m`, so the paper
//! minimizes `f(m) = 2^m (m + 1) + n / 2^m` over integers.

/// `f(m) = 2^m (m + 1) + n / 2^m` — the Quick-Probe cost model.
pub fn quickprobe_cost(m: usize, n: u64) -> f64 {
    let two_m = (1u128 << m) as f64;
    two_m * (m as f64 + 1.0) + n as f64 / two_m
}

/// Returns `argmin_m f(m)` over `1 ≤ m ≤ 40`.
///
/// The function is strictly convex in `m` (its second derivative is
/// positive, as the paper notes), so the first local minimum is global; we
/// still scan the whole range because it is 40 evaluations.
pub fn optimized_projection_dim(n: u64) -> usize {
    assert!(n > 0, "dataset must be non-empty");
    (1..=40usize)
        .min_by(|&a, &b| quickprobe_cost(a, n).total_cmp(&quickprobe_cost(b, n)))
        .unwrap()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_paper_settings() {
        // Section VIII-A4: m = 6 on Netflix (n=17,770) and P53 (n=31,420),
        // m = 8 on Yahoo (n=624,961), m = 10 on Sift (n=11,164,866).
        assert_eq!(optimized_projection_dim(17_770), 6);
        assert_eq!(optimized_projection_dim(31_420), 6);
        assert_eq!(optimized_projection_dim(624_961), 8);
        assert_eq!(optimized_projection_dim(11_164_866), 10);
    }

    #[test]
    fn monotone_in_n() {
        let mut prev = 0;
        for exp in 4..30 {
            let m = optimized_projection_dim(1u64 << exp);
            assert!(m >= prev, "m decreased at n=2^{exp}");
            prev = m;
        }
    }

    #[test]
    fn minimum_is_local_minimum() {
        for &n in &[100u64, 10_000, 1_000_000, 100_000_000] {
            let m = optimized_projection_dim(n);
            let f = |mm: usize| quickprobe_cost(mm, n);
            if m > 1 {
                assert!(f(m) <= f(m - 1), "n={n}");
            }
            assert!(f(m) <= f(m + 1), "n={n}");
        }
    }

    #[test]
    fn tiny_datasets_get_small_m() {
        assert_eq!(optimized_projection_dim(1), 1);
        assert!(optimized_projection_dim(64) <= 3);
    }
}
