//! Typed mutation errors.
//!
//! Mutations used to answer with `bool`s (`delete`) and kind-only
//! `io::Error`s (`save`), which forced callers to either ignore failures
//! or match on strings. [`MutationError`] names the three refusals a
//! mutable index can issue — plus the IO failures a durable one can hit —
//! so callers can degrade gracefully: a replicated writer skips
//! [`MutationError::DeadId`], surfaces [`MutationError::UnknownId`] to the
//! client, and treats only [`MutationError::Io`] as a storage incident.

use std::fmt;
use std::io;

/// Why a mutation (or a persistence call guarding against pending
/// mutations) was refused.
#[derive(Debug)]
pub enum MutationError {
    /// The id exists but is already tombstoned — deleting it again would
    /// corrupt live-point accounting, so the duplicate is refused.
    DeadId(u64),
    /// The id has never existed in this index.
    UnknownId(u64),
    /// `save`/`snapshot` refused because unfolded delta inserts or
    /// tombstones are pending; compact or rebuild first.
    PendingMutations { delta: usize, tombstones: usize },
    /// The write-ahead log or index file failed underneath the mutation.
    Io(io::Error),
}

impl fmt::Display for MutationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::DeadId(id) => write!(f, "id {id} is already deleted"),
            Self::UnknownId(id) => write!(f, "id {id} has never existed in this index"),
            Self::PendingMutations { delta, tombstones } => write!(
                f,
                "cannot save with {delta} delta inserts and {tombstones} tombstones pending; rebuild first"
            ),
            Self::Io(e) => write!(f, "mutation IO failure: {e}"),
        }
    }
}

impl std::error::Error for MutationError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for MutationError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<MutationError> for io::Error {
    fn from(e: MutationError) -> Self {
        match e {
            MutationError::Io(inner) => inner,
            MutationError::DeadId(_) | MutationError::UnknownId(_) => {
                io::Error::new(io::ErrorKind::NotFound, e)
            }
            MutationError::PendingMutations { .. } => {
                io::Error::new(io::ErrorKind::InvalidInput, e)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_conversion_preserves_kind_and_message() {
        let e: io::Error = MutationError::UnknownId(42).into();
        assert_eq!(e.kind(), io::ErrorKind::NotFound);
        assert!(e.to_string().contains("42"));
        let e: io::Error = MutationError::PendingMutations {
            delta: 3,
            tombstones: 1,
        }
        .into();
        assert_eq!(e.kind(), io::ErrorKind::InvalidInput);
        assert!(e.to_string().contains("3 delta inserts"));
        let inner = io::Error::new(io::ErrorKind::PermissionDenied, "wal");
        let e: io::Error = MutationError::Io(inner).into();
        assert_eq!(e.kind(), io::ErrorKind::PermissionDenied);
    }

    #[test]
    fn callers_can_downcast_from_io() {
        let e: io::Error = MutationError::DeadId(7).into();
        let m = e
            .get_ref()
            .and_then(|inner| inner.downcast_ref::<MutationError>())
            .expect("typed error survives the io wrapper");
        assert!(matches!(m, MutationError::DeadId(7)));
    }
}
