//! The searching processes: MIP-Search-II with Quick-Probe (Algorithm 3,
//! the production path) and MIP-Search-I (Algorithm 1, the incremental
//! baseline kept for the paper's design rationale and our ablation).
//!
//! The production path is allocation-lean: every per-query buffer (the
//! projected query, the candidate list, the offset list, and the original
//! vector arena) lives in a reusable [`SearchScratch`], and
//! [`ProMips::search_batch`] fans a query batch across scoped worker
//! threads, one scratch per worker.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::io;
use std::sync::atomic::{AtomicUsize, Ordering};

use promips_idistance::{ProjScratch, RangeCandidate};
use promips_linalg::{dist, dot, dot4, dot4_i8, dot_i8, norm1, sq_norm2};
use promips_obs::{
    self as obs, BudgetChecker, CounterId, HistoId, QueryBudget, ShardSpan, StageNanos,
};

use crate::conditions::ConditionContext;
use crate::index::ProMips;
use crate::result::{SearchItem, SearchResult, Termination};

/// Reusable per-query buffers. One scratch serves any number of sequential
/// searches against any index; [`ProMips::search_batch`] keeps one per
/// worker thread. All buffers grow to the high-water mark of the queries
/// they serve and are never shrunk.
#[derive(Debug, Default)]
pub struct SearchScratch {
    /// Projected query (length m).
    pq: Vec<f32>,
    /// Range-search candidates, grouped by sub-partition.
    cands: Vec<RangeCandidate>,
    /// Projected-record decode arena for the annulus scan and the
    /// Quick-Probe located-point read (id column + flat `f32` rows), which
    /// also carries the quantized-stage buffers (code column, quantized
    /// query, surviving blocks) of the SQ8 two-level filter.
    proj: ProjScratch,
    /// Buffers for batched original-vector verification.
    fetch: FetchBuffers,
}

#[derive(Debug, Default)]
struct FetchBuffers {
    /// Record offsets of the group being verified.
    offsets: Vec<u32>,
    /// Flat decode arena: record `i` at `arena[i*d..(i+1)*d]`.
    arena: Vec<f32>,
    /// Per-group sort keys: `(min proj_dist, start, end)` into the
    /// candidate slice — precomputed once, so the group ordering pass is
    /// O(G log G) instead of the O(G² · |group|) of recomputing the key
    /// inside the comparator.
    groups: Vec<(f64, usize, usize)>,
    /// SQ8 code rows of the group being screened (record `i` at
    /// `codes[i*d..(i+1)*d]`), fetched from the verification-quant region.
    codes: Vec<u8>,
    /// Symmetrically quantized query (length d), shared by every group of
    /// the query — the screen's integer kernels take it as the i8 operand.
    qcodes: Vec<i8>,
}

/// Precomputed per-query pieces of the SQ8 verification screen: the
/// symmetric query quantizer `q̂ⱼ = sq·bⱼ` (codes live in
/// [`FetchBuffers::qcodes`]) plus the exact scalars the per-group bound
/// needs. With `idot = Σ codeⱼ·bⱼ` (exact integer arithmetic), the screen
/// estimate unfolds as
/// `⟨x̂, q̂⟩ = sq·(min·Σbⱼ + scale·idot)`, and Cauchy–Schwarz bounds the
/// true inner product by
/// `|⟨x, q⟩ − ⟨x̂, q̂⟩| ≤ err·‖q‖ + xnorm·‖q − q̂‖`.
struct QueryScreen {
    /// Query quantization step `max|qⱼ|/127` (1.0 for the zero query).
    sq: f64,
    /// `Σ bⱼ` — exact, pairs with the data quantizer's `min`.
    sum_b: i64,
    /// `‖q − q̂‖` computed in f64 from the actual codes (not a bound).
    q_err: f64,
    /// `‖q‖`.
    q_norm: f64,
}

impl QueryScreen {
    /// Quantizes `q` symmetrically into `qcodes` and gathers the bound
    /// scalars. `q_sq_norm` is the caller's already-computed `‖q‖²`.
    fn build(q: &[f32], q_sq_norm: f64, qcodes: &mut Vec<i8>) -> Self {
        let mut amax = 0.0f32;
        for &x in q {
            amax = amax.max(x.abs());
        }
        let sq = if amax > 0.0 { amax as f64 / 127.0 } else { 1.0 };
        qcodes.clear();
        qcodes.reserve(q.len());
        let mut sum_b = 0i64;
        let mut q_err_sq = 0.0f64;
        for &x in q {
            let b = (x as f64 / sq).round().clamp(-127.0, 127.0);
            qcodes.push(b as i8);
            sum_b += b as i64;
            let e = x as f64 - sq * b;
            q_err_sq += e * e;
        }
        Self {
            sq,
            sum_b,
            q_err: q_err_sq.sqrt(),
            q_norm: q_sq_norm.sqrt(),
        }
    }
}

impl SearchScratch {
    /// A fresh scratch (buffers allocate lazily on first use).
    pub fn new() -> Self {
        Self::default()
    }
}

/// Bounded top-k collector over (inner product, id), deterministic under
/// ties (larger ip wins; equal ips keep the smaller id).
///
/// An optional *floor* models a k-th best inner product already verified
/// elsewhere (another shard of a [`ShardedProMips`]-style fan-out): items
/// strictly below the floor are discarded on push — they could never enter
/// the merged global top-k — and [`TopK::kth_ip`] never reports less than
/// the floor, so the searching conditions fire as if those k external
/// items were local. A floor of `-∞` reproduces the plain collector
/// bit-for-bit.
struct TopK {
    k: usize,
    /// Min-heap of (ip, Reverse(id)) so the weakest kept item is on top.
    heap: BinaryHeap<Reverse<(OrdF64, Reverse<u64>)>>,
    /// Externally verified k-th best inner product (`-∞` when standalone).
    floor: f64,
}

/// Total-ordered f64 wrapper.
#[derive(PartialEq, PartialOrd)]
struct OrdF64(f64);
impl Eq for OrdF64 {}
#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl TopK {
    fn new(k: usize) -> Self {
        Self::with_floor(k, f64::NEG_INFINITY)
    }

    fn with_floor(k: usize, floor: f64) -> Self {
        Self {
            k,
            heap: BinaryHeap::with_capacity(k + 1),
            floor,
        }
    }

    fn push(&mut self, id: u64, ip: f64) {
        if ip < self.floor {
            return; // beaten by k externally verified items already
        }
        self.heap.push(Reverse((OrdF64(ip), Reverse(id))));
        if self.heap.len() > self.k {
            self.heap.pop();
        }
    }

    fn len(&self) -> usize {
        self.heap.len()
    }

    /// The k-th best inner product so far (paper's `⟨ok_max, q⟩`), or the
    /// floor (−∞ when standalone) while fewer than k candidates have been
    /// verified.
    fn kth_ip(&self) -> f64 {
        if self.heap.len() < self.k {
            self.floor
        } else {
            self.heap
                .peek()
                .map(|Reverse((OrdF64(ip), _))| *ip)
                .unwrap()
        }
    }

    fn into_sorted(self) -> Vec<SearchItem> {
        let mut items: Vec<SearchItem> = self
            .heap
            .into_iter()
            .map(|Reverse((OrdF64(ip), Reverse(id)))| SearchItem { id, ip })
            .collect();
        items.sort_by(|a, b| b.ip.total_cmp(&a.ip).then(a.id.cmp(&b.id)));
        items
    }
}

impl ProMips {
    /// c-k-AMIP search (Algorithm 3 + Quick-Probe).
    ///
    /// Returns the top-`k` candidates by exact inner product among the
    /// verified points; with probability at least `p`, each returned item
    /// satisfies `⟨oᵢ,q⟩ ≥ c·⟨o*ᵢ,q⟩`.
    ///
    /// Allocates a fresh [`SearchScratch`]; callers issuing many queries
    /// should hold one and use [`ProMips::search_with_scratch`], or batch
    /// through [`ProMips::search_batch`].
    pub fn search(&self, q: &[f32], k: usize) -> io::Result<SearchResult> {
        self.search_with_scratch(q, k, &mut SearchScratch::new())
    }

    /// [`ProMips::search`] with caller-provided scratch buffers.
    pub fn search_with_scratch(
        &self,
        q: &[f32],
        k: usize,
        scratch: &mut SearchScratch,
    ) -> io::Result<SearchResult> {
        self.search_with_floor(q, k, f64::NEG_INFINITY, scratch)
    }

    /// Per-shard search entry point: [`ProMips::search_with_scratch`] with a
    /// caller-supplied **inner-product floor**.
    ///
    /// The floor asserts that `k` points with inner product at least
    /// `ip_floor` have already been verified *outside* this index — the
    /// situation of one shard in a sharded fan-out, where another shard has
    /// already produced a global top-k candidate set. The search then:
    ///
    /// * discards candidates strictly below the floor (they cannot enter the
    ///   merged global top-k, so verifying bookkeeping for them is wasted),
    /// * lets the searching conditions (Theorems 1–2) treat the floor as the
    ///   current k-th best inner product, terminating earlier when this
    ///   shard cannot improve on it.
    ///
    /// The result may therefore hold fewer than `k` items: exactly those
    /// whose inner product reaches the floor — and a floored search never
    /// verifies more candidates than the floor-less one (its running k-th
    /// is never smaller, so every termination test fires no later, and the
    /// shortfall-extension loop is skipped outright). With
    /// `ip_floor = -∞` this is bit-identical to
    /// [`ProMips::search_with_scratch`].
    pub fn search_with_floor(
        &self,
        q: &[f32],
        k: usize,
        ip_floor: f64,
        scratch: &mut SearchScratch,
    ) -> io::Result<SearchResult> {
        self.search_inner(q, k, ip_floor, None, 0, scratch)
    }

    /// [`ProMips::search_with_floor`] with an **external tombstone mask**:
    /// ids for which `dead` returns true are treated exactly like
    /// internally tombstoned points — never verified into the top-k, while
    /// the norm bounds they may define stay in force (which only enlarges
    /// the searching range, keeping Theorems 1–2 conservative).
    ///
    /// This is the read path of an MVCC-style overlay: the caller keeps
    /// delta/tombstone state *outside* an immutable index generation and
    /// snapshots it per query, so concurrent deletes never need `&mut`
    /// access here. `dead_count` must be the number of this index's ids the
    /// mask kills (an overcount truncates results; an undercount can make a
    /// shortfall pass scan further than needed) — it tightens the `k` clamp
    /// the same way internal tombstones do via [`ProMips::live_len`].
    pub fn search_masked(
        &self,
        q: &[f32],
        k: usize,
        ip_floor: f64,
        dead: &dyn Fn(u64) -> bool,
        dead_count: usize,
        scratch: &mut SearchScratch,
    ) -> io::Result<SearchResult> {
        self.search_inner(q, k, ip_floor, Some(dead), dead_count, scratch)
    }

    /// [`ProMips::search_masked`] that additionally fills `span` with the
    /// per-stage wall-time breakdown (scan → screen → verify) and the
    /// scanned/screened/verified row counts of this search — the per-shard
    /// slice of an [`obs::QueryTrace`]. The caller owns the span's
    /// identity fields (`shard`, `seed`, `elapsed_ns`); the stage clocks
    /// honour the global [`obs::set_timing_enabled`] kill-switch (all
    /// zeros when disabled).
    #[allow(clippy::too_many_arguments)]
    pub fn search_masked_traced(
        &self,
        q: &[f32],
        k: usize,
        ip_floor: f64,
        dead: &dyn Fn(u64) -> bool,
        dead_count: usize,
        scratch: &mut SearchScratch,
        span: &mut ShardSpan,
    ) -> io::Result<SearchResult> {
        self.search_observed(
            q,
            k,
            ip_floor,
            Some(dead),
            dead_count,
            scratch,
            Some(span),
            None,
        )
    }

    /// [`ProMips::search_masked_traced`] under a cooperative
    /// [`QueryBudget`]: the scan/verify loops check the budget every few
    /// block iterations (amortized — a `None` or unlimited budget costs a
    /// single branch per check site) and stop with a typed
    /// [`obs::BudgetExceeded`] error, recoverable from the returned
    /// `io::Error` via [`obs::budget_error`]. Partial work done before the
    /// budget fired is discarded by this layer; the sharded fan-out is
    /// what turns per-shard budget hits into a degraded merged result.
    #[allow(clippy::too_many_arguments)]
    pub fn search_masked_budgeted(
        &self,
        q: &[f32],
        k: usize,
        ip_floor: f64,
        dead: &dyn Fn(u64) -> bool,
        dead_count: usize,
        scratch: &mut SearchScratch,
        span: Option<&mut ShardSpan>,
        budget: Option<&QueryBudget>,
    ) -> io::Result<SearchResult> {
        self.search_observed(
            q,
            k,
            ip_floor,
            Some(dead),
            dead_count,
            scratch,
            span,
            budget,
        )
    }

    fn search_inner(
        &self,
        q: &[f32],
        k: usize,
        ip_floor: f64,
        mask: Option<&dyn Fn(u64) -> bool>,
        mask_dead_count: usize,
        scratch: &mut SearchScratch,
    ) -> io::Result<SearchResult> {
        self.search_observed(q, k, ip_floor, mask, mask_dead_count, scratch, None, None)
    }

    /// Runs the timed search body, feeds the global metrics registry
    /// (row counters always; stage histograms only while timing is
    /// enabled), and optionally exports the breakdown into `span`.
    /// Query-level metrics (`promips_queries_total`, end-to-end latency)
    /// are owned by the sharded layer so a fan-out is counted once, not
    /// once per shard.
    #[allow(clippy::too_many_arguments)]
    fn search_observed(
        &self,
        q: &[f32],
        k: usize,
        ip_floor: f64,
        mask: Option<&dyn Fn(u64) -> bool>,
        mask_dead_count: usize,
        scratch: &mut SearchScratch,
        span: Option<&mut ShardSpan>,
        budget: Option<&QueryBudget>,
    ) -> io::Result<SearchResult> {
        let mut stages = StageNanos::default();
        let mut scanned = 0u64;
        let res = self.search_core(
            q,
            k,
            ip_floor,
            mask,
            mask_dead_count,
            scratch,
            &mut stages,
            &mut scanned,
            budget,
        )?;
        let reg = obs::global();
        reg.counter(CounterId::QueryScanned).add(scanned);
        reg.counter(CounterId::QueryScreened)
            .add(res.screened as u64);
        reg.counter(CounterId::QueryVerified)
            .add(res.verified as u64);
        if obs::timing_enabled() {
            reg.histogram(HistoId::StageScanNs).record(stages.scan_ns);
            reg.histogram(HistoId::StageScreenNs)
                .record(stages.screen_ns);
            reg.histogram(HistoId::StageVerifyNs)
                .record(stages.verify_ns);
        }
        if let Some(span) = span {
            span.stages = stages;
            span.scanned = scanned;
            span.screened = res.screened as u64;
            span.verified = res.verified as u64;
        }
        Ok(res)
    }

    #[allow(clippy::too_many_arguments)]
    fn search_core(
        &self,
        q: &[f32],
        k: usize,
        ip_floor: f64,
        mask: Option<&dyn Fn(u64) -> bool>,
        mask_dead_count: usize,
        scratch: &mut SearchScratch,
        stages: &mut StageNanos,
        scanned: &mut u64,
        budget: Option<&QueryBudget>,
    ) -> io::Result<SearchResult> {
        assert_eq!(q.len(), self.d, "query dimensionality mismatch");
        assert!(k >= 1, "k must be at least 1");
        // Cooperative budget checker shared by every loop below. With no
        // budget this is one branch per tick site — the no-budget path
        // stays bit-identical and clock-free.
        let mut checker = BudgetChecker::new(budget);
        let k = k.min((self.live_len() as usize).saturating_sub(mask_dead_count));
        if k == 0 {
            // Every point is dead (internally or via the mask): nothing to
            // verify, nothing to return.
            return Ok(self.finish(
                TopK::new(0),
                0,
                0,
                None,
                None,
                false,
                Termination::DatasetExhausted,
            ));
        }

        let t_scan = obs::clock_start();
        self.projection.project_into(q, &mut scratch.pq);
        let ctx = ConditionContext {
            c: self.config.c,
            p: self.config.p,
            m: self.m as u32,
            max_sq_norm: self.effective_max_sq_norm(),
            q_sq_norm: sq_norm2(q),
        };

        // --- Quick-Probe: locate the range-defining point (Algorithm 2). --
        let located = self
            .quickprobe
            .locate(&scratch.pq, norm1(q), self.config.c, self.config.p);
        let r = self.located_radius(&located, &scratch.pq, &mut scratch.proj);
        stages.scan_ns += obs::elapsed_since(t_scan);
        let r = r?;
        checker.tick()?;

        let mut top = TopK::with_floor(k, ip_floor);
        let mut verified = 0usize;
        let mut screened = 0usize;

        // Fresh inserts live in the in-memory delta segment; verify them
        // all up-front so the searching conditions' premise (everything
        // nearer than a tested frontier is verified) covers them.
        let t_delta = obs::clock_start();
        self.verify_delta(q, mask, &mut top, &mut verified);
        stages.verify_ns += obs::elapsed_since(t_delta);

        // --- Range search within r; verify per sub-partition batch. -------
        let t_range = obs::clock_start();
        let ranged = self.index.range_candidates_into(
            &scratch.pq,
            -1.0,
            r,
            &mut scratch.cands,
            &mut scratch.proj,
        );
        stages.scan_ns += obs::elapsed_since(t_range);
        ranged?;
        *scanned += scratch.cands.len() as u64;
        checker.tick()?;
        if let Some(term) = self.verify_groups(
            &scratch.cands,
            q,
            &ctx,
            mask,
            &mut top,
            &mut verified,
            &mut screened,
            &mut scratch.fetch,
            stages,
            &mut checker,
        )? {
            return Ok(self.finish(top, verified, screened, Some(r), Some(r), false, term));
        }

        // --- Rare shortfall: fewer than k candidates inside r. ------------
        // Pull further neighbours in distance order until k are verified so
        // the conditions (which need the k-th best) become meaningful. With
        // a floor this loop is skipped entirely: `kth_ip()` already reports
        // the floor while the heap is short, so the conditions are
        // meaningful without it — and running it would make the floored
        // search verify *more* than the plain one (the plain search's full
        // heap skips the loop), breaking the "a floor only ever reduces
        // verification work" contract.
        let mut r_final = r;
        let mut extended = false;
        if top.len() < k && ip_floor == f64::NEG_INFINITY {
            let t_short = obs::clock_start();
            let mut iter = self.index.nn_iter(&scratch.pq);
            let checker = &mut checker;
            let mut shortfall = || -> io::Result<()> {
                for cand in iter.by_ref() {
                    checker.tick()?;
                    if cand.proj_dist <= r || self.is_dead(cand.id, mask) {
                        continue; // already verified by the range pass / deleted
                    }
                    self.index.fetch_originals(
                        cand.subpart,
                        &[cand.offset],
                        &mut scratch.fetch.arena,
                    )?;
                    top.push(cand.id, dot(&scratch.fetch.arena, q));
                    verified += 1;
                    r_final = cand.proj_dist;
                    extended = true;
                    if top.len() >= k {
                        break;
                    }
                }
                Ok(())
            };
            let shorted = shortfall();
            stages.verify_ns += obs::elapsed_since(t_short);
            shorted?;
            if let Some(e) = iter.take_error() {
                return Err(e);
            }
        }

        // --- Termination tests at the searched radius. ---------------------
        if ctx.condition_a(top.kth_ip()) {
            return Ok(self.finish(
                top,
                verified,
                screened,
                Some(r),
                Some(r_final),
                extended,
                Termination::ConditionA,
            ));
        }
        if ctx.condition_b(r_final * r_final, top.kth_ip()) {
            return Ok(self.finish(
                top,
                verified,
                screened,
                Some(r),
                Some(r_final),
                extended,
                Termination::ConditionB,
            ));
        }

        // --- Compensation: extend once to r' (paper Section V-A). ---------
        if let Some(r_prime) = ctx.compensation_radius(top.kth_ip()) {
            if r_prime > r_final {
                let t_comp = obs::clock_start();
                let ranged = self.index.range_candidates_into(
                    &scratch.pq,
                    r_final,
                    r_prime,
                    &mut scratch.cands,
                    &mut scratch.proj,
                );
                stages.scan_ns += obs::elapsed_since(t_comp);
                ranged?;
                *scanned += scratch.cands.len() as u64;
                checker.tick()?;
                if let Some(term) = self.verify_groups(
                    &scratch.cands,
                    q,
                    &ctx,
                    mask,
                    &mut top,
                    &mut verified,
                    &mut screened,
                    &mut scratch.fetch,
                    stages,
                    &mut checker,
                )? {
                    return Ok(self.finish(
                        top,
                        verified,
                        screened,
                        Some(r),
                        Some(r_prime),
                        true,
                        term,
                    ));
                }
                r_final = r_prime;
                extended = true;
            }
        }
        Ok(self.finish(
            top,
            verified,
            screened,
            Some(r),
            Some(r_final),
            extended,
            Termination::RangeExhausted,
        ))
    }

    /// Searches a batch of queries in parallel, using all available cores.
    ///
    /// Results are positionally aligned with `queries` and identical — item
    /// for item — to calling [`ProMips::search`] on each query in turn: the
    /// workers share the index read-only (page cache and counters behind
    /// their mutex), and each query's computation is independent and
    /// deterministic.
    ///
    /// Scaling note: the shared buffer pool is lock-striped (page id →
    /// stripe), so workers only contend when they touch the same stripe;
    /// verification arithmetic (the dominant CPU cost for in-memory
    /// indexes) runs entirely outside any lock.
    pub fn search_batch(&self, queries: &[&[f32]], k: usize) -> io::Result<Vec<SearchResult>> {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        self.search_batch_threaded(queries, k, threads)
    }

    /// [`ProMips::search_batch`] with an explicit worker-thread count
    /// (clamped to `1..=queries.len()`). Queries are claimed from a shared
    /// atomic counter, so stragglers do not serialize the batch.
    pub fn search_batch_threaded(
        &self,
        queries: &[&[f32]],
        k: usize,
        threads: usize,
    ) -> io::Result<Vec<SearchResult>> {
        let threads = threads.clamp(1, queries.len().max(1));
        if threads == 1 {
            let mut scratch = SearchScratch::new();
            return queries
                .iter()
                .map(|q| self.search_with_scratch(q, k, &mut scratch))
                .collect();
        }
        let next = AtomicUsize::new(0);
        let slots = std::thread::scope(|s| -> io::Result<Vec<Option<SearchResult>>> {
            let workers: Vec<_> = (0..threads)
                .map(|_| {
                    s.spawn(|| {
                        let mut scratch = SearchScratch::new();
                        let mut local: Vec<(usize, io::Result<SearchResult>)> = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= queries.len() {
                                break;
                            }
                            local.push((i, self.search_with_scratch(queries[i], k, &mut scratch)));
                        }
                        local
                    })
                })
                .collect();
            let mut slots: Vec<Option<SearchResult>> = (0..queries.len()).map(|_| None).collect();
            for w in workers {
                for (i, res) in w.join().expect("search worker panicked") {
                    slots[i] = Some(res?);
                }
            }
            Ok(slots)
        })?;
        Ok(slots
            .into_iter()
            .map(|r| r.expect("atomic work queue covers every query"))
            .collect())
    }

    /// MIP-Search-I (Algorithm 1): incremental NN search testing the
    /// conditions after every returned point. Quadratically more page
    /// accesses than [`ProMips::search`] in practice — kept as the ablation
    /// baseline showing what Quick-Probe buys.
    pub fn search_incremental(&self, q: &[f32], k: usize) -> io::Result<SearchResult> {
        assert_eq!(q.len(), self.d, "query dimensionality mismatch");
        assert!(k >= 1, "k must be at least 1");
        let k = k.min(self.live_len() as usize);

        let pq = self.projection.project(q);
        let ctx = ConditionContext {
            c: self.config.c,
            p: self.config.p,
            m: self.m as u32,
            max_sq_norm: self.effective_max_sq_norm(),
            q_sq_norm: sq_norm2(q),
        };

        let mut top = TopK::new(k);
        let mut verified = 0usize;
        let mut termination = Termination::DatasetExhausted;
        self.verify_delta(q, None, &mut top, &mut verified);

        let mut iter = self.index.nn_iter(&pq);
        for cand in iter.by_ref() {
            if self.is_deleted(cand.id) {
                continue;
            }
            let orig = self.index.fetch_original(&cand)?;
            top.push(cand.id, dot(&orig, q));
            verified += 1;
            if ctx.condition_a(top.kth_ip()) {
                termination = Termination::ConditionA;
                break;
            }
            if ctx.condition_b(cand.proj_dist * cand.proj_dist, top.kth_ip()) {
                termination = Termination::ConditionB;
                break;
            }
        }
        if let Some(e) = iter.take_error() {
            return Err(e);
        }
        Ok(self.finish(top, verified, 0, None, None, false, termination))
    }

    /// Verifies candidates one sub-partition batch at a time (each batch is
    /// one sequential original-blob read), testing the cheap Condition A
    /// between batches as Algorithm 3 prescribes.
    ///
    /// Groups are processed in ascending order of their nearest member's
    /// projected distance, and Condition B is tested at every group
    /// boundary with the *frontier* distance (the nearest unverified
    /// candidate): at that moment every point closer than the frontier has
    /// been verified, which is exactly the premise of Theorem 2. This keeps
    /// MIP-Search-II's batched sequential I/O while recovering the early
    /// termination of the incremental search — unverified groups are never
    /// fetched from disk.
    ///
    /// When the index carries the SQ8 verification tier
    /// ([`promips_idistance::IDistanceConfig::verify_quantize`]) and the
    /// running k-th best is finite, each group runs through a **two-level**
    /// path instead: the group's 1-byte code rows are fetched and every
    /// 4-candidate block is *screened* with the integer `dot4_i8` kernel —
    /// only blocks whose quantized inner product plus the exact error-bound
    /// padding can still reach the running k-th best get their f32 rows
    /// fetched and rescored through the same `dot4` call the plain path
    /// uses. A screened-out candidate is proven strictly below the k-th
    /// best, and a surviving block is rescored with bitwise the same rows,
    /// block shape, and kernel as the plain path — so the returned top-k,
    /// radii, and termination cause are **bit-identical** tier on or off.
    /// While the collector still reports `-∞` (fewer than k finite
    /// verifications, no floor), screening cannot drop anything and the
    /// plain path runs.
    /// Stage attribution: the whole screened call (code fetch + integer
    /// screen + survivor rescore) books to `screen_ns` — that is the
    /// two-level verification tier as a unit — while the plain f32 path
    /// books to `verify_ns`. Timing at group granularity (two clock
    /// reads per group) keeps the instrumentation off the per-block
    /// kernel hot loop, where a clock read per 4-candidate block would
    /// cost more than the i8 kernel itself.
    #[allow(clippy::too_many_arguments)]
    fn verify_groups(
        &self,
        cands: &[RangeCandidate],
        q: &[f32],
        ctx: &ConditionContext,
        mask: Option<&dyn Fn(u64) -> bool>,
        top: &mut TopK,
        verified: &mut usize,
        screened: &mut usize,
        buf: &mut FetchBuffers,
        stages: &mut StageNanos,
        checker: &mut BudgetChecker<'_>,
    ) -> io::Result<Option<Termination>> {
        // Candidates arrive grouped by sub-partition (directory order);
        // compute each group's (min proj_dist, range) key in one pass.
        buf.groups.clear();
        let mut start = 0;
        while start < cands.len() {
            let subpart = cands[start].subpart;
            let mut min_pd = cands[start].proj_dist;
            let mut end = start + 1;
            while end < cands.len() && cands[end].subpart == subpart {
                min_pd = min_pd.min(cands[end].proj_dist);
                end += 1;
            }
            buf.groups.push((min_pd, start, end));
            start = end;
        }
        buf.groups.sort_by(|a, b| a.0.total_cmp(&b.0));

        // The query-side quantization is subpart-independent; build it once
        // per verify pass if any group could be screened.
        let tier = self.index.verify_quantized() && !cands.is_empty();
        let qs = tier.then(|| QueryScreen::build(q, ctx.q_sq_norm, &mut buf.qcodes));

        // Lap-style stage timing: a query visits hundreds of tiny groups,
        // so reading the clock around every group would dominate the very
        // overhead the stage timers exist to expose. The branch (screened
        // vs plain) flips at most once per pass — plain until the k-th
        // best becomes finite, screened after — so one lap per *branch
        // run* gives exact attribution with O(1) clock reads per call.
        let mut t_lap = obs::clock_start();
        let mut lap_screened = false;
        let flush = |screened_lap: bool, t_lap: &mut u64, stages: &mut StageNanos| {
            if *t_lap != 0 {
                let now = obs::now_ns();
                let slot = if screened_lap {
                    &mut stages.screen_ns
                } else {
                    &mut stages.verify_ns
                };
                *slot += now.saturating_sub(*t_lap);
                *t_lap = now;
            }
        };
        let mut outcome = Ok(None);
        for gi in 0..buf.groups.len() {
            // One cooperative budget check per verified group: a group is
            // one bounded blob read + one bounded kernel pass, so deadline
            // overshoot is bounded by the checker's stride worth of
            // groups. Break (not return) so the timing lap still flushes.
            if let Err(exceeded) = checker.tick() {
                outcome = Err(exceeded.into());
                break;
            }
            let (_, s, e) = buf.groups[gi];
            let group = &cands[s..e];
            buf.offsets.clear();
            buf.offsets.extend(group.iter().map(|c| c.offset));
            // Screening can only drop candidates proven below a finite
            // k-th best; with `-∞` it is a no-op, so skip the code
            // fetch entirely and take the plain path.
            let screen_now = qs.is_some() && top.kth_ip() > f64::NEG_INFINITY;
            if screen_now != lap_screened {
                flush(lap_screened, &mut t_lap, stages);
                lap_screened = screen_now;
            }
            let res = if screen_now {
                self.verify_group_screened(
                    group,
                    q,
                    qs.as_ref().unwrap(),
                    mask,
                    top,
                    verified,
                    screened,
                    buf,
                )
            } else {
                let res =
                    self.index
                        .fetch_originals(group[0].subpart, &buf.offsets, &mut buf.arena);
                if res.is_ok() {
                    self.rescore_group(group, q, mask, top, verified, &buf.arena);
                }
                res
            };
            if let Err(e) = res {
                outcome = Err(e);
                break;
            }
            if ctx.condition_a(top.kth_ip()) {
                outcome = Ok(Some(Termination::ConditionA));
                break;
            }
            if let Some(&(frontier, _, _)) = buf.groups.get(gi + 1) {
                if ctx.condition_b(frontier * frontier, top.kth_ip()) {
                    outcome = Ok(Some(Termination::ConditionB));
                    break;
                }
            }
        }
        flush(lap_screened, &mut t_lap, stages);
        outcome
    }

    /// Exact-f32 verification of `cands`, whose rows sit contiguously in
    /// `arena` (row `i` is candidate `i`). Four candidates go through each
    /// `dot4` call — the arena rows are contiguous, and the blocked kernel
    /// converts/loads the query once per block instead of once per
    /// candidate; a short tail uses single-row `dot`. The plain path passes
    /// a whole group; the screened path passes one surviving 4-block at a
    /// time, so both produce bitwise-identical kernel calls for any
    /// candidate they share.
    fn rescore_group(
        &self,
        cands: &[RangeCandidate],
        q: &[f32],
        mask: Option<&dyn Fn(u64) -> bool>,
        top: &mut TopK,
        verified: &mut usize,
        arena: &[f32],
    ) {
        let d = self.d;
        let mut slot = 0;
        while slot + 4 <= cands.len() {
            let rows = &arena[slot * d..(slot + 4) * d];
            let ips = dot4(
                &rows[..d],
                &rows[d..2 * d],
                &rows[2 * d..3 * d],
                &rows[3 * d..],
                q,
            );
            for (j, &ip) in ips.iter().enumerate() {
                let cand = &cands[slot + j];
                if !self.is_dead(cand.id, mask) {
                    top.push(cand.id, ip);
                    *verified += 1;
                }
            }
            slot += 4;
        }
        for (cand, row) in cands[slot..].iter().zip(arena[slot * d..].chunks_exact(d)) {
            if !self.is_dead(cand.id, mask) {
                top.push(cand.id, dot(row, q));
                *verified += 1;
            }
        }
    }

    /// The two-level screen+rescore for one sub-partition group (caller has
    /// filled `buf.offsets` and guaranteed `top.kth_ip()` is finite).
    ///
    /// Level 1 fetches the group's SQ8 code rows (1 byte per coordinate —
    /// 4× fewer pages than the f32 rows) and estimates each candidate's
    /// inner product with exact integer arithmetic:
    /// `⟨x̂, q̂⟩ = sq·(min·Σb + scale·dot_i8(codes, b))`. A 4-candidate
    /// block whose every member satisfies `⟨x̂, q̂⟩ + pad < kth` is dropped
    /// whole; `pad` is the Cauchy–Schwarz bound
    /// `err·‖q‖ + xnorm·‖q − q̂‖` inflated by a relative `1e-9` (covers the
    /// f64 rounding of the bound itself) plus an absolute `1e-12·xnorm·‖q‖`
    /// (dominates the f64 rounding of the estimate and of the exact
    /// kernels, which is O(d·ε·‖x‖·‖q‖)), so no candidate whose exact
    /// kernel inner product could reach the k-th best is ever dropped.
    ///
    /// Level 2 fetches only the surviving blocks' f32 rows and rescores
    /// them through [`ProMips::rescore_group`] — the same 4 rows per block,
    /// in the same order, through the same kernel as the plain path.
    /// Screening against the *current* `kth` (which only rises as blocks
    /// are pushed) keeps later blocks' thresholds fresh.
    #[allow(clippy::too_many_arguments)]
    fn verify_group_screened(
        &self,
        group: &[RangeCandidate],
        q: &[f32],
        qs: &QueryScreen,
        mask: Option<&dyn Fn(u64) -> bool>,
        top: &mut TopK,
        verified: &mut usize,
        screened: &mut usize,
        buf: &mut FetchBuffers,
    ) -> io::Result<()> {
        let FetchBuffers {
            offsets,
            arena,
            codes,
            qcodes,
            ..
        } = buf;
        let sub = group[0].subpart;
        self.index.fetch_codes(sub, offsets, codes)?;
        let vq = &self.index.vquants()[sub as usize];
        let min = vq.min as f64;
        let scale = vq.scale as f64;
        let base = qs.sq * min * qs.sum_b as f64;
        let step = qs.sq * scale;
        let pad = (vq.err as f64 * qs.q_norm + vq.xnorm as f64 * qs.q_err) * (1.0 + 1e-9)
            + 1e-12 * (vq.xnorm as f64 * qs.q_norm);

        let d = self.d;
        let mut slot = 0;
        while slot + 4 <= group.len() {
            let crows = &codes[slot * d..(slot + 4) * d];
            let idots = dot4_i8(
                &crows[..d],
                &crows[d..2 * d],
                &crows[2 * d..3 * d],
                &crows[3 * d..],
                qcodes,
            );
            let kth = top.kth_ip();
            if idots
                .iter()
                .any(|&idot| base + step * idot as f64 + pad >= kth)
            {
                self.index
                    .fetch_originals(sub, &offsets[slot..slot + 4], arena)?;
                self.rescore_group(&group[slot..slot + 4], q, mask, top, verified, arena);
            } else {
                *screened += 4;
            }
            slot += 4;
        }
        for (j, cand) in group[slot..].iter().enumerate() {
            let crow = &codes[(slot + j) * d..(slot + j + 1) * d];
            let idot = dot_i8(crow, qcodes);
            if base + step * idot as f64 + pad >= top.kth_ip() {
                self.index
                    .fetch_originals(sub, &offsets[slot + j..slot + j + 1], arena)?;
                if !self.is_dead(cand.id, mask) {
                    top.push(cand.id, dot(&arena[..d], q));
                    *verified += 1;
                }
            } else {
                *screened += 1;
            }
        }
        Ok(())
    }

    /// Resolves the Quick-Probe point's projected distance. The located id
    /// can refer to a delta insert, whose projection is in memory; an id
    /// outside the locator (possible only if Quick-Probe state and the index
    /// ever disagree, e.g. after a partial reload) is reported as data
    /// corruption instead of a panic.
    ///
    /// The returned radius is inflated by a few ulps: the annulus scan
    /// measures distances with the blocked `sq_dist4` kernel, whose rounding
    /// can differ from the single-row `dist` used here in the last ulp, and
    /// the located point itself must always fall inside its own range
    /// (`pd <= r`). The inflation only ever *enlarges* the searched range,
    /// so the probability guarantee is untouched.
    fn located_radius(
        &self,
        located: &crate::quickprobe::Located,
        pq: &[f32],
        proj: &mut ProjScratch,
    ) -> io::Result<f64> {
        fn ulp_pad(r: f64) -> f64 {
            r * (1.0 + 4.0 * f64::EPSILON)
        }
        if let Some(entry) = self.delta.entries.iter().find(|e| e.id == located.id) {
            return Ok(ulp_pad(dist(&entry.proj, pq)));
        }
        let Some(&(sub, off)) = self.locator.get(located.id as usize) else {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "quick-probe located id {} outside the index (n = {})",
                    located.id,
                    self.locator.len()
                ),
            ));
        };
        if sub == u32::MAX {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "quick-probe located id {} has no index location",
                    located.id
                ),
            ));
        }
        self.index.fetch_proj_record_into(sub, off, proj)?;
        Ok(ulp_pad(dist(proj.row(0), pq)))
    }

    /// Whether `id` is dead for this query: internally tombstoned or
    /// killed by the caller's external mask.
    fn is_dead(&self, id: u64, mask: Option<&dyn Fn(u64) -> bool>) -> bool {
        self.is_deleted(id) || mask.is_some_and(|m| m(id))
    }

    /// Verifies every live delta entry (in memory, no page cost).
    fn verify_delta(
        &self,
        q: &[f32],
        mask: Option<&dyn Fn(u64) -> bool>,
        top: &mut TopK,
        verified: &mut usize,
    ) {
        for entry in &self.delta.entries {
            if !self.is_dead(entry.id, mask) {
                top.push(entry.id, dot(&entry.orig, q));
                *verified += 1;
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn finish(
        &self,
        top: TopK,
        verified: usize,
        screened: usize,
        probe_radius: Option<f64>,
        final_radius: Option<f64>,
        compensated: bool,
        termination: Termination,
    ) -> SearchResult {
        SearchResult {
            items: top.into_sorted(),
            verified,
            screened,
            probe_radius,
            final_radius,
            compensated,
            termination,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ProMipsConfig;
    use promips_linalg::Matrix;
    use promips_stats::Xoshiro256pp;

    fn random_data(n: usize, d: usize, seed: u64) -> Matrix {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        Matrix::from_rows(
            d,
            (0..n).map(|_| (0..d).map(|_| rng.normal() as f32).collect()),
        )
    }

    /// Exact top-k MIP by brute force.
    fn exact_topk(data: &Matrix, q: &[f32], k: usize) -> Vec<(u64, f64)> {
        let mut ips: Vec<(u64, f64)> = (0..data.rows())
            .map(|i| (i as u64, dot(data.row(i), q)))
            .collect();
        ips.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        ips.truncate(k);
        ips
    }

    fn build(n: usize, d: usize, seed: u64, c: f64, p: f64) -> (ProMips, Matrix) {
        let data = random_data(n, d, seed);
        let cfg = ProMipsConfig::builder()
            .c(c)
            .p(p)
            .seed(seed ^ 0xABCD)
            .build();
        let idx = ProMips::build_in_memory(&data, cfg).unwrap();
        (idx, data)
    }

    #[test]
    fn topk_collector_behaviour() {
        let mut t = TopK::new(3);
        assert_eq!(t.kth_ip(), f64::NEG_INFINITY);
        t.push(1, 5.0);
        t.push(2, 7.0);
        assert_eq!(t.kth_ip(), f64::NEG_INFINITY); // only 2 of 3
        t.push(3, 3.0);
        assert_eq!(t.kth_ip(), 3.0);
        t.push(4, 6.0); // evicts 3.0
        assert_eq!(t.kth_ip(), 5.0);
        let items = t.into_sorted();
        assert_eq!(
            items.iter().map(|i| i.id).collect::<Vec<_>>(),
            vec![2, 4, 1]
        );
    }

    #[test]
    fn search_returns_k_sorted_items() {
        let (idx, _) = build(800, 24, 11, 0.9, 0.5);
        let mut rng = Xoshiro256pp::seed_from_u64(99);
        let q: Vec<f32> = (0..24).map(|_| rng.normal() as f32).collect();
        let res = idx.search(&q, 10).unwrap();
        assert_eq!(res.items.len(), 10);
        assert!(res.items.windows(2).all(|w| w[0].ip >= w[1].ip));
        assert!(res.verified >= 10);
        assert!(res.probe_radius.is_some());
    }

    #[test]
    fn quantized_tier_keeps_topk_bit_identical() {
        // The SQ8 filter tier pads its radii by the quantization error
        // bound and re-tests survivors through the same f32 kernels, so a
        // search against a quantized index must return *exactly* what the
        // pure-f32 index returns: same items, same inner-product bits,
        // same verified count, same termination — across k and queries.
        let data = random_data(900, 24, 67);
        let mk = |quantize: bool| {
            let id_cfg = promips_idistance::IDistanceConfig {
                quantize,
                ..Default::default()
            };
            let cfg = ProMipsConfig::builder()
                .c(0.9)
                .p(0.5)
                .seed(67 ^ 0xABCD)
                .idistance(id_cfg)
                .build();
            ProMips::build_in_memory(&data, cfg).unwrap()
        };
        let quant = mk(true);
        let plain = mk(false);
        assert!(quant.idistance().quantized());
        assert!(!plain.idistance().quantized());
        let mut rng = Xoshiro256pp::seed_from_u64(71);
        let mut scratch = SearchScratch::new();
        for round in 0..12 {
            let k = 1 + round % 10;
            let q: Vec<f32> = (0..24).map(|_| rng.normal() as f32).collect();
            let a = quant.search_with_scratch(&q, k, &mut scratch).unwrap();
            let b = plain.search(&q, k).unwrap();
            assert_eq!(a.items, b.items, "k={k}");
            assert_eq!(a.verified, b.verified, "k={k}");
            assert_eq!(a.termination, b.termination, "k={k}");
            assert_eq!(a.probe_radius, b.probe_radius, "k={k}");
            assert_eq!(a.final_radius, b.final_radius, "k={k}");
        }
    }

    #[test]
    fn masked_search_excludes_exactly_the_masked_ids() {
        let (idx, data) = build(600, 20, 13, 0.9, 0.5);
        let mut rng = Xoshiro256pp::seed_from_u64(57);
        let mut scratch = SearchScratch::new();
        // Kill a fixed slice of ids through the external mask only — the
        // index itself holds no tombstones.
        let dead = |id: u64| (50..80).contains(&id);
        let dead_count = 30usize;
        for _ in 0..6 {
            let q: Vec<f32> = (0..20).map(|_| rng.normal() as f32).collect();
            // Full-k forces exhaustive verification, so the result is the
            // exact top-k over the unmasked points.
            let k = 600 - dead_count;
            let res = idx
                .search_masked(&q, k, f64::NEG_INFINITY, &dead, dead_count, &mut scratch)
                .unwrap();
            assert_eq!(res.items.len(), k);
            assert!(res.items.iter().all(|i| !dead(i.id)), "masked id returned");
            let expect: Vec<(u64, f64)> = exact_topk(&data, &q, 600)
                .into_iter()
                .filter(|&(id, _)| !dead(id))
                .collect();
            for (item, (eid, eip)) in res.items.iter().zip(&expect) {
                assert_eq!(item.id, *eid);
                assert!((item.ip - eip).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn masked_search_with_empty_mask_is_bit_identical() {
        let (idx, _) = build(500, 16, 29, 0.9, 0.5);
        let mut rng = Xoshiro256pp::seed_from_u64(31);
        let mut scratch = SearchScratch::new();
        for _ in 0..6 {
            let q: Vec<f32> = (0..16).map(|_| rng.normal() as f32).collect();
            let plain = idx.search(&q, 5).unwrap();
            let masked = idx
                .search_masked(&q, 5, f64::NEG_INFINITY, &|_| false, 0, &mut scratch)
                .unwrap();
            assert_eq!(plain.items, masked.items);
            assert_eq!(plain.verified, masked.verified);
            assert_eq!(plain.termination, masked.termination);
        }
    }

    #[test]
    fn fully_masked_index_returns_empty() {
        let (idx, _) = build(200, 16, 43, 0.9, 0.5);
        let q = vec![1.0f32; 16];
        let res = idx
            .search_masked(
                &q,
                5,
                f64::NEG_INFINITY,
                &|_| true,
                200,
                &mut SearchScratch::new(),
            )
            .unwrap();
        assert!(res.items.is_empty());
        assert_eq!(res.verified, 0);
    }

    #[test]
    fn scratch_reuse_is_transparent() {
        // One scratch serving many queries must give the same results as a
        // fresh scratch per query.
        let (idx, _) = build(700, 20, 23, 0.9, 0.5);
        let mut rng = Xoshiro256pp::seed_from_u64(41);
        let mut shared = SearchScratch::new();
        for _ in 0..10 {
            let q: Vec<f32> = (0..20).map(|_| rng.normal() as f32).collect();
            let reused = idx.search_with_scratch(&q, 7, &mut shared).unwrap();
            let fresh = idx.search(&q, 7).unwrap();
            assert_eq!(reused.items, fresh.items);
            assert_eq!(reused.verified, fresh.verified);
            assert_eq!(reused.termination, fresh.termination);
        }
    }

    #[test]
    fn floor_of_negative_infinity_is_bit_identical() {
        let (idx, _) = build(700, 20, 37, 0.9, 0.5);
        let mut rng = Xoshiro256pp::seed_from_u64(91);
        let mut scratch = SearchScratch::new();
        for _ in 0..8 {
            let q: Vec<f32> = (0..20).map(|_| rng.normal() as f32).collect();
            let plain = idx.search(&q, 6).unwrap();
            let floored = idx
                .search_with_floor(&q, 6, f64::NEG_INFINITY, &mut scratch)
                .unwrap();
            assert_eq!(plain.items, floored.items);
            assert_eq!(plain.verified, floored.verified);
            assert_eq!(plain.termination, floored.termination);
        }
    }

    #[test]
    fn floor_drops_weak_items_and_never_verifies_more() {
        let (idx, _) = build(900, 16, 47, 0.9, 0.5);
        let mut rng = Xoshiro256pp::seed_from_u64(93);
        let mut scratch = SearchScratch::new();
        for _ in 0..8 {
            let q: Vec<f32> = (0..16).map(|_| rng.normal() as f32).collect();
            let plain = idx.search(&q, 5).unwrap();
            // Floor at the plain search's 3rd-best: at most 3 items can
            // reach it, and all of them must sit at or above the floor.
            let floor = plain.items[2].ip;
            let floored = idx.search_with_floor(&q, 5, floor, &mut scratch).unwrap();
            assert!(floored.items.len() <= plain.items.len());
            assert!(floored.items.iter().all(|it| it.ip >= floor));
            assert!(
                floored.verified <= plain.verified,
                "floor must not verify more: {} > {}",
                floored.verified,
                plain.verified
            );
            // The floored search's survivors are a prefix-quality subset:
            // its best item is at least as good as the floor.
            assert!(floored.best_ip().unwrap_or(f64::NEG_INFINITY) >= floor);
        }
    }

    #[test]
    fn floor_above_everything_returns_empty_without_crawling() {
        let (idx, _) = build(400, 12, 53, 0.9, 0.5);
        let q = vec![0.2f32; 12];
        let mut scratch = SearchScratch::new();
        let res = idx.search_with_floor(&q, 5, 1e12, &mut scratch).unwrap();
        assert!(res.items.is_empty());
        // The floor stands in for the k-th best, so Condition A fires at
        // the first group boundary instead of the search crawling the
        // whole dataset chasing items that can never beat the floor.
        assert_eq!(res.termination, Termination::ConditionA);
        assert!(
            res.verified < 400,
            "floored search verified {} candidates",
            res.verified
        );
    }

    #[test]
    fn budgeted_search_honours_deadline_cancellation_and_identity() {
        use promips_obs::{budget_error, BudgetExceeded, CancelToken, QueryBudget};
        let (idx, _) = build(600, 16, 59, 0.9, 0.5);
        let q = vec![0.3f32; 16];
        let mut scratch = SearchScratch::new();

        // Already-expired deadline: the first cooperative check fires and
        // the typed cause survives the io::Error plumbing.
        let expired = QueryBudget::with_deadline_at(0);
        let err = idx
            .search_masked_budgeted(
                &q,
                5,
                f64::NEG_INFINITY,
                &|_| false,
                0,
                &mut scratch,
                None,
                Some(&expired),
            )
            .unwrap_err();
        assert_eq!(budget_error(&err), Some(BudgetExceeded::Deadline));

        // A pre-cancelled token stops the search the same way.
        let tok = CancelToken::new();
        tok.cancel();
        let cancelled = QueryBudget::unlimited().cancellable(tok);
        let err = idx
            .search_masked_budgeted(
                &q,
                5,
                f64::NEG_INFINITY,
                &|_| false,
                0,
                &mut scratch,
                None,
                Some(&cancelled),
            )
            .unwrap_err();
        assert_eq!(budget_error(&err), Some(BudgetExceeded::Cancelled));

        // An unlimited budget (and an un-fired generous one) is
        // bit-identical to the plain search.
        let plain = idx.search(&q, 5).unwrap();
        for b in [
            QueryBudget::unlimited(),
            QueryBudget::with_deadline(std::time::Duration::from_secs(3600)),
        ] {
            let budgeted = idx
                .search_masked_budgeted(
                    &q,
                    5,
                    f64::NEG_INFINITY,
                    &|_| false,
                    0,
                    &mut scratch,
                    None,
                    Some(&b),
                )
                .unwrap();
            assert_eq!(plain.items, budgeted.items);
            assert_eq!(plain.verified, budgeted.verified);
            assert_eq!(plain.termination, budgeted.termination);
        }
    }

    #[test]
    fn search_batch_matches_sequential_search() {
        let (idx, _) = build(900, 28, 31, 0.9, 0.5);
        let mut rng = Xoshiro256pp::seed_from_u64(77);
        let queries: Vec<Vec<f32>> = (0..24)
            .map(|_| (0..28).map(|_| rng.normal() as f32).collect())
            .collect();
        let query_refs: Vec<&[f32]> = queries.iter().map(|q| q.as_slice()).collect();
        for &threads in &[1usize, 2, 8] {
            let batch = idx.search_batch_threaded(&query_refs, 5, threads).unwrap();
            assert_eq!(batch.len(), queries.len());
            for (q, b) in queries.iter().zip(&batch) {
                let single = idx.search(q, 5).unwrap();
                assert_eq!(single.items, b.items, "threads={threads}");
                assert_eq!(single.verified, b.verified, "threads={threads}");
            }
        }
    }

    #[test]
    fn search_batch_empty_and_single() {
        let (idx, _) = build(100, 8, 5, 0.9, 0.5);
        assert!(idx.search_batch(&[], 3).unwrap().is_empty());
        let q = vec![0.5f32; 8];
        let one = idx.search_batch(&[&q], 3).unwrap();
        assert_eq!(one.len(), 1);
        assert_eq!(one[0].items, idx.search(&q, 3).unwrap().items);
    }

    #[test]
    fn search_satisfies_c_bound_overwhelmingly() {
        // With p = 0.5, at least half the queries must return a c-AMIP
        // point; empirically the rate is far higher. We check the overall
        // ratio across queries stays above c (the paper's Fig. 5 behaviour).
        let (idx, data) = build(1000, 32, 7, 0.9, 0.5);
        let mut rng = Xoshiro256pp::seed_from_u64(5);
        let mut ratios = Vec::new();
        for _ in 0..30 {
            let q: Vec<f32> = (0..32).map(|_| rng.normal() as f32).collect();
            let res = idx.search(&q, 1).unwrap();
            let exact = exact_topk(&data, &q, 1)[0].1;
            if exact > 0.0 {
                ratios.push(res.items[0].ip / exact);
            }
        }
        let mean: f64 = ratios.iter().sum::<f64>() / ratios.len() as f64;
        assert!(mean >= 0.9, "mean overall ratio {mean} below c");
        let ok = ratios.iter().filter(|&&r| r >= 0.9).count();
        assert!(
            ok as f64 / ratios.len() as f64 >= 0.5,
            "guarantee rate {ok}/{} below p",
            ratios.len()
        );
    }

    #[test]
    fn incremental_matches_guarantee_too() {
        let (idx, data) = build(600, 16, 3, 0.8, 0.5);
        let mut rng = Xoshiro256pp::seed_from_u64(21);
        let mut hold = 0;
        let total = 20;
        for _ in 0..total {
            let q: Vec<f32> = (0..16).map(|_| rng.normal() as f32).collect();
            let res = idx.search_incremental(&q, 1).unwrap();
            let exact = exact_topk(&data, &q, 1)[0].1;
            if res.items[0].ip >= 0.8 * exact {
                hold += 1;
            }
        }
        assert!(hold as f64 / total as f64 >= 0.5, "{hold}/{total}");
    }

    #[test]
    fn k_clamped_to_dataset_size() {
        let (idx, _) = build(20, 8, 13, 0.9, 0.5);
        let q = vec![0.5f32; 8];
        let res = idx.search(&q, 50).unwrap();
        assert_eq!(res.items.len(), 20);
        // All distinct ids.
        let mut ids = res.ids();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 20);
    }

    #[test]
    fn no_duplicate_ids_in_results() {
        let (idx, _) = build(500, 12, 17, 0.7, 0.9);
        let mut rng = Xoshiro256pp::seed_from_u64(8);
        for _ in 0..10 {
            let q: Vec<f32> = (0..12).map(|_| rng.normal() as f32).collect();
            let res = idx.search(&q, 15).unwrap();
            let mut ids = res.ids();
            ids.sort_unstable();
            let before = ids.len();
            ids.dedup();
            assert_eq!(ids.len(), before, "duplicate ids returned");
        }
    }

    #[test]
    fn quickprobe_search_uses_fewer_pages_than_incremental() {
        // Partition parameters scaled to the dataset so sub-partitions hold
        // ~20 points (the paper's µ-selectivity intent); with degenerate
        // 2-point sub-partitions the batched-read advantage disappears.
        let data = random_data(1500, 24, 29);
        let id_cfg = promips_idistance::IDistanceConfig {
            kp: 3,
            nkey: 8,
            ksp: 3,
            ..Default::default()
        };
        let cfg = ProMipsConfig::builder()
            .c(0.9)
            .p(0.5)
            .seed(29 ^ 0xABCD)
            .idistance(id_cfg)
            .build();
        let idx = ProMips::build_in_memory(&data, cfg).unwrap();
        let mut rng = Xoshiro256pp::seed_from_u64(55);
        let mut probe_total = 0u64;
        let mut incr_total = 0u64;
        for _ in 0..5 {
            let q: Vec<f32> = (0..24).map(|_| rng.normal() as f32).collect();
            idx.clear_cache();
            idx.reset_stats();
            let _ = idx.search(&q, 10).unwrap();
            probe_total += idx.access_stats().logical_reads;

            idx.clear_cache();
            idx.reset_stats();
            let _ = idx.search_incremental(&q, 10).unwrap();
            incr_total += idx.access_stats().logical_reads;
        }
        // Quick-Probe's whole purpose (paper Section V): avoid the
        // one-by-one NN fetches. It must not cost more pages.
        assert!(
            probe_total <= incr_total,
            "quick-probe {probe_total} > incremental {incr_total}"
        );
    }

    #[test]
    fn higher_p_verifies_no_fewer_candidates() {
        let data = random_data(900, 20, 41);
        let mk = |p: f64| {
            let cfg = ProMipsConfig::builder().c(0.9).p(p).seed(4).build();
            ProMips::build_in_memory(&data, cfg).unwrap()
        };
        let low = mk(0.3);
        let high = mk(0.9);
        let mut rng = Xoshiro256pp::seed_from_u64(6);
        let mut low_sum = 0usize;
        let mut high_sum = 0usize;
        for _ in 0..10 {
            let q: Vec<f32> = (0..20).map(|_| rng.normal() as f32).collect();
            low_sum += low.search(&q, 10).unwrap().verified;
            high_sum += high.search(&q, 10).unwrap().verified;
        }
        assert!(high_sum >= low_sum, "p=0.9 {high_sum} < p=0.3 {low_sum}");
    }
}
