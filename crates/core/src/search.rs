//! The searching processes: MIP-Search-II with Quick-Probe (Algorithm 3,
//! the production path) and MIP-Search-I (Algorithm 1, the incremental
//! baseline kept for the paper's design rationale and our ablation).

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::io;

use promips_idistance::RangeCandidate;
use promips_linalg::{dist, dot, norm1, sq_norm2};

use crate::conditions::ConditionContext;
use crate::index::ProMips;
use crate::result::{SearchItem, SearchResult, Termination};

/// Bounded top-k collector over (inner product, id), deterministic under
/// ties (larger ip wins; equal ips keep the smaller id).
struct TopK {
    k: usize,
    /// Min-heap of (ip, Reverse(id)) so the weakest kept item is on top.
    heap: BinaryHeap<Reverse<(OrdF64, Reverse<u64>)>>,
}

/// Total-ordered f64 wrapper.
#[derive(PartialEq, PartialOrd)]
struct OrdF64(f64);
impl Eq for OrdF64 {}
#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for OrdF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl TopK {
    fn new(k: usize) -> Self {
        Self { k, heap: BinaryHeap::with_capacity(k + 1) }
    }

    fn push(&mut self, id: u64, ip: f64) {
        self.heap.push(Reverse((OrdF64(ip), Reverse(id))));
        if self.heap.len() > self.k {
            self.heap.pop();
        }
    }

    fn len(&self) -> usize {
        self.heap.len()
    }

    /// The k-th best inner product so far (paper's `⟨ok_max, q⟩`), or −∞
    /// while fewer than k candidates have been verified.
    fn kth_ip(&self) -> f64 {
        if self.heap.len() < self.k {
            f64::NEG_INFINITY
        } else {
            self.heap.peek().map(|Reverse((OrdF64(ip), _))| *ip).unwrap()
        }
    }

    fn into_sorted(self) -> Vec<SearchItem> {
        let mut items: Vec<SearchItem> = self
            .heap
            .into_iter()
            .map(|Reverse((OrdF64(ip), Reverse(id)))| SearchItem { id, ip })
            .collect();
        items.sort_by(|a, b| b.ip.total_cmp(&a.ip).then(a.id.cmp(&b.id)));
        items
    }
}

impl ProMips {
    /// c-k-AMIP search (Algorithm 3 + Quick-Probe).
    ///
    /// Returns the top-`k` candidates by exact inner product among the
    /// verified points; with probability at least `p`, each returned item
    /// satisfies `⟨oᵢ,q⟩ ≥ c·⟨o*ᵢ,q⟩`.
    pub fn search(&self, q: &[f32], k: usize) -> io::Result<SearchResult> {
        assert_eq!(q.len(), self.d, "query dimensionality mismatch");
        assert!(k >= 1, "k must be at least 1");
        let k = k.min(self.live_len() as usize);

        let pq = self.projection.project(q);
        let ctx = ConditionContext {
            c: self.config.c,
            p: self.config.p,
            m: self.m as u32,
            max_sq_norm: self.effective_max_sq_norm(),
            q_sq_norm: sq_norm2(q),
        };

        // --- Quick-Probe: locate the range-defining point (Algorithm 2). --
        let located = self.quickprobe.locate(&pq, norm1(q), self.config.c, self.config.p);
        let r = self.located_radius(&located, &pq)?;

        let mut top = TopK::new(k);
        let mut verified = 0usize;

        // Fresh inserts live in the in-memory delta segment; verify them
        // all up-front so the searching conditions' premise (everything
        // nearer than a tested frontier is verified) covers them.
        self.verify_delta(q, &mut top, &mut verified);

        // --- Range search within r; verify per sub-partition batch. -------
        let cands = self.index.range_candidates(&pq, -1.0, r)?;
        if let Some(term) = self.verify_groups(&cands, q, &ctx, &mut top, &mut verified)? {
            return Ok(self.finish(top, verified, Some(r), Some(r), false, term));
        }

        // --- Rare shortfall: fewer than k candidates inside r. ------------
        // Pull further neighbours in distance order until k are verified so
        // the conditions (which need the k-th best) become meaningful.
        let mut r_final = r;
        let mut extended = false;
        if top.len() < k {
            let mut iter = self.index.nn_iter(&pq);
            for cand in iter.by_ref() {
                if cand.proj_dist <= r || self.is_deleted(cand.id) {
                    continue; // already verified by the range pass / deleted
                }
                let orig = self.index.fetch_original(&cand)?;
                top.push(cand.id, dot(&orig, q));
                verified += 1;
                r_final = cand.proj_dist;
                extended = true;
                if top.len() >= k {
                    break;
                }
            }
            if let Some(e) = iter.take_error() {
                return Err(e);
            }
        }

        // --- Termination tests at the searched radius. ---------------------
        if ctx.condition_a(top.kth_ip()) {
            return Ok(self.finish(top, verified, Some(r), Some(r_final), extended, Termination::ConditionA));
        }
        if ctx.condition_b(r_final * r_final, top.kth_ip()) {
            return Ok(self.finish(top, verified, Some(r), Some(r_final), extended, Termination::ConditionB));
        }

        // --- Compensation: extend once to r' (paper Section V-A). ---------
        if let Some(r_prime) = ctx.compensation_radius(top.kth_ip()) {
            if r_prime > r_final {
                let annulus = self.index.range_candidates(&pq, r_final, r_prime)?;
                if let Some(term) =
                    self.verify_groups(&annulus, q, &ctx, &mut top, &mut verified)?
                {
                    return Ok(self.finish(top, verified, Some(r), Some(r_prime), true, term));
                }
                r_final = r_prime;
                extended = true;
            }
        }
        Ok(self.finish(top, verified, Some(r), Some(r_final), extended, Termination::RangeExhausted))
    }

    /// MIP-Search-I (Algorithm 1): incremental NN search testing the
    /// conditions after every returned point. Quadratically more page
    /// accesses than [`ProMips::search`] in practice — kept as the ablation
    /// baseline showing what Quick-Probe buys.
    pub fn search_incremental(&self, q: &[f32], k: usize) -> io::Result<SearchResult> {
        assert_eq!(q.len(), self.d, "query dimensionality mismatch");
        assert!(k >= 1, "k must be at least 1");
        let k = k.min(self.live_len() as usize);

        let pq = self.projection.project(q);
        let ctx = ConditionContext {
            c: self.config.c,
            p: self.config.p,
            m: self.m as u32,
            max_sq_norm: self.effective_max_sq_norm(),
            q_sq_norm: sq_norm2(q),
        };

        let mut top = TopK::new(k);
        let mut verified = 0usize;
        let mut termination = Termination::DatasetExhausted;
        self.verify_delta(q, &mut top, &mut verified);

        let mut iter = self.index.nn_iter(&pq);
        for cand in iter.by_ref() {
            if self.is_deleted(cand.id) {
                continue;
            }
            let orig = self.index.fetch_original(&cand)?;
            top.push(cand.id, dot(&orig, q));
            verified += 1;
            if ctx.condition_a(top.kth_ip()) {
                termination = Termination::ConditionA;
                break;
            }
            if ctx.condition_b(cand.proj_dist * cand.proj_dist, top.kth_ip()) {
                termination = Termination::ConditionB;
                break;
            }
        }
        if let Some(e) = iter.take_error() {
            return Err(e);
        }
        Ok(self.finish(top, verified, None, None, false, termination))
    }

    /// Verifies candidates one sub-partition batch at a time (each batch is
    /// one sequential original-blob read), testing the cheap Condition A
    /// between batches as Algorithm 3 prescribes.
    ///
    /// Groups are processed in ascending order of their nearest member's
    /// projected distance, and Condition B is tested at every group
    /// boundary with the *frontier* distance (the nearest unverified
    /// candidate): at that moment every point closer than the frontier has
    /// been verified, which is exactly the premise of Theorem 2. This keeps
    /// MIP-Search-II's batched sequential I/O while recovering the early
    /// termination of the incremental search — unverified groups are never
    /// fetched from disk.
    fn verify_groups(
        &self,
        cands: &[RangeCandidate],
        q: &[f32],
        ctx: &ConditionContext,
        top: &mut TopK,
        verified: &mut usize,
    ) -> io::Result<Option<Termination>> {
        let mut groups: Vec<&[RangeCandidate]> =
            cands.chunk_by(|a, b| a.subpart == b.subpart).collect();
        let min_pd = |g: &[RangeCandidate]| {
            g.iter().map(|c| c.proj_dist).fold(f64::INFINITY, f64::min)
        };
        groups.sort_by(|a, b| min_pd(a).total_cmp(&min_pd(b)));

        for (gi, group) in groups.iter().enumerate() {
            let offsets: Vec<u32> = group.iter().map(|c| c.offset).collect();
            let origs = self.index.fetch_originals(group[0].subpart, &offsets)?;
            for (cand, orig) in group.iter().zip(&origs) {
                if self.is_deleted(cand.id) {
                    continue;
                }
                top.push(cand.id, dot(orig, q));
                *verified += 1;
            }
            if ctx.condition_a(top.kth_ip()) {
                return Ok(Some(Termination::ConditionA));
            }
            if let Some(next) = groups.get(gi + 1) {
                let frontier = min_pd(next);
                if ctx.condition_b(frontier * frontier, top.kth_ip()) {
                    return Ok(Some(Termination::ConditionB));
                }
            }
        }
        Ok(None)
    }

    /// Resolves the Quick-Probe point's projected distance. The located id
    /// can refer to a delta insert, whose projection is in memory.
    fn located_radius(
        &self,
        located: &crate::quickprobe::Located,
        pq: &[f32],
    ) -> io::Result<f64> {
        if let Some(entry) =
            self.delta.entries.iter().find(|e| e.id == located.id)
        {
            return Ok(dist(&entry.proj, pq));
        }
        let (sub, off) = self.locator[located.id as usize];
        let (_, located_proj) = self.index.fetch_proj_record(sub, off)?;
        Ok(dist(&located_proj, pq))
    }

    /// Verifies every live delta entry (in memory, no page cost).
    fn verify_delta(&self, q: &[f32], top: &mut TopK, verified: &mut usize) {
        for entry in &self.delta.entries {
            if !self.is_deleted(entry.id) {
                top.push(entry.id, dot(&entry.orig, q));
                *verified += 1;
            }
        }
    }

    fn finish(
        &self,
        top: TopK,
        verified: usize,
        probe_radius: Option<f64>,
        final_radius: Option<f64>,
        compensated: bool,
        termination: Termination,
    ) -> SearchResult {
        SearchResult {
            items: top.into_sorted(),
            verified,
            probe_radius,
            final_radius,
            compensated,
            termination,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ProMipsConfig;
    use promips_linalg::Matrix;
    use promips_stats::Xoshiro256pp;

    fn random_data(n: usize, d: usize, seed: u64) -> Matrix {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        Matrix::from_rows(d, (0..n).map(|_| {
            (0..d).map(|_| rng.normal() as f32).collect()
        }))
    }

    /// Exact top-k MIP by brute force.
    fn exact_topk(data: &Matrix, q: &[f32], k: usize) -> Vec<(u64, f64)> {
        let mut ips: Vec<(u64, f64)> = (0..data.rows())
            .map(|i| (i as u64, dot(data.row(i), q)))
            .collect();
        ips.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        ips.truncate(k);
        ips
    }

    fn build(n: usize, d: usize, seed: u64, c: f64, p: f64) -> (ProMips, Matrix) {
        let data = random_data(n, d, seed);
        let cfg = ProMipsConfig::builder().c(c).p(p).seed(seed ^ 0xABCD).build();
        let idx = ProMips::build_in_memory(&data, cfg).unwrap();
        (idx, data)
    }

    #[test]
    fn topk_collector_behaviour() {
        let mut t = TopK::new(3);
        assert_eq!(t.kth_ip(), f64::NEG_INFINITY);
        t.push(1, 5.0);
        t.push(2, 7.0);
        assert_eq!(t.kth_ip(), f64::NEG_INFINITY); // only 2 of 3
        t.push(3, 3.0);
        assert_eq!(t.kth_ip(), 3.0);
        t.push(4, 6.0); // evicts 3.0
        assert_eq!(t.kth_ip(), 5.0);
        let items = t.into_sorted();
        assert_eq!(items.iter().map(|i| i.id).collect::<Vec<_>>(), vec![2, 4, 1]);
    }

    #[test]
    fn search_returns_k_sorted_items() {
        let (idx, _) = build(800, 24, 11, 0.9, 0.5);
        let mut rng = Xoshiro256pp::seed_from_u64(99);
        let q: Vec<f32> = (0..24).map(|_| rng.normal() as f32).collect();
        let res = idx.search(&q, 10).unwrap();
        assert_eq!(res.items.len(), 10);
        assert!(res.items.windows(2).all(|w| w[0].ip >= w[1].ip));
        assert!(res.verified >= 10);
        assert!(res.probe_radius.is_some());
    }

    #[test]
    fn search_satisfies_c_bound_overwhelmingly() {
        // With p = 0.5, at least half the queries must return a c-AMIP
        // point; empirically the rate is far higher. We check the overall
        // ratio across queries stays above c (the paper's Fig. 5 behaviour).
        let (idx, data) = build(1000, 32, 7, 0.9, 0.5);
        let mut rng = Xoshiro256pp::seed_from_u64(5);
        let mut ratios = Vec::new();
        for _ in 0..30 {
            let q: Vec<f32> = (0..32).map(|_| rng.normal() as f32).collect();
            let res = idx.search(&q, 1).unwrap();
            let exact = exact_topk(&data, &q, 1)[0].1;
            if exact > 0.0 {
                ratios.push(res.items[0].ip / exact);
            }
        }
        let mean: f64 = ratios.iter().sum::<f64>() / ratios.len() as f64;
        assert!(mean >= 0.9, "mean overall ratio {mean} below c");
        let ok = ratios.iter().filter(|&&r| r >= 0.9).count();
        assert!(
            ok as f64 / ratios.len() as f64 >= 0.5,
            "guarantee rate {ok}/{} below p",
            ratios.len()
        );
    }

    #[test]
    fn incremental_matches_guarantee_too() {
        let (idx, data) = build(600, 16, 3, 0.8, 0.5);
        let mut rng = Xoshiro256pp::seed_from_u64(21);
        let mut hold = 0;
        let total = 20;
        for _ in 0..total {
            let q: Vec<f32> = (0..16).map(|_| rng.normal() as f32).collect();
            let res = idx.search_incremental(&q, 1).unwrap();
            let exact = exact_topk(&data, &q, 1)[0].1;
            if res.items[0].ip >= 0.8 * exact {
                hold += 1;
            }
        }
        assert!(hold as f64 / total as f64 >= 0.5, "{hold}/{total}");
    }

    #[test]
    fn k_clamped_to_dataset_size() {
        let (idx, _) = build(20, 8, 13, 0.9, 0.5);
        let q = vec![0.5f32; 8];
        let res = idx.search(&q, 50).unwrap();
        assert_eq!(res.items.len(), 20);
        // All distinct ids.
        let mut ids = res.ids();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 20);
    }

    #[test]
    fn no_duplicate_ids_in_results() {
        let (idx, _) = build(500, 12, 17, 0.7, 0.9);
        let mut rng = Xoshiro256pp::seed_from_u64(8);
        for _ in 0..10 {
            let q: Vec<f32> = (0..12).map(|_| rng.normal() as f32).collect();
            let res = idx.search(&q, 15).unwrap();
            let mut ids = res.ids();
            ids.sort_unstable();
            let before = ids.len();
            ids.dedup();
            assert_eq!(ids.len(), before, "duplicate ids returned");
        }
    }

    #[test]
    fn quickprobe_search_uses_fewer_pages_than_incremental() {
        // Partition parameters scaled to the dataset so sub-partitions hold
        // ~20 points (the paper's µ-selectivity intent); with degenerate
        // 2-point sub-partitions the batched-read advantage disappears.
        let data = random_data(1500, 24, 29);
        let id_cfg = promips_idistance::IDistanceConfig {
            kp: 3,
            nkey: 8,
            ksp: 3,
            ..Default::default()
        };
        let cfg = ProMipsConfig::builder()
            .c(0.9)
            .p(0.5)
            .seed(29 ^ 0xABCD)
            .idistance(id_cfg)
            .build();
        let idx = ProMips::build_in_memory(&data, cfg).unwrap();
        let mut rng = Xoshiro256pp::seed_from_u64(55);
        let mut probe_total = 0u64;
        let mut incr_total = 0u64;
        for _ in 0..5 {
            let q: Vec<f32> = (0..24).map(|_| rng.normal() as f32).collect();
            idx.clear_cache();
            idx.reset_stats();
            let _ = idx.search(&q, 10).unwrap();
            probe_total += idx.access_stats().logical_reads;

            idx.clear_cache();
            idx.reset_stats();
            let _ = idx.search_incremental(&q, 10).unwrap();
            incr_total += idx.access_stats().logical_reads;
        }
        // Quick-Probe's whole purpose (paper Section V): avoid the
        // one-by-one NN fetches. It must not cost more pages.
        assert!(
            probe_total <= incr_total,
            "quick-probe {probe_total} > incremental {incr_total}"
        );
    }

    #[test]
    fn higher_p_verifies_no_fewer_candidates() {
        let data = random_data(900, 20, 41);
        let mk = |p: f64| {
            let cfg = ProMipsConfig::builder().c(0.9).p(p).seed(4).build();
            ProMips::build_in_memory(&data, cfg).unwrap()
        };
        let low = mk(0.3);
        let high = mk(0.9);
        let mut rng = Xoshiro256pp::seed_from_u64(6);
        let mut low_sum = 0usize;
        let mut high_sum = 0usize;
        for _ in 0..10 {
            let q: Vec<f32> = (0..20).map(|_| rng.normal() as f32).collect();
            low_sum += low.search(&q, 10).unwrap().verified;
            high_sum += high.search(&q, 10).unwrap().verified;
        }
        assert!(high_sum >= low_sum, "p=0.9 {high_sum} < p=0.3 {low_sum}");
    }
}
