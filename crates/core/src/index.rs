//! The end-to-end ProMIPS index: pre-processing pipeline and handle.

use std::io;
use std::sync::Arc;

use promips_idistance::{build_index, IDistanceIndex};
use promips_linalg::Matrix;
use promips_storage::{AccessStatsSnapshot, Pager};

use crate::config::ProMipsConfig;
use crate::maintenance::DeltaSegment;
use crate::norms::NormTable;
use crate::optimize::optimized_projection_dim;
use crate::projection::Projection;
use crate::quickprobe::QuickProbe;

/// Timing breakdown of the pre-processing phase (Fig. 4b of the paper).
#[derive(Debug, Clone, Copy, Default)]
pub struct BuildTimings {
    /// Projecting the dataset (2-stable random projections).
    pub project_ms: f64,
    /// Norm tables + binary codes + Quick-Probe groups.
    pub quickprobe_ms: f64,
    /// iDistance construction (clustering, layout, B+-tree).
    pub index_ms: f64,
}

impl BuildTimings {
    /// Total pre-processing time in milliseconds.
    pub fn total_ms(&self) -> f64 {
        self.project_ms + self.quickprobe_ms + self.index_ms
    }
}

/// A built ProMIPS index.
///
/// See the crate docs for the architecture; construction happens in
/// [`ProMips::build_in_memory`] / [`ProMips::build_with_pager`], searching
/// in [`ProMips::search`] (Quick-Probe + MIP-Search-II) and
/// [`ProMips::search_incremental`] (MIP-Search-I, kept for the ablation).
pub struct ProMips {
    pub(crate) config: ProMipsConfig,
    pub(crate) projection: Projection,
    pub(crate) index: IDistanceIndex,
    pub(crate) norms: NormTable,
    pub(crate) quickprobe: QuickProbe,
    /// id → (sub-partition, record offset).
    pub(crate) locator: Vec<(u32, u32)>,
    pub(crate) m: usize,
    pub(crate) d: usize,
    timings: BuildTimings,
    /// Page holding the iDistance footer (needed by [`ProMips::save`]).
    idist_footer_page: u64,
    /// In-memory delta segment for incremental inserts.
    pub(crate) delta: DeltaSegment,
    /// Tombstoned (deleted) ids.
    pub(crate) tombstones: std::collections::HashSet<u64>,
    /// Next id to assign on insert (= base n + delta inserts so far).
    pub(crate) next_id: u64,
}

impl ProMips {
    /// Builds the index with an in-memory page device (used by tests,
    /// examples and CPU-time-oriented experiments).
    pub fn build_in_memory(data: &Matrix, config: ProMipsConfig) -> io::Result<Self> {
        config.validate();
        let pager = Arc::new(Pager::in_memory(config.page_size, config.pool_pages));
        Self::build_with_pager(data, config, pager)
    }

    /// Builds the index into the given pager (file-backed for the
    /// disk-resident experiments).
    pub fn build_with_pager(
        data: &Matrix,
        config: ProMipsConfig,
        pager: Arc<Pager>,
    ) -> io::Result<Self> {
        config.validate();
        assert!(
            !data.is_empty(),
            "cannot build ProMIPS over an empty dataset"
        );
        assert_eq!(
            pager.page_size(),
            config.page_size,
            "pager/config page size mismatch"
        );
        let n = data.rows();
        let d = data.cols();
        let m = config
            .m
            .unwrap_or_else(|| optimized_projection_dim(n as u64))
            .clamp(1, 64);

        // Stage 1: 2-stable random projections (Definition 2).
        let t0 = std::time::Instant::now();
        let projection = Projection::generate(m, d, config.seed);
        let proj = projection.project_all(data);
        let project_ms = t0.elapsed().as_secs_f64() * 1e3;

        // Stage 2: norms + binary codes for Quick-Probe.
        let t1 = std::time::Instant::now();
        let norms = NormTable::compute(data);
        let quickprobe = QuickProbe::build(m, (0..n).map(|i| (i as u64, proj.row(i))), |id| {
            norms.norm1(id)
        });
        let quickprobe_ms = t1.elapsed().as_secs_f64() * 1e3;

        // Stage 3: iDistance over the projected points, originals alongside.
        let t2 = std::time::Instant::now();
        let mut id_cfg = config.idistance.clone();
        id_cfg.seed ^= config.seed;
        let index = build_index(Arc::clone(&pager), &proj, data, &id_cfg)?;
        // build_index ends by writing the iDistance footer as the file's
        // last pages (one page at any realistic page size).
        let idist_footer_page =
            pager.num_pages() - promips_idistance::footer_span_pages(pager.page_size());

        // Locator: where did each id land? (One reused decode arena across
        // sub-partitions — this pass touches every projected record.)
        let mut locator = vec![(u32::MAX, u32::MAX); n];
        let mut scratch = promips_idistance::ProjScratch::new();
        for sub in 0..index.subparts().len() as u32 {
            index.read_subpart_proj_into(sub, &mut scratch)?;
            for (offset, &id) in scratch.ids().iter().enumerate() {
                locator[id as usize] = (sub, offset as u32);
            }
        }
        debug_assert!(locator.iter().all(|&(s, _)| s != u32::MAX));
        let index_ms = t2.elapsed().as_secs_f64() * 1e3;

        Ok(Self {
            config,
            projection,
            index,
            norms,
            quickprobe,
            locator,
            m,
            d,
            timings: BuildTimings {
                project_ms,
                quickprobe_ms,
                index_ms,
            },
            idist_footer_page,
            delta: DeltaSegment::default(),
            tombstones: std::collections::HashSet::new(),
            next_id: n as u64,
        })
    }

    /// Reconstructs a handle from persisted parts (see [`crate::persist`]).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn reassemble(
        config: ProMipsConfig,
        projection: Projection,
        index: IDistanceIndex,
        norms: NormTable,
        quickprobe: QuickProbe,
        locator: Vec<(u32, u32)>,
        m: usize,
        d: usize,
        timings: BuildTimings,
        idist_footer_page: u64,
    ) -> Self {
        let next_id = index.len();
        Self {
            config,
            projection,
            index,
            norms,
            quickprobe,
            locator,
            m,
            d,
            timings,
            idist_footer_page,
            delta: DeltaSegment::default(),
            tombstones: std::collections::HashSet::new(),
            next_id,
        }
    }

    /// The page holding the iDistance footer.
    pub(crate) fn idist_footer_page(&self) -> u64 {
        self.idist_footer_page
    }

    /// The effective projected dimensionality `m`.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Original dimensionality `d`.
    pub fn d(&self) -> usize {
        self.d
    }

    /// Number of indexed points.
    pub fn len(&self) -> u64 {
        self.index.len()
    }

    /// True when the index is empty (never: construction requires data).
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// The active configuration.
    pub fn config(&self) -> &ProMipsConfig {
        &self.config
    }

    /// Build-phase timings.
    pub fn build_timings(&self) -> BuildTimings {
        self.timings
    }

    /// The underlying iDistance index.
    pub fn idistance(&self) -> &IDistanceIndex {
        &self.index
    }

    /// Page-access counters (reset between queries to measure per-query
    /// page accesses, Fig. 7).
    pub fn access_stats(&self) -> AccessStatsSnapshot {
        self.index.access_stats()
    }

    /// Resets page-access counters.
    pub fn reset_stats(&self) {
        self.index.pager().stats().reset();
    }

    /// Drops cached pages (cold-cache measurements).
    pub fn clear_cache(&self) {
        self.index.pager().clear_cache();
    }

    /// The paper's **Index Size** metric: everything except the raw
    /// original vectors — i.e. the projected blobs + B+-tree + directory
    /// pages, plus the in-memory Quick-Probe groups, norm table and locator.
    pub fn index_size_bytes(&self) -> u64 {
        let ps = self.index.pager().page_size() as u64;
        let orig_pages = self.index.orig_region().1.div_ceil(ps).max(1);
        let file = self.index.size_bytes();
        let aux = (self.quickprobe.size_bytes() + self.norms.size_bytes() + self.locator.len() * 8)
            as u64;
        file - orig_pages * ps + aux
    }

    /// Total bytes on disk including the original vectors (data + index).
    pub fn file_size_bytes(&self) -> u64 {
        self.index.size_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use promips_stats::Xoshiro256pp;

    fn random_data(n: usize, d: usize, seed: u64) -> Matrix {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        Matrix::from_rows(
            d,
            (0..n).map(|_| (0..d).map(|_| rng.normal() as f32).collect()),
        )
    }

    #[test]
    fn build_selects_optimized_m() {
        let data = random_data(500, 20, 1);
        let idx = ProMips::build_in_memory(&data, ProMipsConfig::default()).unwrap();
        assert_eq!(idx.m(), optimized_projection_dim(500));
        assert_eq!(idx.len(), 500);
    }

    #[test]
    fn build_honours_m_override() {
        let data = random_data(300, 16, 2);
        let cfg = ProMipsConfig::builder().m(9).build();
        let idx = ProMips::build_in_memory(&data, cfg).unwrap();
        assert_eq!(idx.m(), 9);
    }

    #[test]
    fn locator_is_consistent() {
        let data = random_data(400, 12, 3);
        let idx = ProMips::build_in_memory(&data, ProMipsConfig::default()).unwrap();
        let mut scratch = promips_idistance::ProjScratch::new();
        for id in (0..400u64).step_by(37) {
            let (sub, off) = idx.locator[id as usize];
            idx.index
                .fetch_proj_record_into(sub, off, &mut scratch)
                .unwrap();
            assert_eq!(scratch.id(0), id);
        }
    }

    #[test]
    fn index_size_smaller_than_file_with_originals() {
        let data = random_data(500, 64, 4);
        let idx = ProMips::build_in_memory(&data, ProMipsConfig::default()).unwrap();
        assert!(idx.index_size_bytes() < idx.file_size_bytes());
        assert!(idx.index_size_bytes() > 0);
    }

    #[test]
    fn timings_populated() {
        let data = random_data(200, 10, 5);
        let idx = ProMips::build_in_memory(&data, ProMipsConfig::default()).unwrap();
        assert!(idx.build_timings().total_ms() > 0.0);
    }
}
