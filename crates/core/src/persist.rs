//! Full-index persistence: save a built [`ProMips`] into its paged file and
//! reopen it later without re-projecting or re-clustering anything.
//!
//! Layout (appended after the iDistance footer):
//!
//! ```text
//! … iDistance regions + B+-tree + directory + iDistance footer …
//! [aux blob]     config scalars, projection matrix, norm table,
//!                Quick-Probe directory, id→(sub-partition, offset) locator
//! [footer page]  magic, iDistance-footer page id, aux (start, len)
//! ```
//!
//! [`ProMips::open`] reads the last page, locates both the aux blob and the
//! iDistance footer, and reassembles the handle. All content addressing is
//! page-relative, so the file can be copied or memory-mapped freely.

use std::io;
use std::sync::Arc;

use promips_idistance::layout::{enc, read_blob, write_blob};
use promips_idistance::IDistanceIndex;
use promips_linalg::Matrix;
use promips_storage::{PageBuf, Pager};

use crate::config::ProMipsConfig;
use crate::index::{BuildTimings, ProMips};
use crate::norms::NormTable;
use crate::projection::Projection;
use crate::quickprobe::QuickProbe;

const PROMIPS_MAGIC: u64 = 0x9120_6D19_50F1_1E00;

impl ProMips {
    /// Persists everything the search path needs (projection, norms,
    /// Quick-Probe directory, locator) into the index's paged file and
    /// finishes with a footer page. Call once after building into a
    /// file-backed pager; afterwards [`ProMips::open`] can reconstruct the
    /// index from the file alone.
    pub fn save(&self) -> io::Result<()> {
        // The aux blob has no delta/tombstone sections: Quick-Probe state
        // would reference delta ids the reopened locator doesn't hold.
        // Refusing here turns a silent search-time corruption into an
        // actionable error (rebuild first, then save).
        if self.delta_len() > 0 || self.tombstone_count() > 0 {
            return Err(crate::error::MutationError::PendingMutations {
                delta: self.delta_len(),
                tombstones: self.tombstone_count(),
            }
            .into());
        }
        let pager = self.idistance().pager();

        let mut aux = Vec::new();
        // Config scalars.
        enc::put_f64(&mut aux, self.config.c);
        enc::put_f64(&mut aux, self.config.p);
        enc::put_u64(&mut aux, self.config.seed);
        enc::put_u64(&mut aux, self.config.page_size as u64);
        enc::put_u64(&mut aux, self.config.pool_pages as u64);
        enc::put_u64(&mut aux, self.m as u64);
        enc::put_u64(&mut aux, self.d as u64);
        // Projection matrix (m × d).
        enc::put_f32s(&mut aux, self.projection.matrix().as_slice());
        // Norm table + Quick-Probe directory.
        self.norms.encode(&mut aux);
        self.quickprobe.encode(&mut aux);
        // Locator.
        enc::put_u64(&mut aux, self.locator.len() as u64);
        for &(sub, off) in &self.locator {
            enc::put_u32(&mut aux, sub);
            enc::put_u32(&mut aux, off);
        }
        let aux_start = write_blob(pager, &aux)?;

        let ps = pager.page_size();
        let mut footer = Vec::with_capacity(ps);
        enc::put_u64(&mut footer, PROMIPS_MAGIC);
        enc::put_u64(&mut footer, self.idist_footer_page());
        enc::put_u64(&mut footer, aux_start);
        enc::put_u64(&mut footer, aux.len() as u64);
        footer.resize(ps, 0);
        let mut page = PageBuf::zeroed(ps);
        page.as_mut_slice().copy_from_slice(&footer);
        pager.append(page)?;
        pager.sync()
    }

    /// Reopens a fully persisted index (see [`ProMips::save`]).
    pub fn open(pager: Arc<Pager>) -> io::Result<Self> {
        let last = pager
            .num_pages()
            .checked_sub(1)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "empty ProMIPS file"))?;
        let page = pager.read(last)?;
        let mut pos = 0;
        let buf = page.as_slice();
        if enc::get_u64(buf, &mut pos) != PROMIPS_MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "bad ProMIPS footer magic (file saved without ProMips::save?)",
            ));
        }
        let idist_footer = enc::get_u64(buf, &mut pos);
        let aux_start = enc::get_u64(buf, &mut pos);
        let aux_len = enc::get_u64(buf, &mut pos) as usize;

        let aux = read_blob(&pager, aux_start, aux_len)?;
        let mut pos = 0;
        let c = enc::get_f64(&aux, &mut pos);
        let p = enc::get_f64(&aux, &mut pos);
        let seed = enc::get_u64(&aux, &mut pos);
        let page_size = enc::get_u64(&aux, &mut pos) as usize;
        let pool_pages = enc::get_u64(&aux, &mut pos) as usize;
        let m = enc::get_u64(&aux, &mut pos) as usize;
        let d = enc::get_u64(&aux, &mut pos) as usize;
        let proj_data = enc::get_f32s(&aux, &mut pos, m * d);
        let projection = Projection::from_matrix(Matrix::from_vec(m, d, proj_data));
        let norms = NormTable::decode(&aux, &mut pos);
        let quickprobe = QuickProbe::decode(&aux, &mut pos);
        let n = enc::get_u64(&aux, &mut pos) as usize;
        let locator: Vec<(u32, u32)> = (0..n)
            .map(|_| (enc::get_u32(&aux, &mut pos), enc::get_u32(&aux, &mut pos)))
            .collect();

        let index = IDistanceIndex::open_at(Arc::clone(&pager), idist_footer)?;
        let config = ProMipsConfig {
            c,
            p,
            m: Some(m),
            idistance: Default::default(), // build-time only; not needed to search
            page_size,
            pool_pages,
            seed,
        };
        Ok(ProMips::reassemble(
            config,
            projection,
            index,
            norms,
            quickprobe,
            locator,
            m,
            d,
            BuildTimings::default(),
            idist_footer,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use promips_storage::{AccessStats, FileStorage};

    fn random_data(n: usize, d: usize, seed: u64) -> Matrix {
        let mut rng = promips_stats::Xoshiro256pp::seed_from_u64(seed);
        Matrix::from_rows(
            d,
            (0..n).map(|_| (0..d).map(|_| rng.normal() as f32).collect::<Vec<f32>>()),
        )
    }

    #[test]
    fn save_open_roundtrip_preserves_results() {
        let dir = std::env::temp_dir().join(format!("promips-persist-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("full.pmx");

        let data = random_data(600, 24, 9);
        let cfg = ProMipsConfig::builder().c(0.85).p(0.6).seed(4).build();
        let storage = Arc::new(FileStorage::create(&path, cfg.page_size).unwrap());
        let pager = Arc::new(Pager::new(storage, 512, AccessStats::new_shared()));
        let built = ProMips::build_with_pager(&data, cfg, pager).unwrap();
        built.save().unwrap();

        let q: Vec<f32> = data.row(17).to_vec();
        let before = built.search(&q, 10).unwrap();
        drop(built);

        let storage = Arc::new(FileStorage::open(&path, 4096).unwrap());
        let pager = Arc::new(Pager::new(storage, 512, AccessStats::new_shared()));
        let reopened = ProMips::open(pager).unwrap();
        assert_eq!(reopened.len(), 600);
        assert_eq!(reopened.config().c, 0.85);
        assert_eq!(reopened.config().p, 0.6);

        let after = reopened.search(&q, 10).unwrap();
        assert_eq!(before.ids(), after.ids());
        for (a, b) in before.items.iter().zip(&after.items) {
            assert!((a.ip - b.ip).abs() < 1e-12);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_rejects_plain_idistance_file() {
        // A pager whose last page is an iDistance footer (no ProMips::save)
        // must be rejected with a clear error.
        let data = random_data(100, 8, 3);
        let cfg = ProMipsConfig::builder().seed(2).build();
        let pager = Arc::new(Pager::in_memory(cfg.page_size, 256));
        let _built = ProMips::build_with_pager(&data, cfg, Arc::clone(&pager)).unwrap();
        // No save() — last page is the iDistance footer.
        assert!(ProMips::open(pager).is_err());
    }
}
