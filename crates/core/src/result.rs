//! Search results and per-query diagnostics.

/// One returned point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SearchItem {
    /// Point id (row in the indexed dataset).
    pub id: u64,
    /// Exact inner product `⟨o, q⟩` (computed during verification).
    pub ip: f64,
}

/// Result of a c-k-AMIP search, plus diagnostics the experiment harness
/// reports (candidate counts, radii, termination cause).
#[derive(Debug, Clone)]
pub struct SearchResult {
    /// Top-k items by inner product, descending.
    pub items: Vec<SearchItem>,
    /// Number of candidates whose exact inner product was computed.
    pub verified: usize,
    /// Number of candidates dropped by the SQ8 verification screen without
    /// an exact rescore (always 0 when the index has no verification tier).
    /// A screened candidate is proven — via the quantized inner product plus
    /// the exact error-bound padding — to fall strictly below the running
    /// k-th best, so skipping it never changes the returned top-k.
    pub screened: usize,
    /// The Quick-Probe radius `r` (squared distance **not** applied — this
    /// is the Euclidean radius in the projected space). `None` for
    /// [`crate::ProMips::search_incremental`].
    pub probe_radius: Option<f64>,
    /// The final radius after optional compensation.
    pub final_radius: Option<f64>,
    /// Whether the compensation extension `r → r'` was triggered.
    pub compensated: bool,
    /// Why the search stopped.
    pub termination: Termination,
}

/// Which condition ended the search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Termination {
    /// Condition A (deterministic guarantee).
    ConditionA,
    /// Condition B (probabilistic guarantee).
    ConditionB,
    /// The (possibly compensated) range was exhausted.
    RangeExhausted,
    /// The whole dataset was scanned (incremental search ran dry).
    DatasetExhausted,
}

impl SearchResult {
    /// The best inner product found (None for an empty result).
    pub fn best_ip(&self) -> Option<f64> {
        self.items.first().map(|i| i.ip)
    }

    /// The ids in rank order.
    pub fn ids(&self) -> Vec<u64> {
        self.items.iter().map(|i| i.id).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let r = SearchResult {
            items: vec![SearchItem { id: 3, ip: 9.0 }, SearchItem { id: 1, ip: 5.0 }],
            verified: 10,
            screened: 4,
            probe_radius: Some(1.0),
            final_radius: Some(2.0),
            compensated: true,
            termination: Termination::RangeExhausted,
        };
        assert_eq!(r.best_ip(), Some(9.0));
        assert_eq!(r.ids(), vec![3, 1]);
    }
}
