//! Incremental maintenance: inserts and deletes without rebuilding.
//!
//! The paper's introduction motivates the lightweight index with exactly
//! this workload: "in commonly used mobile devices or IoT devices, a huge
//! amount of data will be frequently inserted or deleted in a short time,
//! where the heavyweight index requiring more maintenance overhead may
//! cause delays." The hash-table baselines must touch every table per
//! insert; ProMIPS's single-tree design admits a classic LSM-flavoured
//! scheme:
//!
//! * **inserts** go to an in-memory *delta segment* (projected vector,
//!   original vector, norms, and a Quick-Probe group update) — O(m·d) work,
//!   zero page writes;
//! * **deletes** are tombstones filtered during verification;
//! * queries verify the (small) delta segment exhaustively before testing
//!   the searching conditions, so Theorems 1–2 stay sound: every live point
//!   within any tested frontier has been verified;
//! * [`ProMips::rebuild`] folds the delta and tombstones into a fresh,
//!   fully-packed index when the delta grows past the caller's threshold.

use std::io;
use std::sync::Arc;

use promips_linalg::{norm1, sq_norm2, Matrix};
use promips_storage::Pager;

use crate::config::ProMipsConfig;
use crate::error::MutationError;
use crate::index::ProMips;

/// One freshly inserted point, held in memory until the next rebuild.
#[derive(Debug, Clone)]
pub(crate) struct DeltaEntry {
    pub id: u64,
    pub proj: Vec<f32>,
    pub orig: Vec<f32>,
}

/// The in-memory delta segment.
#[derive(Debug, Default)]
pub(crate) struct DeltaSegment {
    pub entries: Vec<DeltaEntry>,
    /// Max ‖o‖² among delta entries (keeps Condition A/B sound after
    /// inserting a new maximum-norm point).
    pub max_sq_norm: f64,
}

impl ProMips {
    /// Inserts a point, returning its id. The point lives in the in-memory
    /// delta segment (searchable immediately) until [`ProMips::rebuild`].
    pub fn insert(&mut self, point: &[f32]) -> u64 {
        assert_eq!(point.len(), self.d, "insert dimensionality mismatch");
        let id = self.next_id;
        self.next_id += 1;
        let proj = self.projection.project(point);
        // Quick-Probe sees the new point so the located searching range
        // accounts for it.
        self.quickprobe.insert(id, &proj, norm1(point));
        let sq = sq_norm2(point);
        if sq > self.delta.max_sq_norm {
            self.delta.max_sq_norm = sq;
        }
        self.delta.entries.push(DeltaEntry {
            id,
            proj,
            orig: point.to_vec(),
        });
        id
    }

    /// Marks a live point (base or delta) as deleted. Refusals are typed:
    /// [`MutationError::UnknownId`] for ids that never existed
    /// (`id ≥ next_id`) and [`MutationError::DeadId`] for ids already
    /// tombstoned, so replayed or duplicated deletes — a WAL can
    /// legitimately carry a delete for a point compacted away in a previous
    /// generation — can never corrupt [`ProMips::live_len`] or grow the
    /// tombstone set past the points it names, and callers can tell the two
    /// refusals apart without string matching. Deleted points never appear
    /// in results; the searching conditions stay conservative (the max-norm
    /// bound may still reference a deleted point, which only enlarges the
    /// searching range).
    pub fn delete(&mut self, id: u64) -> Result<(), MutationError> {
        if id >= self.next_id {
            return Err(MutationError::UnknownId(id));
        }
        if self.tombstones.contains(&id) {
            return Err(MutationError::DeadId(id));
        }
        self.tombstones.insert(id);
        Ok(())
    }

    /// Whether an id is tombstoned.
    pub fn is_deleted(&self, id: u64) -> bool {
        self.tombstones.contains(&id)
    }

    /// Number of points in the in-memory delta segment.
    pub fn delta_len(&self) -> usize {
        self.delta.entries.len()
    }

    /// Number of tombstoned points.
    pub fn tombstone_count(&self) -> usize {
        self.tombstones.len()
    }

    /// Number of live (non-deleted) points, base + delta.
    pub fn live_len(&self) -> u64 {
        self.next_id - self.tombstones.len() as u64
    }

    /// The effective `‖oM‖²` including delta inserts — the bound the
    /// searching conditions (Theorems 1–2) must use once the index is
    /// mutable, and the per-shard norm bound a sharded fan-out prunes with.
    pub fn effective_max_sq_norm(&self) -> f64 {
        self.norms.max_sq_norm2().max(self.delta.max_sq_norm)
    }

    /// Drains every live point out of the index: base rows are read back
    /// from the index file one sub-partition at a time (live offsets only,
    /// decoded straight into one flat row buffer), delta entries are taken
    /// **by value** and freed as they are copied — at no point does a
    /// second `Vec<Vec<f32>>` copy of the dataset exist alongside the
    /// result. Returns the surviving old ids (sub-partition order, then
    /// delta order) and their rows.
    ///
    /// Tombstones are *consumed*: every tombstone must name a point seen
    /// during the drain (the invariant [`ProMips::delete`] maintains), and
    /// the set is cleared because the ids it names do not exist in any
    /// index rebuilt from the returned rows. The drained handle keeps
    /// serving base-only queries but has lost its delta; callers are
    /// expected to swap in the rebuilt index.
    pub fn take_live_rows(&mut self) -> io::Result<(Vec<u64>, Matrix)> {
        let live = self.live_len() as usize;
        let mut old_ids: Vec<u64> = Vec::with_capacity(live);
        let mut flat: Vec<f32> = Vec::with_capacity(live * self.d);
        let mut scratch = promips_idistance::ProjScratch::new();
        let mut offsets: Vec<u32> = Vec::new();
        let mut arena: Vec<f32> = Vec::new();
        let mut dead_seen = 0usize;
        for sub in 0..self.index.subparts().len() as u32 {
            self.index.read_subpart_proj_into(sub, &mut scratch)?;
            offsets.clear();
            for (off, &id) in scratch.ids().iter().enumerate() {
                if self.is_deleted(id) {
                    dead_seen += 1;
                } else {
                    offsets.push(off as u32);
                    old_ids.push(id);
                }
            }
            self.index.fetch_originals(sub, &offsets, &mut arena)?;
            flat.extend_from_slice(&arena);
        }
        // Delta entries move out of the segment; each row buffer is freed
        // right after its copy lands in the flat matrix.
        for e in std::mem::take(&mut self.delta).entries {
            if self.is_deleted(e.id) {
                dead_seen += 1;
            } else {
                old_ids.push(e.id);
                flat.extend_from_slice(&e.orig);
            }
        }
        // The delete() guard means every tombstone names exactly one point
        // we just scanned; a mismatch is namespace confusion (deletes from
        // a previous generation applied to this index).
        assert_eq!(
            dead_seen,
            self.tombstones.len(),
            "tombstone set names {} points the index does not hold",
            self.tombstones.len() - dead_seen
        );
        self.tombstones.clear();
        let rows = Matrix::from_vec(old_ids.len(), self.d, flat);
        Ok((old_ids, rows))
    }

    /// Read-only counterpart of [`ProMips::take_live_rows`] for shadow
    /// rebuilds: copies out every live point — internal tombstones *and*
    /// the caller's `is_dead` overlay both filter — without consuming the
    /// delta or the tombstone set, so the index keeps serving queries
    /// unchanged while a background thread builds its successor from the
    /// returned rows. Returns the surviving ids (sub-partition order, then
    /// delta order) and their rows.
    pub fn live_rows_snapshot(
        &self,
        is_dead: &dyn Fn(u64) -> bool,
    ) -> io::Result<(Vec<u64>, Matrix)> {
        let mut old_ids: Vec<u64> = Vec::new();
        let mut flat: Vec<f32> = Vec::new();
        let mut scratch = promips_idistance::ProjScratch::new();
        let mut offsets: Vec<u32> = Vec::new();
        let mut arena: Vec<f32> = Vec::new();
        for sub in 0..self.index.subparts().len() as u32 {
            self.index.read_subpart_proj_into(sub, &mut scratch)?;
            offsets.clear();
            for (off, &id) in scratch.ids().iter().enumerate() {
                if !self.is_deleted(id) && !is_dead(id) {
                    offsets.push(off as u32);
                    old_ids.push(id);
                }
            }
            self.index.fetch_originals(sub, &offsets, &mut arena)?;
            flat.extend_from_slice(&arena);
        }
        for e in &self.delta.entries {
            if !self.is_deleted(e.id) && !is_dead(e.id) {
                old_ids.push(e.id);
                flat.extend_from_slice(&e.orig);
            }
        }
        let rows = Matrix::from_vec(old_ids.len(), self.d, flat);
        Ok((old_ids, rows))
    }

    /// Rebuilds a fresh, fully-packed index over all live points (reads the
    /// base points back from the index file, merges the delta, drops
    /// tombstones). Returns the new index and the mapping from new ids to
    /// the old ids.
    ///
    /// The delta segment is consumed (see [`ProMips::take_live_rows`] —
    /// this is what keeps rebuild from double-holding the dataset); on
    /// success callers swap in the rebuilt index, and on error the drained
    /// handle should be discarded or reopened from its file.
    pub fn rebuild(
        &mut self,
        pager: Arc<Pager>,
        config: ProMipsConfig,
    ) -> io::Result<(ProMips, Vec<u64>)> {
        let (old_ids, data) = self.take_live_rows()?;
        let rebuilt = ProMips::build_with_pager(&data, config, pager)?;
        Ok((rebuilt, old_ids))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use promips_linalg::dot;
    use promips_stats::Xoshiro256pp;

    fn random_data(n: usize, d: usize, seed: u64) -> Matrix {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        Matrix::from_rows(
            d,
            (0..n).map(|_| (0..d).map(|_| rng.normal() as f32).collect::<Vec<f32>>()),
        )
    }

    fn build(n: usize, seed: u64) -> (ProMips, Matrix) {
        let data = random_data(n, 16, seed);
        let idx =
            ProMips::build_in_memory(&data, ProMipsConfig::builder().seed(seed).build()).unwrap();
        (idx, data)
    }

    #[test]
    fn inserted_point_is_searchable() {
        let (mut idx, _) = build(400, 1);
        // A point strongly aligned with the query dominates every IP.
        let strong = vec![10.0f32; 16];
        let id = idx.insert(&strong);
        assert_eq!(id, 400);
        assert_eq!(idx.delta_len(), 1);
        let q = vec![1.0f32; 16];
        let res = idx.search(&q, 3).unwrap();
        assert_eq!(res.items[0].id, id, "fresh insert must win");
        assert!((res.items[0].ip - dot(&strong, &q)).abs() < 1e-9);
    }

    #[test]
    fn deleted_point_never_returned() {
        let (mut idx, data) = build(300, 2);
        let q: Vec<f32> = data.row(7).to_vec();
        let top = idx.search(&q, 1).unwrap().items[0].id;
        idx.delete(top).unwrap();
        let res = idx.search(&q, 5).unwrap();
        assert!(
            res.items.iter().all(|i| i.id != top),
            "tombstoned id returned"
        );
        assert_eq!(idx.live_len(), 299);
    }

    #[test]
    fn delete_then_insert_round() {
        let (mut idx, _) = build(200, 3);
        for i in 0..50u64 {
            idx.delete(i).unwrap();
        }
        let mut rng = Xoshiro256pp::seed_from_u64(77);
        for _ in 0..30 {
            let p: Vec<f32> = (0..16).map(|_| rng.normal() as f32).collect();
            idx.insert(&p);
        }
        assert_eq!(idx.live_len(), 200 - 50 + 30);
        let q = vec![0.5f32; 16];
        let res = idx.search(&q, 10).unwrap();
        assert_eq!(res.items.len(), 10);
        assert!(res.items.iter().all(|i| !idx.is_deleted(i.id)));
    }

    #[test]
    fn incremental_search_sees_delta_and_tombstones() {
        let (mut idx, _) = build(250, 4);
        let strong = vec![8.0f32; 16];
        let id = idx.insert(&strong);
        let q = vec![1.0f32; 16];
        let res = idx.search_incremental(&q, 2).unwrap();
        assert_eq!(res.items[0].id, id);
        idx.delete(id).unwrap();
        let res = idx.search_incremental(&q, 2).unwrap();
        assert!(res.items.iter().all(|i| i.id != id));
    }

    #[test]
    fn rebuild_folds_delta_and_tombstones() {
        let (mut idx, data) = build(300, 5);
        idx.delete(0).unwrap();
        idx.delete(299).unwrap();
        let strong = vec![9.0f32; 16];
        idx.insert(&strong);
        let pager = Arc::new(Pager::in_memory(4096, 1024));
        let (rebuilt, old_ids) = idx
            .rebuild(pager, ProMipsConfig::builder().seed(9).build())
            .unwrap();
        assert_eq!(rebuilt.len(), 299); // 300 − 2 + 1
        assert_eq!(old_ids.len(), 299);
        assert_eq!(rebuilt.delta_len(), 0);
        // Tombstoned ids are gone from the mapping; the delta insert is in.
        assert!(!old_ids.contains(&0));
        assert!(!old_ids.contains(&299));
        assert!(old_ids.contains(&300));
        // Deterministic check of the id mapping: a full-k search verifies
        // everything (the k-th-best inner product stays −∞ until all points
        // are seen), so the inserted point must surface with its exact ip.
        let q = vec![1.0f32; 16];
        let res = rebuilt.search(&q, 299).unwrap();
        let winner = &res.items[0];
        assert_eq!(old_ids[winner.id as usize], 300, "delta insert should win");
        assert!((winner.ip - 144.0).abs() < 1e-6);
        // And surviving base rows kept their vectors: spot-check one.
        let new_of_old_5 = old_ids.iter().position(|&o| o == 5).unwrap() as u64;
        let base_ip = dot(data.row(5), &q);
        let found = res.items.iter().find(|i| i.id == new_of_old_5).unwrap();
        assert!((found.ip - base_ip).abs() < 1e-6);
    }

    #[test]
    fn delete_rejects_unknown_and_duplicate_ids() {
        let (mut idx, _) = build(100, 7);
        // Unknown id: never existed, must not be tombstoned.
        assert!(matches!(
            idx.delete(100),
            Err(MutationError::UnknownId(100))
        ));
        assert!(matches!(
            idx.delete(u64::MAX),
            Err(MutationError::UnknownId(_))
        ));
        assert_eq!(idx.tombstone_count(), 0);
        assert_eq!(idx.live_len(), 100);
        // First delete of a live point succeeds; the duplicate is refused,
        // so live_len can never drift below the true live count.
        idx.delete(4).unwrap();
        assert!(matches!(idx.delete(4), Err(MutationError::DeadId(4))));
        assert_eq!(idx.tombstone_count(), 1);
        assert_eq!(idx.live_len(), 99);
        // Same for a delta insert deleted twice.
        let id = idx.insert(&[1.0f32; 16]);
        idx.delete(id).unwrap();
        assert!(matches!(idx.delete(id), Err(MutationError::DeadId(_))));
        assert_eq!(idx.live_len(), 99);
    }

    #[test]
    fn rebuild_consumes_delta_and_tombstones() {
        let (mut idx, _) = build(120, 8);
        idx.insert(&[2.0f32; 16]);
        idx.delete(3).unwrap();
        let pager = Arc::new(Pager::in_memory(4096, 1024));
        let (rebuilt, old_ids) = idx
            .rebuild(pager, ProMipsConfig::builder().seed(8).build())
            .unwrap();
        assert_eq!(rebuilt.len(), 120);
        assert_eq!(old_ids.len(), 120);
        // The drained handle gave up its delta and its tombstones: every
        // tombstone was matched against a point during the drain (the
        // invariant take_live_rows asserts), and the folded sets are empty.
        assert_eq!(idx.delta_len(), 0);
        assert_eq!(idx.tombstone_count(), 0);
    }

    #[test]
    fn take_live_rows_matches_search_view() {
        let (mut idx, data) = build(200, 9);
        idx.delete(10).unwrap();
        idx.delete(199).unwrap();
        let big = vec![5.0f32; 16];
        let kept = idx.insert(&big);
        let gone = idx.insert(&[6.0f32; 16]);
        idx.delete(gone).unwrap();
        let (old_ids, rows) = idx.take_live_rows().unwrap();
        assert_eq!(rows.rows(), 200 - 2 + 2 - 1);
        assert_eq!(old_ids.len(), rows.rows());
        assert!(!old_ids.contains(&10));
        assert!(!old_ids.contains(&199));
        assert!(!old_ids.contains(&gone));
        // Row payloads survived the flat-buffer path bit-for-bit.
        let pos = old_ids.iter().position(|&o| o == kept).unwrap();
        assert_eq!(rows.row(pos), &big[..]);
        let pos5 = old_ids.iter().position(|&o| o == 5).unwrap();
        assert_eq!(rows.row(pos5), data.row(5));
    }

    #[test]
    fn live_rows_snapshot_is_read_only_and_honours_overlay() {
        let (mut idx, data) = build(180, 10);
        idx.delete(2).unwrap();
        let kept = idx.insert(&[3.0f32; 16]);
        let overlay_dead = |id: u64| id == 5 || id == kept;
        let (ids, rows) = idx.live_rows_snapshot(&overlay_dead).unwrap();
        // 180 base − 1 internal tombstone − 1 overlay dead (+1 insert,
        // overlay-dead too).
        assert_eq!(ids.len(), 178);
        assert_eq!(rows.rows(), 178);
        assert!(!ids.contains(&2));
        assert!(!ids.contains(&5));
        assert!(!ids.contains(&kept));
        let pos7 = ids.iter().position(|&o| o == 7).unwrap();
        assert_eq!(rows.row(pos7), data.row(7));
        // Nothing was consumed: delta, tombstones, and live count intact.
        assert_eq!(idx.delta_len(), 1);
        assert_eq!(idx.tombstone_count(), 1);
        assert_eq!(idx.live_len(), 180);
        // A second snapshot without the overlay sees the overlay ids again.
        let (ids2, _) = idx.live_rows_snapshot(&|_| false).unwrap();
        assert_eq!(ids2.len(), 180);
        assert!(ids2.contains(&5) && ids2.contains(&kept));
    }

    #[test]
    fn max_norm_tracks_delta_inserts() {
        let (mut idx, _) = build(150, 6);
        let before = idx.effective_max_sq_norm();
        idx.insert(&[100.0f32; 16]);
        assert!(idx.effective_max_sq_norm() > before);
        assert!((idx.effective_max_sq_norm() - 160_000.0).abs() < 1.0);
    }
}
