//! The probability-guaranteed searching conditions (paper Section IV).
//!
//! For a query `q` with current best (k-th best) verified inner product
//! `⟨omax, q⟩`, define the **slack**
//!
//! `Δ = ‖oM‖² + ‖q‖² − 2⟨omax, q⟩ / c`.
//!
//! * **Condition A** (Theorem 1): `Δ ≤ 0` ⟹ a c-AMIP point has certainly
//!   been verified already (deterministic termination).
//! * **Condition B** (Theorem 2): `Ψm(dis²(P(oi), P(q)) / Δ) ≥ p` ⟹ a
//!   c-AMIP point has been verified with probability at least `p`.
//!
//! The paper tests Condition A with the newest returned point `oi`; since
//! `⟨omax,q⟩ ≥ ⟨oi,q⟩` and Theorem 1 holds for any returned point, testing
//! the running best is equally sound and terminates no later. (Algorithm 3
//! in the paper already tests after updating `omax`.)

use promips_stats::{chi2_cdf, chi2_inv_cdf};

/// Per-query context for evaluating the conditions.
#[derive(Debug, Clone)]
pub struct ConditionContext {
    /// Approximation ratio `c`.
    pub c: f64,
    /// Guarantee probability `p`.
    pub p: f64,
    /// Projected dimensionality `m`.
    pub m: u32,
    /// `‖oM‖²` — max squared norm over the dataset.
    pub max_sq_norm: f64,
    /// `‖q‖²` — squared norm of this query.
    pub q_sq_norm: f64,
}

impl ConditionContext {
    /// The slack `Δ = ‖oM‖² + ‖q‖² − 2·best_ip/c`.
    ///
    /// `best_ip` is `⟨omax, q⟩` for k = 1 or the k-th best verified inner
    /// product for c-k-AMIP; pass `f64::NEG_INFINITY` while fewer than `k`
    /// candidates have been verified (the conditions then never fire).
    #[inline]
    pub fn slack(&self, best_ip: f64) -> f64 {
        self.max_sq_norm + self.q_sq_norm - 2.0 * best_ip / self.c
    }

    /// Condition A (Theorem 1): certain termination.
    #[inline]
    pub fn condition_a(&self, best_ip: f64) -> bool {
        self.slack(best_ip) <= 0.0
    }

    /// Condition B (Theorem 2): probabilistic termination given the squared
    /// projected distance of the most recently returned point.
    pub fn condition_b(&self, proj_dist_sq: f64, best_ip: f64) -> bool {
        let slack = self.slack(best_ip);
        if slack <= 0.0 {
            // Condition A territory; B is vacuously satisfied.
            return true;
        }
        if !slack.is_finite() {
            return false; // fewer than k candidates yet
        }
        chi2_cdf(self.m, proj_dist_sq / slack) >= self.p
    }

    /// The compensated searching radius
    /// `r' = sqrt(Ψm⁻¹(p) · Δ)` (paper Section V-A, after Algorithm 3's
    /// range search fails Condition B at the Quick-Probe radius).
    ///
    /// Returns `None` when `Δ ≤ 0` (Condition A already holds — no further
    /// search needed) or when `Δ` is infinite (no candidates verified yet).
    pub fn compensation_radius(&self, best_ip: f64) -> Option<f64> {
        let slack = self.slack(best_ip);
        if slack <= 0.0 || !slack.is_finite() {
            return None;
        }
        Some((chi2_inv_cdf(self.m, self.p) * slack).sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> ConditionContext {
        ConditionContext {
            c: 0.9,
            p: 0.5,
            m: 6,
            max_sq_norm: 100.0,
            q_sq_norm: 50.0,
        }
    }

    #[test]
    fn condition_a_threshold() {
        let ctx = ctx();
        // Slack zero exactly when best_ip = c(‖oM‖²+‖q‖²)/2 = 0.9·75 = 67.5.
        assert!(!ctx.condition_a(67.0));
        assert!(ctx.condition_a(67.5));
        assert!(ctx.condition_a(1000.0));
    }

    #[test]
    fn condition_a_never_with_no_candidates() {
        assert!(!ctx().condition_a(f64::NEG_INFINITY));
    }

    #[test]
    fn condition_b_monotone_in_distance() {
        let ctx = ctx();
        let best = 40.0; // slack = 150 − 88.9 ≈ 61.1 > 0
        assert!(ctx.slack(best) > 0.0);
        // Small projected distance: low χ² CDF → not satisfied.
        assert!(!ctx.condition_b(0.1, best));
        // Huge projected distance: CDF → 1 ≥ p.
        assert!(ctx.condition_b(1e6, best));
        // Find the crossing point: should match Ψm⁻¹(p)·slack.
        let slack = ctx.slack(best);
        let crossing = promips_stats::chi2_inv_cdf(6, 0.5) * slack;
        assert!(!ctx.condition_b(crossing * 0.99, best));
        assert!(ctx.condition_b(crossing * 1.01, best));
    }

    #[test]
    fn condition_b_vacuous_when_a_holds() {
        let ctx = ctx();
        assert!(ctx.condition_b(0.0, 1000.0));
    }

    #[test]
    fn condition_b_false_with_no_candidates() {
        assert!(!ctx().condition_b(1e12, f64::NEG_INFINITY));
    }

    #[test]
    fn compensation_radius_consistency() {
        let ctx = ctx();
        let best = 40.0;
        let r = ctx.compensation_radius(best).unwrap();
        // At the compensated radius Condition B holds with equality.
        assert!(ctx.condition_b(r * r * 1.0001, best));
        assert!(!ctx.condition_b(r * r * 0.9999, best));
        // No compensation when Condition A holds or nothing verified.
        assert!(ctx.compensation_radius(1000.0).is_none());
        assert!(ctx.compensation_radius(f64::NEG_INFINITY).is_none());
    }

    #[test]
    fn higher_p_demands_larger_radius() {
        let mut a = ctx();
        a.p = 0.3;
        let mut b = ctx();
        b.p = 0.9;
        let ra = a.compensation_radius(40.0).unwrap();
        let rb = b.compensation_radius(40.0).unwrap();
        assert!(rb > ra, "p=0.9 radius {rb} must exceed p=0.3 radius {ra}");
    }

    #[test]
    fn smaller_c_shrinks_slack() {
        // For a positive verified inner product, a smaller c inflates
        // 2·ip/c and thus shrinks the slack — the conditions fire earlier
        // and fewer candidates are collected (the paper's Fig. 10 trend).
        let mut loose = ctx();
        loose.c = 0.7;
        let tight = ctx();
        let ip = 50.0;
        assert!(loose.slack(ip) < tight.slack(ip));
    }
}
