//! Sign binary codes of projected points (paper Section V-A).
//!
//! Each projected point `P(o)` is transformed into an `m`-bit code
//! `c(o) = (c₁(o), …, c_m(o))` with `cᵢ(o) = 1` iff `Pᵢ(o) ≥ 0`. The XOR of
//! a data code with the query's code isolates the coordinates where the
//! signs differ, which Theorem 3 turns into a 1-norm-style lower bound on
//! the projected distance:
//!
//! `dis(P(o), P(q)) ≥ (1/√m) · Σᵢ (cᵢ(o) ⊕ cᵢ(q)) · |Pᵢ(q)|`.

/// An `m`-bit sign code packed into a `u64` (bit `i` = sign of coordinate
/// `i`). `m ≤ 64` is enforced by [`crate::config::ProMipsConfig::validate`].
pub type BinaryCode = u64;

/// Computes the sign code of a projected vector.
#[inline]
pub fn code_of(projected: &[f32]) -> BinaryCode {
    debug_assert!(projected.len() <= 64);
    let mut code = 0u64;
    for (i, &v) in projected.iter().enumerate() {
        if v >= 0.0 {
            code |= 1u64 << i;
        }
    }
    code
}

/// Theorem 3's lower bound on `dis(P(o), P(q))` for a point with code
/// `code`, given the query's code and the absolute values of the query's
/// projected coordinates.
#[inline]
pub fn theorem3_lower_bound(code: BinaryCode, q_code: BinaryCode, q_abs: &[f64]) -> f64 {
    let m = q_abs.len();
    debug_assert!(m <= 64);
    let mut diff = code ^ q_code;
    let mut sum = 0.0;
    while diff != 0 {
        let i = diff.trailing_zeros() as usize;
        if i >= m {
            break;
        }
        sum += q_abs[i];
        diff &= diff - 1;
    }
    sum / (m as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use promips_linalg::dist;

    #[test]
    fn code_bits_follow_signs() {
        let v = [1.0f32, -2.0, 0.0, -0.5, 3.0];
        let code = code_of(&v);
        assert_eq!(code & 1, 1); // +
        assert_eq!((code >> 1) & 1, 0); // −
        assert_eq!((code >> 2) & 1, 1); // 0 counts as non-negative
        assert_eq!((code >> 3) & 1, 0); // −
        assert_eq!((code >> 4) & 1, 1); // +
    }

    #[test]
    fn identical_codes_give_zero_bound() {
        let q_abs = vec![1.0, 2.0, 3.0];
        assert_eq!(theorem3_lower_bound(0b101, 0b101, &q_abs), 0.0);
    }

    #[test]
    fn bound_sums_differing_coordinates() {
        let q_abs = vec![1.0, 2.0, 4.0, 8.0];
        // Bits 1 and 3 differ → (2 + 8)/√4 = 5.
        let lb = theorem3_lower_bound(0b0000, 0b1010, &q_abs);
        assert!((lb - 5.0).abs() < 1e-12);
    }

    #[test]
    fn bound_never_exceeds_true_distance() {
        // Property test over random pairs: Theorem 3 must be a valid lower
        // bound of the projected Euclidean distance.
        let mut rng = promips_stats::Xoshiro256pp::seed_from_u64(17);
        for _ in 0..500 {
            let m = 1 + (rng.below(16) as usize);
            let po: Vec<f32> = (0..m).map(|_| rng.normal() as f32).collect();
            let pq: Vec<f32> = (0..m).map(|_| rng.normal() as f32).collect();
            let q_abs: Vec<f64> = pq.iter().map(|&v| v.abs() as f64).collect();
            let lb = theorem3_lower_bound(code_of(&po), code_of(&pq), &q_abs);
            let true_dist = dist(&po, &pq);
            assert!(
                lb <= true_dist + 1e-9,
                "lb {lb} > dist {true_dist} (m={m}, po={po:?}, pq={pq:?})"
            );
        }
    }
}
