//! # ProMIPS core
//!
//! The paper's primary contribution: probability-guaranteed c-approximate
//! maximum inner product search (c-AMIP) over high-dimensional data with a
//! lightweight index.
//!
//! The pipeline (paper Fig. 2):
//!
//! **Pre-process** —
//! 1. choose the projected dimension `m` (Section V-B, [`optimize`]);
//! 2. draw an `m × d` 2-stable (Gaussian) projection ([`projection`]) and
//!    project every point;
//! 3. compute per-point norms and sign binary codes for Quick-Probe
//!    ([`norms`], [`binary`], [`quickprobe`]);
//! 4. build the iDistance index over the projected points, storing projected
//!    and original vectors in sub-partition order on disk.
//!
//! **Search** (given query `q`, ratio `c`, probability `p`, result size `k`) —
//! 1. Quick-Probe locates a point likely to satisfy Condition B and its
//!    projected distance becomes the searching range `r` (Algorithm 2);
//! 2. a single iDistance range search collects candidates within `r`;
//!    candidates are verified by their exact inner products in the original
//!    space, with the free-to-evaluate Condition A tested as verification
//!    proceeds (Algorithm 3);
//! 3. if Condition B is still unsatisfied at radius `r`, the range is
//!    extended once to `r' = sqrt(Ψm⁻¹(p)·(‖oM‖² + ‖q‖² − 2⟨omax,q⟩/c))`
//!    (compensation), guaranteeing the c-AMIP result with probability ≥ p.
//!
//! [`search::ProMips::search_incremental`] implements the pre-Quick-Probe
//! MIP-Search-I (Algorithm 1) for the ablation study.

pub mod binary;
pub mod conditions;
pub mod config;
pub mod error;
pub mod index;
pub mod maintenance;
pub mod norms;
pub mod optimize;
pub mod persist;
pub mod projection;
pub mod quickprobe;
pub mod result;
pub mod search;

pub use config::{ProMipsConfig, ProMipsConfigBuilder};
pub use error::MutationError;
pub use index::ProMips;
pub use optimize::optimized_projection_dim;
pub use result::{SearchItem, SearchResult};
pub use search::SearchScratch;
