//! 2-stable random projections (paper Definition 2).
//!
//! An `m × d` matrix `V` with i.i.d. N(0,1) entries projects a point `o` to
//! `P(o) = V·o`. By the 2-stability of the normal distribution (Lemma 1),
//! every coordinate of `P(o₁) − P(o₂)` is distributed `N(0, dis²(o₁,o₂))`,
//! so `dis²(P(o₁),P(o₂)) / dis²(o₁,o₂) ~ χ²(m)` (Lemma 2) — the fact every
//! probability statement in the paper rests on.

use promips_linalg::Matrix;
use promips_stats::Xoshiro256pp;

/// An immutable Gaussian projection.
#[derive(Debug, Clone)]
pub struct Projection {
    matrix: Matrix, // m × d
}

impl Projection {
    /// Draws an `m × d` projection from the seeded generator.
    pub fn generate(m: usize, d: usize, seed: u64) -> Self {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let mut data = Vec::with_capacity(m * d);
        for _ in 0..m * d {
            data.push(rng.normal() as f32);
        }
        Self {
            matrix: Matrix::from_vec(m, d, data),
        }
    }

    /// Projected dimensionality `m`.
    pub fn m(&self) -> usize {
        self.matrix.rows()
    }

    /// Original dimensionality `d`.
    pub fn d(&self) -> usize {
        self.matrix.cols()
    }

    /// Projects one point: `P(o) = V·o`.
    pub fn project(&self, point: &[f32]) -> Vec<f32> {
        self.matrix.matvec(point)
    }

    /// Allocation-free projection: resizes `out` to `m` and writes `V·o`
    /// into it. Search paths reuse one buffer across queries via
    /// [`crate::search::SearchScratch`].
    pub fn project_into(&self, point: &[f32], out: &mut Vec<f32>) {
        out.resize(self.m(), 0.0);
        self.matrix.matvec_into(point, out);
    }

    /// Projects every row of `data` (n × d) into an n × m matrix as one
    /// register-blocked `data · Vᵀ` ([`Matrix::gemm_nt`]) instead of n
    /// independent allocating matvecs.
    pub fn project_all(&self, data: &Matrix) -> Matrix {
        assert_eq!(data.cols(), self.d(), "data dimensionality mismatch");
        data.gemm_nt(&self.matrix)
    }

    /// The raw matrix (rows are the `m` random vectors).
    pub fn matrix(&self) -> &Matrix {
        &self.matrix
    }

    /// Wraps an existing `m × d` matrix (used when reopening a persisted
    /// index, whose projection must be bit-identical to the one it was
    /// built with).
    pub fn from_matrix(matrix: Matrix) -> Self {
        Self { matrix }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use promips_linalg::{sq_dist, sq_norm2};
    use promips_stats::chi2_cdf;

    #[test]
    fn shapes() {
        let p = Projection::generate(6, 50, 1);
        assert_eq!(p.m(), 6);
        assert_eq!(p.d(), 50);
        assert_eq!(p.project(&[0.5; 50]).len(), 6);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = Projection::generate(4, 10, 42);
        let b = Projection::generate(4, 10, 42);
        assert_eq!(a.matrix(), b.matrix());
        let c = Projection::generate(4, 10, 43);
        assert_ne!(a.matrix(), c.matrix());
    }

    #[test]
    fn linearity() {
        let p = Projection::generate(3, 8, 7);
        let x = vec![1.0f32; 8];
        let y: Vec<f32> = (0..8).map(|i| i as f32).collect();
        let sum: Vec<f32> = x.iter().zip(&y).map(|(&a, &b)| a + b).collect();
        let px = p.project(&x);
        let py = p.project(&y);
        let psum = p.project(&sum);
        for i in 0..3 {
            assert!((px[i] + py[i] - psum[i]).abs() < 1e-3);
        }
    }

    #[test]
    fn project_into_reuses_buffer_and_matches() {
        let p = Projection::generate(7, 20, 9);
        let a: Vec<f32> = (0..20).map(|i| (i as f32).sin()).collect();
        let b: Vec<f32> = (0..20).map(|i| (i as f32).cos()).collect();
        let mut buf = Vec::new();
        p.project_into(&a, &mut buf);
        assert_eq!(buf, p.project(&a));
        p.project_into(&b, &mut buf);
        assert_eq!(buf, p.project(&b));
        assert_eq!(buf.len(), 7);
    }

    #[test]
    fn project_all_matches_project() {
        let p = Projection::generate(5, 12, 3);
        let data = Matrix::from_rows(12, (0..20).map(|i| vec![(i % 7) as f32; 12]));
        let all = p.project_all(&data);
        for i in 0..20 {
            assert_eq!(all.row(i), p.project(data.row(i)).as_slice());
        }
    }

    #[test]
    fn distance_ratio_follows_chi_square() {
        // Empirical check of Lemma 2: the CDF-transformed ratios should be
        // roughly uniform. We bin Ψm(ratio) into quartiles over many
        // independent projections of a fixed pair.
        let d = 64;
        let m = 8;
        let a = vec![0.3f32; d];
        let b: Vec<f32> = (0..d).map(|i| 0.3 + 0.01 * (i as f32)).collect();
        let true_sq = sq_dist(&a, &b);
        let mut quartiles = [0usize; 4];
        let trials = 2000;
        for t in 0..trials {
            let p = Projection::generate(m, d, 1000 + t as u64);
            let pa = p.project(&a);
            let pb = p.project(&b);
            let ratio = sq_dist(&pa, &pb) / true_sq;
            let u = chi2_cdf(m as u32, ratio);
            let bin = ((u * 4.0) as usize).min(3);
            quartiles[bin] += 1;
        }
        for (i, &count) in quartiles.iter().enumerate() {
            let frac = count as f64 / trials as f64;
            assert!(
                (frac - 0.25).abs() < 0.05,
                "quartile {i}: {frac} (counts {quartiles:?})"
            );
        }
    }

    #[test]
    fn projected_norm_concentration() {
        // E[‖P(o)‖²] = m·‖o‖² for Gaussian projections.
        let d = 100;
        let m = 10;
        let o: Vec<f32> = (0..d).map(|i| (i as f32 * 0.01).sin()).collect();
        let base = sq_norm2(&o);
        let trials = 500;
        let mean: f64 = (0..trials)
            .map(|t| {
                let p = Projection::generate(m, d, 5000 + t as u64);
                sq_norm2(&p.project(&o))
            })
            .sum::<f64>()
            / trials as f64;
        let expected = m as f64 * base;
        assert!(
            (mean - expected).abs() / expected < 0.1,
            "mean {mean} vs expected {expected}"
        );
    }
}
