//! Configuration for building a ProMIPS index.

use promips_idistance::IDistanceConfig;
use promips_storage::PAGE_SIZE_DEFAULT;

/// Build-time and search-time parameters.
///
/// Defaults mirror the paper's experimental settings (Section VIII-A4):
/// `c = 0.9`, `p = 0.5`, `kp = 5`, `Nkey = 40`, `ksp = 10`, 4 KB pages, and
/// `m` chosen by the optimizer of Section V-B unless overridden.
#[derive(Debug, Clone)]
pub struct ProMipsConfig {
    /// Approximation ratio `c ∈ (0, 1)` of the c-AMIP definition.
    pub c: f64,
    /// Guarantee probability `p ∈ (0, 1)`.
    pub p: f64,
    /// Projected dimensionality `m`; `None` selects the optimized value
    /// `argmin 2^m(m+1) + n/2^m`.
    pub m: Option<usize>,
    /// iDistance partition parameters.
    pub idistance: IDistanceConfig,
    /// Page size for the index file.
    pub page_size: usize,
    /// Buffer-pool capacity in pages.
    pub pool_pages: usize,
    /// Seed for the projection matrix (and, xored, the clustering stages).
    pub seed: u64,
}

impl Default for ProMipsConfig {
    fn default() -> Self {
        Self {
            c: 0.9,
            p: 0.5,
            m: None,
            idistance: IDistanceConfig::default(),
            page_size: PAGE_SIZE_DEFAULT,
            pool_pages: 1024,
            seed: 0x9E37_79B9,
        }
    }
}

impl ProMipsConfig {
    /// Starts a builder with the paper defaults.
    pub fn builder() -> ProMipsConfigBuilder {
        ProMipsConfigBuilder {
            config: Self::default(),
        }
    }

    /// Validates parameter domains.
    ///
    /// # Panics
    /// Panics if `c` or `p` lies outside `(0, 1)` or `m == Some(0)` /
    /// `m > 64` (binary codes are stored in a `u64`).
    pub fn validate(&self) {
        assert!(
            self.c > 0.0 && self.c < 1.0,
            "c must be in (0,1), got {}",
            self.c
        );
        assert!(
            self.p > 0.0 && self.p < 1.0,
            "p must be in (0,1), got {}",
            self.p
        );
        if let Some(m) = self.m {
            assert!((1..=64).contains(&m), "m must be in 1..=64, got {m}");
        }
    }
}

/// Fluent builder for [`ProMipsConfig`].
#[derive(Debug, Clone)]
pub struct ProMipsConfigBuilder {
    config: ProMipsConfig,
}

impl ProMipsConfigBuilder {
    /// Sets the approximation ratio `c`.
    pub fn c(mut self, c: f64) -> Self {
        self.config.c = c;
        self
    }

    /// Sets the guarantee probability `p`.
    pub fn p(mut self, p: f64) -> Self {
        self.config.p = p;
        self
    }

    /// Overrides the projected dimensionality `m`.
    pub fn m(mut self, m: usize) -> Self {
        self.config.m = Some(m);
        self
    }

    /// Sets the iDistance parameters.
    pub fn idistance(mut self, cfg: IDistanceConfig) -> Self {
        self.config.idistance = cfg;
        self
    }

    /// Sets the page size.
    pub fn page_size(mut self, bytes: usize) -> Self {
        self.config.page_size = bytes;
        self
    }

    /// Sets the buffer-pool capacity (pages).
    pub fn pool_pages(mut self, pages: usize) -> Self {
        self.config.pool_pages = pages;
        self
    }

    /// Sets the RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Finalizes and validates the configuration.
    pub fn build(self) -> ProMipsConfig {
        self.config.validate();
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = ProMipsConfig::default();
        assert_eq!(c.c, 0.9);
        assert_eq!(c.p, 0.5);
        assert_eq!(c.page_size, 4096);
        assert!(c.m.is_none());
    }

    #[test]
    fn builder_sets_fields() {
        let cfg = ProMipsConfig::builder().c(0.7).p(0.9).m(8).seed(5).build();
        assert_eq!(cfg.c, 0.7);
        assert_eq!(cfg.p, 0.9);
        assert_eq!(cfg.m, Some(8));
        assert_eq!(cfg.seed, 5);
    }

    #[test]
    #[should_panic]
    fn rejects_c_of_one() {
        ProMipsConfig::builder().c(1.0).build();
    }

    #[test]
    #[should_panic]
    fn rejects_zero_p() {
        ProMipsConfig::builder().p(0.0).build();
    }

    #[test]
    #[should_panic]
    fn rejects_huge_m() {
        ProMipsConfig::builder().m(65).build();
    }
}
