//! Quick-Probe (paper Section V, Algorithm 2).
//!
//! Goal: pick the searching radius for MIP-Search-II **without** the
//! incremental NN search of Algorithm 1. During pre-processing the projected
//! points are grouped by their sign binary codes; each group keeps its
//! members sorted by original-space 1-norm. At query time:
//!
//! 1. every group gets a lower bound `LB` on the projected distance between
//!    any member and the query (Theorem 3);
//! 2. groups are visited in ascending `LB`; in each group, the member with
//!    the smallest `‖o‖₁` maximizes `LB² / (c·(‖o‖₁+‖q‖₁)²)` — a lower bound
//!    of `dis²(P(o),P(q)) / (c·dis²(o,q))` (Theorems 3 + 4);
//! 3. **Test A**: if `Ψm` of that value reaches `p`, the member is returned
//!    immediately; otherwise the best value seen so far is remembered and
//!    the scan continues. If no group passes, the best-recorded member is
//!    returned.
//!
//! The located point's *actual* projected distance to the query (fetched
//! from the index) becomes the range-search radius.

use promips_stats::chi2_cdf;

use crate::binary::{code_of, theorem3_lower_bound, BinaryCode};

/// A code group: members sorted ascending by `‖o‖₁`.
#[derive(Debug, Clone)]
struct Group {
    code: BinaryCode,
    /// `(norm1, id)` sorted ascending by `norm1`.
    members: Vec<(f64, u64)>,
}

/// The Quick-Probe directory (built once per index).
#[derive(Debug, Clone)]
pub struct QuickProbe {
    m: usize,
    groups: Vec<Group>,
}

/// Outcome of a Quick-Probe location.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Located {
    /// Id of the located point.
    pub id: u64,
    /// Whether Test A was satisfied (`false` → fallback best-value point).
    pub test_a_passed: bool,
    /// Number of groups inspected before returning.
    pub groups_probed: usize,
}

impl QuickProbe {
    /// Builds the directory from projected vectors and per-point 1-norms.
    ///
    /// `projected` yields `(id, projected vector)`; `norm1` maps id → `‖o‖₁`
    /// of the *original* point (Theorem 4 bounds the original-space
    /// distance).
    pub fn build<'a>(
        m: usize,
        projected: impl IntoIterator<Item = (u64, &'a [f32])>,
        norm1_of: impl Fn(u64) -> f64,
    ) -> Self {
        use std::collections::HashMap;
        let mut map: HashMap<BinaryCode, Vec<(f64, u64)>> = HashMap::new();
        for (id, pv) in projected {
            debug_assert_eq!(pv.len(), m);
            map.entry(code_of(pv)).or_default().push((norm1_of(id), id));
        }
        let mut groups: Vec<Group> = map
            .into_iter()
            .map(|(code, mut members)| {
                members.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
                Group { code, members }
            })
            .collect();
        // Deterministic group order (HashMap iteration is not).
        groups.sort_by_key(|g| g.code);
        Self { m, groups }
    }

    /// Number of non-empty code groups (≤ 2^m).
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }

    /// Approximate in-memory footprint in bytes.
    pub fn size_bytes(&self) -> usize {
        self.groups
            .iter()
            .map(|g| 8 + g.members.len() * 16)
            .sum::<usize>()
    }

    /// Inserts a point into its code group (incremental maintenance); the
    /// group list stays sorted by code, members stay sorted by `‖o‖₁`.
    pub fn insert(&mut self, id: u64, projected: &[f32], norm1: f64) {
        debug_assert_eq!(projected.len(), self.m);
        let code = code_of(projected);
        match self.groups.binary_search_by_key(&code, |g| g.code) {
            Ok(gi) => {
                let members = &mut self.groups[gi].members;
                let pos = members.partition_point(|&(n1, _)| n1 <= norm1);
                members.insert(pos, (norm1, id));
            }
            Err(gi) => {
                self.groups.insert(
                    gi,
                    Group {
                        code,
                        members: vec![(norm1, id)],
                    },
                );
            }
        }
    }

    /// Serializes the directory (for full-index persistence).
    pub fn encode(&self, buf: &mut Vec<u8>) {
        use promips_idistance::layout::enc::*;
        put_u64(buf, self.m as u64);
        put_u32(buf, self.groups.len() as u32);
        for g in &self.groups {
            put_u64(buf, g.code);
            put_u32(buf, g.members.len() as u32);
            for &(norm1, id) in &g.members {
                put_f64(buf, norm1);
                put_u64(buf, id);
            }
        }
    }

    /// Deserializes a directory written by [`QuickProbe::encode`].
    pub fn decode(buf: &[u8], pos: &mut usize) -> Self {
        use promips_idistance::layout::enc::*;
        let m = get_u64(buf, pos) as usize;
        let n_groups = get_u32(buf, pos) as usize;
        let groups = (0..n_groups)
            .map(|_| {
                let code = get_u64(buf, pos);
                let len = get_u32(buf, pos) as usize;
                let members = (0..len)
                    .map(|_| (get_f64(buf, pos), get_u64(buf, pos)))
                    .collect();
                Group { code, members }
            })
            .collect();
        Self { m, groups }
    }

    /// Algorithm 2: locates the point whose projected distance will serve as
    /// the searching range.
    ///
    /// * `pq` — projected query;
    /// * `q_norm1` — `‖q‖₁` of the original query;
    /// * `c`, `p` — approximation ratio and guarantee probability.
    pub fn locate(&self, pq: &[f32], q_norm1: f64, c: f64, p: f64) -> Located {
        assert_eq!(pq.len(), self.m, "projected query dimension mismatch");
        assert!(!self.groups.is_empty(), "Quick-Probe over an empty index");
        let q_code = code_of(pq);
        let q_abs: Vec<f64> = pq.iter().map(|&v| v.abs() as f64).collect();

        // Group lower bounds (2^m·(m+1) work — the term the optimized m
        // balances against group size).
        let mut order: Vec<(f64, usize)> = self
            .groups
            .iter()
            .enumerate()
            .map(|(gi, g)| (theorem3_lower_bound(g.code, q_code, &q_abs), gi))
            .collect();
        order.sort_by(|a, b| a.0.total_cmp(&b.0));

        let mut best_value = f64::NEG_INFINITY;
        let mut best_id = self.groups[order[0].1].members[0].1;
        for (probed, &(lb, gi)) in order.iter().enumerate() {
            let &(norm1, id) = &self.groups[gi].members[0];
            let denom = c * (norm1 + q_norm1).powi(2);
            let value = if denom > 0.0 { (lb * lb) / denom } else { 0.0 };
            // Test A.
            if chi2_cdf(self.m as u32, value) >= p {
                return Located {
                    id,
                    test_a_passed: true,
                    groups_probed: probed + 1,
                };
            }
            if value >= best_value {
                best_value = value;
                best_id = id;
            }
        }
        Located {
            id: best_id,
            test_a_passed: false,
            groups_probed: order.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use promips_linalg::norm1 as l1;
    use promips_stats::Xoshiro256pp;

    /// Builds a random scenario: n points in m-dim projected space with
    /// synthetic original 1-norms.
    fn scenario(n: usize, m: usize, seed: u64) -> (Vec<Vec<f32>>, Vec<f64>) {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        let proj: Vec<Vec<f32>> = (0..n)
            .map(|_| (0..m).map(|_| rng.normal() as f32).collect())
            .collect();
        let norms: Vec<f64> = proj.iter().map(|v| l1(v) * 3.0 + 1.0).collect();
        (proj, norms)
    }

    fn build(proj: &[Vec<f32>], norms: &[f64], m: usize) -> QuickProbe {
        QuickProbe::build(
            m,
            proj.iter()
                .enumerate()
                .map(|(i, v)| (i as u64, v.as_slice())),
            |id| norms[id as usize],
        )
    }

    #[test]
    fn groups_cover_all_points() {
        let (proj, norms) = scenario(300, 5, 1);
        let qp = build(&proj, &norms, 5);
        assert!(qp.num_groups() <= 32);
        let total: usize = qp.groups.iter().map(|g| g.members.len()).sum();
        assert_eq!(total, 300);
    }

    #[test]
    fn members_sorted_by_norm1() {
        let (proj, norms) = scenario(200, 4, 2);
        let qp = build(&proj, &norms, 4);
        for g in &qp.groups {
            assert!(g.members.windows(2).all(|w| w[0].0 <= w[1].0));
        }
    }

    #[test]
    fn locate_returns_valid_id() {
        let (proj, norms) = scenario(500, 6, 3);
        let qp = build(&proj, &norms, 6);
        let mut rng = Xoshiro256pp::seed_from_u64(9);
        for _ in 0..20 {
            let pq: Vec<f32> = (0..6).map(|_| rng.normal() as f32).collect();
            let located = qp.locate(&pq, 5.0, 0.9, 0.5);
            assert!((located.id as usize) < 500);
            assert!(located.groups_probed >= 1);
        }
    }

    #[test]
    fn test_a_short_circuits_group_scan() {
        // With p extremely small, almost any value passes Test A, so the
        // very first group should be accepted.
        let (proj, norms) = scenario(400, 6, 4);
        let qp = build(&proj, &norms, 6);
        let pq: Vec<f32> = vec![2.0; 6];
        let loc = qp.locate(&pq, 1.0, 0.9, 1e-9);
        // The first group whose LB > 0 yields Ψ(value) > 1e-9; at worst a
        // handful of zero-LB groups are skipped first.
        assert!(loc.test_a_passed);
        assert!(loc.groups_probed <= qp.num_groups());
    }

    #[test]
    fn fallback_when_p_unreachable() {
        // With p ≈ 1 no value passes Test A; the fallback point (largest
        // recorded value) is returned.
        let (proj, norms) = scenario(100, 4, 5);
        let qp = build(&proj, &norms, 4);
        let pq: Vec<f32> = vec![0.5; 4];
        let loc = qp.locate(&pq, 2.0, 0.9, 1.0 - 1e-12);
        assert!(!loc.test_a_passed);
        assert_eq!(loc.groups_probed, qp.num_groups());
    }

    #[test]
    fn fallback_picks_max_value_point() {
        // Hand-built: two groups, differing in one sign bit.
        // Query strongly positive → group with same code has LB 0, other
        // group has positive LB.
        let proj = vec![
            vec![1.0f32, 1.0],  // code 11, same as query
            vec![-1.0f32, 1.0], // code 10, differs in bit 0
        ];
        let norms = vec![10.0, 10.0];
        let qp = build(&proj, &norms, 2);
        let pq = vec![3.0f32, 3.0];
        let loc = qp.locate(&pq, 1.0, 0.9, 1.0 - 1e-12);
        // Value for group 11 is 0; group 10 has LB = 3/√2 > 0 → fallback
        // must pick point 1.
        assert_eq!(loc.id, 1);
    }

    #[test]
    fn smallest_norm1_member_is_representative() {
        // In a single group the located member must be the min-norm1 one.
        let proj = vec![vec![1.0f32, 2.0], vec![2.0f32, 1.0], vec![0.5f32, 0.5]];
        let norms = vec![9.0, 4.0, 6.0];
        let qp = build(&proj, &norms, 2);
        // All codes are 11 → one group; query with opposite signs gives a
        // positive LB, p tiny → Test A passes on the first (and only) group.
        let pq = vec![-1.0f32, -1.0];
        let loc = qp.locate(&pq, 1.0, 0.9, 1e-9);
        assert_eq!(loc.id, 1, "min ‖o‖₁ member should be chosen");
    }
}
