//! Per-point norm tables.
//!
//! The searching conditions need `‖oM‖²` (the maximum squared 2-norm over
//! the dataset, Condition A/B) and Quick-Probe needs every point's 1-norm
//! (Theorem 4's upper bound `dis(o,q) ≤ ‖o‖₁ + ‖q‖₁`). Both are computed
//! once during pre-processing; together they are `O(n)` extra floats — part
//! of the "lightweight" index budget the paper accounts for in Section VII.

use promips_linalg::{norm1, sq_norm2, Matrix};

/// Norm tables over the original (d-dimensional) dataset.
#[derive(Debug, Clone)]
pub struct NormTable {
    sq_norm2: Vec<f64>,
    norm1: Vec<f64>,
    max_sq_norm2: f64,
    max_norm_id: u64,
}

impl NormTable {
    /// Computes all norms of `data`'s rows.
    pub fn compute(data: &Matrix) -> Self {
        let mut sq = Vec::with_capacity(data.rows());
        let mut l1 = Vec::with_capacity(data.rows());
        let mut max_sq = 0.0f64;
        let mut max_id = 0u64;
        for (i, row) in data.iter_rows().enumerate() {
            let s = sq_norm2(row);
            if s > max_sq {
                max_sq = s;
                max_id = i as u64;
            }
            sq.push(s);
            l1.push(norm1(row));
        }
        Self {
            sq_norm2: sq,
            norm1: l1,
            max_sq_norm2: max_sq,
            max_norm_id: max_id,
        }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.sq_norm2.len()
    }

    /// True when the table is empty.
    pub fn is_empty(&self) -> bool {
        self.sq_norm2.is_empty()
    }

    /// `‖o‖²` of point `id`.
    #[inline]
    pub fn sq_norm2(&self, id: u64) -> f64 {
        self.sq_norm2[id as usize]
    }

    /// `‖o‖₁` of point `id`.
    #[inline]
    pub fn norm1(&self, id: u64) -> f64 {
        self.norm1[id as usize]
    }

    /// `‖oM‖²`: the maximum squared 2-norm in the dataset.
    #[inline]
    pub fn max_sq_norm2(&self) -> f64 {
        self.max_sq_norm2
    }

    /// The id of the maximum-norm point `oM`.
    pub fn max_norm_id(&self) -> u64 {
        self.max_norm_id
    }

    /// Approximate in-memory footprint in bytes (for the Index Size metric).
    pub fn size_bytes(&self) -> usize {
        self.sq_norm2.len() * 16
    }

    /// Serializes the table (for full-index persistence).
    pub fn encode(&self, buf: &mut Vec<u8>) {
        use promips_idistance::layout::enc::*;
        put_u64(buf, self.sq_norm2.len() as u64);
        for &v in &self.sq_norm2 {
            put_f64(buf, v);
        }
        for &v in &self.norm1 {
            put_f64(buf, v);
        }
        put_f64(buf, self.max_sq_norm2);
        put_u64(buf, self.max_norm_id);
    }

    /// Deserializes a table written by [`NormTable::encode`].
    pub fn decode(buf: &[u8], pos: &mut usize) -> Self {
        use promips_idistance::layout::enc::*;
        let n = get_u64(buf, pos) as usize;
        let sq_norm2: Vec<f64> = (0..n).map(|_| get_f64(buf, pos)).collect();
        let norm1: Vec<f64> = (0..n).map(|_| get_f64(buf, pos)).collect();
        let max_sq_norm2 = get_f64(buf, pos);
        let max_norm_id = get_u64(buf, pos);
        Self {
            sq_norm2,
            norm1,
            max_sq_norm2,
            max_norm_id,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn computes_all_norms() {
        let data = Matrix::from_rows(2, vec![vec![3.0f32, 4.0], vec![1.0, -1.0], vec![0.0, 0.0]]);
        let t = NormTable::compute(&data);
        assert_eq!(t.len(), 3);
        assert_eq!(t.sq_norm2(0), 25.0);
        assert_eq!(t.norm1(0), 7.0);
        assert_eq!(t.sq_norm2(1), 2.0);
        assert_eq!(t.norm1(1), 2.0);
        assert_eq!(t.max_sq_norm2(), 25.0);
        assert_eq!(t.max_norm_id(), 0);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let data = Matrix::from_rows(2, vec![vec![3.0f32, 4.0], vec![1.0, -1.0]]);
        let t = NormTable::compute(&data);
        let mut buf = Vec::new();
        t.encode(&mut buf);
        let mut pos = 0;
        let back = NormTable::decode(&buf, &mut pos);
        assert_eq!(pos, buf.len());
        assert_eq!(back.sq_norm2(0), t.sq_norm2(0));
        assert_eq!(back.norm1(1), t.norm1(1));
        assert_eq!(back.max_sq_norm2(), t.max_sq_norm2());
        assert_eq!(back.max_norm_id(), t.max_norm_id());
    }

    #[test]
    fn max_norm_dominates_all() {
        let data = Matrix::from_rows(
            3,
            (0..50).map(|i| vec![i as f32 * 0.1, -(i as f32) * 0.2, 1.0]),
        );
        let t = NormTable::compute(&data);
        for i in 0..50 {
            assert!(t.sq_norm2(i) <= t.max_sq_norm2());
        }
    }
}
