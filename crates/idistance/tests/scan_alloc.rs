//! Steady-state allocation accounting for the arena-based range scan.
//!
//! The legacy scan decoded every projected record into a fresh
//! `Vec<f32>` — at least one heap allocation per record scanned. The arena
//! path must do none of that: once the per-worker buffers have grown to
//! their high-water mark, a warm `range_candidates_into` call performs no
//! per-record allocation. With the B+-tree read path riding the borrowed
//! `NodeView` (no `Vec` of entries per leaf or internal node), a warm scan
//! performs **no heap allocation at all**.
//!
//! This file holds exactly one test on purpose: the counting allocator is
//! process-global, and a sibling test running in another thread would
//! pollute the counter.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use promips_idistance::{build_index, IDistanceConfig, ProjScratch};
use promips_linalg::Matrix;
use promips_stats::Xoshiro256pp;
use promips_storage::Pager;

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

#[test]
fn warm_range_scan_does_not_allocate_per_record() {
    let m = 6;
    let n = 600;
    let mut rng = Xoshiro256pp::seed_from_u64(17);
    let proj = Matrix::from_rows(
        m,
        (0..n).map(|_| (0..m).map(|_| rng.normal() as f32).collect::<Vec<f32>>()),
    );
    let orig = Matrix::from_rows(
        8,
        (0..n).map(|_| (0..8).map(|_| rng.normal() as f32).collect::<Vec<f32>>()),
    );
    // Pool large enough to hold the whole file, so warm calls never fault.
    let pager = Arc::new(Pager::in_memory(1024, 1 << 16));
    let cfg = IDistanceConfig {
        kp: 4,
        nkey: 8,
        ksp: 3,
        ..Default::default()
    };
    let idx = build_index(pager, &proj, &orig, &cfg).unwrap();

    let pq: Vec<f32> = vec![0.1; m];
    let r = 1e6; // covers every point: the scan touches all n records
    let mut out = Vec::new();
    let mut scratch = ProjScratch::new();

    // Warm-up: grow every buffer to its high-water mark and fault every
    // page into the (write-through-populated) cache.
    for _ in 0..2 {
        idx.range_candidates_into(&pq, -1.0, r, &mut out, &mut scratch)
            .unwrap();
    }
    assert_eq!(out.len(), n, "full-radius scan must surface every point");

    let before = allocs();
    idx.range_candidates_into(&pq, -1.0, r, &mut out, &mut scratch)
        .unwrap();
    let warm = allocs() - before;
    assert_eq!(out.len(), n);

    // The legacy decode would have cost ≥ n allocations here (one Vec per
    // record, plus the blob). The arena path must do none of that, and —
    // now that B+-tree descends and leaf scans read through the borrowed
    // `NodeView` instead of decoding a `Vec` of entries per node — the
    // whole warm range-search path performs **zero** heap allocations.
    assert_eq!(
        warm, 0,
        "warm scan allocated {warm} times for {n} records — the range path \
         is no longer allocation-free"
    );

    // And the count must not scale with the records scanned: a scan that
    // filters far fewer records may only differ by directory-sized noise.
    let mut small_out = Vec::new();
    idx.range_candidates_into(&pq, -1.0, 0.5, &mut small_out, &mut scratch)
        .unwrap();
    let before_small = allocs();
    idx.range_candidates_into(&pq, -1.0, 0.5, &mut small_out, &mut scratch)
        .unwrap();
    let warm_small = allocs() - before_small;
    assert!(
        warm <= warm_small + 48,
        "allocations scale with scanned records: full={warm} small={warm_small}"
    );
}
