//! Steady-state allocation accounting for the **quantized** two-level scan.
//!
//! The SQ8 filter tier adds three buffers to `ProjScratch` (the code
//! column, the quantized query, the surviving-block list). Like the f32
//! arena, they must grow once to their high-water mark and never allocate
//! again: a warm `range_candidates_into` through the two-level path —
//! integer filter plus exact f32 re-test of surviving blocks — performs
//! **zero** heap allocations.
//!
//! This file holds exactly one test on purpose: the counting allocator is
//! process-global, and a sibling test running in another thread would
//! pollute the counter. (`scan_alloc.rs` is the pure-f32 twin.)

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use promips_idistance::{build_index, IDistanceConfig, ProjScratch};
use promips_linalg::Matrix;
use promips_stats::Xoshiro256pp;
use promips_storage::Pager;

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

fn allocs() -> u64 {
    ALLOCS.load(Ordering::Relaxed)
}

#[test]
fn warm_quantized_scan_does_not_allocate() {
    let m = 6;
    let n = 600;
    let mut rng = Xoshiro256pp::seed_from_u64(23);
    let proj = Matrix::from_rows(
        m,
        (0..n).map(|_| (0..m).map(|_| rng.normal() as f32).collect::<Vec<f32>>()),
    );
    let orig = Matrix::from_rows(
        8,
        (0..n).map(|_| (0..8).map(|_| rng.normal() as f32).collect::<Vec<f32>>()),
    );
    // Pool large enough to hold the whole file, so warm calls never fault.
    let pager = Arc::new(Pager::in_memory(1024, 1 << 16));
    let cfg = IDistanceConfig {
        kp: 4,
        nkey: 8,
        ksp: 3,
        ..Default::default()
    };
    let idx = build_index(pager, &proj, &orig, &cfg).unwrap();
    assert!(idx.quantized(), "default build must carry the SQ8 tier");

    let pq: Vec<f32> = vec![0.1; m];
    let mut out = Vec::new();
    let mut scratch = ProjScratch::new();

    // Two radius regimes: a full-coverage scan (every block survives the
    // integer filter, so level 2 decodes everything) and a selective one
    // (most blocks are skipped). Both must be allocation-free once warm —
    // the buffers' high-water marks are set by the larger scan.
    for &(r_lo, r_hi) in &[(-1.0, 1e6), (-1.0, 1.0)] {
        for _ in 0..2 {
            idx.range_candidates_into(&pq, r_lo, r_hi, &mut out, &mut scratch)
                .unwrap();
        }
        let before = allocs();
        idx.range_candidates_into(&pq, r_lo, r_hi, &mut out, &mut scratch)
            .unwrap();
        let warm = allocs() - before;
        assert_eq!(
            warm, 0,
            "warm quantized scan (r_hi = {r_hi}) allocated {warm} times — \
             the two-level path is no longer allocation-free"
        );
    }
    assert!(!out.is_empty());
}
