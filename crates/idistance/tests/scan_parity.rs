//! Property tests: the arena-based projected scan must agree exactly with
//! an independent decode of the packed record bytes, across page sizes that
//! force records — and individual ids/floats — to straddle page boundaries.

use std::sync::Arc;

use promips_idistance::layout::{enc, read_blob_range};
use promips_idistance::{build_index, IDistanceConfig, IDistanceIndex, ProjScratch};
use promips_linalg::{dist, Matrix};
use promips_stats::Xoshiro256pp;
use promips_storage::Pager;
use proptest::prelude::*;

fn random_matrix(n: usize, d: usize, seed: u64) -> Matrix {
    let mut rng = Xoshiro256pp::seed_from_u64(seed);
    Matrix::from_rows(
        d,
        (0..n).map(|_| (0..d).map(|_| rng.normal() as f32).collect::<Vec<f32>>()),
    )
}

fn build(n: usize, m: usize, page_size: usize, seed: u64) -> IDistanceIndex {
    build_quant(n, m, page_size, seed, true)
}

fn build_quant(n: usize, m: usize, page_size: usize, seed: u64, quantize: bool) -> IDistanceIndex {
    let proj = random_matrix(n, m, seed);
    let orig = random_matrix(n, 6, seed ^ 0xFF);
    let pager = Arc::new(Pager::in_memory(page_size, 1 << 16));
    let cfg = IDistanceConfig {
        kp: 3,
        nkey: 6,
        ksp: 2,
        quantize,
        ..Default::default()
    };
    build_index(pager, &proj, &orig, &cfg).unwrap()
}

/// The legacy decode the arena path replaced: one whole-blob read, then
/// per-record `enc` parsing. Kept here (not in the library) as the
/// independent reference the arena must match byte-for-byte.
fn legacy_decode(idx: &IDistanceIndex, sub: u32) -> Vec<(u64, Vec<f32>)> {
    let sp = &idx.subparts()[sub as usize];
    let m = idx.proj_dim();
    let rec = 8 + 4 * m;
    let blob = read_blob_range(
        idx.pager(),
        idx.proj_region().0,
        sp.proj_off as usize,
        sp.count as usize * rec,
    )
    .unwrap();
    let mut pos = 0;
    (0..sp.count)
        .map(|_| {
            let id = enc::get_u64(&blob, &mut pos);
            (id, enc::get_f32s(&blob, &mut pos, m))
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Arena decode == legacy blob decode for every sub-partition, on page
    /// sizes chosen to exercise clean alignment (4096), tiny pages (64),
    /// and sizes that are *not* multiples of 4 (70, 130) so ids and floats
    /// straddle page boundaries mid-field.
    #[test]
    fn arena_decode_matches_legacy_decode(
        n in 40usize..220,
        m in 2usize..7,
        ps_pick in 0usize..4,
        seed in 0u64..1_000,
    ) {
        let page_size = [4096usize, 64, 70, 130][ps_pick];
        let idx = build(n, m, page_size, seed);
        let mut scratch = ProjScratch::new();
        for sub in 0..idx.subparts().len() as u32 {
            idx.read_subpart_proj_into(sub, &mut scratch).unwrap();
            let legacy = legacy_decode(&idx, sub);
            prop_assert_eq!(scratch.len(), legacy.len());
            prop_assert_eq!(scratch.dim(), m);
            for (i, (id, row)) in legacy.iter().enumerate() {
                prop_assert_eq!(scratch.id(i), *id, "sub {} record {}", sub, i);
                prop_assert_eq!(scratch.row(i), row.as_slice(), "sub {} record {}", sub, i);
            }
        }
    }

    /// The blocked-kernel range scan returns exactly the brute-force annulus
    /// over the stored records, including on record-straddling page sizes.
    #[test]
    fn range_scan_matches_brute_force_on_straddling_pages(
        n in 60usize..200,
        m in 2usize..6,
        ps_pick in 0usize..3,
        seed in 0u64..1_000,
    ) {
        let page_size = [70usize, 130, 64][ps_pick];
        let idx = build(n, m, page_size, seed);
        let mut rng = Xoshiro256pp::seed_from_u64(seed ^ 0xABC);
        let pq: Vec<f32> = (0..m).map(|_| rng.normal() as f32).collect();
        let r_hi = rng.uniform_range(0.5, 3.0);
        let r_lo = if rng.uniform_range(0.0, 1.0) < 0.5 {
            -1.0
        } else {
            r_hi * 0.4
        };

        let mut got: Vec<u64> = idx
            .range_candidates(&pq, r_lo, r_hi)
            .unwrap()
            .into_iter()
            .map(|c| c.id)
            .collect();
        got.sort_unstable();

        let mut expected = Vec::new();
        for sub in 0..idx.subparts().len() as u32 {
            for (id, row) in legacy_decode(&idx, sub) {
                let pd = dist(&row, &pq);
                if pd > r_lo && pd <= r_hi {
                    expected.push(id);
                }
            }
        }
        expected.sort_unstable();
        prop_assert_eq!(got, expected);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The two-level quantized scan must return candidates **bit-identical**
    /// to the pure-f32 scan — same ids, same offsets, same `proj_dist`
    /// down to the last bit — across page sizes that force records to
    /// straddle page boundaries (70, 130 are not multiples of 4) and
    /// across radius regimes:
    ///
    /// * random radii;
    /// * **adversarial near-boundary radii**: `r_hi` set exactly to a
    ///   stored point's computed distance (the `pd ≤ r_hi` edge) and
    ///   `r_lo` to another's (the strict `pd > r_lo` edge) — the bit
    ///   pattern where any discrepancy between the quantized filter's
    ///   padding and the exact kernel would surface;
    /// * an out-of-range query (scaled ×50) whose coordinates clamp in
    ///   code space, exercising the query-side error compensation.
    #[test]
    fn quantized_scan_matches_f32_scan_bit_for_bit(
        n in 40usize..220,
        m in 2usize..7,
        ps_pick in 0usize..4,
        seed in 0u64..1_000,
        mode in 0usize..3,
    ) {
        let page_size = [4096usize, 64, 70, 130][ps_pick];
        let quant = build_quant(n, m, page_size, seed, true);
        let f32_only = build_quant(n, m, page_size, seed, false);
        prop_assert!(quant.quantized());
        prop_assert!(!f32_only.quantized());

        let mut rng = Xoshiro256pp::seed_from_u64(seed ^ 0xDEAD);
        let mut pq: Vec<f32> = (0..m).map(|_| rng.normal() as f32).collect();
        if mode == 2 {
            for x in &mut pq {
                *x *= 50.0; // far outside every sub-partition's code range
            }
        }

        let (r_lo, r_hi) = if mode == 1 {
            // Exact stored distances as radii: recompute through the same
            // scan the index uses, then query with those very bits.
            let all = quant.range_candidates(&pq, -1.0, f64::INFINITY).unwrap();
            prop_assert!(!all.is_empty());
            let hi = all[rng.below(all.len() as u64) as usize].proj_dist;
            let lo = all[rng.below(all.len() as u64) as usize].proj_dist;
            (lo.min(hi), hi.max(lo))
        } else {
            let hi = rng.uniform_range(0.5, 4.0);
            let lo = if rng.uniform_range(0.0, 1.0) < 0.5 { -1.0 } else { hi * 0.4 };
            (lo, hi)
        };

        let mut scratch = ProjScratch::new();
        let mut got = Vec::new();
        let mut want = Vec::new();
        quant
            .range_candidates_into(&pq, r_lo, r_hi, &mut got, &mut scratch)
            .unwrap();
        f32_only
            .range_candidates_into(&pq, r_lo, r_hi, &mut want, &mut scratch)
            .unwrap();
        // RangeCandidate derives PartialEq over (id, proj_dist, subpart,
        // offset); equality here is bit-equality of the f64 distances.
        prop_assert_eq!(got, want, "r_lo={} r_hi={}", r_lo, r_hi);
    }
}

/// One decode arena reused across every sub-partition (and a second full
/// pass) must keep returning the right records — the buffer-reuse contract
/// the batched search path depends on.
#[test]
fn scratch_reuse_across_subparts_is_transparent() {
    let idx = build(300, 5, 70, 99);
    let mut scratch = ProjScratch::new();
    for _pass in 0..2 {
        for sub in 0..idx.subparts().len() as u32 {
            idx.read_subpart_proj_into(sub, &mut scratch).unwrap();
            let legacy = legacy_decode(&idx, sub);
            assert_eq!(scratch.len(), legacy.len());
            for (i, (id, row)) in legacy.iter().enumerate() {
                assert_eq!(scratch.id(i), *id);
                assert_eq!(scratch.row(i), row.as_slice());
            }
        }
    }
}

/// `fetch_proj_record_into` must agree with the full sub-partition decode
/// at every offset, including straddling page sizes.
#[test]
fn fetch_proj_record_into_matches_full_decode() {
    let idx = build(150, 4, 70, 7);
    let mut one = ProjScratch::new();
    for sub in 0..idx.subparts().len() as u32 {
        let legacy = legacy_decode(&idx, sub);
        for (off, (id, row)) in legacy.iter().enumerate() {
            idx.fetch_proj_record_into(sub, off as u32, &mut one)
                .unwrap();
            assert_eq!(one.len(), 1);
            assert_eq!(one.id(0), *id, "sub {sub} off {off}");
            assert_eq!(one.row(0), row.as_slice(), "sub {sub} off {off}");
        }
    }
}
