//! Blob layout helpers: variable-length byte blobs over fixed-size pages.
//!
//! A blob occupies `ceil(len / page_size)` consecutive pages starting at its
//! start page. Partial reads fetch only the pages covering the requested
//! byte range, which is how candidate verification avoids reading whole
//! sub-partitions.

use std::io;

use promips_storage::{PageBuf, PageId, Pager};

/// Writes `bytes` as a blob on fresh consecutive pages; returns the start
/// page id (blobs are never empty in this codebase, but zero-length blobs
/// are handled by allocating a single page).
pub fn write_blob(pager: &Pager, bytes: &[u8]) -> io::Result<PageId> {
    let ps = pager.page_size();
    let n_pages = bytes.len().div_ceil(ps).max(1);
    let start = pager.allocate()?;
    for extra in 1..n_pages {
        let id = pager.allocate()?;
        debug_assert_eq!(id, start + extra as u64, "blob pages must be consecutive");
    }
    for i in 0..n_pages {
        let mut page = PageBuf::zeroed(ps);
        let lo = i * ps;
        let hi = ((i + 1) * ps).min(bytes.len());
        if lo < hi {
            page.as_mut_slice()[..hi - lo].copy_from_slice(&bytes[lo..hi]);
        }
        pager.write(start + i as u64, page)?;
    }
    Ok(start)
}

/// Reads `len` bytes of a blob starting at `start` (whole-blob read).
pub fn read_blob(pager: &Pager, start: PageId, len: usize) -> io::Result<Vec<u8>> {
    read_blob_range(pager, start, 0, len)
}

/// Reads bytes `[offset, offset + len)` of a blob, touching only the
/// covering pages.
pub fn read_blob_range(
    pager: &Pager,
    start: PageId,
    offset: usize,
    len: usize,
) -> io::Result<Vec<u8>> {
    let ps = pager.page_size();
    let mut out = Vec::with_capacity(len);
    if len == 0 {
        return Ok(out);
    }
    let first_page = offset / ps;
    let last_page = (offset + len - 1) / ps;
    for p in first_page..=last_page {
        let page = pager.read(start + p as u64)?;
        let page_lo = p * ps;
        let lo = offset.max(page_lo) - page_lo;
        let hi = (offset + len).min(page_lo + ps) - page_lo;
        out.extend_from_slice(&page.as_slice()[lo..hi]);
    }
    Ok(out)
}

/// Streams bytes into consecutive pages without page-aligning individual
/// records — the "packed region" layout that lets adjacent sub-partitions
/// share pages (the paper's sequential-disk organization). The writer owns
/// page allocation between `new` and `finish`; nothing else may allocate
/// from the same pager in that window, or the region stops being
/// consecutive.
pub struct RegionWriter<'a> {
    pager: &'a Pager,
    start: Option<PageId>,
    prev_page: PageId,
    buf: Vec<u8>,
    written: u64,
}

impl<'a> RegionWriter<'a> {
    /// Starts a region on the given pager.
    pub fn new(pager: &'a Pager) -> Self {
        Self {
            pager,
            start: None,
            prev_page: 0,
            buf: Vec::new(),
            written: 0,
        }
    }

    /// Appends `bytes`, returning their byte offset within the region.
    pub fn append(&mut self, bytes: &[u8]) -> io::Result<u64> {
        let offset = self.written + self.buf.len() as u64;
        self.buf.extend_from_slice(bytes);
        let ps = self.pager.page_size();
        while self.buf.len() >= ps {
            let rest = self.buf.split_off(ps);
            let mut page = PageBuf::zeroed(ps);
            page.as_mut_slice().copy_from_slice(&self.buf);
            let id = self.pager.allocate()?;
            if let Some(start) = self.start {
                debug_assert_eq!(
                    id,
                    self.prev_page + 1,
                    "region pages must be consecutive (start {start})"
                );
            } else {
                self.start = Some(id);
            }
            self.prev_page = id;
            self.pager.write(id, page)?;
            self.written += ps as u64;
            self.buf = rest;
        }
        Ok(offset)
    }

    /// Flushes the tail page and returns `(start_page, total_len)`.
    pub fn finish(mut self) -> io::Result<(PageId, u64)> {
        let ps = self.pager.page_size();
        let total = self.written + self.buf.len() as u64;
        if !self.buf.is_empty() || self.start.is_none() {
            self.buf.resize(ps, 0);
            let mut page = PageBuf::zeroed(ps);
            page.as_mut_slice().copy_from_slice(&self.buf);
            let id = self.pager.allocate()?;
            if self.start.is_none() {
                self.start = Some(id);
            } else {
                debug_assert_eq!(id, self.prev_page + 1);
            }
            self.pager.write(id, page)?;
        }
        Ok((self.start.expect("region has at least one page"), total))
    }
}

/// Little-endian typed append helpers used by the record codecs.
pub mod enc {
    /// Appends a `u32`.
    pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
        buf.extend_from_slice(&v.to_le_bytes());
    }
    /// Appends a `u64`.
    pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
        buf.extend_from_slice(&v.to_le_bytes());
    }
    /// Appends an `f64`.
    pub fn put_f64(buf: &mut Vec<u8>, v: f64) {
        buf.extend_from_slice(&v.to_le_bytes());
    }
    /// Appends an `f32`.
    pub fn put_f32(buf: &mut Vec<u8>, v: f32) {
        buf.extend_from_slice(&v.to_le_bytes());
    }
    /// Appends an `f32` slice.
    pub fn put_f32s(buf: &mut Vec<u8>, vs: &[f32]) {
        for &v in vs {
            buf.extend_from_slice(&v.to_le_bytes());
        }
    }

    /// Reads a `u32` at `*pos`, advancing it.
    pub fn get_u32(buf: &[u8], pos: &mut usize) -> u32 {
        let v = u32::from_le_bytes(buf[*pos..*pos + 4].try_into().unwrap());
        *pos += 4;
        v
    }
    /// Reads a `u64` at `*pos`, advancing it.
    pub fn get_u64(buf: &[u8], pos: &mut usize) -> u64 {
        let v = u64::from_le_bytes(buf[*pos..*pos + 8].try_into().unwrap());
        *pos += 8;
        v
    }
    /// Reads an `f64` at `*pos`, advancing it.
    pub fn get_f64(buf: &[u8], pos: &mut usize) -> f64 {
        let v = f64::from_le_bytes(buf[*pos..*pos + 8].try_into().unwrap());
        *pos += 8;
        v
    }
    /// Reads an `f32` at `*pos`, advancing it.
    pub fn get_f32(buf: &[u8], pos: &mut usize) -> f32 {
        let v = f32::from_le_bytes(buf[*pos..*pos + 4].try_into().unwrap());
        *pos += 4;
        v
    }
    /// Reads `n` `f32`s at `*pos`, advancing it.
    pub fn get_f32s(buf: &[u8], pos: &mut usize, n: usize) -> Vec<f32> {
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(f32::from_le_bytes(buf[*pos..*pos + 4].try_into().unwrap()));
            *pos += 4;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blob_roundtrip_multiple_pages() {
        let pager = Pager::in_memory(64, 128);
        let bytes: Vec<u8> = (0..500u32).map(|i| (i % 251) as u8).collect();
        let start = write_blob(&pager, &bytes).unwrap();
        assert_eq!(read_blob(&pager, start, bytes.len()).unwrap(), bytes);
    }

    #[test]
    fn blob_partial_reads() {
        let pager = Pager::in_memory(64, 128);
        let bytes: Vec<u8> = (0..1000u32).map(|i| (i % 256) as u8).collect();
        let start = write_blob(&pager, &bytes).unwrap();
        for &(off, len) in &[
            (0usize, 10usize),
            (60, 10),
            (63, 2),
            (128, 64),
            (999, 1),
            (0, 1000),
        ] {
            let got = read_blob_range(&pager, start, off, len).unwrap();
            assert_eq!(got, &bytes[off..off + len], "off={off} len={len}");
        }
    }

    #[test]
    fn partial_read_touches_only_covering_pages() {
        let pager = Pager::in_memory(64, 128);
        let bytes = vec![7u8; 640]; // 10 pages
        let start = write_blob(&pager, &bytes).unwrap();
        pager.stats().reset();
        let _ = read_blob_range(&pager, start, 128, 64).unwrap(); // exactly page 2
        assert_eq!(pager.stats().snapshot().logical_reads, 1);
        pager.stats().reset();
        let _ = read_blob_range(&pager, start, 100, 64).unwrap(); // spans pages 1..=2
        assert_eq!(pager.stats().snapshot().logical_reads, 2);
    }

    #[test]
    fn empty_and_tiny_blobs() {
        let pager = Pager::in_memory(64, 16);
        let start = write_blob(&pager, &[]).unwrap();
        assert_eq!(read_blob(&pager, start, 0).unwrap(), Vec::<u8>::new());
        let start = write_blob(&pager, &[42]).unwrap();
        assert_eq!(read_blob(&pager, start, 1).unwrap(), vec![42]);
    }

    #[test]
    fn region_writer_packs_records() {
        let pager = Pager::in_memory(64, 256);
        let mut w = RegionWriter::new(&pager);
        let mut offsets = Vec::new();
        let records: Vec<Vec<u8>> = (0..40u8).map(|i| vec![i; 7 + (i as usize % 5)]).collect();
        for r in &records {
            offsets.push(w.append(r).unwrap());
        }
        let (start, len) = w.finish().unwrap();
        let expected_len: u64 = records.iter().map(|r| r.len() as u64).sum();
        assert_eq!(len, expected_len);
        // Packed: far fewer pages than one per record.
        assert!(pager.num_pages() <= len.div_ceil(64) + 1);
        for (off, rec) in offsets.iter().zip(&records) {
            let got = read_blob_range(&pager, start, *off as usize, rec.len()).unwrap();
            assert_eq!(&got, rec);
        }
    }

    #[test]
    fn region_writer_empty_region() {
        let pager = Pager::in_memory(64, 16);
        let w = RegionWriter::new(&pager);
        let (_, len) = w.finish().unwrap();
        assert_eq!(len, 0);
    }

    #[test]
    fn region_writer_exact_page_multiple() {
        let pager = Pager::in_memory(64, 16);
        let mut w = RegionWriter::new(&pager);
        w.append(&[7u8; 128]).unwrap();
        let (start, len) = w.finish().unwrap();
        assert_eq!(len, 128);
        assert_eq!(
            read_blob_range(&pager, start, 0, 128).unwrap(),
            vec![7u8; 128]
        );
    }

    #[test]
    fn enc_roundtrip() {
        use enc::*;
        let mut buf = Vec::new();
        put_u32(&mut buf, 7);
        put_u64(&mut buf, u64::MAX - 3);
        put_f64(&mut buf, -1.5);
        put_f32s(&mut buf, &[1.0, 2.5, -3.25]);
        let mut pos = 0;
        assert_eq!(get_u32(&buf, &mut pos), 7);
        assert_eq!(get_u64(&buf, &mut pos), u64::MAX - 3);
        assert_eq!(get_f64(&buf, &mut pos), -1.5);
        assert_eq!(get_f32s(&buf, &mut pos, 3), vec![1.0, 2.5, -3.25]);
        assert_eq!(pos, buf.len());
    }
}
