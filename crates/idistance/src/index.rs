//! The queryable index: annulus range search, point fetches, persistence.

use std::io;
use std::sync::Arc;

use promips_btree::BTree;
use promips_linalg::{dist, scalar, sq_dist, sq_dist4, sq_dist4_i8};
use promips_storage::{AccessStatsSnapshot, PageBuf, PageId, Pager};

use crate::knn::NnIter;
use crate::layout::{enc, read_blob, read_blob_range, write_blob};
use crate::meta::{OrigQuant, PartitionMeta, SubPartMeta, SubPartQuant};

/// A packed byte region: `(start_page, byte_len)`; pages are consecutive.
pub type Region = (PageId, u64);

/// Format v1: projected + original regions only (no quantized tier).
const FOOTER_MAGIC: u64 = 0x1D15_7A4C_E01D_F007;
/// Format v2: v1 plus the SQ8 quantized region and its per-sub-partition
/// quantizer directory. [`IDistanceIndex::open_at`] accepts both; v1 files
/// simply open with the quantized filter tier disabled.
const FOOTER_MAGIC_V2: u64 = 0x1D15_7A4C_E01D_F008;
/// Format v3: v2 plus the SQ8 **verification** code column over original
/// vectors. The footer layout is unchanged (17 fields — the scan-quant
/// region slots hold [`REGION_ABSENT`] when `quantize: false`); the
/// verification region and its [`OrigQuant`] directory ride the directory
/// blob, so the footer's page span stays version-independent and v1/v2
/// files keep opening. v1/v2 files open with the verification tier
/// disabled (pure-f32 verification).
const FOOTER_MAGIC_V3: u64 = 0x1D15_7A4C_E01D_F009;

/// Sentinel start-page marking an absent region inside a v3 footer (a real
/// region can never start there: the file would exceed every address
/// space).
const REGION_ABSENT: u64 = u64::MAX;

/// Fixed on-disk footer length: the 17 8-byte fields of a v2/v3 footer. v1
/// footers (15 fields) are zero-padded to the same length, so the footer's
/// page span is version-independent and callers can locate its start
/// without knowing the version (see [`footer_span_pages`]). For any page
/// size ≥ 136 this is one zero-padded page — byte-identical to the
/// pre-quantization single-page footer; smaller (test-only) page sizes
/// spill onto consecutive pages instead of silently truncating.
const FOOTER_BYTES: usize = 17 * 8;

/// Number of trailing pages the iDistance footer occupies for a given page
/// size — the builder writes the footer as the file's last
/// `footer_span_pages` pages, and layers that append their own data after
/// it (the full ProMIPS persistence) use this to find the footer start.
pub fn footer_span_pages(page_size: usize) -> u64 {
    FOOTER_BYTES.div_ceil(page_size).max(1) as u64
}

/// A point surfaced by a projected-space range search.
#[derive(Debug, Clone, PartialEq)]
pub struct RangeCandidate {
    /// Point id (row in the original dataset).
    pub id: u64,
    /// Euclidean distance between the projected point and the projected
    /// query.
    pub proj_dist: f64,
    /// Sub-partition holding the point.
    pub subpart: u32,
    /// Record offset inside the sub-partition.
    pub offset: u32,
}

/// A reusable decode arena for projected records: a `u64` id column plus a
/// flat `f32` row arena (row `i` at `rows[i*m .. (i+1)*m]`).
///
/// One scratch serves any number of sequential scans: each
/// [`IDistanceIndex::read_subpart_proj_into`] call clears and refills it, so
/// buffers grow to the largest sub-partition seen and are never reallocated
/// afterwards. This is what makes the annulus range scan allocation-free on
/// its steady-state path — the legacy `Vec<(u64, Vec<f32>)>` decode paid one
/// heap allocation per record.
#[derive(Debug, Default)]
pub struct ProjScratch {
    ids: Vec<u64>,
    rows: Vec<f32>,
    m: usize,
    /// Quantized-stage buffers (SQ8 filter tier): the current
    /// sub-partition's u8 code column, the query quantized into the
    /// sub-partition's code space, and the 4-row block indices that
    /// survived the integer filter. Like the f32 arena, these grow to the
    /// largest sub-partition seen and are never reallocated afterwards, so
    /// the quantized pass is allocation-free at steady state.
    codes: Vec<u8>,
    qcodes: Vec<u8>,
    qblocks: Vec<u32>,
}

impl ProjScratch {
    /// A fresh scratch (buffers allocate lazily on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of decoded records.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the scratch holds no records.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Projected dimensionality of the decoded rows.
    pub fn dim(&self) -> usize {
        self.m
    }

    /// The id column, in record order.
    pub fn ids(&self) -> &[u64] {
        &self.ids
    }

    /// Id of record `i`.
    pub fn id(&self, i: usize) -> u64 {
        self.ids[i]
    }

    /// Projected vector of record `i`.
    pub fn row(&self, i: usize) -> &[f32] {
        &self.rows[i * self.m..(i + 1) * self.m]
    }

    /// The flat row arena (`len() * dim()` floats).
    pub fn rows_flat(&self) -> &[f32] {
        &self.rows
    }

    fn reset(&mut self, m: usize, count: usize) {
        self.m = m;
        self.ids.clear();
        self.rows.clear();
        self.ids.reserve(count);
        self.rows.reserve(count * m);
    }

    /// Calls `f(offset, id, proj_dist)` for every decoded record with its
    /// Euclidean distance to `pq`, four contiguous rows per blocked
    /// [`sq_dist4`] call (the tail runs the single-row kernel).
    ///
    /// A record's position in the block structure is fixed by the
    /// sub-partition layout, so repeated scans — and the range-search and
    /// incremental-NN paths, which both come through here — compute
    /// bit-identical distances for the same point.
    pub fn for_each_dist(&self, pq: &[f32], mut f: impl FnMut(usize, u64, f64)) {
        let m = self.m;
        let n = self.len();
        let rows = &self.rows;
        let mut i = 0;
        while i + 4 <= n {
            let base = i * m;
            let d2 = sq_dist4(
                &rows[base..base + m],
                &rows[base + m..base + 2 * m],
                &rows[base + 2 * m..base + 3 * m],
                &rows[base + 3 * m..base + 4 * m],
                pq,
            );
            f(i, self.ids[i], d2[0].sqrt());
            f(i + 1, self.ids[i + 1], d2[1].sqrt());
            f(i + 2, self.ids[i + 2], d2[2].sqrt());
            f(i + 3, self.ids[i + 3], d2[3].sqrt());
            i += 4;
        }
        for j in i..n {
            f(j, self.ids[j], sq_dist(self.row(j), pq).sqrt());
        }
    }
}

/// A cursor over one packed byte region: fetches covering pages on demand,
/// caches the current page across ranges, and hands the caller maximal
/// in-page byte chunks. Both record decoders ([`IDistanceIndex::
/// fetch_originals`] and the projected-record decoder) walk their ranges
/// through this, so the page-boundary discipline lives in one place.
struct PageCursor<'a> {
    pager: &'a Pager,
    region_start: PageId,
    ps: usize,
    cur: Option<(u64, Arc<PageBuf>)>,
}

impl<'a> PageCursor<'a> {
    fn new(pager: &'a Pager, region_start: PageId) -> Self {
        Self {
            pager,
            region_start,
            ps: pager.page_size(),
            cur: None,
        }
    }

    /// Calls `f` with each maximal in-page chunk of region bytes
    /// `[start, start + len)`, in order. The current page stays cached
    /// across calls, so consecutive ranges touching the same page read it
    /// once (the sequential-read page count the packed layout is for).
    fn walk(&mut self, start: usize, len: usize, mut f: impl FnMut(&[u8])) -> io::Result<()> {
        let mut cursor = start;
        let end = start + len;
        while cursor < end {
            let pid = (cursor / self.ps) as u64;
            if self.cur.as_ref().map(|c| c.0) != Some(pid) {
                self.cur = Some((pid, self.pager.read(self.region_start + pid)?));
            }
            let slice = self.cur.as_ref().expect("page just loaded").1.as_slice();
            let in_page = cursor % self.ps;
            let n = (self.ps - in_page).min(end - cursor);
            f(&slice[in_page..in_page + n]);
            cursor += n;
        }
        Ok(())
    }
}

/// iDistance index handle (see the crate docs for the structure).
pub struct IDistanceIndex {
    pager: Arc<Pager>,
    tree: BTree,
    m: usize,
    d: usize,
    epsilon: f64,
    ring_c: u64,
    proj_region: Region,
    orig_region: Region,
    /// The packed SQ8 code region (format v2); `None` on v1 files and
    /// `quantize: false` builds, which scan through the f32 path alone.
    quant_region: Option<Region>,
    /// The packed SQ8 verification code region over original vectors
    /// (format v3); `None` on v1/v2 files and `verify_quantize: false`
    /// builds, which verify through the f32 path alone.
    vquant_region: Option<Region>,
    partitions: Vec<PartitionMeta>,
    subparts: Vec<SubPartMeta>,
    /// Per-sub-partition quantizers, parallel to `subparts` (empty when
    /// `quant_region` is `None`).
    quants: Vec<SubPartQuant>,
    /// Per-sub-partition verification quantizers, parallel to `subparts`
    /// (empty when `vquant_region` is `None`).
    vquants: Vec<OrigQuant>,
    n_points: u64,
}

impl IDistanceIndex {
    /// Internal constructor used by the builder and by [`Self::open`].
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn assemble(
        pager: Arc<Pager>,
        tree: BTree,
        m: usize,
        d: usize,
        epsilon: f64,
        ring_c: u64,
        proj_region: Region,
        orig_region: Region,
        quant_region: Option<Region>,
        vquant_region: Option<Region>,
        partitions: Vec<PartitionMeta>,
        subparts: Vec<SubPartMeta>,
        quants: Vec<SubPartQuant>,
        vquants: Vec<OrigQuant>,
        n_points: u64,
    ) -> Self {
        debug_assert!(
            if quant_region.is_some() {
                quants.len() == subparts.len()
            } else {
                quants.is_empty()
            },
            "quantizer directory must parallel the sub-partition directory"
        );
        debug_assert!(
            if vquant_region.is_some() {
                vquants.len() == subparts.len()
            } else {
                vquants.is_empty()
            },
            "verification-quantizer directory must parallel the sub-partition directory"
        );
        Self {
            pager,
            tree,
            m,
            d,
            epsilon,
            ring_c,
            proj_region,
            orig_region,
            quant_region,
            vquant_region,
            partitions,
            subparts,
            quants,
            vquants,
            n_points,
        }
    }

    /// Projected dimensionality `m`.
    pub fn proj_dim(&self) -> usize {
        self.m
    }

    /// Original dimensionality `d`.
    pub fn orig_dim(&self) -> usize {
        self.d
    }

    /// Ring width `ε`.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Partition key stride `C` of Formula 6.
    pub fn ring_c(&self) -> u64 {
        self.ring_c
    }

    /// Number of indexed points.
    pub fn len(&self) -> u64 {
        self.n_points
    }

    /// True when the index holds no points.
    pub fn is_empty(&self) -> bool {
        self.n_points == 0
    }

    /// First-stage partitions.
    pub fn partitions(&self) -> &[PartitionMeta] {
        &self.partitions
    }

    /// Sub-partition directory.
    pub fn subparts(&self) -> &[SubPartMeta] {
        &self.subparts
    }

    /// The backing pager (page-access counters live here).
    pub fn pager(&self) -> &Arc<Pager> {
        &self.pager
    }

    /// Convenience: current page-access snapshot.
    pub fn access_stats(&self) -> AccessStatsSnapshot {
        self.pager.stats().snapshot()
    }

    /// Total bytes of the index file (Index Size metric).
    pub fn size_bytes(&self) -> u64 {
        self.pager.size_bytes()
    }

    /// The packed projected-record region `(start_page, byte_len)`.
    pub fn proj_region(&self) -> Region {
        self.proj_region
    }

    /// The packed original-record region `(start_page, byte_len)`.
    pub fn orig_region(&self) -> Region {
        self.orig_region
    }

    /// The packed SQ8 code region, if the quantized filter tier is built.
    pub fn quant_region(&self) -> Option<Region> {
        self.quant_region
    }

    /// Whether the annulus scan runs the two-level quantized filter.
    pub fn quantized(&self) -> bool {
        self.quant_region.is_some()
    }

    /// Per-sub-partition quantizers (parallel to [`Self::subparts`]; empty
    /// when the quantized tier is absent).
    pub fn quants(&self) -> &[SubPartQuant] {
        &self.quants
    }

    /// The packed SQ8 verification code region over original vectors, if
    /// the verification tier is built.
    pub fn vquant_region(&self) -> Option<Region> {
        self.vquant_region
    }

    /// Whether candidate verification can run the quantized screen.
    pub fn verify_quantized(&self) -> bool {
        self.vquant_region.is_some()
    }

    /// Per-sub-partition verification quantizers (parallel to
    /// [`Self::subparts`]; empty when the verification tier is absent).
    pub fn vquants(&self) -> &[OrigQuant] {
        &self.vquants
    }

    // --- Range search ----------------------------------------------------

    /// Annulus range search in the projected space: returns every point with
    /// `r_lo < proj_dist ≤ r_hi`, grouped by sub-partition in directory
    /// order. Pass `r_lo < 0` for a plain ball query.
    ///
    /// Page accesses: B+-tree traversal + projected blobs of sub-partitions
    /// whose pivot sphere intersects the annulus.
    pub fn range_candidates(
        &self,
        pq: &[f32],
        r_lo: f64,
        r_hi: f64,
    ) -> io::Result<Vec<RangeCandidate>> {
        let mut out = Vec::new();
        self.range_candidates_into(pq, r_lo, r_hi, &mut out, &mut ProjScratch::new())?;
        Ok(out)
    }

    /// As [`Self::range_candidates`], but clears and fills a caller-provided
    /// candidate buffer and decodes through a caller-provided arena — the
    /// batched search path reuses one of each per worker thread, so the
    /// steady-state scan performs no per-record (or per-query) heap
    /// allocation at all.
    pub fn range_candidates_into(
        &self,
        pq: &[f32],
        r_lo: f64,
        r_hi: f64,
        out: &mut Vec<RangeCandidate>,
        scratch: &mut ProjScratch,
    ) -> io::Result<()> {
        assert_eq!(pq.len(), self.m, "query has wrong projected dimension");
        out.clear();
        for (part_idx, part) in self.partitions.iter().enumerate() {
            let dc = dist(pq, &part.center);
            if dc - r_hi > part.radius {
                continue; // query ball misses the partition sphere entirely
            }
            let ring_lo = ((dc - r_hi).max(0.0) / self.epsilon).floor() as u64;
            let ring_hi_geom = ((dc + r_hi) / self.epsilon).floor() as u64;
            let ring_cap = (part.radius / self.epsilon).floor() as u64;
            let ring_hi = ring_hi_geom.min(ring_cap);
            if ring_lo > ring_hi {
                continue;
            }
            let key_lo = part_idx as u64 * self.ring_c + ring_lo;
            let key_hi = part_idx as u64 * self.ring_c + ring_hi;
            for entry in self.tree.range(key_lo, key_hi)? {
                let (_key, sub_id) = entry?;
                let sp = &self.subparts[sub_id as usize];
                let dp = dist(pq, &sp.pivot);
                // Sphere filter (paper Fig. 3): skip sub-partitions that
                // cannot contain a point in the annulus.
                if dp - sp.radius > r_hi || dp + sp.radius <= r_lo {
                    continue;
                }
                self.scan_subpart(sub_id as u32, pq, r_lo, r_hi, out, scratch)?;
            }
        }
        Ok(())
    }

    /// Scans one sub-partition, appending candidates in the annulus. With
    /// the quantized tier present this is the two-level path (integer
    /// filter, then exact f32 re-test of surviving blocks); otherwise one
    /// arena decode plus the blocked `sq_dist4` filter over four contiguous
    /// rows at a time. Both paths emit **identical** candidates: the
    /// quantized filter is padded by the sub-partition's quantization error
    /// bound so it never drops a true candidate, and survivors' distances
    /// come from the same f32 kernels over the same 4-row blocks.
    fn scan_subpart(
        &self,
        sub: u32,
        pq: &[f32],
        r_lo: f64,
        r_hi: f64,
        out: &mut Vec<RangeCandidate>,
        scratch: &mut ProjScratch,
    ) -> io::Result<()> {
        if self.quant_region.is_some() {
            return self.scan_subpart_quantized(sub, pq, r_lo, r_hi, out, scratch);
        }
        self.read_subpart_proj_into(sub, scratch)?;
        scratch.for_each_dist(pq, |offset, id, pd| {
            if pd > r_lo && pd <= r_hi {
                out.push(RangeCandidate {
                    id,
                    proj_dist: pd,
                    subpart: sub,
                    offset: offset as u32,
                });
            }
        });
        Ok(())
    }

    /// Two-level quantized scan of one sub-partition.
    ///
    /// **Level 1 (integer):** the sub-partition's u8 code column (1 byte
    /// per coordinate — a quarter of the f32 record bytes, and no id
    /// column) is filtered with the blocked [`sq_dist4_i8`] kernel against
    /// the query quantized into the sub-partition's code space. A code-space
    /// distance `Dq = scale·√(Σ (aⱼ−bⱼ)²)` is the exact distance between
    /// the *dequantized* row and the *dequantized* query, so by two triangle
    /// inequalities the true distance satisfies `|pd − Dq| ≤ err_total`
    /// where `err_total = err_subpart + err_query` (the stored build-time
    /// dequantization bound plus the query's own quantization error,
    /// computed exactly per call — which also covers query coordinates
    /// clamped outside the code range). Rows are kept when `Dq` falls in
    /// the annulus **padded by `err_total`**, so no true candidate is ever
    /// dropped; comparisons happen in the squared domain with a relative
    /// 1e-9 inflation that swamps the few-ulp f64 rounding differences
    /// between this filter and the exact kernel.
    ///
    /// **Level 2 (exact):** only 4-row blocks containing at least one
    /// survivor are decoded from the f32 projected region and re-tested
    /// with the same blocked `sq_dist4` (tail rows: single-row `sq_dist`)
    /// the full scan uses — identical block shapes, hence bit-identical
    /// distances. Quantized non-survivors inside a surviving block are
    /// guaranteed by the bound to fail the exact test, so re-testing the
    /// whole block changes nothing and keeps the kernel shape fixed.
    fn scan_subpart_quantized(
        &self,
        sub: u32,
        pq: &[f32],
        r_lo: f64,
        r_hi: f64,
        out: &mut Vec<RangeCandidate>,
        scratch: &mut ProjScratch,
    ) -> io::Result<()> {
        let sp = &self.subparts[sub as usize];
        let qt = &self.quants[sub as usize];
        let m = self.m;
        let count = sp.count as usize;
        let (quant_start, _) = self.quant_region.expect("quantized scan requires the tier");

        let ProjScratch {
            ids,
            rows,
            m: scratch_m,
            codes,
            qcodes,
            qblocks,
        } = scratch;
        *scratch_m = m;
        ids.clear();
        rows.clear();

        // --- Quantize the query; measure its quantization error exactly. --
        let scale = qt.scale as f64;
        let min = qt.min as f64;
        qcodes.clear();
        qcodes.reserve(m);
        let mut q_err_sq = 0.0f64;
        for &x in pq {
            let code = ((x as f64 - min) / scale).round().clamp(0.0, 255.0);
            qcodes.push(code as u8);
            let e = x as f64 - (min + scale * code);
            q_err_sq += e * e;
        }
        let err_total = (qt.err as f64 + q_err_sq.sqrt()) * (1.0 + 1e-9);

        // Padded squared thresholds in the code-distance domain: keep when
        // lo2 < D²·scale² ≤ hi2 (lower test skipped for ball queries).
        let scale2 = scale * scale;
        let hi_thr = r_hi + err_total;
        let hi2 = hi_thr * hi_thr * (1.0 + 1e-9);
        let lo_thr = r_lo - err_total;
        let lo2 = if lo_thr > 0.0 {
            lo_thr * lo_thr * (1.0 - 1e-9)
        } else {
            -1.0
        };
        let in_window = |d2_codes: u32| {
            let d2 = d2_codes as f64 * scale2;
            d2 > lo2 && d2 <= hi2
        };

        // --- Level 1: integer filter over the code column. -----------------
        codes.clear();
        codes.reserve(count * m);
        let mut pages = PageCursor::new(&self.pager, quant_start);
        pages.walk(qt.off as usize, count * m, |chunk| {
            codes.extend_from_slice(chunk)
        })?;

        qblocks.clear();
        let full_blocks = count / 4;
        for b in 0..full_blocks {
            let base = b * 4 * m;
            let d2 = sq_dist4_i8(
                &codes[base..base + m],
                &codes[base + m..base + 2 * m],
                &codes[base + 2 * m..base + 3 * m],
                &codes[base + 3 * m..base + 4 * m],
                qcodes,
            );
            if d2.iter().copied().any(in_window) {
                qblocks.push(b as u32);
            }
        }
        let tail_start = full_blocks * 4;
        let tail_survives = (tail_start..count)
            .any(|i| in_window(scalar::sq_dist_i8(&codes[i * m..(i + 1) * m], qcodes)));

        // --- Level 2: exact re-test of surviving blocks only. --------------
        let rec = 8 + 4 * m;
        let mut pages = PageCursor::new(&self.pager, self.proj_region.0);
        for &b in qblocks.iter() {
            let p = ids.len();
            Self::decode_proj_fields(
                &mut pages,
                sp.proj_off as usize + b as usize * 4 * rec,
                4,
                m,
                ids,
                rows,
            )?;
            let base = p * m;
            let d2 = sq_dist4(
                &rows[base..base + m],
                &rows[base + m..base + 2 * m],
                &rows[base + 2 * m..base + 3 * m],
                &rows[base + 3 * m..base + 4 * m],
                pq,
            );
            for (j, &v) in d2.iter().enumerate() {
                let pd = v.sqrt();
                if pd > r_lo && pd <= r_hi {
                    out.push(RangeCandidate {
                        id: ids[p + j],
                        proj_dist: pd,
                        subpart: sub,
                        offset: b * 4 + j as u32,
                    });
                }
            }
        }
        if tail_survives {
            let p = ids.len();
            Self::decode_proj_fields(
                &mut pages,
                sp.proj_off as usize + tail_start * rec,
                count - tail_start,
                m,
                ids,
                rows,
            )?;
            for (j, offset) in (tail_start..count).enumerate() {
                let base = (p + j) * m;
                let pd = sq_dist(&rows[base..base + m], pq).sqrt();
                if pd > r_lo && pd <= r_hi {
                    out.push(RangeCandidate {
                        id: ids[p + j],
                        proj_dist: pd,
                        subpart: sub,
                        offset: offset as u32,
                    });
                }
            }
        }
        Ok(())
    }

    /// Decodes a sub-partition's projected records into `scratch` (id
    /// column plus flat row arena), reading the covering pages directly —
    /// no intermediate blob, no per-record allocation.
    pub fn read_subpart_proj_into(&self, sub: u32, scratch: &mut ProjScratch) -> io::Result<()> {
        let sp = &self.subparts[sub as usize];
        self.read_subpart_proj_into_by_meta(sp, scratch)
    }

    /// As [`Self::read_subpart_proj_into`] but from a metadata reference
    /// (used during construction before `self.subparts` is final).
    pub fn read_subpart_proj_into_by_meta(
        &self,
        sp: &SubPartMeta,
        scratch: &mut ProjScratch,
    ) -> io::Result<()> {
        scratch.reset(self.m, sp.count as usize);
        self.decode_proj_records(sp.proj_off as usize, sp.count as usize, scratch)?;
        debug_assert_eq!(scratch.ids.len(), sp.count as usize);
        debug_assert_eq!(scratch.rows.len(), sp.count as usize * self.m);
        Ok(())
    }

    /// Streams `count` projected records starting at byte `start` of the
    /// projected region into `scratch`, straight from the covering pages.
    fn decode_proj_records(
        &self,
        start: usize,
        count: usize,
        scratch: &mut ProjScratch,
    ) -> io::Result<()> {
        let mut pages = PageCursor::new(&self.pager, self.proj_region.0);
        Self::decode_proj_fields(
            &mut pages,
            start,
            count,
            self.m,
            &mut scratch.ids,
            &mut scratch.rows,
        )
    }

    /// Decodes `count` projected records at byte `start` through a
    /// caller-held [`PageCursor`], appending to the id column and flat row
    /// arena. The quantized scan decodes several disjoint record runs of
    /// one sub-partition through a single cursor, so a page shared by two
    /// surviving blocks is still read once. Fields (an 8-byte id, then `m`
    /// 4-byte floats per record) may straddle page boundaries; a partial
    /// field is staged in a small word buffer.
    fn decode_proj_fields(
        pages: &mut PageCursor<'_>,
        start: usize,
        count: usize,
        m: usize,
        ids: &mut Vec<u64>,
        rows: &mut Vec<f32>,
    ) -> io::Result<()> {
        let rec = 8 + 4 * m;
        // Field currently being assembled: `need` is 8 while expecting an
        // id, 4 while expecting one of the record's `floats_left` floats.
        let mut field = [0u8; 8];
        let mut have = 0usize;
        let mut need = 8usize;
        let mut floats_left = 0usize;
        pages.walk(start, count * rec, |mut chunk| {
            while !chunk.is_empty() {
                // Bulk path: decode whole floats straight off the page.
                if have == 0 && need == 4 && chunk.len() >= 4 {
                    let take = floats_left.min(chunk.len() / 4);
                    for c in chunk[..take * 4].chunks_exact(4) {
                        rows.push(f32::from_le_bytes(c.try_into().expect("4-byte chunk")));
                    }
                    floats_left -= take;
                    if floats_left == 0 {
                        need = 8;
                    }
                    chunk = &chunk[take * 4..];
                    continue;
                }
                // Bulk path: a whole id inside the chunk.
                if have == 0 && need == 8 && chunk.len() >= 8 {
                    ids.push(u64::from_le_bytes(
                        chunk[..8].try_into().expect("8-byte id"),
                    ));
                    floats_left = m;
                    need = 4;
                    chunk = &chunk[8..];
                    continue;
                }
                // Straddle path: stage bytes until the field completes.
                let take = (need - have).min(chunk.len());
                field[have..have + take].copy_from_slice(&chunk[..take]);
                have += take;
                chunk = &chunk[take..];
                if have < need {
                    continue; // chunk exhausted mid-field
                }
                if need == 8 {
                    ids.push(u64::from_le_bytes(field));
                    floats_left = m;
                    need = 4;
                } else {
                    rows.push(f32::from_le_bytes(
                        field[..4].try_into().expect("4-byte word"),
                    ));
                    floats_left -= 1;
                    if floats_left == 0 {
                        need = 8;
                    }
                }
                have = 0;
            }
        })?;
        debug_assert_eq!(have, 0, "record stream ends on a field boundary");
        Ok(())
    }

    /// Decodes a single projected record into `scratch` (which afterwards
    /// holds exactly that record at index 0) — used by Quick-Probe to read
    /// the located point without allocating a blob per query.
    pub fn fetch_proj_record_into(
        &self,
        sub: u32,
        offset: u32,
        scratch: &mut ProjScratch,
    ) -> io::Result<()> {
        let sp = &self.subparts[sub as usize];
        debug_assert!(offset < sp.count);
        let rec = 8 + 4 * self.m;
        scratch.reset(self.m, 1);
        self.decode_proj_records(sp.proj_off as usize + offset as usize * rec, 1, scratch)
    }

    // --- Original-vector fetches ------------------------------------------

    /// Fetches the original vectors at the given record offsets of one
    /// sub-partition, decoding them into a flat caller-provided arena:
    /// record `i` of the request lands at `arena[i*d .. (i+1)*d]`. The arena
    /// is cleared first, so buffers can be reused across calls and queries
    /// without per-query allocation.
    ///
    /// Offsets from the search path arrive in ascending record order, so the
    /// covering pages are visited monotonically and each is read exactly
    /// once per call — the sequential-read page count the paper's layout is
    /// designed for. Out-of-order offsets stay correct (a page may just be
    /// re-read).
    pub fn fetch_originals(
        &self,
        sub: u32,
        offsets: &[u32],
        arena: &mut Vec<f32>,
    ) -> io::Result<()> {
        let sp = &self.subparts[sub as usize];
        let rec = 4 * self.d;
        let base = sp.orig_off as usize;
        arena.clear();
        arena.reserve(offsets.len() * self.d);

        let mut pages = PageCursor::new(&self.pager, self.orig_region.0);
        // Partial f32 carried across a page boundary (only possible when the
        // page size is not a multiple of 4; real configurations never hit it).
        let mut word = [0u8; 4];
        let mut have = 0usize;
        for &o in offsets {
            debug_assert!(o < sp.count, "offset out of range");
            pages.walk(base + o as usize * rec, rec, |mut chunk| {
                if have > 0 {
                    let need = (4 - have).min(chunk.len());
                    word[have..have + need].copy_from_slice(&chunk[..need]);
                    have += need;
                    chunk = &chunk[need..];
                    if have < 4 {
                        return; // chunk exhausted while the word is partial
                    }
                    arena.push(f32::from_le_bytes(word));
                }
                let whole = chunk.len() / 4 * 4;
                for c in chunk[..whole].chunks_exact(4) {
                    arena.push(f32::from_le_bytes(c.try_into().expect("4-byte chunk")));
                }
                let rem = &chunk[whole..];
                word[..rem.len()].copy_from_slice(rem);
                have = rem.len();
            })?;
            debug_assert_eq!(have, 0, "record length is a multiple of 4 bytes");
        }
        Ok(())
    }

    /// Fetches the SQ8 verification code rows at the given record offsets
    /// of one sub-partition into a flat caller-provided byte arena: record
    /// `i` of the request lands at `arena[i*d .. (i+1)*d]`. The arena is
    /// cleared first, so buffers can be reused across calls and queries
    /// without per-candidate allocation.
    ///
    /// Like [`Self::fetch_originals`], ascending offsets visit the covering
    /// pages monotonically through one cached-page cursor — and each code
    /// row is `d` bytes instead of `4d`, which is the point of the screen.
    ///
    /// # Panics
    /// Panics in debug builds if the verification tier is absent.
    pub fn fetch_codes(&self, sub: u32, offsets: &[u32], arena: &mut Vec<u8>) -> io::Result<()> {
        let sp = &self.subparts[sub as usize];
        let vq = &self.vquants[sub as usize];
        let (vq_start, _) = self
            .vquant_region
            .expect("fetch_codes requires the verification tier");
        let rec = self.d;
        let base = vq.off as usize;
        arena.clear();
        arena.reserve(offsets.len() * rec);
        let mut pages = PageCursor::new(&self.pager, vq_start);
        for &o in offsets {
            debug_assert!(o < sp.count, "offset out of range");
            pages.walk(base + o as usize * rec, rec, |chunk| {
                arena.extend_from_slice(chunk)
            })?;
        }
        Ok(())
    }

    /// Fetches a single original vector.
    pub fn fetch_original(&self, cand: &RangeCandidate) -> io::Result<Vec<f32>> {
        let mut arena = Vec::with_capacity(self.d);
        self.fetch_originals(cand.subpart, &[cand.offset], &mut arena)?;
        Ok(arena)
    }

    /// Reads a whole sub-partition's original blob in record order (used by
    /// the scan-everything verification paths and tests).
    pub fn read_subpart_orig(&self, sub: u32) -> io::Result<Vec<Vec<f32>>> {
        let sp = &self.subparts[sub as usize];
        let rec = 4 * self.d;
        let blob = read_blob_range(
            &self.pager,
            self.orig_region.0,
            sp.orig_off as usize,
            sp.count as usize * rec,
        )?;
        let mut pos = 0;
        Ok((0..sp.count)
            .map(|_| enc::get_f32s(&blob, &mut pos, self.d))
            .collect())
    }

    // --- Incremental NN ----------------------------------------------------

    /// Exact incremental nearest-neighbour iteration in the projected space
    /// (best-first over sub-partition lower bounds).
    pub fn nn_iter(&self, pq: &[f32]) -> NnIter<'_> {
        NnIter::new(self, pq)
    }

    // --- Persistence -------------------------------------------------------

    /// Writes the directory blob and a footer page at the end of the file so
    /// [`Self::open`] can reconstruct the handle. Called by the builder.
    /// Indexes carrying the verification tier write the v3 format (the
    /// verification region and its quantizer directory travel in the
    /// directory blob, keeping the footer's span version-independent);
    /// scan-quantized-only indexes write v2; others write v1,
    /// byte-identical to pre-quantization builds.
    pub(crate) fn write_footer(&self) -> io::Result<()> {
        let v3 = self.vquant_region.is_some();
        let mut dir = Vec::new();
        enc::put_u32(&mut dir, self.partitions.len() as u32);
        for p in &self.partitions {
            p.encode(&mut dir);
        }
        enc::put_u32(&mut dir, self.subparts.len() as u32);
        for s in &self.subparts {
            s.encode(&mut dir);
        }
        if self.quant_region.is_some() {
            enc::put_u32(&mut dir, self.quants.len() as u32);
            for q in &self.quants {
                q.encode(&mut dir);
            }
        }
        if let Some((vs, vl)) = self.vquant_region {
            enc::put_u64(&mut dir, vs);
            enc::put_u64(&mut dir, vl);
            enc::put_u32(&mut dir, self.vquants.len() as u32);
            for q in &self.vquants {
                q.encode(&mut dir);
            }
        }
        let dir_start = write_blob(&self.pager, &dir)?;

        let ps = self.pager.page_size();
        let mut footer = Vec::with_capacity(ps);
        enc::put_u64(
            &mut footer,
            if v3 {
                FOOTER_MAGIC_V3
            } else if self.quant_region.is_some() {
                FOOTER_MAGIC_V2
            } else {
                FOOTER_MAGIC
            },
        );
        enc::put_u64(&mut footer, self.m as u64);
        enc::put_u64(&mut footer, self.d as u64);
        enc::put_f64(&mut footer, self.epsilon);
        enc::put_u64(&mut footer, self.ring_c);
        enc::put_u64(&mut footer, self.proj_region.0);
        enc::put_u64(&mut footer, self.proj_region.1);
        enc::put_u64(&mut footer, self.orig_region.0);
        enc::put_u64(&mut footer, self.orig_region.1);
        if let Some((qs, ql)) = self.quant_region {
            enc::put_u64(&mut footer, qs);
            enc::put_u64(&mut footer, ql);
        } else if v3 {
            // A v3 footer always carries the two scan-quant slots so its
            // field layout is fixed; absence is the sentinel.
            enc::put_u64(&mut footer, REGION_ABSENT);
            enc::put_u64(&mut footer, 0);
        }
        enc::put_u64(&mut footer, dir_start);
        enc::put_u64(&mut footer, dir.len() as u64);
        enc::put_u64(&mut footer, self.tree.root());
        enc::put_u64(&mut footer, self.tree.height() as u64);
        enc::put_u64(&mut footer, self.tree.len());
        enc::put_u64(&mut footer, self.n_points);
        debug_assert!(footer.len() <= FOOTER_BYTES, "footer outgrew FOOTER_BYTES");
        footer.resize(FOOTER_BYTES, 0);
        let start = write_blob(&self.pager, &footer)?;
        debug_assert_eq!(
            start + footer_span_pages(ps),
            self.pager.num_pages(),
            "footer must end the file"
        );
        self.pager.sync()
    }

    /// Reopens an index from a pager whose **last pages** hold the footer
    /// written by the builder (one page at any realistic page size; see
    /// [`footer_span_pages`]).
    pub fn open(pager: Arc<Pager>) -> io::Result<Self> {
        let start = pager
            .num_pages()
            .checked_sub(footer_span_pages(pager.page_size()))
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "empty index file"))?;
        Self::open_at(pager, start)
    }

    /// Reopens an index whose footer starts at a known page (used when
    /// other layers — e.g. the full ProMIPS persistence — append their own
    /// data after the iDistance footer).
    pub fn open_at(pager: Arc<Pager>, footer_page: PageId) -> io::Result<Self> {
        let buf = read_blob_range(&pager, footer_page, 0, FOOTER_BYTES)?;
        let buf = &buf[..];
        let mut pos = 0;
        let magic = enc::get_u64(buf, &mut pos);
        let version = match magic {
            FOOTER_MAGIC => 1,
            FOOTER_MAGIC_V2 => 2,
            FOOTER_MAGIC_V3 => 3,
            _ => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "bad iDistance footer magic",
                ))
            }
        };
        let m = enc::get_u64(buf, &mut pos) as usize;
        let d = enc::get_u64(buf, &mut pos) as usize;
        let epsilon = enc::get_f64(buf, &mut pos);
        let ring_c = enc::get_u64(buf, &mut pos);
        let proj_region = (enc::get_u64(buf, &mut pos), enc::get_u64(buf, &mut pos));
        let orig_region = (enc::get_u64(buf, &mut pos), enc::get_u64(buf, &mut pos));
        let quant_region = if version >= 2 {
            let qs = enc::get_u64(buf, &mut pos);
            let ql = enc::get_u64(buf, &mut pos);
            // v3 footers always carry the slots; sentinel means the scan
            // tier was not built (v2 footers only exist when it was).
            if qs == REGION_ABSENT {
                None
            } else {
                Some((qs, ql))
            }
        } else {
            None
        };
        let dir_start = enc::get_u64(buf, &mut pos);
        let dir_len = enc::get_u64(buf, &mut pos) as usize;
        let tree_root = enc::get_u64(buf, &mut pos);
        let tree_height = enc::get_u64(buf, &mut pos) as u32;
        let tree_len = enc::get_u64(buf, &mut pos);
        let n_points = enc::get_u64(buf, &mut pos);

        let dir = read_blob(&pager, dir_start, dir_len)?;
        let mut dpos = 0;
        let n_parts = enc::get_u32(&dir, &mut dpos) as usize;
        let partitions: Vec<PartitionMeta> = (0..n_parts)
            .map(|_| PartitionMeta::decode(&dir, &mut dpos))
            .collect();
        let n_subs = enc::get_u32(&dir, &mut dpos) as usize;
        let subparts: Vec<SubPartMeta> = (0..n_subs)
            .map(|_| SubPartMeta::decode(&dir, &mut dpos))
            .collect();
        let quants: Vec<SubPartQuant> = if quant_region.is_some() {
            let n_quants = enc::get_u32(&dir, &mut dpos) as usize;
            if n_quants != n_subs {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "quantizer directory does not parallel the sub-partition directory",
                ));
            }
            (0..n_quants)
                .map(|_| SubPartQuant::decode(&dir, &mut dpos))
                .collect()
        } else {
            Vec::new()
        };
        let (vquant_region, vquants) = if version >= 3 {
            let region = (enc::get_u64(&dir, &mut dpos), enc::get_u64(&dir, &mut dpos));
            let n_vquants = enc::get_u32(&dir, &mut dpos) as usize;
            if n_vquants != n_subs {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    "verification-quantizer directory does not parallel the sub-partition \
                     directory",
                ));
            }
            let vquants: Vec<OrigQuant> = (0..n_vquants)
                .map(|_| OrigQuant::decode(&dir, &mut dpos))
                .collect();
            (Some(region), vquants)
        } else {
            (None, Vec::new())
        };

        let tree = BTree::open(Arc::clone(&pager), tree_root, tree_height, tree_len);
        Ok(Self::assemble(
            pager,
            tree,
            m,
            d,
            epsilon,
            ring_c,
            proj_region,
            orig_region,
            quant_region,
            vquant_region,
            partitions,
            subparts,
            quants,
            vquants,
            n_points,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_index;
    use crate::config::IDistanceConfig;
    use promips_linalg::Matrix;
    use promips_stats::Xoshiro256pp;

    fn random_matrix(n: usize, dims: usize, seed: u64) -> Matrix {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        Matrix::from_rows(
            dims,
            (0..n).map(|_| (0..dims).map(|_| rng.normal() as f32).collect()),
        )
    }

    fn build_small() -> (IDistanceIndex, Matrix, Matrix) {
        let proj = random_matrix(600, 6, 10);
        let orig = random_matrix(600, 24, 11);
        let pager = Arc::new(Pager::in_memory(1024, 1 << 16));
        let cfg = IDistanceConfig {
            kp: 4,
            nkey: 10,
            ksp: 3,
            ..Default::default()
        };
        let idx = build_index(pager, &proj, &orig, &cfg).unwrap();
        (idx, proj, orig)
    }

    #[test]
    fn range_matches_brute_force() {
        let (idx, proj, _) = build_small();
        let mut rng = Xoshiro256pp::seed_from_u64(99);
        for _ in 0..10 {
            let pq: Vec<f32> = (0..6).map(|_| rng.normal() as f32).collect();
            let r = rng.uniform_range(0.5, 3.0);
            let mut got: Vec<u64> = idx
                .range_candidates(&pq, -1.0, r)
                .unwrap()
                .into_iter()
                .map(|c| c.id)
                .collect();
            got.sort_unstable();
            let mut expected: Vec<u64> = (0..proj.rows())
                .filter(|&i| dist(proj.row(i), &pq) <= r)
                .map(|i| i as u64)
                .collect();
            expected.sort_unstable();
            assert_eq!(got, expected, "r={r}");
        }
    }

    #[test]
    fn annulus_excludes_inner_ball() {
        let (idx, proj, _) = build_small();
        let pq: Vec<f32> = vec![0.1; 6];
        let (r_lo, r_hi) = (1.0, 2.5);
        let mut got: Vec<u64> = idx
            .range_candidates(&pq, r_lo, r_hi)
            .unwrap()
            .into_iter()
            .map(|c| c.id)
            .collect();
        got.sort_unstable();
        let mut expected: Vec<u64> = (0..proj.rows())
            .filter(|&i| {
                let pd = dist(proj.row(i), &pq);
                pd > r_lo && pd <= r_hi
            })
            .map(|i| i as u64)
            .collect();
        expected.sort_unstable();
        assert_eq!(got, expected);
    }

    #[test]
    fn fetch_originals_returns_right_vectors() {
        let (idx, _, orig) = build_small();
        let pq: Vec<f32> = vec![0.0; 6];
        let cands = idx.range_candidates(&pq, -1.0, 2.0).unwrap();
        assert!(!cands.is_empty());
        for chunk in cands.chunks(5) {
            // Group by subpart within the chunk.
            for c in chunk {
                let v = idx.fetch_original(c).unwrap();
                let expected: Vec<f32> = orig.row(c.id as usize).to_vec();
                assert_eq!(v, expected, "id {}", c.id);
            }
        }
    }

    #[test]
    fn batched_fetch_reads_each_page_once() {
        let (idx, _, _) = build_small();
        // Pick a sub-partition with several points.
        let sub = (0..idx.subparts().len() as u32)
            .find(|&s| idx.subparts()[s as usize].count >= 4)
            .expect("some subpart with >= 4 points");
        let count = idx.subparts()[sub as usize].count;
        let offsets: Vec<u32> = (0..count.min(6)).collect();

        let mut arena = Vec::new();
        idx.pager().stats().reset();
        idx.pager().clear_cache();
        idx.fetch_originals(sub, &offsets, &mut arena).unwrap();
        let batched = idx.access_stats().logical_reads;
        assert_eq!(arena.len(), offsets.len() * idx.orig_dim());

        idx.pager().stats().reset();
        idx.pager().clear_cache();
        for &o in &offsets {
            idx.fetch_originals(sub, &[o], &mut arena).unwrap();
        }
        let unbatched = idx.access_stats().logical_reads;
        assert!(
            batched <= unbatched,
            "batched {batched} > unbatched {unbatched}"
        );
    }

    #[test]
    fn arena_fetch_matches_whole_subpart_read() {
        let (idx, _, orig) = build_small();
        let d = idx.orig_dim();
        let mut arena = Vec::new();
        for sub in 0..idx.subparts().len() as u32 {
            let count = idx.subparts()[sub as usize].count;
            // Every second record, decoded via the arena path, must match
            // the id-addressed rows of the source matrix.
            let offsets: Vec<u32> = (0..count).step_by(2).collect();
            idx.fetch_originals(sub, &offsets, &mut arena).unwrap();
            assert_eq!(arena.len(), offsets.len() * d);
            let mut scratch = ProjScratch::new();
            idx.read_subpart_proj_into(sub, &mut scratch).unwrap();
            let ids: Vec<u64> = scratch.ids().to_vec();
            for (slot, &off) in offsets.iter().enumerate() {
                let got = &arena[slot * d..(slot + 1) * d];
                assert_eq!(
                    got,
                    orig.row(ids[off as usize] as usize),
                    "sub {sub} off {off}"
                );
            }
        }
    }

    #[test]
    fn arena_fetch_survives_word_straddling_pages() {
        // A page size that is not a multiple of 4 forces f32 records to
        // straddle page boundaries, exercising the partial-word path of
        // fetch_originals.
        let proj = random_matrix(200, 5, 61);
        let orig = random_matrix(200, 7, 62);
        let pager = Arc::new(Pager::in_memory(70, 1 << 16));
        let cfg = IDistanceConfig {
            kp: 3,
            nkey: 6,
            ksp: 2,
            ..Default::default()
        };
        let idx = build_index(pager, &proj, &orig, &cfg).unwrap();
        let mut arena = Vec::new();
        for sub in 0..idx.subparts().len() as u32 {
            let count = idx.subparts()[sub as usize].count;
            let offsets: Vec<u32> = (0..count).collect();
            idx.fetch_originals(sub, &offsets, &mut arena).unwrap();
            let mut scratch = ProjScratch::new();
            idx.read_subpart_proj_into(sub, &mut scratch).unwrap();
            let ids: Vec<u64> = scratch.ids().to_vec();
            for (slot, &id) in ids.iter().enumerate() {
                assert_eq!(
                    &arena[slot * 7..(slot + 1) * 7],
                    orig.row(id as usize),
                    "sub {sub} slot {slot}"
                );
            }
        }
    }

    #[test]
    fn persistence_roundtrip() {
        let dir = std::env::temp_dir().join(format!("promips-idx-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("index.pmx");

        let proj = random_matrix(300, 5, 21);
        let orig = random_matrix(300, 16, 22);
        let stats = promips_storage::AccessStats::new_shared();
        let storage = Arc::new(promips_storage::FileStorage::create(&path, 1024).unwrap());
        let pager = Arc::new(Pager::new(storage, 256, stats));
        let cfg = IDistanceConfig {
            kp: 3,
            nkey: 6,
            ksp: 2,
            ..Default::default()
        };
        let built = build_index(pager, &proj, &orig, &cfg).unwrap();
        let pq: Vec<f32> = vec![0.0; 5];
        let mut before: Vec<u64> = built
            .range_candidates(&pq, -1.0, 2.0)
            .unwrap()
            .into_iter()
            .map(|c| c.id)
            .collect();
        before.sort_unstable();
        drop(built);

        let stats2 = promips_storage::AccessStats::new_shared();
        let storage2 = Arc::new(promips_storage::FileStorage::open(&path, 1024).unwrap());
        let pager2 = Arc::new(Pager::new(storage2, 256, stats2));
        let reopened = IDistanceIndex::open(pager2).unwrap();
        assert_eq!(reopened.len(), 300);
        let mut after: Vec<u64> = reopened
            .range_candidates(&pq, -1.0, 2.0)
            .unwrap()
            .into_iter()
            .map(|c| c.id)
            .collect();
        after.sort_unstable();
        assert_eq!(before, after);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn persistence_roundtrip_keeps_quantized_tier() {
        // The default build writes format v3; reopening must restore both
        // quantized regions and their per-sub-partition quantizers exactly.
        let (idx, _, _) = build_small();
        assert!(idx.quantized());
        assert!(idx.verify_quantized());
        let footer = idx.pager().num_pages() - footer_span_pages(idx.pager().page_size());
        let reopened = IDistanceIndex::open_at(Arc::clone(idx.pager()), footer).unwrap();
        assert!(reopened.quantized());
        assert_eq!(reopened.quant_region(), idx.quant_region());
        assert_eq!(reopened.quants(), idx.quants());
        assert!(reopened.verify_quantized());
        assert_eq!(reopened.vquant_region(), idx.vquant_region());
        assert_eq!(reopened.vquants(), idx.vquants());
        let pq = vec![0.2f32; 6];
        assert_eq!(
            idx.range_candidates(&pq, 0.5, 2.5).unwrap(),
            reopened.range_candidates(&pq, 0.5, 2.5).unwrap()
        );
    }

    #[test]
    fn footer_survives_pages_smaller_than_itself() {
        // The 136-byte footer does not fit a 64-byte page; it must spill
        // onto consecutive pages (not silently truncate) and reopen
        // losslessly — the straddle-coverage page sizes the scan tests use
        // would otherwise build unreopenable files.
        let proj = random_matrix(150, 4, 91);
        let orig = random_matrix(150, 6, 92);
        let pager = Arc::new(Pager::in_memory(64, 1 << 16));
        assert_eq!(footer_span_pages(64), 3);
        let cfg = IDistanceConfig {
            kp: 2,
            nkey: 4,
            ksp: 2,
            ..Default::default()
        };
        let built = build_index(Arc::clone(&pager), &proj, &orig, &cfg).unwrap();
        let pq = vec![0.3f32; 4];
        let before = built.range_candidates(&pq, -1.0, 2.0).unwrap();
        let reopened = IDistanceIndex::open(pager).unwrap();
        assert_eq!(reopened.len(), 150);
        assert!(reopened.quantized());
        assert_eq!(reopened.quants(), built.quants());
        assert!(reopened.verify_quantized());
        assert_eq!(reopened.vquants(), built.vquants());
        assert_eq!(reopened.range_candidates(&pq, -1.0, 2.0).unwrap(), before);
    }

    #[test]
    fn v1_format_files_open_without_quant_tier() {
        // Both tiers off writes the v1 footer (byte-compatible with
        // pre-quantization builds); open must accept it, run the pure-f32
        // scan, and return the same candidates as a quantized twin.
        let proj = random_matrix(400, 5, 31);
        let orig = random_matrix(400, 12, 32);
        let cfg = IDistanceConfig {
            kp: 3,
            nkey: 6,
            ksp: 2,
            quantize: false,
            verify_quantize: false,
            ..Default::default()
        };
        let pager = Arc::new(Pager::in_memory(512, 1 << 16));
        let v1 = build_index(Arc::clone(&pager), &proj, &orig, &cfg).unwrap();
        assert!(!v1.quantized());
        assert!(v1.quants().is_empty());
        assert!(!v1.verify_quantized());
        assert!(v1.vquants().is_empty());
        let reopened = IDistanceIndex::open(pager).unwrap();
        assert!(!reopened.quantized());
        assert!(!reopened.verify_quantized());

        let cfg_v2 = IDistanceConfig {
            quantize: true,
            ..cfg
        };
        let pager2 = Arc::new(Pager::in_memory(512, 1 << 16));
        let v2 = build_index(pager2, &proj, &orig, &cfg_v2).unwrap();
        let pq = vec![0.1f32; 5];
        for &(r_lo, r_hi) in &[(-1.0, 2.0), (0.8, 2.5)] {
            assert_eq!(
                reopened.range_candidates(&pq, r_lo, r_hi).unwrap(),
                v2.range_candidates(&pq, r_lo, r_hi).unwrap(),
                "r = ({r_lo}, {r_hi})"
            );
        }
    }

    #[test]
    fn every_footer_variant_reopens_with_its_tiers() {
        // The four (quantize, verify_quantize) combinations map onto the
        // three footer versions — v1 (off/off), v2 (on/off), v3 (either
        // with verify on, where scan-quant absence is footer-sentinel
        // encoded). Each must reopen with exactly its tiers and return
        // identical candidates and code fetches.
        let proj = random_matrix(300, 5, 41);
        let orig = random_matrix(300, 9, 42);
        for (quantize, verify_quantize) in
            [(false, false), (true, false), (false, true), (true, true)]
        {
            let cfg = IDistanceConfig {
                kp: 3,
                nkey: 6,
                ksp: 2,
                quantize,
                verify_quantize,
                ..Default::default()
            };
            let pager = Arc::new(Pager::in_memory(512, 1 << 16));
            let built = build_index(Arc::clone(&pager), &proj, &orig, &cfg).unwrap();
            let reopened = IDistanceIndex::open(pager).unwrap();
            assert_eq!(
                reopened.quantized(),
                quantize,
                "({quantize}, {verify_quantize})"
            );
            assert_eq!(
                reopened.verify_quantized(),
                verify_quantize,
                "({quantize}, {verify_quantize})"
            );
            assert_eq!(reopened.quants(), built.quants());
            assert_eq!(reopened.vquants(), built.vquants());
            let pq = vec![0.1f32; 5];
            assert_eq!(
                reopened.range_candidates(&pq, -1.0, 2.0).unwrap(),
                built.range_candidates(&pq, -1.0, 2.0).unwrap()
            );
            if verify_quantize {
                let sub = (0..built.subparts().len() as u32)
                    .find(|&s| built.subparts()[s as usize].count >= 3)
                    .expect("a sub-partition with >= 3 points");
                let offsets = [0u32, 2];
                let (mut a, mut b) = (Vec::new(), Vec::new());
                built.fetch_codes(sub, &offsets, &mut a).unwrap();
                reopened.fetch_codes(sub, &offsets, &mut b).unwrap();
                assert_eq!(a, b);
                assert_eq!(a.len(), offsets.len() * built.orig_dim());
            }
        }
    }

    #[test]
    fn fetched_codes_dequantize_to_originals_within_bound() {
        // Codes fetched through the verification region must dequantize
        // back to the stored original vectors within the sub-partition's
        // recorded error bound — the inequality the screen's padding
        // discipline rests on.
        let (idx, _, orig) = build_small();
        assert!(idx.verify_quantized());
        let d = idx.orig_dim();
        let mut codes = Vec::new();
        let mut scratch = ProjScratch::new();
        for sub in 0..idx.subparts().len() as u32 {
            let count = idx.subparts()[sub as usize].count;
            let vq = &idx.vquants()[sub as usize];
            let offsets: Vec<u32> = (0..count).collect();
            idx.fetch_codes(sub, &offsets, &mut codes).unwrap();
            assert_eq!(codes.len(), offsets.len() * d);
            idx.read_subpart_proj_into(sub, &mut scratch).unwrap();
            for (slot, &id) in scratch.ids().iter().enumerate() {
                let row = orig.row(id as usize);
                let mut err_sq = 0.0f64;
                let mut xnorm_sq = 0.0f64;
                for (j, &x) in row.iter().enumerate() {
                    let xhat = vq.min as f64 + vq.scale as f64 * codes[slot * d + j] as f64;
                    err_sq += (x as f64 - xhat) * (x as f64 - xhat);
                    xnorm_sq += xhat * xhat;
                }
                assert!(
                    err_sq.sqrt() <= vq.err as f64,
                    "sub {sub} slot {slot}: ‖x − x̂‖ exceeds the stored bound"
                );
                assert!(
                    xnorm_sq.sqrt() <= vq.xnorm as f64,
                    "sub {sub} slot {slot}: ‖x̂‖ exceeds the stored bound"
                );
            }
        }
    }

    #[test]
    fn search_costs_page_accesses() {
        let (idx, _, _) = build_small();
        idx.pager().clear_cache();
        idx.pager().stats().reset();
        let pq: Vec<f32> = vec![0.0; 6];
        let _ = idx.range_candidates(&pq, -1.0, 1.5).unwrap();
        let snap = idx.access_stats();
        assert!(snap.logical_reads > 0, "search must touch pages");
    }
}
