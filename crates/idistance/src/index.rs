//! The queryable index: annulus range search, point fetches, persistence.

use std::io;
use std::sync::Arc;

use promips_btree::BTree;
use promips_linalg::{dist, sq_dist, sq_dist4};
use promips_storage::{AccessStatsSnapshot, PageBuf, PageId, Pager};

use crate::knn::NnIter;
use crate::layout::{enc, read_blob, read_blob_range, write_blob};
use crate::meta::{PartitionMeta, SubPartMeta};

/// A packed byte region: `(start_page, byte_len)`; pages are consecutive.
pub type Region = (PageId, u64);

const FOOTER_MAGIC: u64 = 0x1D15_7A4C_E01D_F007;

/// A point surfaced by a projected-space range search.
#[derive(Debug, Clone, PartialEq)]
pub struct RangeCandidate {
    /// Point id (row in the original dataset).
    pub id: u64,
    /// Euclidean distance between the projected point and the projected
    /// query.
    pub proj_dist: f64,
    /// Sub-partition holding the point.
    pub subpart: u32,
    /// Record offset inside the sub-partition.
    pub offset: u32,
}

/// A reusable decode arena for projected records: a `u64` id column plus a
/// flat `f32` row arena (row `i` at `rows[i*m .. (i+1)*m]`).
///
/// One scratch serves any number of sequential scans: each
/// [`IDistanceIndex::read_subpart_proj_into`] call clears and refills it, so
/// buffers grow to the largest sub-partition seen and are never reallocated
/// afterwards. This is what makes the annulus range scan allocation-free on
/// its steady-state path — the legacy `Vec<(u64, Vec<f32>)>` decode paid one
/// heap allocation per record.
#[derive(Debug, Default)]
pub struct ProjScratch {
    ids: Vec<u64>,
    rows: Vec<f32>,
    m: usize,
}

impl ProjScratch {
    /// A fresh scratch (buffers allocate lazily on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of decoded records.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the scratch holds no records.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Projected dimensionality of the decoded rows.
    pub fn dim(&self) -> usize {
        self.m
    }

    /// The id column, in record order.
    pub fn ids(&self) -> &[u64] {
        &self.ids
    }

    /// Id of record `i`.
    pub fn id(&self, i: usize) -> u64 {
        self.ids[i]
    }

    /// Projected vector of record `i`.
    pub fn row(&self, i: usize) -> &[f32] {
        &self.rows[i * self.m..(i + 1) * self.m]
    }

    /// The flat row arena (`len() * dim()` floats).
    pub fn rows_flat(&self) -> &[f32] {
        &self.rows
    }

    fn reset(&mut self, m: usize, count: usize) {
        self.m = m;
        self.ids.clear();
        self.rows.clear();
        self.ids.reserve(count);
        self.rows.reserve(count * m);
    }

    /// Calls `f(offset, id, proj_dist)` for every decoded record with its
    /// Euclidean distance to `pq`, four contiguous rows per blocked
    /// [`sq_dist4`] call (the tail runs the single-row kernel).
    ///
    /// A record's position in the block structure is fixed by the
    /// sub-partition layout, so repeated scans — and the range-search and
    /// incremental-NN paths, which both come through here — compute
    /// bit-identical distances for the same point.
    pub fn for_each_dist(&self, pq: &[f32], mut f: impl FnMut(usize, u64, f64)) {
        let m = self.m;
        let n = self.len();
        let rows = &self.rows;
        let mut i = 0;
        while i + 4 <= n {
            let base = i * m;
            let d2 = sq_dist4(
                &rows[base..base + m],
                &rows[base + m..base + 2 * m],
                &rows[base + 2 * m..base + 3 * m],
                &rows[base + 3 * m..base + 4 * m],
                pq,
            );
            f(i, self.ids[i], d2[0].sqrt());
            f(i + 1, self.ids[i + 1], d2[1].sqrt());
            f(i + 2, self.ids[i + 2], d2[2].sqrt());
            f(i + 3, self.ids[i + 3], d2[3].sqrt());
            i += 4;
        }
        for j in i..n {
            f(j, self.ids[j], sq_dist(self.row(j), pq).sqrt());
        }
    }
}

/// A cursor over one packed byte region: fetches covering pages on demand,
/// caches the current page across ranges, and hands the caller maximal
/// in-page byte chunks. Both record decoders ([`IDistanceIndex::
/// fetch_originals`] and the projected-record decoder) walk their ranges
/// through this, so the page-boundary discipline lives in one place.
struct PageCursor<'a> {
    pager: &'a Pager,
    region_start: PageId,
    ps: usize,
    cur: Option<(u64, Arc<PageBuf>)>,
}

impl<'a> PageCursor<'a> {
    fn new(pager: &'a Pager, region_start: PageId) -> Self {
        Self {
            pager,
            region_start,
            ps: pager.page_size(),
            cur: None,
        }
    }

    /// Calls `f` with each maximal in-page chunk of region bytes
    /// `[start, start + len)`, in order. The current page stays cached
    /// across calls, so consecutive ranges touching the same page read it
    /// once (the sequential-read page count the packed layout is for).
    fn walk(&mut self, start: usize, len: usize, mut f: impl FnMut(&[u8])) -> io::Result<()> {
        let mut cursor = start;
        let end = start + len;
        while cursor < end {
            let pid = (cursor / self.ps) as u64;
            if self.cur.as_ref().map(|c| c.0) != Some(pid) {
                self.cur = Some((pid, self.pager.read(self.region_start + pid)?));
            }
            let slice = self.cur.as_ref().expect("page just loaded").1.as_slice();
            let in_page = cursor % self.ps;
            let n = (self.ps - in_page).min(end - cursor);
            f(&slice[in_page..in_page + n]);
            cursor += n;
        }
        Ok(())
    }
}

/// iDistance index handle (see the crate docs for the structure).
pub struct IDistanceIndex {
    pager: Arc<Pager>,
    tree: BTree,
    m: usize,
    d: usize,
    epsilon: f64,
    ring_c: u64,
    proj_region: Region,
    orig_region: Region,
    partitions: Vec<PartitionMeta>,
    subparts: Vec<SubPartMeta>,
    n_points: u64,
}

impl IDistanceIndex {
    /// Internal constructor used by the builder and by [`Self::open`].
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn assemble(
        pager: Arc<Pager>,
        tree: BTree,
        m: usize,
        d: usize,
        epsilon: f64,
        ring_c: u64,
        proj_region: Region,
        orig_region: Region,
        partitions: Vec<PartitionMeta>,
        subparts: Vec<SubPartMeta>,
        n_points: u64,
    ) -> Self {
        Self {
            pager,
            tree,
            m,
            d,
            epsilon,
            ring_c,
            proj_region,
            orig_region,
            partitions,
            subparts,
            n_points,
        }
    }

    /// Projected dimensionality `m`.
    pub fn proj_dim(&self) -> usize {
        self.m
    }

    /// Original dimensionality `d`.
    pub fn orig_dim(&self) -> usize {
        self.d
    }

    /// Ring width `ε`.
    pub fn epsilon(&self) -> f64 {
        self.epsilon
    }

    /// Partition key stride `C` of Formula 6.
    pub fn ring_c(&self) -> u64 {
        self.ring_c
    }

    /// Number of indexed points.
    pub fn len(&self) -> u64 {
        self.n_points
    }

    /// True when the index holds no points.
    pub fn is_empty(&self) -> bool {
        self.n_points == 0
    }

    /// First-stage partitions.
    pub fn partitions(&self) -> &[PartitionMeta] {
        &self.partitions
    }

    /// Sub-partition directory.
    pub fn subparts(&self) -> &[SubPartMeta] {
        &self.subparts
    }

    /// The backing pager (page-access counters live here).
    pub fn pager(&self) -> &Arc<Pager> {
        &self.pager
    }

    /// Convenience: current page-access snapshot.
    pub fn access_stats(&self) -> AccessStatsSnapshot {
        self.pager.stats().snapshot()
    }

    /// Total bytes of the index file (Index Size metric).
    pub fn size_bytes(&self) -> u64 {
        self.pager.size_bytes()
    }

    /// The packed projected-record region `(start_page, byte_len)`.
    pub fn proj_region(&self) -> Region {
        self.proj_region
    }

    /// The packed original-record region `(start_page, byte_len)`.
    pub fn orig_region(&self) -> Region {
        self.orig_region
    }

    // --- Range search ----------------------------------------------------

    /// Annulus range search in the projected space: returns every point with
    /// `r_lo < proj_dist ≤ r_hi`, grouped by sub-partition in directory
    /// order. Pass `r_lo < 0` for a plain ball query.
    ///
    /// Page accesses: B+-tree traversal + projected blobs of sub-partitions
    /// whose pivot sphere intersects the annulus.
    pub fn range_candidates(
        &self,
        pq: &[f32],
        r_lo: f64,
        r_hi: f64,
    ) -> io::Result<Vec<RangeCandidate>> {
        let mut out = Vec::new();
        self.range_candidates_into(pq, r_lo, r_hi, &mut out, &mut ProjScratch::new())?;
        Ok(out)
    }

    /// As [`Self::range_candidates`], but clears and fills a caller-provided
    /// candidate buffer and decodes through a caller-provided arena — the
    /// batched search path reuses one of each per worker thread, so the
    /// steady-state scan performs no per-record (or per-query) heap
    /// allocation at all.
    pub fn range_candidates_into(
        &self,
        pq: &[f32],
        r_lo: f64,
        r_hi: f64,
        out: &mut Vec<RangeCandidate>,
        scratch: &mut ProjScratch,
    ) -> io::Result<()> {
        assert_eq!(pq.len(), self.m, "query has wrong projected dimension");
        out.clear();
        for (part_idx, part) in self.partitions.iter().enumerate() {
            let dc = dist(pq, &part.center);
            if dc - r_hi > part.radius {
                continue; // query ball misses the partition sphere entirely
            }
            let ring_lo = ((dc - r_hi).max(0.0) / self.epsilon).floor() as u64;
            let ring_hi_geom = ((dc + r_hi) / self.epsilon).floor() as u64;
            let ring_cap = (part.radius / self.epsilon).floor() as u64;
            let ring_hi = ring_hi_geom.min(ring_cap);
            if ring_lo > ring_hi {
                continue;
            }
            let key_lo = part_idx as u64 * self.ring_c + ring_lo;
            let key_hi = part_idx as u64 * self.ring_c + ring_hi;
            for entry in self.tree.range(key_lo, key_hi)? {
                let (_key, sub_id) = entry?;
                let sp = &self.subparts[sub_id as usize];
                let dp = dist(pq, &sp.pivot);
                // Sphere filter (paper Fig. 3): skip sub-partitions that
                // cannot contain a point in the annulus.
                if dp - sp.radius > r_hi || dp + sp.radius <= r_lo {
                    continue;
                }
                self.scan_subpart(sub_id as u32, pq, r_lo, r_hi, out, scratch)?;
            }
        }
        Ok(())
    }

    /// Scans one sub-partition's projected blob, appending candidates in the
    /// annulus: one arena decode, then a blocked `sq_dist4` filter over four
    /// contiguous rows at a time.
    fn scan_subpart(
        &self,
        sub: u32,
        pq: &[f32],
        r_lo: f64,
        r_hi: f64,
        out: &mut Vec<RangeCandidate>,
        scratch: &mut ProjScratch,
    ) -> io::Result<()> {
        self.read_subpart_proj_into(sub, scratch)?;
        scratch.for_each_dist(pq, |offset, id, pd| {
            if pd > r_lo && pd <= r_hi {
                out.push(RangeCandidate {
                    id,
                    proj_dist: pd,
                    subpart: sub,
                    offset: offset as u32,
                });
            }
        });
        Ok(())
    }

    /// Decodes a sub-partition's projected records into `scratch` (id
    /// column plus flat row arena), reading the covering pages directly —
    /// no intermediate blob, no per-record allocation.
    pub fn read_subpart_proj_into(&self, sub: u32, scratch: &mut ProjScratch) -> io::Result<()> {
        let sp = &self.subparts[sub as usize];
        self.read_subpart_proj_into_by_meta(sp, scratch)
    }

    /// As [`Self::read_subpart_proj_into`] but from a metadata reference
    /// (used during construction before `self.subparts` is final).
    pub fn read_subpart_proj_into_by_meta(
        &self,
        sp: &SubPartMeta,
        scratch: &mut ProjScratch,
    ) -> io::Result<()> {
        scratch.reset(self.m, sp.count as usize);
        self.decode_proj_records(sp.proj_off as usize, sp.count as usize, scratch)?;
        debug_assert_eq!(scratch.ids.len(), sp.count as usize);
        debug_assert_eq!(scratch.rows.len(), sp.count as usize * self.m);
        Ok(())
    }

    /// Reads a sub-partition's projected records: `(id, projected vector)`.
    ///
    /// Compatibility wrapper over the arena path; allocates one `Vec` per
    /// record.
    #[deprecated(
        since = "0.1.0",
        note = "allocates one Vec per record; decode into a reusable `ProjScratch` \
                via `read_subpart_proj_into` instead"
    )]
    pub fn read_subpart_proj(&self, sub: u32) -> io::Result<Vec<(u64, Vec<f32>)>> {
        let sp = &self.subparts[sub as usize];
        self.proj_records_to_vecs(sp)
    }

    /// As [`Self::read_subpart_proj`] but from a metadata reference.
    #[deprecated(
        since = "0.1.0",
        note = "allocates one Vec per record; decode into a reusable `ProjScratch` \
                via `read_subpart_proj_into_by_meta` instead"
    )]
    pub fn read_subpart_proj_by_meta(&self, sp: &SubPartMeta) -> io::Result<Vec<(u64, Vec<f32>)>> {
        self.proj_records_to_vecs(sp)
    }

    /// Shared body of the deprecated owning wrappers.
    fn proj_records_to_vecs(&self, sp: &SubPartMeta) -> io::Result<Vec<(u64, Vec<f32>)>> {
        let mut scratch = ProjScratch::new();
        self.read_subpart_proj_into_by_meta(sp, &mut scratch)?;
        Ok((0..scratch.len())
            .map(|i| (scratch.id(i), scratch.row(i).to_vec()))
            .collect())
    }

    /// Streams `count` projected records starting at byte `start` of the
    /// projected region into `scratch`, straight from the covering pages.
    /// Fields (an 8-byte id, then `m` 4-byte floats per record) may straddle
    /// page boundaries; a partial field is staged in a small word buffer.
    fn decode_proj_records(
        &self,
        start: usize,
        count: usize,
        scratch: &mut ProjScratch,
    ) -> io::Result<()> {
        let m = self.m;
        let rec = 8 + 4 * m;
        // Field currently being assembled: `need` is 8 while expecting an
        // id, 4 while expecting one of the record's `floats_left` floats.
        let mut field = [0u8; 8];
        let mut have = 0usize;
        let mut need = 8usize;
        let mut floats_left = 0usize;
        let ids = &mut scratch.ids;
        let rows = &mut scratch.rows;
        let mut pages = PageCursor::new(&self.pager, self.proj_region.0);
        pages.walk(start, count * rec, |mut chunk| {
            while !chunk.is_empty() {
                // Bulk path: decode whole floats straight off the page.
                if have == 0 && need == 4 && chunk.len() >= 4 {
                    let take = floats_left.min(chunk.len() / 4);
                    for c in chunk[..take * 4].chunks_exact(4) {
                        rows.push(f32::from_le_bytes(c.try_into().expect("4-byte chunk")));
                    }
                    floats_left -= take;
                    if floats_left == 0 {
                        need = 8;
                    }
                    chunk = &chunk[take * 4..];
                    continue;
                }
                // Bulk path: a whole id inside the chunk.
                if have == 0 && need == 8 && chunk.len() >= 8 {
                    ids.push(u64::from_le_bytes(
                        chunk[..8].try_into().expect("8-byte id"),
                    ));
                    floats_left = m;
                    need = 4;
                    chunk = &chunk[8..];
                    continue;
                }
                // Straddle path: stage bytes until the field completes.
                let take = (need - have).min(chunk.len());
                field[have..have + take].copy_from_slice(&chunk[..take]);
                have += take;
                chunk = &chunk[take..];
                if have < need {
                    continue; // chunk exhausted mid-field
                }
                if need == 8 {
                    ids.push(u64::from_le_bytes(field));
                    floats_left = m;
                    need = 4;
                } else {
                    rows.push(f32::from_le_bytes(
                        field[..4].try_into().expect("4-byte word"),
                    ));
                    floats_left -= 1;
                    if floats_left == 0 {
                        need = 8;
                    }
                }
                have = 0;
            }
        })?;
        debug_assert_eq!(have, 0, "record stream ends on a field boundary");
        Ok(())
    }

    /// Decodes a single projected record into `scratch` (which afterwards
    /// holds exactly that record at index 0) — used by Quick-Probe to read
    /// the located point without allocating a blob per query.
    pub fn fetch_proj_record_into(
        &self,
        sub: u32,
        offset: u32,
        scratch: &mut ProjScratch,
    ) -> io::Result<()> {
        let sp = &self.subparts[sub as usize];
        debug_assert!(offset < sp.count);
        let rec = 8 + 4 * self.m;
        scratch.reset(self.m, 1);
        self.decode_proj_records(sp.proj_off as usize + offset as usize * rec, 1, scratch)
    }

    /// Fetches a single projected record `(id, projected vector)`.
    ///
    /// Compatibility wrapper over [`Self::fetch_proj_record_into`];
    /// allocates the returned vector.
    #[deprecated(
        since = "0.1.0",
        note = "allocates the returned vector; decode into a reusable `ProjScratch` \
                via `fetch_proj_record_into` instead"
    )]
    pub fn fetch_proj_record(&self, sub: u32, offset: u32) -> io::Result<(u64, Vec<f32>)> {
        let mut scratch = ProjScratch::new();
        self.fetch_proj_record_into(sub, offset, &mut scratch)?;
        Ok((scratch.id(0), scratch.row(0).to_vec()))
    }

    // --- Original-vector fetches ------------------------------------------

    /// Fetches the original vectors at the given record offsets of one
    /// sub-partition, decoding them into a flat caller-provided arena:
    /// record `i` of the request lands at `arena[i*d .. (i+1)*d]`. The arena
    /// is cleared first, so buffers can be reused across calls and queries
    /// without per-query allocation.
    ///
    /// Offsets from the search path arrive in ascending record order, so the
    /// covering pages are visited monotonically and each is read exactly
    /// once per call — the sequential-read page count the paper's layout is
    /// designed for. Out-of-order offsets stay correct (a page may just be
    /// re-read).
    pub fn fetch_originals(
        &self,
        sub: u32,
        offsets: &[u32],
        arena: &mut Vec<f32>,
    ) -> io::Result<()> {
        let sp = &self.subparts[sub as usize];
        let rec = 4 * self.d;
        let base = sp.orig_off as usize;
        arena.clear();
        arena.reserve(offsets.len() * self.d);

        let mut pages = PageCursor::new(&self.pager, self.orig_region.0);
        // Partial f32 carried across a page boundary (only possible when the
        // page size is not a multiple of 4; real configurations never hit it).
        let mut word = [0u8; 4];
        let mut have = 0usize;
        for &o in offsets {
            debug_assert!(o < sp.count, "offset out of range");
            pages.walk(base + o as usize * rec, rec, |mut chunk| {
                if have > 0 {
                    let need = (4 - have).min(chunk.len());
                    word[have..have + need].copy_from_slice(&chunk[..need]);
                    have += need;
                    chunk = &chunk[need..];
                    if have < 4 {
                        return; // chunk exhausted while the word is partial
                    }
                    arena.push(f32::from_le_bytes(word));
                }
                let whole = chunk.len() / 4 * 4;
                for c in chunk[..whole].chunks_exact(4) {
                    arena.push(f32::from_le_bytes(c.try_into().expect("4-byte chunk")));
                }
                let rem = &chunk[whole..];
                word[..rem.len()].copy_from_slice(rem);
                have = rem.len();
            })?;
            debug_assert_eq!(have, 0, "record length is a multiple of 4 bytes");
        }
        Ok(())
    }

    /// Fetches a single original vector.
    pub fn fetch_original(&self, cand: &RangeCandidate) -> io::Result<Vec<f32>> {
        let mut arena = Vec::with_capacity(self.d);
        self.fetch_originals(cand.subpart, &[cand.offset], &mut arena)?;
        Ok(arena)
    }

    /// Reads a whole sub-partition's original blob in record order (used by
    /// the scan-everything verification paths and tests).
    pub fn read_subpart_orig(&self, sub: u32) -> io::Result<Vec<Vec<f32>>> {
        let sp = &self.subparts[sub as usize];
        let rec = 4 * self.d;
        let blob = read_blob_range(
            &self.pager,
            self.orig_region.0,
            sp.orig_off as usize,
            sp.count as usize * rec,
        )?;
        let mut pos = 0;
        Ok((0..sp.count)
            .map(|_| enc::get_f32s(&blob, &mut pos, self.d))
            .collect())
    }

    // --- Incremental NN ----------------------------------------------------

    /// Exact incremental nearest-neighbour iteration in the projected space
    /// (best-first over sub-partition lower bounds).
    pub fn nn_iter(&self, pq: &[f32]) -> NnIter<'_> {
        NnIter::new(self, pq)
    }

    // --- Persistence -------------------------------------------------------

    /// Writes the directory blob and a footer page at the end of the file so
    /// [`Self::open`] can reconstruct the handle. Called by the builder.
    pub(crate) fn write_footer(&self) -> io::Result<()> {
        let mut dir = Vec::new();
        enc::put_u32(&mut dir, self.partitions.len() as u32);
        for p in &self.partitions {
            p.encode(&mut dir);
        }
        enc::put_u32(&mut dir, self.subparts.len() as u32);
        for s in &self.subparts {
            s.encode(&mut dir);
        }
        let dir_start = write_blob(&self.pager, &dir)?;

        let ps = self.pager.page_size();
        let mut footer = Vec::with_capacity(ps);
        enc::put_u64(&mut footer, FOOTER_MAGIC);
        enc::put_u64(&mut footer, self.m as u64);
        enc::put_u64(&mut footer, self.d as u64);
        enc::put_f64(&mut footer, self.epsilon);
        enc::put_u64(&mut footer, self.ring_c);
        enc::put_u64(&mut footer, self.proj_region.0);
        enc::put_u64(&mut footer, self.proj_region.1);
        enc::put_u64(&mut footer, self.orig_region.0);
        enc::put_u64(&mut footer, self.orig_region.1);
        enc::put_u64(&mut footer, dir_start);
        enc::put_u64(&mut footer, dir.len() as u64);
        enc::put_u64(&mut footer, self.tree.root());
        enc::put_u64(&mut footer, self.tree.height() as u64);
        enc::put_u64(&mut footer, self.tree.len());
        enc::put_u64(&mut footer, self.n_points);
        footer.resize(ps, 0);
        let mut page = PageBuf::zeroed(ps);
        page.as_mut_slice().copy_from_slice(&footer);
        self.pager.append(page)?;
        self.pager.sync()
    }

    /// Reopens an index from a pager whose **last page** is the footer
    /// written by the builder.
    pub fn open(pager: Arc<Pager>) -> io::Result<Self> {
        let last = pager
            .num_pages()
            .checked_sub(1)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "empty index file"))?;
        Self::open_at(pager, last)
    }

    /// Reopens an index whose footer lives at a known page (used when other
    /// layers — e.g. the full ProMIPS persistence — append their own data
    /// after the iDistance footer).
    pub fn open_at(pager: Arc<Pager>, footer_page: PageId) -> io::Result<Self> {
        let page = pager.read(footer_page)?;
        let buf = page.as_slice();
        let mut pos = 0;
        let magic = enc::get_u64(buf, &mut pos);
        if magic != FOOTER_MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "bad iDistance footer magic",
            ));
        }
        let m = enc::get_u64(buf, &mut pos) as usize;
        let d = enc::get_u64(buf, &mut pos) as usize;
        let epsilon = enc::get_f64(buf, &mut pos);
        let ring_c = enc::get_u64(buf, &mut pos);
        let proj_region = (enc::get_u64(buf, &mut pos), enc::get_u64(buf, &mut pos));
        let orig_region = (enc::get_u64(buf, &mut pos), enc::get_u64(buf, &mut pos));
        let dir_start = enc::get_u64(buf, &mut pos);
        let dir_len = enc::get_u64(buf, &mut pos) as usize;
        let tree_root = enc::get_u64(buf, &mut pos);
        let tree_height = enc::get_u64(buf, &mut pos) as u32;
        let tree_len = enc::get_u64(buf, &mut pos);
        let n_points = enc::get_u64(buf, &mut pos);

        let dir = read_blob(&pager, dir_start, dir_len)?;
        let mut dpos = 0;
        let n_parts = enc::get_u32(&dir, &mut dpos) as usize;
        let partitions: Vec<PartitionMeta> = (0..n_parts)
            .map(|_| PartitionMeta::decode(&dir, &mut dpos))
            .collect();
        let n_subs = enc::get_u32(&dir, &mut dpos) as usize;
        let subparts: Vec<SubPartMeta> = (0..n_subs)
            .map(|_| SubPartMeta::decode(&dir, &mut dpos))
            .collect();

        let tree = BTree::open(Arc::clone(&pager), tree_root, tree_height, tree_len);
        Ok(Self::assemble(
            pager,
            tree,
            m,
            d,
            epsilon,
            ring_c,
            proj_region,
            orig_region,
            partitions,
            subparts,
            n_points,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_index;
    use crate::config::IDistanceConfig;
    use promips_linalg::Matrix;
    use promips_stats::Xoshiro256pp;

    fn random_matrix(n: usize, dims: usize, seed: u64) -> Matrix {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        Matrix::from_rows(
            dims,
            (0..n).map(|_| (0..dims).map(|_| rng.normal() as f32).collect()),
        )
    }

    fn build_small() -> (IDistanceIndex, Matrix, Matrix) {
        let proj = random_matrix(600, 6, 10);
        let orig = random_matrix(600, 24, 11);
        let pager = Arc::new(Pager::in_memory(1024, 1 << 16));
        let cfg = IDistanceConfig {
            kp: 4,
            nkey: 10,
            ksp: 3,
            ..Default::default()
        };
        let idx = build_index(pager, &proj, &orig, &cfg).unwrap();
        (idx, proj, orig)
    }

    #[test]
    fn range_matches_brute_force() {
        let (idx, proj, _) = build_small();
        let mut rng = Xoshiro256pp::seed_from_u64(99);
        for _ in 0..10 {
            let pq: Vec<f32> = (0..6).map(|_| rng.normal() as f32).collect();
            let r = rng.uniform_range(0.5, 3.0);
            let mut got: Vec<u64> = idx
                .range_candidates(&pq, -1.0, r)
                .unwrap()
                .into_iter()
                .map(|c| c.id)
                .collect();
            got.sort_unstable();
            let mut expected: Vec<u64> = (0..proj.rows())
                .filter(|&i| dist(proj.row(i), &pq) <= r)
                .map(|i| i as u64)
                .collect();
            expected.sort_unstable();
            assert_eq!(got, expected, "r={r}");
        }
    }

    #[test]
    fn annulus_excludes_inner_ball() {
        let (idx, proj, _) = build_small();
        let pq: Vec<f32> = vec![0.1; 6];
        let (r_lo, r_hi) = (1.0, 2.5);
        let mut got: Vec<u64> = idx
            .range_candidates(&pq, r_lo, r_hi)
            .unwrap()
            .into_iter()
            .map(|c| c.id)
            .collect();
        got.sort_unstable();
        let mut expected: Vec<u64> = (0..proj.rows())
            .filter(|&i| {
                let pd = dist(proj.row(i), &pq);
                pd > r_lo && pd <= r_hi
            })
            .map(|i| i as u64)
            .collect();
        expected.sort_unstable();
        assert_eq!(got, expected);
    }

    #[test]
    fn fetch_originals_returns_right_vectors() {
        let (idx, _, orig) = build_small();
        let pq: Vec<f32> = vec![0.0; 6];
        let cands = idx.range_candidates(&pq, -1.0, 2.0).unwrap();
        assert!(!cands.is_empty());
        for chunk in cands.chunks(5) {
            // Group by subpart within the chunk.
            for c in chunk {
                let v = idx.fetch_original(c).unwrap();
                let expected: Vec<f32> = orig.row(c.id as usize).to_vec();
                assert_eq!(v, expected, "id {}", c.id);
            }
        }
    }

    #[test]
    fn batched_fetch_reads_each_page_once() {
        let (idx, _, _) = build_small();
        // Pick a sub-partition with several points.
        let sub = (0..idx.subparts().len() as u32)
            .find(|&s| idx.subparts()[s as usize].count >= 4)
            .expect("some subpart with >= 4 points");
        let count = idx.subparts()[sub as usize].count;
        let offsets: Vec<u32> = (0..count.min(6)).collect();

        let mut arena = Vec::new();
        idx.pager().stats().reset();
        idx.pager().clear_cache();
        idx.fetch_originals(sub, &offsets, &mut arena).unwrap();
        let batched = idx.access_stats().logical_reads;
        assert_eq!(arena.len(), offsets.len() * idx.orig_dim());

        idx.pager().stats().reset();
        idx.pager().clear_cache();
        for &o in &offsets {
            idx.fetch_originals(sub, &[o], &mut arena).unwrap();
        }
        let unbatched = idx.access_stats().logical_reads;
        assert!(
            batched <= unbatched,
            "batched {batched} > unbatched {unbatched}"
        );
    }

    #[test]
    fn arena_fetch_matches_whole_subpart_read() {
        let (idx, _, orig) = build_small();
        let d = idx.orig_dim();
        let mut arena = Vec::new();
        for sub in 0..idx.subparts().len() as u32 {
            let count = idx.subparts()[sub as usize].count;
            // Every second record, decoded via the arena path, must match
            // the id-addressed rows of the source matrix.
            let offsets: Vec<u32> = (0..count).step_by(2).collect();
            idx.fetch_originals(sub, &offsets, &mut arena).unwrap();
            assert_eq!(arena.len(), offsets.len() * d);
            let mut scratch = ProjScratch::new();
            idx.read_subpart_proj_into(sub, &mut scratch).unwrap();
            let ids: Vec<u64> = scratch.ids().to_vec();
            for (slot, &off) in offsets.iter().enumerate() {
                let got = &arena[slot * d..(slot + 1) * d];
                assert_eq!(
                    got,
                    orig.row(ids[off as usize] as usize),
                    "sub {sub} off {off}"
                );
            }
        }
    }

    #[test]
    fn arena_fetch_survives_word_straddling_pages() {
        // A page size that is not a multiple of 4 forces f32 records to
        // straddle page boundaries, exercising the partial-word path of
        // fetch_originals.
        let proj = random_matrix(200, 5, 61);
        let orig = random_matrix(200, 7, 62);
        let pager = Arc::new(Pager::in_memory(70, 1 << 16));
        let cfg = IDistanceConfig {
            kp: 3,
            nkey: 6,
            ksp: 2,
            ..Default::default()
        };
        let idx = build_index(pager, &proj, &orig, &cfg).unwrap();
        let mut arena = Vec::new();
        for sub in 0..idx.subparts().len() as u32 {
            let count = idx.subparts()[sub as usize].count;
            let offsets: Vec<u32> = (0..count).collect();
            idx.fetch_originals(sub, &offsets, &mut arena).unwrap();
            let mut scratch = ProjScratch::new();
            idx.read_subpart_proj_into(sub, &mut scratch).unwrap();
            let ids: Vec<u64> = scratch.ids().to_vec();
            for (slot, &id) in ids.iter().enumerate() {
                assert_eq!(
                    &arena[slot * 7..(slot + 1) * 7],
                    orig.row(id as usize),
                    "sub {sub} slot {slot}"
                );
            }
        }
    }

    #[test]
    fn persistence_roundtrip() {
        let dir = std::env::temp_dir().join(format!("promips-idx-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("index.pmx");

        let proj = random_matrix(300, 5, 21);
        let orig = random_matrix(300, 16, 22);
        let stats = promips_storage::AccessStats::new_shared();
        let storage = Arc::new(promips_storage::FileStorage::create(&path, 1024).unwrap());
        let pager = Arc::new(Pager::new(storage, 256, stats));
        let cfg = IDistanceConfig {
            kp: 3,
            nkey: 6,
            ksp: 2,
            ..Default::default()
        };
        let built = build_index(pager, &proj, &orig, &cfg).unwrap();
        let pq: Vec<f32> = vec![0.0; 5];
        let mut before: Vec<u64> = built
            .range_candidates(&pq, -1.0, 2.0)
            .unwrap()
            .into_iter()
            .map(|c| c.id)
            .collect();
        before.sort_unstable();
        drop(built);

        let stats2 = promips_storage::AccessStats::new_shared();
        let storage2 = Arc::new(promips_storage::FileStorage::open(&path, 1024).unwrap());
        let pager2 = Arc::new(Pager::new(storage2, 256, stats2));
        let reopened = IDistanceIndex::open(pager2).unwrap();
        assert_eq!(reopened.len(), 300);
        let mut after: Vec<u64> = reopened
            .range_candidates(&pq, -1.0, 2.0)
            .unwrap()
            .into_iter()
            .map(|c| c.id)
            .collect();
        after.sort_unstable();
        assert_eq!(before, after);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn search_costs_page_accesses() {
        let (idx, _, _) = build_small();
        idx.pager().clear_cache();
        idx.pager().stats().reset();
        let pq: Vec<f32> = vec![0.0; 6];
        let _ = idx.range_candidates(&pq, -1.0, 1.5).unwrap();
        let snap = idx.access_stats();
        assert!(snap.logical_reads > 0, "search must touch pages");
    }
}
