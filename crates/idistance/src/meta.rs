//! Directory metadata: partitions and sub-partitions, with a compact binary
//! codec so the directory itself lives in the paged file (it is part of the
//! paper's Index Size measurement).

use crate::layout::enc::*;

/// A first-stage partition: k-means center and covering radius in the
/// projected space.
#[derive(Debug, Clone, PartialEq)]
pub struct PartitionMeta {
    /// Cluster center `Oi` (m-dim, projected space).
    pub center: Vec<f32>,
    /// Max distance from a member point to `center`.
    pub radius: f64,
    /// Number of points in the partition.
    pub count: u64,
}

/// A sub-partition: one contiguous run of points on disk, filtered by a
/// pivot/radius sphere during range search.
#[derive(Debug, Clone, PartialEq)]
pub struct SubPartMeta {
    /// Ring key of Formula 6 this sub-partition belongs to.
    pub key: u64,
    /// Sub-cluster pivot (m-dim, projected space).
    pub pivot: Vec<f32>,
    /// Max distance from a member to `pivot`.
    pub radius: f64,
    /// Number of points.
    pub count: u32,
    /// Byte offset of this sub-partition's projected records inside the
    /// packed projected region (`count` records of `8 + 4m` bytes each:
    /// point id + projected vector).
    pub proj_off: u64,
    /// Byte offset of the original records inside the packed original
    /// region (`count` records of `4d` bytes, same order as projected).
    pub orig_off: u64,
}

/// Per-sub-partition SQ8 quantizer (format v2): the sub-partition's
/// projected rows are scalar-quantized to u8 codes
/// (`code = round((x − min) / scale)`, one shared affine per sub-partition)
/// and stored as a dense code column in the quantized region.
///
/// `err` is the exact dequantization bound computed at build time:
/// `max over members of ‖x − x̂‖` where `x̂ⱼ = min + scale·codeⱼ`. By the
/// triangle inequality, `|dis(x, q) − dis(x̂, q)| ≤ err` for every query
/// `q`, which is what lets the quantized filter pad the annulus radii and
/// never drop a true candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct SubPartQuant {
    /// Byte offset of this sub-partition's code rows inside the packed
    /// quantized region (`count` rows of `m` bytes each, same record order
    /// as the projected region).
    pub off: u64,
    /// Quantization step (`> 0`; degenerate single-value sub-partitions
    /// store 1.0 with all codes 0).
    pub scale: f32,
    /// Quantization origin (the sub-partition's coordinate minimum).
    pub min: f32,
    /// Upper bound on any member's dequantization distance ‖x − x̂‖
    /// (rounded up when narrowed to f32).
    pub err: f32,
}

impl SubPartQuant {
    /// Serializes into `buf`.
    pub fn encode(&self, buf: &mut Vec<u8>) {
        put_u64(buf, self.off);
        put_f32(buf, self.scale);
        put_f32(buf, self.min);
        put_f32(buf, self.err);
    }

    /// Deserializes from `buf` at `pos`.
    pub fn decode(buf: &[u8], pos: &mut usize) -> Self {
        let off = get_u64(buf, pos);
        let scale = get_f32(buf, pos);
        let min = get_f32(buf, pos);
        let err = get_f32(buf, pos);
        Self {
            off,
            scale,
            min,
            err,
        }
    }
}

/// Per-sub-partition SQ8 quantizer for **original** vectors (format v3):
/// the sub-partition's original d-dim rows are scalar-quantized with one
/// shared affine (`code = round((x − min) / scale)`) and stored as a dense
/// code column in the verification-quant region, in the same record order
/// as the original region.
///
/// The two bounds make the verification screen exact: for any member `x`
/// with dequantization `x̂`, Cauchy–Schwarz gives
/// `|⟨x, q⟩ − ⟨x̂, q̂⟩| ≤ err·‖q‖ + xnorm·‖q − q̂‖`, so a candidate block
/// whose quantized inner product plus that padding still falls below the
/// running k-th best can be skipped without ever reading its f32 rows.
#[derive(Debug, Clone, PartialEq)]
pub struct OrigQuant {
    /// Byte offset of this sub-partition's code rows inside the packed
    /// verification-quant region (`count` rows of `d` bytes each, same
    /// record order as the original region).
    pub off: u64,
    /// Quantization step (`> 0`; degenerate single-value sub-partitions
    /// store 1.0 with all codes 0).
    pub scale: f32,
    /// Quantization origin (the sub-partition's coordinate minimum).
    pub min: f32,
    /// Upper bound on any member's dequantization distance ‖x − x̂‖
    /// (rounded up when narrowed to f32).
    pub err: f32,
    /// Upper bound on any member's dequantized norm ‖x̂‖ (rounded up when
    /// narrowed to f32) — the factor multiplying the query's own
    /// quantization error in the screen bound.
    pub xnorm: f32,
}

impl OrigQuant {
    /// Serializes into `buf`.
    pub fn encode(&self, buf: &mut Vec<u8>) {
        put_u64(buf, self.off);
        put_f32(buf, self.scale);
        put_f32(buf, self.min);
        put_f32(buf, self.err);
        put_f32(buf, self.xnorm);
    }

    /// Deserializes from `buf` at `pos`.
    pub fn decode(buf: &[u8], pos: &mut usize) -> Self {
        let off = get_u64(buf, pos);
        let scale = get_f32(buf, pos);
        let min = get_f32(buf, pos);
        let err = get_f32(buf, pos);
        let xnorm = get_f32(buf, pos);
        Self {
            off,
            scale,
            min,
            err,
            xnorm,
        }
    }
}

impl PartitionMeta {
    /// Serializes into `buf`.
    pub fn encode(&self, buf: &mut Vec<u8>) {
        put_u32(buf, self.center.len() as u32);
        put_f32s(buf, &self.center);
        put_f64(buf, self.radius);
        put_u64(buf, self.count);
    }

    /// Deserializes from `buf` at `pos`.
    pub fn decode(buf: &[u8], pos: &mut usize) -> Self {
        let m = get_u32(buf, pos) as usize;
        let center = get_f32s(buf, pos, m);
        let radius = get_f64(buf, pos);
        let count = get_u64(buf, pos);
        Self {
            center,
            radius,
            count,
        }
    }
}

impl SubPartMeta {
    /// Serializes into `buf`.
    pub fn encode(&self, buf: &mut Vec<u8>) {
        put_u64(buf, self.key);
        put_u32(buf, self.pivot.len() as u32);
        put_f32s(buf, &self.pivot);
        put_f64(buf, self.radius);
        put_u32(buf, self.count);
        put_u64(buf, self.proj_off);
        put_u64(buf, self.orig_off);
    }

    /// Deserializes from `buf` at `pos`.
    pub fn decode(buf: &[u8], pos: &mut usize) -> Self {
        let key = get_u64(buf, pos);
        let m = get_u32(buf, pos) as usize;
        let pivot = get_f32s(buf, pos, m);
        let radius = get_f64(buf, pos);
        let count = get_u32(buf, pos);
        let proj_off = get_u64(buf, pos);
        let orig_off = get_u64(buf, pos);
        Self {
            key,
            pivot,
            radius,
            count,
            proj_off,
            orig_off,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_roundtrip() {
        let p = PartitionMeta {
            center: vec![1.0, -2.0, 3.5],
            radius: 7.25,
            count: 42,
        };
        let mut buf = Vec::new();
        p.encode(&mut buf);
        let mut pos = 0;
        assert_eq!(PartitionMeta::decode(&buf, &mut pos), p);
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn subpart_roundtrip() {
        let s = SubPartMeta {
            key: 99,
            pivot: vec![0.5; 6],
            radius: 1.125,
            count: 17,
            proj_off: 1234,
            orig_off: 5678,
        };
        let mut buf = Vec::new();
        s.encode(&mut buf);
        let mut pos = 0;
        assert_eq!(SubPartMeta::decode(&buf, &mut pos), s);
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn subpart_quant_roundtrip() {
        let q = SubPartQuant {
            off: 4096,
            scale: 0.0321,
            min: -4.75,
            err: 0.064,
        };
        let mut buf = Vec::new();
        q.encode(&mut buf);
        let mut pos = 0;
        assert_eq!(SubPartQuant::decode(&buf, &mut pos), q);
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn orig_quant_roundtrip() {
        let q = OrigQuant {
            off: 65536,
            scale: 0.0107,
            min: -2.5,
            err: 0.031,
            xnorm: 12.75,
        };
        let mut buf = Vec::new();
        q.encode(&mut buf);
        let mut pos = 0;
        assert_eq!(OrigQuant::decode(&buf, &mut pos), q);
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn sequence_roundtrip() {
        let mut buf = Vec::new();
        let parts: Vec<PartitionMeta> = (0..5)
            .map(|i| PartitionMeta {
                center: vec![i as f32; 4],
                radius: i as f64,
                count: i,
            })
            .collect();
        for p in &parts {
            p.encode(&mut buf);
        }
        let mut pos = 0;
        let decoded: Vec<PartitionMeta> = (0..5)
            .map(|_| PartitionMeta::decode(&buf, &mut pos))
            .collect();
        assert_eq!(decoded, parts);
    }
}
