//! Index construction (Algorithm 4 of the paper).
//!
//! 1. Project-space `kp`-means → partitions;
//! 2. ring width `ε = r_avg / Nkey`; key `I(p) = ⌊i·C + dis(p,Oi)/ε⌋`;
//! 3. per-ring `ksp`-means → sub-partitions;
//! 4. sequential disk layout (projected blob + original blob per
//!    sub-partition), single bulk-loaded B+-tree over ring keys;
//! 5. directory + footer written into the same paged file.

use std::collections::BTreeMap;
use std::io;
use std::sync::Arc;

use promips_btree::BTree;
use promips_cluster::{kmeans, KMeansConfig};
use promips_linalg::{dist, Matrix};
use promips_storage::Pager;

use crate::config::IDistanceConfig;
use crate::index::IDistanceIndex;
use crate::layout::{enc, RegionWriter};
use crate::meta::{OrigQuant, PartitionMeta, SubPartMeta, SubPartQuant};

/// Builds an [`IDistanceIndex`] over `proj` (n × m projected points) and
/// `orig` (n × d original points) inside `pager`.
///
/// The row order of `proj` and `orig` must agree: row `i` of both matrices
/// is the same logical point, whose id is `i`.
pub fn build_index(
    pager: Arc<Pager>,
    proj: &Matrix,
    orig: &Matrix,
    config: &IDistanceConfig,
) -> io::Result<IDistanceIndex> {
    assert_eq!(proj.rows(), orig.rows(), "proj/orig row mismatch");
    assert!(!proj.is_empty(), "cannot index an empty dataset");
    let n = proj.rows();
    let m = proj.cols();
    let d = orig.cols();

    // --- Stage 1: kp-means over the projected points. --------------------
    let all: Vec<usize> = (0..n).collect();
    let mut km_cfg = KMeansConfig::new(config.kp, config.seed);
    km_cfg.max_iters = config.kmeans_iters;
    let stage1 = kmeans(proj, &all, &km_cfg);
    let kp = stage1.centroids.rows();

    let partitions: Vec<PartitionMeta> = (0..kp)
        .map(|i| PartitionMeta {
            center: stage1.centroids.row(i).to_vec(),
            radius: stage1.radii[i],
            count: stage1.sizes[i] as u64,
        })
        .collect();

    // --- Ring width ε from the average radius (paper Section VI). --------
    let r_avg = partitions.iter().map(|p| p.radius).sum::<f64>() / kp as f64;
    let mut epsilon = r_avg / config.nkey as f64;
    if epsilon <= 0.0 || epsilon.is_nan() {
        // Degenerate data (all points identical): any positive width works.
        epsilon = 1.0;
    }

    // Ring index of every point; C must exceed every ring index so partition
    // key ranges never overlap (standard iDistance requirement).
    let mut rings = vec![0u64; n];
    let mut max_ring = 0u64;
    for (pos, &row) in all.iter().enumerate() {
        let part = stage1.assignment[pos] as usize;
        let dc = dist(proj.row(row), &partitions[part].center);
        let ring = (dc / epsilon).floor() as u64;
        rings[row] = ring;
        max_ring = max_ring.max(ring);
    }
    let ring_c = max_ring + 2;

    // --- Group by (partition, ring); BTreeMap gives key-sorted layout. ---
    let mut groups: BTreeMap<(usize, u64), Vec<usize>> = BTreeMap::new();
    for (pos, &row) in all.iter().enumerate() {
        let part = stage1.assignment[pos] as usize;
        groups.entry((part, rings[row])).or_default().push(row);
    }

    // --- Stage 2: per-ring ksp-means. -------------------------------------
    // First pass assembles the sub-partition definitions (in key order);
    // the second pass lays them out as two *packed* regions — all projected
    // records, then all original records — so adjacent sub-partitions share
    // pages (the paper's sequential-disk organization).
    struct SubDef {
        key: u64,
        pivot: Vec<f32>,
        radius: f64,
        ids: Vec<usize>,
    }
    let mut defs: Vec<SubDef> = Vec::new();
    let mut sub_seed = config.seed ^ 0x5EED_5EED;
    for (&(part, ring), members) in &groups {
        sub_seed = sub_seed.wrapping_add(0x9E37_79B9);
        // Cap the sub-partition count so thin rings are not shattered into
        // singleton sub-partitions: each sub-partition should hold enough
        // points to fill its disk pages (the µ-selectivity intent of the
        // paper's parameter analysis).
        let ksp = config.ksp.min(members.len().div_ceil(16)).max(1);
        let mut km2 = KMeansConfig::new(ksp, sub_seed);
        km2.max_iters = config.kmeans_iters;
        let stage2 = kmeans(proj, members, &km2);
        let key = part as u64 * ring_c + ring;
        for (c, positions) in stage2.members().into_iter().enumerate() {
            if positions.is_empty() {
                continue;
            }
            // Sort members by point id: the original region then reads in
            // increasing-id order, keeping verification sequential.
            let mut ids: Vec<usize> = positions.iter().map(|&p| members[p]).collect();
            ids.sort_unstable();
            defs.push(SubDef {
                key,
                pivot: stage2.centroids.row(c).to_vec(),
                radius: stage2.radii[c],
                ids,
            });
        }
    }

    // --- Packed projected region. ------------------------------------------
    let mut proj_offs = Vec::with_capacity(defs.len());
    let mut writer = RegionWriter::new(&pager);
    let mut rec = Vec::with_capacity(8 + 4 * m);
    for def in &defs {
        let mut first = None;
        for &id in &def.ids {
            rec.clear();
            enc::put_u64(&mut rec, id as u64);
            enc::put_f32s(&mut rec, proj.row(id));
            let off = writer.append(&rec)?;
            first.get_or_insert(off);
        }
        proj_offs.push(first.expect("sub-partition is non-empty"));
    }
    let proj_region = writer.finish()?;

    // --- Packed original region. -------------------------------------------
    let mut orig_offs = Vec::with_capacity(defs.len());
    let mut writer = RegionWriter::new(&pager);
    let mut rec = Vec::with_capacity(4 * d);
    for def in &defs {
        let mut first = None;
        for &id in &def.ids {
            rec.clear();
            enc::put_f32s(&mut rec, orig.row(id));
            let off = writer.append(&rec)?;
            first.get_or_insert(off);
        }
        orig_offs.push(first.expect("sub-partition is non-empty"));
    }
    let orig_region = writer.finish()?;

    // --- Packed SQ8 quantized region (format v2). ---------------------------
    // Each sub-partition's projected rows are scalar-quantized to u8 codes
    // with one affine (min, scale) per sub-partition; the exact
    // dequantization error bound max ‖x − x̂‖ is computed here so the
    // two-level scan can pad the annulus radii and never drop a true
    // candidate. Codes are m bytes per record (no id column) in the same
    // record order as the projected region — the quantized filter touches a
    // quarter of the bytes the f32 scan would.
    let mut quants: Vec<SubPartQuant> = Vec::new();
    let mut quant_region = None;
    if config.quantize {
        quants.reserve(defs.len());
        let mut writer = RegionWriter::new(&pager);
        let mut rec = Vec::with_capacity(m);
        for def in &defs {
            let mut lo = f32::INFINITY;
            let mut hi = f32::NEG_INFINITY;
            for &id in &def.ids {
                for &x in proj.row(id) {
                    lo = lo.min(x);
                    hi = hi.max(x);
                }
            }
            // Degenerate sub-partitions (single repeated value) quantize
            // exactly with any positive step: every code is 0, x̂ = min.
            let scale = if hi > lo { (hi - lo) / 255.0 } else { 1.0 };
            let inv_scale = 1.0 / scale;
            let mut err_sq_max = 0.0f64;
            let mut first = None;
            for &id in &def.ids {
                rec.clear();
                let mut err_sq = 0.0f64;
                for &x in proj.row(id) {
                    let code = ((x - lo) * inv_scale).round().clamp(0.0, 255.0) as u8;
                    rec.push(code);
                    let e = x as f64 - (lo as f64 + scale as f64 * code as f64);
                    err_sq += e * e;
                }
                err_sq_max = err_sq_max.max(err_sq);
                let off = writer.append(&rec)?;
                first.get_or_insert(off);
            }
            quants.push(SubPartQuant {
                off: first.expect("sub-partition is non-empty"),
                scale,
                min: lo,
                // Round the f32 narrowing up so the stored bound stays an
                // upper bound (1e-6 relative dwarfs the f32 epsilon).
                err: (err_sq_max.sqrt() * (1.0 + 1e-6)) as f32,
            });
        }
        quant_region = Some(writer.finish()?);
    }

    // --- Packed SQ8 verification-quant region (format v3). ------------------
    // Same scheme over the **original** d-dim rows: one affine quantizer per
    // sub-partition, d code bytes per record in original-region order. The
    // verification screen needs two bounds per sub-partition — max ‖x − x̂‖
    // (data-side error) and max ‖x̂‖ (the factor on the query-side error) —
    // both computed exactly here in f64 and rounded up into f32.
    let mut vquants: Vec<OrigQuant> = Vec::new();
    let mut vquant_region = None;
    if config.verify_quantize {
        vquants.reserve(defs.len());
        let mut writer = RegionWriter::new(&pager);
        let mut rec = Vec::with_capacity(d);
        for def in &defs {
            let mut lo = f32::INFINITY;
            let mut hi = f32::NEG_INFINITY;
            for &id in &def.ids {
                for &x in orig.row(id) {
                    lo = lo.min(x);
                    hi = hi.max(x);
                }
            }
            let scale = if hi > lo { (hi - lo) / 255.0 } else { 1.0 };
            let inv_scale = 1.0 / scale;
            let mut err_sq_max = 0.0f64;
            let mut xnorm_sq_max = 0.0f64;
            let mut first = None;
            for &id in &def.ids {
                rec.clear();
                let mut err_sq = 0.0f64;
                let mut xnorm_sq = 0.0f64;
                for &x in orig.row(id) {
                    let code = ((x - lo) * inv_scale).round().clamp(0.0, 255.0) as u8;
                    rec.push(code);
                    let xhat = lo as f64 + scale as f64 * code as f64;
                    let e = x as f64 - xhat;
                    err_sq += e * e;
                    xnorm_sq += xhat * xhat;
                }
                err_sq_max = err_sq_max.max(err_sq);
                xnorm_sq_max = xnorm_sq_max.max(xnorm_sq);
                let off = writer.append(&rec)?;
                first.get_or_insert(off);
            }
            vquants.push(OrigQuant {
                off: first.expect("sub-partition is non-empty"),
                scale,
                min: lo,
                // Round both f32 narrowings up so the stored bounds stay
                // upper bounds (1e-6 relative dwarfs the f32 epsilon).
                err: (err_sq_max.sqrt() * (1.0 + 1e-6)) as f32,
                xnorm: (xnorm_sq_max.sqrt() * (1.0 + 1e-6)) as f32,
            });
        }
        vquant_region = Some(writer.finish()?);
    }

    let mut subparts: Vec<SubPartMeta> = Vec::with_capacity(defs.len());
    let mut tree_entries: Vec<(u64, u64)> = Vec::with_capacity(defs.len());
    for (i, def) in defs.iter().enumerate() {
        subparts.push(SubPartMeta {
            key: def.key,
            pivot: def.pivot.clone(),
            radius: def.radius,
            count: def.ids.len() as u32,
            proj_off: proj_offs[i],
            orig_off: orig_offs[i],
        });
        tree_entries.push((def.key, i as u64));
    }

    // Keys arrive sorted because BTreeMap iterates (partition, ring) in
    // ascending order and key = part·C + ring is monotone in that order.
    debug_assert!(tree_entries.windows(2).all(|w| w[0].0 <= w[1].0));
    let tree = BTree::bulk_load(Arc::clone(&pager), tree_entries)?;

    let index = IDistanceIndex::assemble(
        pager,
        tree,
        m,
        d,
        epsilon,
        ring_c,
        proj_region,
        orig_region,
        quant_region,
        vquant_region,
        partitions,
        subparts,
        quants,
        vquants,
        n as u64,
    );
    index.write_footer()?;
    Ok(index)
}

#[cfg(test)]
mod tests {
    use super::*;
    use promips_stats::Xoshiro256pp;

    fn random_matrix(n: usize, d: usize, seed: u64) -> Matrix {
        let mut rng = Xoshiro256pp::seed_from_u64(seed);
        Matrix::from_rows(
            d,
            (0..n).map(|_| (0..d).map(|_| rng.normal() as f32).collect()),
        )
    }

    #[test]
    fn build_covers_every_point_exactly_once() {
        let proj = random_matrix(500, 6, 1);
        let orig = random_matrix(500, 40, 2);
        let pager = Arc::new(Pager::in_memory(4096, 4096));
        let cfg = IDistanceConfig {
            kp: 3,
            nkey: 8,
            ksp: 3,
            ..Default::default()
        };
        let idx = build_index(pager, &proj, &orig, &cfg).unwrap();

        let total: u64 = idx.subparts().iter().map(|s| s.count as u64).sum();
        assert_eq!(total, 500);
        assert_eq!(idx.len(), 500);

        // Every id appears exactly once across sub-partition blobs.
        let mut seen = vec![false; 500];
        let mut scratch = crate::index::ProjScratch::new();
        for s in 0..idx.subparts().len() {
            idx.read_subpart_proj_into(s as u32, &mut scratch).unwrap();
            for &id in scratch.ids() {
                assert!(!seen[id as usize], "id {id} duplicated");
                seen[id as usize] = true;
            }
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn keys_respect_formula_6() {
        let proj = random_matrix(300, 4, 3);
        let orig = random_matrix(300, 10, 4);
        let pager = Arc::new(Pager::in_memory(1024, 4096));
        let cfg = IDistanceConfig {
            kp: 4,
            nkey: 10,
            ksp: 2,
            ..Default::default()
        };
        let idx = build_index(pager, &proj, &orig, &cfg).unwrap();

        let mut scratch = crate::index::ProjScratch::new();
        for sp in idx.subparts() {
            let part = (sp.key / idx.ring_c()) as usize;
            let ring = sp.key % idx.ring_c();
            assert!(part < idx.partitions().len());
            // Every member's ring index must equal the sub-partition ring.
            // (Reconstruct from the stored projected vectors.)
            idx.read_subpart_proj_into_by_meta(sp, &mut scratch)
                .unwrap();
            for i in 0..scratch.len() {
                let dc = dist(scratch.row(i), &idx.partitions()[part].center);
                assert_eq!((dc / idx.epsilon()).floor() as u64, ring);
            }
        }
    }

    #[test]
    fn degenerate_identical_points() {
        let proj = Matrix::from_rows(3, (0..20).map(|_| vec![1.0f32, 2.0, 3.0]));
        let orig = Matrix::from_rows(5, (0..20).map(|_| vec![0.5f32; 5]));
        let pager = Arc::new(Pager::in_memory(512, 1024));
        let cfg = IDistanceConfig {
            kp: 2,
            nkey: 4,
            ksp: 2,
            ..Default::default()
        };
        let idx = build_index(pager, &proj, &orig, &cfg).unwrap();
        assert_eq!(idx.len(), 20);
        let total: u64 = idx.subparts().iter().map(|s| s.count as u64).sum();
        assert_eq!(total, 20);
    }
}
