//! Index construction parameters.

/// Parameters of the two-stage partition pattern (paper Section VI and the
/// experimental defaults of Section VIII-A4).
#[derive(Debug, Clone)]
pub struct IDistanceConfig {
    /// Number of first-stage partitions (`kp` in the paper; default 5).
    pub kp: usize,
    /// Rings per average partition radius (`Nkey`; default 40).
    pub nkey: usize,
    /// Sub-partitions per ring (`ksp`; default 10).
    pub ksp: usize,
    /// Lloyd iterations for both clustering stages.
    pub kmeans_iters: usize,
    /// Seed for the clustering RNG.
    pub seed: u64,
    /// Whether to build the SQ8 quantized filter tier: a dense u8 code
    /// column per sub-partition (1 byte per projected coordinate instead of
    /// 4) that the annulus scan filters first, decoding only surviving
    /// 4-row blocks through the exact f32 path. The quantized filter is
    /// padded by the per-sub-partition quantization error bound, so scan
    /// results are **bit-identical** with the tier on or off — `false` only
    /// trades scan speed for a slightly smaller file (and writes the
    /// version-1 on-disk format, which current builds can still open).
    pub quantize: bool,
    /// Whether to build the SQ8 verification tier: a dense u8 code column
    /// over the **original** d-dim vectors (one affine quantizer per
    /// sub-partition, like `quantize`'s projected-space column) that the
    /// verification path screens with integer kernels before fetching f32
    /// rows — only candidate blocks whose quantized inner product plus the
    /// exact error-bound padding can still reach the running top-k are
    /// rescored exactly. Screening never drops a true top-k member, so
    /// search results are **bit-identical** with the tier on or off;
    /// `false` trades verification speed for a smaller file. Builds with
    /// this tier write the version-3 on-disk format (v1/v2 files still
    /// open, verifying pure-f32).
    pub verify_quantize: bool,
}

impl Default for IDistanceConfig {
    fn default() -> Self {
        Self {
            kp: 5,
            nkey: 40,
            ksp: 10,
            kmeans_iters: 20,
            seed: 0x1D15_7A4C,
            quantize: true,
            verify_quantize: true,
        }
    }
}

impl IDistanceConfig {
    /// The paper's selectivity `µ = 1 / (kp · Nkey · ksp)`: the expected
    /// fraction of the dataset in one sub-partition.
    pub fn selectivity(&self) -> f64 {
        1.0 / (self.kp as f64 * self.nkey as f64 * self.ksp as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let c = IDistanceConfig::default();
        assert_eq!((c.kp, c.nkey, c.ksp), (5, 40, 10));
    }

    #[test]
    fn selectivity_formula() {
        let c = IDistanceConfig::default();
        assert!((c.selectivity() - 1.0 / 2000.0).abs() < 1e-12);
    }
}
