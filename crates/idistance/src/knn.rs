//! Exact incremental nearest-neighbour iteration (best-first search).
//!
//! MIP-Search-I (Algorithm 1 of the paper) consumes the projected query's
//! neighbours **one at a time in ascending distance order**, testing the
//! searching conditions after each. This iterator delivers exactly that
//! stream using the Hjaltason–Samet best-first strategy over the
//! sub-partition directory: a min-heap holds sub-partitions keyed by their
//! sphere lower bound `max(0, dis(pq, pivot) − radius)` and points keyed by
//! their true projected distance; a point popped from the heap is guaranteed
//! to be the next nearest because every unread sub-partition's bound is not
//! smaller.
//!
//! Page accesses accrue lazily: a sub-partition's projected blob is read
//! only when its bound reaches the head of the heap, matching how the
//! paper's incremental search expands its ring range on demand.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::io;

use promips_linalg::dist;

use crate::index::{IDistanceIndex, ProjScratch, RangeCandidate};

enum Entry {
    SubPart(u32),
    Point(RangeCandidate),
}

struct HeapItem {
    dist: f64,
    seq: u64,
    entry: Entry,
}

impl PartialEq for HeapItem {
    fn eq(&self, other: &Self) -> bool {
        self.dist == other.dist && self.seq == other.seq
    }
}
impl Eq for HeapItem {}
impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse ordering: BinaryHeap is a max-heap, we need min-dist first.
        other
            .dist
            .total_cmp(&self.dist)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// Iterator yielding points in ascending projected distance from `pq`.
pub struct NnIter<'a> {
    index: &'a IDistanceIndex,
    pq: Vec<f32>,
    heap: BinaryHeap<HeapItem>,
    seq: u64,
    error: Option<io::Error>,
    /// Reused across sub-partition expansions, so steady-state iteration
    /// performs no per-record decode allocation (same arena discipline as
    /// the range scan).
    scratch: ProjScratch,
}

impl<'a> NnIter<'a> {
    pub(crate) fn new(index: &'a IDistanceIndex, pq: &[f32]) -> Self {
        assert_eq!(pq.len(), index.proj_dim(), "query dimension mismatch");
        let mut heap = BinaryHeap::with_capacity(index.subparts().len());
        let mut seq = 0;
        for (sub_id, sp) in index.subparts().iter().enumerate() {
            let bound = (dist(pq, &sp.pivot) - sp.radius).max(0.0);
            heap.push(HeapItem {
                dist: bound,
                seq,
                entry: Entry::SubPart(sub_id as u32),
            });
            seq += 1;
        }
        Self {
            index,
            pq: pq.to_vec(),
            heap,
            seq,
            error: None,
            scratch: ProjScratch::new(),
        }
    }

    /// Returns the I/O error that terminated iteration, if any.
    pub fn take_error(&mut self) -> Option<io::Error> {
        self.error.take()
    }
}

impl Iterator for NnIter<'_> {
    type Item = RangeCandidate;

    fn next(&mut self) -> Option<Self::Item> {
        if self.error.is_some() {
            return None;
        }
        while let Some(item) = self.heap.pop() {
            match item.entry {
                Entry::Point(cand) => return Some(cand),
                Entry::SubPart(sub) => {
                    if let Err(e) = self.index.read_subpart_proj_into(sub, &mut self.scratch) {
                        self.error = Some(e);
                        return None;
                    }
                    // Distances come from the same blocked sq_dist4 pass the
                    // range scan uses, so both paths agree bit-for-bit on a
                    // point's projected distance.
                    let Self {
                        heap,
                        seq,
                        scratch,
                        pq,
                        ..
                    } = self;
                    let bound = item.dist;
                    scratch.for_each_dist(pq, |offset, id, pd| {
                        debug_assert!(pd >= bound - 1e-9, "point closer than sub-partition bound");
                        heap.push(HeapItem {
                            dist: pd,
                            seq: *seq,
                            entry: Entry::Point(RangeCandidate {
                                id,
                                proj_dist: pd,
                                subpart: sub,
                                offset: offset as u32,
                            }),
                        });
                        *seq += 1;
                    });
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build_index;
    use crate::config::IDistanceConfig;
    use promips_linalg::Matrix;
    use promips_stats::Xoshiro256pp;
    use promips_storage::Pager;
    use std::sync::Arc;

    fn setup(n: usize, m: usize) -> (IDistanceIndex, Matrix) {
        let mut rng = Xoshiro256pp::seed_from_u64(31);
        let proj = Matrix::from_rows(
            m,
            (0..n).map(|_| (0..m).map(|_| rng.normal() as f32).collect()),
        );
        let orig = Matrix::from_rows(
            8,
            (0..n).map(|_| (0..8).map(|_| rng.normal() as f32).collect()),
        );
        let pager = Arc::new(Pager::in_memory(1024, 1 << 16));
        let cfg = IDistanceConfig {
            kp: 3,
            nkey: 8,
            ksp: 3,
            ..Default::default()
        };
        (build_index(pager, &proj, &orig, &cfg).unwrap(), proj)
    }

    #[test]
    fn yields_all_points_in_distance_order() {
        let (idx, proj) = setup(400, 5);
        let pq: Vec<f32> = vec![0.25; 5];
        let stream: Vec<RangeCandidate> = idx.nn_iter(&pq).collect();
        assert_eq!(stream.len(), 400);
        // Ascending distances.
        assert!(stream
            .windows(2)
            .all(|w| w[0].proj_dist <= w[1].proj_dist + 1e-12));
        // Matches brute force ordering (by distance value).
        let mut expected: Vec<f64> = (0..400).map(|i| dist(proj.row(i), &pq)).collect();
        expected.sort_by(|a, b| a.total_cmp(b));
        for (c, e) in stream.iter().zip(&expected) {
            assert!((c.proj_dist - e).abs() < 1e-9);
        }
    }

    #[test]
    fn first_neighbour_is_true_nn() {
        let (idx, proj) = setup(300, 4);
        let mut rng = Xoshiro256pp::seed_from_u64(77);
        for _ in 0..5 {
            let pq: Vec<f32> = (0..4).map(|_| rng.normal() as f32).collect();
            let first = idx.nn_iter(&pq).next().unwrap();
            let (best, _) = (0..300)
                .map(|i| (i, dist(proj.row(i), &pq)))
                .min_by(|a, b| a.1.total_cmp(&b.1))
                .unwrap();
            assert_eq!(first.id, best as u64);
        }
    }

    #[test]
    fn lazy_reading_saves_pages() {
        let (idx, _) = setup(500, 5);
        let pq: Vec<f32> = vec![0.0; 5];

        idx.pager().clear_cache();
        idx.pager().stats().reset();
        let _first10: Vec<_> = idx.nn_iter(&pq).take(10).collect();
        let partial = idx.access_stats().logical_reads;

        idx.pager().clear_cache();
        idx.pager().stats().reset();
        let _all: Vec<_> = idx.nn_iter(&pq).collect();
        let full = idx.access_stats().logical_reads;

        assert!(partial < full, "partial={partial} full={full}");
    }
}
