//! The lightweight iDistance index with ProMIPS's partition pattern.
//!
//! Standard iDistance (Jagadish et al., TODS 2005) partitions space around
//! reference points and maps every point to the one-dimensional key
//! `i·C + dis(p, Oi)`, indexed by a B+-tree. Section VI of the ProMIPS paper
//! refines this with a **two-stage pattern**:
//!
//! 1. `kp`-means clusters the projected points into partitions with centers
//!    `Oi` and radii `ri`;
//! 2. each partition is cut into `Nkey` rings of width `ε = r_avg / Nkey`,
//!    and a point's key is `I(p) = ⌊i·C + dis(p, Oi)/ε⌋` (Formula 6);
//! 3. the points of each ring are further clustered into `ksp`
//!    **sub-partitions** via k-means; each sub-partition keeps a pivot and a
//!    radius and its points are laid out **contiguously on disk**, so a
//!    range query can discard whole sub-partitions with one sphere test and
//!    read surviving ones sequentially.
//!
//! The index stores the projected (m-dim) vectors and the original (d-dim)
//! vectors in parallel blobs in sub-partition order, all inside one paged
//! file together with the single B+-tree — the paper's "lightweight index".
//!
//! Two search primitives are exposed:
//! * [`IDistanceIndex::range_candidates`] — annulus range search in the
//!   projected space (drives MIP-Search-II / Quick-Probe);
//! * [`IDistanceIndex::nn_iter`] — exact incremental nearest-neighbour
//!   iteration, best-first over sub-partition bounds (drives MIP-Search-I).

pub mod build;
pub mod config;
pub mod index;
pub mod knn;
pub mod layout;
pub mod meta;

pub use build::build_index;
pub use config::IDistanceConfig;
pub use index::{footer_span_pages, IDistanceIndex, ProjScratch, RangeCandidate};
pub use knn::NnIter;
