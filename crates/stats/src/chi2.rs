//! Chi-square distribution: CDF `Ψm(x)`, PDF, and inverse CDF `Ψm⁻¹(p)`.
//!
//! In the paper's notation (Table I), `Ψm(x)` is the CDF of the chi-square
//! distribution with `m` degrees of freedom. Condition B tests
//! `Ψm(ratio) ≥ p` and the Quick-Probe compensation radius is
//! `r' = sqrt(Ψm⁻¹(p) · (‖oM‖² + ‖q‖² − 2⟨omax,q⟩/c))`.

use crate::gamma::{ln_gamma, reg_gamma_lower};
use crate::normal::normal_inv_cdf;

/// CDF of the chi-square distribution with `m` degrees of freedom:
/// `Ψm(x) = P(m/2, x/2)`.
///
/// Returns 0 for `x ≤ 0`.
pub fn chi2_cdf(m: u32, x: f64) -> f64 {
    debug_assert!(m > 0, "chi2_cdf requires m >= 1");
    if x <= 0.0 {
        return 0.0;
    }
    reg_gamma_lower(m as f64 / 2.0, x / 2.0)
}

/// PDF of the chi-square distribution with `m` degrees of freedom.
pub fn chi2_pdf(m: u32, x: f64) -> f64 {
    debug_assert!(m > 0, "chi2_pdf requires m >= 1");
    if x <= 0.0 {
        return 0.0;
    }
    let a = m as f64 / 2.0;
    ((a - 1.0) * x.ln() - x / 2.0 - a * std::f64::consts::LN_2 - ln_gamma(a)).exp()
}

/// Inverse CDF (quantile) `Ψm⁻¹(p)`: the `x` such that `chi2_cdf(m, x) = p`.
///
/// Uses the Wilson–Hilferty normal approximation as the starting point and
/// polishes with Newton iterations, falling back to bisection whenever a
/// Newton step leaves the current bracket. Accuracy is ~1e-12 in `p` space.
///
/// # Panics
/// Panics if `p` is outside `(0, 1)` (the open interval); the endpoints map
/// to 0 and +∞ which are not useful as search radii.
pub fn chi2_inv_cdf(m: u32, p: f64) -> f64 {
    assert!(
        p > 0.0 && p < 1.0,
        "chi2_inv_cdf requires p in (0,1), got {p}"
    );
    let df = m as f64;

    // Wilson–Hilferty: X ≈ m(1 − 2/(9m) + z√(2/(9m)))³.
    let z = normal_inv_cdf(p);
    let t = 1.0 - 2.0 / (9.0 * df) + z * (2.0 / (9.0 * df)).sqrt();
    let mut x = (df * t * t * t).max(1e-12);

    // Establish a bracket [lo, hi] with cdf(lo) <= p <= cdf(hi).
    let mut lo = 0.0;
    let mut hi = x.max(df);
    while chi2_cdf(m, hi) < p {
        lo = hi;
        hi *= 2.0;
        if hi > 1e300 {
            return hi;
        }
    }
    if chi2_cdf(m, x) > p {
        // start inside the bracket
        x = 0.5 * (lo + hi.min(x));
    }

    for _ in 0..200 {
        let f = chi2_cdf(m, x) - p;
        if f.abs() < 1e-13 {
            break;
        }
        if f > 0.0 {
            hi = x;
        } else {
            lo = x;
        }
        let d = chi2_pdf(m, x);
        let newton = if d > 1e-300 { x - f / d } else { f64::NAN };
        x = if newton.is_finite() && newton > lo && newton < hi {
            newton
        } else {
            0.5 * (lo + hi)
        };
        if (hi - lo) < 1e-13 * (1.0 + x.abs()) {
            break;
        }
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(actual: f64, expected: f64, tol: f64) {
        assert!(
            (actual - expected).abs() <= tol,
            "expected {expected}, got {actual}"
        );
    }

    #[test]
    fn cdf_reference_values() {
        // From standard chi-square tables / scipy.stats.chi2.cdf.
        assert_close(chi2_cdf(1, 3.841_458_820_694_124), 0.95, 1e-10);
        assert_close(chi2_cdf(2, 5.991_464_547_107_979), 0.95, 1e-10);
        assert_close(chi2_cdf(10, 18.307_038_053_275_143), 0.95, 1e-10);
        // chi2(2) is Exp(1/2): CDF(x) = 1 − e^{−x/2}.
        for &x in &[0.5, 1.0, 2.0, 7.0] {
            assert_close(chi2_cdf(2, x), 1.0 - (-x / 2.0f64).exp(), 1e-13);
        }
    }

    #[test]
    fn cdf_zero_and_negative() {
        assert_eq!(chi2_cdf(4, 0.0), 0.0);
        assert_eq!(chi2_cdf(4, -1.0), 0.0);
    }

    #[test]
    fn median_close_to_df() {
        // chi2(2) is Exp(1/2), so its median is exactly 2·ln 2.
        assert_close(chi2_inv_cdf(2, 0.5), 2.0 * std::f64::consts::LN_2, 1e-10);
        // For larger m the Wilson–Hilferty approximation m(1 − 2/(9m))³ is
        // accurate to well under 1%.
        for &m in &[6u32, 8, 10, 20] {
            let med = chi2_inv_cdf(m, 0.5);
            let approx = m as f64 * (1.0 - 2.0 / (9.0 * m as f64)).powi(3);
            assert!(
                (med - approx).abs() / approx < 0.01,
                "m={m}: {med} vs {approx}"
            );
        }
    }

    #[test]
    fn inverse_roundtrip() {
        for &m in &[1u32, 2, 6, 8, 10, 30, 100] {
            for &p in &[0.01, 0.1, 0.3, 0.5, 0.7, 0.9, 0.99, 0.999] {
                let x = chi2_inv_cdf(m, p);
                assert_close(chi2_cdf(m, x), p, 1e-9);
            }
        }
    }

    #[test]
    fn inverse_monotone_in_p() {
        for &m in &[6u32, 10] {
            let mut prev = 0.0;
            for i in 1..100 {
                let p = i as f64 / 100.0;
                let x = chi2_inv_cdf(m, p);
                assert!(x > prev, "quantile not monotone at m={m}, p={p}");
                prev = x;
            }
        }
    }

    #[test]
    fn pdf_integrates_to_cdf() {
        // Trapezoidal integration of the pdf should recover the cdf.
        let m = 6;
        let steps = 12_000usize;
        let step = 12.0 / steps as f64;
        let mut acc = 0.0;
        for i in 0..steps {
            let x = i as f64 * step;
            acc += step * 0.5 * (chi2_pdf(m, x) + chi2_pdf(m, x + step));
        }
        assert_close(acc, chi2_cdf(m, 12.0), 1e-6);
    }

    #[test]
    #[should_panic]
    fn inverse_rejects_p_one() {
        chi2_inv_cdf(4, 1.0);
    }
}
