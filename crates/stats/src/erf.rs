//! Error function, expressed through the regularized incomplete gamma
//! function: `erf(x) = sign(x) · P(1/2, x²)`.

use crate::gamma::{reg_gamma_lower, reg_gamma_upper};

/// The error function `erf(x) = (2/√π) ∫₀ˣ e^{−t²} dt`.
pub fn erf(x: f64) -> f64 {
    if x == 0.0 {
        return 0.0;
    }
    let p = reg_gamma_lower(0.5, x * x);
    if x > 0.0 {
        p
    } else {
        -p
    }
}

/// The complementary error function `erfc(x) = 1 − erf(x)`.
///
/// Evaluated via the *upper* incomplete gamma for positive `x` so that the
/// tail keeps full relative precision (important for the QALSH baseline's
/// collision probabilities at large separations).
pub fn erfc(x: f64) -> f64 {
    if x == 0.0 {
        return 1.0;
    }
    if x > 0.0 {
        reg_gamma_upper(0.5, x * x)
    } else {
        1.0 + reg_gamma_lower(0.5, x * x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(actual: f64, expected: f64, tol: f64) {
        assert!(
            (actual - expected).abs() <= tol,
            "expected {expected}, got {actual}"
        );
    }

    #[test]
    fn erf_reference_values() {
        assert_close(erf(0.5), 0.520_499_877_813_046_5, 1e-12);
        assert_close(erf(1.0), 0.842_700_792_949_714_9, 1e-12);
        assert_close(erf(2.0), 0.995_322_265_018_952_7, 1e-12);
        assert_close(erf(-1.0), -0.842_700_792_949_714_9, 1e-12);
    }

    #[test]
    fn erf_is_odd() {
        for i in 0..50 {
            let x = i as f64 * 0.1;
            assert_close(erf(-x), -erf(x), 1e-15);
        }
    }

    #[test]
    fn erfc_complements_erf() {
        for i in -30..30 {
            let x = i as f64 * 0.2;
            assert_close(erf(x) + erfc(x), 1.0, 1e-12);
        }
    }

    #[test]
    fn erfc_tail_precision() {
        // erfc(3) ≈ 2.209e-5; the complementary path must not lose it to
        // cancellation.
        assert_close(erfc(3.0), 2.209_049_699_858_544e-5, 1e-17);
        assert!(erfc(6.0) > 0.0 && erfc(6.0) < 1e-15);
    }
}
