//! Statistical special functions and deterministic random number generation
//! for the ProMIPS reproduction.
//!
//! ProMIPS's probability-guaranteed searching conditions (Theorems 1–2 of the
//! paper) are built on the fact that for 2-stable random projections the ratio
//! `dis²(P(o),P(q)) / dis²(o,q)` follows a chi-square distribution with `m`
//! degrees of freedom. Evaluating Condition B therefore needs the chi-square
//! CDF `Ψm(x)`, and the Quick-Probe compensation step needs its inverse
//! `Ψm⁻¹(p)`. Neither is in `std`, so this crate implements them from first
//! principles (Lanczos log-gamma, regularized incomplete gamma by series /
//! continued fraction, Wilson–Hilferty-seeded Newton inversion), together
//! with the normal distribution (needed by the QALSH baseline's collision
//! probabilities) and a small, fully deterministic PRNG (xoshiro256++ with
//! Box–Muller Gaussians) so every experiment in the repository is
//! bit-reproducible.

pub mod chi2;
pub mod erf;
pub mod gamma;
pub mod normal;
pub mod rng;

pub use chi2::{chi2_cdf, chi2_inv_cdf, chi2_pdf};
pub use erf::{erf, erfc};
pub use gamma::{ln_gamma, reg_gamma_lower, reg_gamma_upper};
pub use normal::{normal_cdf, normal_inv_cdf, normal_pdf};
pub use rng::SplitMix64;
pub use rng::Xoshiro256pp;
