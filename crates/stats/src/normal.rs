//! Standard normal distribution: PDF, CDF, and quantile function.
//!
//! Needed for (a) the Wilson–Hilferty starting point of the chi-square
//! quantile, and (b) the QALSH baseline, whose collision probability for
//! points at distance `s` is `p(s) = 1 − 2·Φ(−w/(2s))` where `Φ` is the
//! standard normal CDF.

use crate::erf::erfc;

const SQRT_2: f64 = std::f64::consts::SQRT_2;

/// PDF of the standard normal distribution.
pub fn normal_pdf(x: f64) -> f64 {
    (-(x * x) / 2.0).exp() / (2.0 * std::f64::consts::PI).sqrt()
}

/// CDF of the standard normal distribution, `Φ(x)`.
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / SQRT_2)
}

/// Quantile (inverse CDF) of the standard normal distribution.
///
/// Peter Acklam's rational approximation (relative error < 1.15e-9),
/// refined by one Halley step against the exact CDF, giving ~1e-15 accuracy.
///
/// # Panics
/// Panics if `p` is outside `(0, 1)`.
pub fn normal_inv_cdf(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "normal_inv_cdf domain (0,1), got {p}");

    // Coefficients for the central and tail rational approximations.
    const A: [f64; 6] = [
        -3.969_683_028_665_376e1,
        2.209_460_984_245_205e2,
        -2.759_285_104_469_687e2,
        1.383_577_518_672_69e2,
        -3.066_479_806_614_716e1,
        2.506_628_277_459_239,
    ];
    const B: [f64; 5] = [
        -5.447_609_879_822_406e1,
        1.615_858_368_580_409e2,
        -1.556_989_798_598_866e2,
        6.680_131_188_771_972e1,
        -1.328_068_155_288_572e1,
    ];
    const C: [f64; 6] = [
        -7.784_894_002_430_293e-3,
        -3.223_964_580_411_365e-1,
        -2.400_758_277_161_838,
        -2.549_732_539_343_734,
        4.374_664_141_464_968,
        2.938_163_982_698_783,
    ];
    const D: [f64; 4] = [
        7.784_695_709_041_462e-3,
        3.224_671_290_700_398e-1,
        2.445_134_137_142_996,
        3.754_408_661_907_416,
    ];
    const P_LOW: f64 = 0.02425;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One Halley refinement step against the exact CDF.
    let e = normal_cdf(x) - p;
    let u = e * (2.0 * std::f64::consts::PI).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(actual: f64, expected: f64, tol: f64) {
        assert!(
            (actual - expected).abs() <= tol,
            "expected {expected}, got {actual}"
        );
    }

    #[test]
    fn cdf_reference_values() {
        assert_close(normal_cdf(0.0), 0.5, 1e-15);
        assert_close(normal_cdf(1.0), 0.841_344_746_068_542_9, 1e-12);
        assert_close(normal_cdf(-1.0), 0.158_655_253_931_457_07, 1e-12);
        assert_close(normal_cdf(1.959_963_984_540_054), 0.975, 1e-12);
    }

    #[test]
    fn quantile_reference_values() {
        assert_close(normal_inv_cdf(0.5), 0.0, 1e-12);
        assert_close(normal_inv_cdf(0.975), 1.959_963_984_540_054, 1e-10);
        assert_close(normal_inv_cdf(0.025), -1.959_963_984_540_054, 1e-10);
        assert_close(normal_inv_cdf(0.999), 3.090_232_306_167_813_6, 1e-9);
    }

    #[test]
    fn quantile_roundtrip() {
        for i in 1..999 {
            let p = i as f64 / 1000.0;
            assert_close(normal_cdf(normal_inv_cdf(p)), p, 1e-12);
        }
    }

    #[test]
    fn pdf_symmetric_and_peak() {
        assert_close(normal_pdf(0.0), 0.398_942_280_401_432_7, 1e-14);
        for i in 0..40 {
            let x = i as f64 * 0.1;
            assert_close(normal_pdf(x), normal_pdf(-x), 1e-16);
        }
    }
}
