//! Deterministic pseudo-random number generation.
//!
//! Every randomized component of the reproduction — 2-stable projection
//! vectors, k-means seeding, dataset generators, LSH hash functions — draws
//! from [`Xoshiro256pp`], seeded through [`SplitMix64`]. Keeping the PRNG
//! in-tree (rather than depending on `rand_distr`) makes every experiment
//! bit-reproducible across platforms and keeps the dependency set to the
//! approved list.

/// SplitMix64: used to expand a single `u64` seed into xoshiro's 256-bit
/// state. Also a perfectly serviceable (if statistically weaker) generator
/// in its own right for seeding hierarchies.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from an arbitrary seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256++ by Blackman & Vigna: fast, high-quality, 256-bit state.
///
/// The generator also carries a cached Box–Muller spare so consecutive calls
/// to [`Xoshiro256pp::normal`] cost one transcendental pair per two samples.
#[derive(Debug, Clone)]
pub struct Xoshiro256pp {
    s: [u64; 4],
    gauss_spare: Option<f64>,
}

impl Xoshiro256pp {
    /// Seeds the full 256-bit state from a single `u64` via SplitMix64,
    /// as recommended by the xoshiro authors.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        Self {
            s,
            gauss_spare: None,
        }
    }

    /// Next 64 uniformly distributed bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    #[inline]
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo < hi);
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)` using Lemire's nearly-divisionless method.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut l = m as u64;
        if l < n {
            let t = n.wrapping_neg() % n;
            while l < t {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Standard normal sample via the Box–Muller transform (with caching of
    /// the second value of each generated pair).
    pub fn normal(&mut self) -> f64 {
        if let Some(spare) = self.gauss_spare.take() {
            return spare;
        }
        // Draw u in (0,1] to avoid ln(0).
        let u = loop {
            let u = self.uniform();
            if u > 0.0 {
                break u;
            }
        };
        let v = self.uniform();
        let r = (-2.0 * u.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * v;
        self.gauss_spare = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal sample with the given mean and standard deviation.
    #[inline]
    pub fn normal_with(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.normal()
    }

    /// Gamma(shape k, scale θ) sample via Marsaglia–Tsang (for the SIFT-like
    /// histogram generator). Requires `k > 0`.
    pub fn gamma(&mut self, shape: f64, scale: f64) -> f64 {
        debug_assert!(shape > 0.0 && scale > 0.0);
        if shape < 1.0 {
            // Boost: Gamma(k) = Gamma(k+1) · U^{1/k}.
            let u = loop {
                let u = self.uniform();
                if u > 0.0 {
                    break u;
                }
            };
            return self.gamma(shape + 1.0, scale) * u.powf(1.0 / shape);
        }
        let d = shape - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        loop {
            let x = self.normal();
            let v = 1.0 + c * x;
            if v <= 0.0 {
                continue;
            }
            let v3 = v * v * v;
            let u = self.uniform();
            if u < 1.0 - 0.0331 * x.powi(4) || u.ln() < 0.5 * x * x + d * (1.0 - v3 + v3.ln()) {
                return d * v3 * scale;
            }
        }
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// Samples `k` distinct indices from `[0, n)` (Floyd's algorithm when k
    /// is small relative to n, otherwise a shuffle prefix). Result is sorted.
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} from {n}");
        let mut out: Vec<usize>;
        if k * 4 < n {
            // Floyd's: O(k) expected.
            let mut chosen = std::collections::HashSet::with_capacity(k);
            for j in (n - k)..n {
                let t = self.below(j as u64 + 1) as usize;
                if !chosen.insert(t) {
                    chosen.insert(j);
                }
            }
            out = chosen.into_iter().collect();
        } else {
            let mut idx: Vec<usize> = (0..n).collect();
            self.shuffle(&mut idx);
            idx.truncate(k);
            out = idx;
        }
        out.sort_unstable();
        out
    }

    /// Derives an independent child generator (for per-thread / per-component
    /// streams) without correlating with the parent's future output.
    pub fn fork(&mut self) -> Self {
        Self::seed_from_u64(self.next_u64() ^ 0xA5A5_5A5A_DEAD_BEEF)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = Xoshiro256pp::seed_from_u64(42);
        let mut b = Xoshiro256pp::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Xoshiro256pp::seed_from_u64(1);
        let mut b = Xoshiro256pp::seed_from_u64(2);
        let equal = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(equal, 0);
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut rng = Xoshiro256pp::seed_from_u64(7);
        for _ in 0..10_000 {
            let u = rng.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn uniform_mean_and_variance() {
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        let n = 200_000;
        let (mut sum, mut sum2) = (0.0, 0.0);
        for _ in 0..n {
            let u = rng.uniform();
            sum += u;
            sum2 += u * u;
        }
        let mean = sum / n as f64;
        let var = sum2 / n as f64 - mean * mean;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
        assert!((var - 1.0 / 12.0).abs() < 0.005, "var {var}");
    }

    #[test]
    fn below_is_unbiased_and_in_range() {
        let mut rng = Xoshiro256pp::seed_from_u64(11);
        let mut counts = [0usize; 7];
        for _ in 0..70_000 {
            counts[rng.below(7) as usize] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 600.0, "counts {counts:?}");
        }
    }

    #[test]
    fn normal_moments() {
        let mut rng = Xoshiro256pp::seed_from_u64(5);
        let n = 200_000;
        let (mut sum, mut sum2) = (0.0, 0.0);
        for _ in 0..n {
            let x = rng.normal();
            sum += x;
            sum2 += x * x;
        }
        let mean = sum / n as f64;
        let var = sum2 / n as f64 - mean * mean;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn normal_tail_fractions() {
        let mut rng = Xoshiro256pp::seed_from_u64(13);
        let n = 100_000;
        let beyond_2 = (0..n).filter(|_| rng.normal().abs() > 2.0).count();
        let frac = beyond_2 as f64 / n as f64;
        // P(|Z| > 2) ≈ 0.0455.
        assert!((frac - 0.0455).abs() < 0.005, "frac {frac}");
    }

    #[test]
    fn gamma_mean() {
        let mut rng = Xoshiro256pp::seed_from_u64(17);
        let (shape, scale) = (2.5, 1.5);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gamma(shape, scale)).sum();
        let mean = sum / n as f64;
        assert!((mean - shape * scale).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Xoshiro256pp::seed_from_u64(23);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>()); // overwhelmingly likely
    }

    #[test]
    fn sample_indices_distinct_sorted() {
        let mut rng = Xoshiro256pp::seed_from_u64(29);
        for &(n, k) in &[(100usize, 5usize), (100, 50), (100, 100), (10, 0)] {
            let s = rng.sample_indices(n, k);
            assert_eq!(s.len(), k);
            assert!(s.windows(2).all(|w| w[0] < w[1]), "{s:?}");
            assert!(s.iter().all(|&i| i < n));
        }
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut parent = Xoshiro256pp::seed_from_u64(31);
        let mut child = parent.fork();
        let a: Vec<u64> = (0..50).map(|_| parent.next_u64()).collect();
        let b: Vec<u64> = (0..50).map(|_| child.next_u64()).collect();
        assert_ne!(a, b);
    }
}
