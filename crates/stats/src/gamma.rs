//! Log-gamma and the regularized incomplete gamma functions.
//!
//! These are the numerical backbone of the chi-square CDF used by ProMIPS's
//! Condition B: `Ψm(x) = P(m/2, x/2)` where `P` is the regularized lower
//! incomplete gamma function.

/// Maximum iterations for the series / continued-fraction evaluations.
const MAX_ITER: usize = 500;
/// Convergence tolerance relative to the current partial result.
const EPS: f64 = 1e-15;
/// Smallest representable scale used to keep Lentz's algorithm away from 0.
const TINY: f64 = 1e-300;

/// Natural log of the gamma function, `ln Γ(x)`, for `x > 0`.
///
/// Uses the Lanczos approximation with g = 7 and 9 coefficients, which is
/// accurate to ~15 significant digits over the positive reals.
///
/// # Panics
/// Panics in debug builds if `x <= 0` or `x` is not finite.
pub fn ln_gamma(x: f64) -> f64 {
    debug_assert!(x.is_finite() && x > 0.0, "ln_gamma domain: x > 0, got {x}");

    // Lanczos coefficients for g = 7, n = 9.
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];

    if x < 0.5 {
        // Reflection formula: Γ(x)Γ(1−x) = π / sin(πx).
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }

    let x = x - 1.0;
    let mut acc = COEF[0];
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Regularized lower incomplete gamma function `P(a, x) = γ(a,x) / Γ(a)`.
///
/// Monotone increasing in `x`, with `P(a, 0) = 0` and `P(a, ∞) = 1`.
/// Switches between the power series (fast for `x < a + 1`) and the
/// continued-fraction complement (for `x ≥ a + 1`), per Numerical Recipes.
///
/// # Panics
/// Panics in debug builds if `a <= 0` or `x < 0`.
pub fn reg_gamma_lower(a: f64, x: f64) -> f64 {
    debug_assert!(a > 0.0, "reg_gamma_lower requires a > 0, got {a}");
    debug_assert!(x >= 0.0, "reg_gamma_lower requires x >= 0, got {x}");
    if x == 0.0 {
        return 0.0;
    }
    if !x.is_finite() {
        return 1.0;
    }
    if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        1.0 - gamma_q_cont_fraction(a, x)
    }
}

/// Regularized upper incomplete gamma function `Q(a, x) = 1 − P(a, x)`.
pub fn reg_gamma_upper(a: f64, x: f64) -> f64 {
    debug_assert!(a > 0.0, "reg_gamma_upper requires a > 0, got {a}");
    debug_assert!(x >= 0.0, "reg_gamma_upper requires x >= 0, got {x}");
    if x == 0.0 {
        return 1.0;
    }
    if !x.is_finite() {
        return 0.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_p_series(a, x)
    } else {
        gamma_q_cont_fraction(a, x)
    }
}

/// Power-series evaluation of `P(a, x)`; converges quickly for `x < a + 1`.
fn gamma_p_series(a: f64, x: f64) -> f64 {
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut del = sum;
    for _ in 0..MAX_ITER {
        ap += 1.0;
        del *= x / ap;
        sum += del;
        if del.abs() < sum.abs() * EPS {
            break;
        }
    }
    let log_prefix = a * x.ln() - x - ln_gamma(a);
    (sum * log_prefix.exp()).clamp(0.0, 1.0)
}

/// Modified Lentz continued fraction for `Q(a, x)`; converges for `x ≥ a + 1`.
fn gamma_q_cont_fraction(a: f64, x: f64) -> f64 {
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / TINY;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..=MAX_ITER {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < TINY {
            d = TINY;
        }
        c = b + an / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    let log_prefix = a * x.ln() - x - ln_gamma(a);
    (h * log_prefix.exp()).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(actual: f64, expected: f64, tol: f64) {
        assert!(
            (actual - expected).abs() <= tol,
            "expected {expected}, got {actual} (tol {tol})"
        );
    }

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n) = (n−1)!
        let mut fact = 1.0f64;
        for n in 1..15u32 {
            assert_close(ln_gamma(n as f64), fact.ln(), 1e-10);
            fact *= n as f64;
        }
    }

    #[test]
    fn ln_gamma_half_integer() {
        // Γ(1/2) = √π.
        assert_close(ln_gamma(0.5), std::f64::consts::PI.sqrt().ln(), 1e-12);
        // Γ(3/2) = √π / 2.
        assert_close(
            ln_gamma(1.5),
            (std::f64::consts::PI.sqrt() / 2.0).ln(),
            1e-12,
        );
    }

    #[test]
    fn ln_gamma_reflection_small_values() {
        // Γ(0.25) ≈ 3.625609908.
        assert_close(ln_gamma(0.25), 3.625_609_908_221_908f64.ln(), 1e-9);
    }

    #[test]
    fn incomplete_gamma_boundaries() {
        assert_eq!(reg_gamma_lower(2.0, 0.0), 0.0);
        assert_eq!(reg_gamma_upper(2.0, 0.0), 1.0);
        assert_close(reg_gamma_lower(2.0, f64::INFINITY), 1.0, 0.0);
    }

    #[test]
    fn incomplete_gamma_exponential_special_case() {
        // P(1, x) = 1 − e^{-x} exactly.
        for &x in &[0.1, 0.5, 1.0, 2.0, 5.0, 10.0] {
            assert_close(reg_gamma_lower(1.0, x), 1.0 - (-x).exp(), 1e-12);
        }
    }

    #[test]
    fn incomplete_gamma_erlang_special_case() {
        // P(2, x) = 1 − e^{-x}(1 + x).
        for &x in &[0.2f64, 1.0, 3.0, 8.0] {
            let expected = 1.0 - (-x).exp() * (1.0 + x);
            assert_close(reg_gamma_lower(2.0, x), expected, 1e-12);
        }
    }

    #[test]
    fn lower_and_upper_sum_to_one() {
        for &a in &[0.5, 1.0, 2.5, 7.0, 30.0] {
            for &x in &[0.01, 0.5, 1.0, 4.0, 25.0, 80.0] {
                let p = reg_gamma_lower(a, x);
                let q = reg_gamma_upper(a, x);
                assert_close(p + q, 1.0, 1e-12);
            }
        }
    }

    #[test]
    fn lower_gamma_monotone_in_x() {
        for &a in &[0.5, 3.0, 12.0] {
            let mut prev = 0.0;
            for i in 1..200 {
                let x = i as f64 * 0.25;
                let p = reg_gamma_lower(a, x);
                assert!(p >= prev - 1e-14, "P({a},{x}) not monotone");
                prev = p;
            }
        }
    }

    #[test]
    fn known_reference_values() {
        // Reference values computed with mpmath (50 digits, rounded).
        assert_close(reg_gamma_lower(3.0, 2.0), 0.323_323_583_816_936_5, 1e-12);
        assert_close(reg_gamma_lower(0.5, 0.5), 0.682_689_492_137_086, 1e-12);
        assert_close(reg_gamma_lower(5.0, 10.0), 0.970_747_311_923_099_8, 1e-11);
    }
}
