//! Page-based storage layer for the ProMIPS reproduction.
//!
//! The paper's evaluation is disk-resident: index pages (B+-tree nodes) and
//! data pages (sub-partition point payloads) live in page-sized blocks, and
//! the key efficiency metric — **Page Access** (Fig. 7) — is the number of
//! pages touched while answering a query. This crate provides:
//!
//! * [`page`]: page identifiers and a fixed-size page buffer;
//! * [`pager`]: the [`pager::Storage`] trait with file-backed and in-memory
//!   implementations;
//! * [`buffer`]: a lock-striped LRU buffer pool (the paper relies on OS
//!   buffering; we model it explicitly so cold/warm behaviour is
//!   measurable, and stripe it so parallel query workers don't convoy on
//!   one cache mutex);
//! * [`metrics`]: shared logical/physical access counters.
//!
//! Page sizes follow the paper: 4 KB for Netflix/Yahoo/Sift-like data and
//! 64 KB for the very high-dimensional P53-like data.

pub mod buffer;
pub mod durability;
pub mod metrics;
pub mod page;
pub mod pager;

pub use buffer::{BufferPool, DEFAULT_SHARDS};
pub use durability::{faults, fsync_dir, retry, write_file_atomic};
pub use metrics::{AccessStats, AccessStatsSnapshot};
pub use page::{PageBuf, PageId, PAGE_SIZE_DEFAULT, PAGE_SIZE_LARGE};
pub use pager::{FileStorage, MemStorage, Pager, Storage};
