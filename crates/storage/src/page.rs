//! Page identifiers and page buffers.

/// Default page size used throughout the evaluation (the paper uses 4 KB
/// pages on Netflix, Yahoo and Sift).
pub const PAGE_SIZE_DEFAULT: usize = 4096;

/// Large page size used for very high-dimensional data (the paper uses
/// 64 KB pages on P53 because one 5408-dim point does not fit in 4 KB).
pub const PAGE_SIZE_LARGE: usize = 65536;

/// Identifier of a page within a single storage file.
pub type PageId = u64;

/// An owned, fixed-size page buffer.
///
/// Pages are plain byte blocks; serialization of tree nodes and point
/// payloads is the concern of the layers above.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PageBuf {
    data: Box<[u8]>,
}

impl PageBuf {
    /// Allocates a zeroed page of the given size.
    pub fn zeroed(page_size: usize) -> Self {
        Self {
            data: vec![0u8; page_size].into_boxed_slice(),
        }
    }

    /// Wraps an existing byte buffer as a page.
    pub fn from_vec(data: Vec<u8>) -> Self {
        Self {
            data: data.into_boxed_slice(),
        }
    }

    /// Page contents.
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }

    /// Mutable page contents.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [u8] {
        &mut self.data
    }

    /// Size of this page in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the page has zero length (never true for real pages).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_page() {
        let p = PageBuf::zeroed(128);
        assert_eq!(p.len(), 128);
        assert!(p.as_slice().iter().all(|&b| b == 0));
    }

    #[test]
    fn roundtrip_mutation() {
        let mut p = PageBuf::zeroed(64);
        p.as_mut_slice()[10] = 42;
        assert_eq!(p.as_slice()[10], 42);
        let v = PageBuf::from_vec(vec![1, 2, 3]);
        assert_eq!(v.as_slice(), &[1, 2, 3]);
    }
}
