//! Access accounting: the measurement behind the paper's Page Access metric.
//!
//! Each pager carries its own [`AccessStats`] (resettable, per-instance —
//! the per-query view the bench harness diffs); every record additionally
//! feeds the process-global metrics registry (`promips_page_*_total`), so
//! aggregate page traffic shows up in `Registry::render_prometheus()`
//! without touching the per-pager API.

use promips_obs::{CounterId, Registry};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Shared, thread-safe page-access counters.
///
/// * `logical_reads` — every page fetched through a [`crate::Pager`],
///   whether or not it was cached. This matches the paper's "number of disk
///   pages to be accessed during the searching process" (their Java
///   implementation counts page fetches and leaves caching to the OS).
/// * `cache_hits` / `cache_misses` — buffer-pool behaviour, reported
///   separately so cold-cache (physical) I/O can also be studied.
/// * `writes` — pages written (pre-processing cost).
#[derive(Debug, Default)]
pub struct AccessStats {
    logical_reads: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    writes: AtomicU64,
}

impl AccessStats {
    /// Creates a fresh, shareable counter set.
    pub fn new_shared() -> Arc<Self> {
        Arc::new(Self::default())
    }

    #[inline]
    pub(crate) fn record_read(&self) {
        self.logical_reads.fetch_add(1, Ordering::Relaxed);
        Registry::global().counter(CounterId::PageReads).inc();
    }

    #[inline]
    pub(crate) fn record_hit(&self) {
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
        Registry::global().counter(CounterId::PageCacheHits).inc();
    }

    #[inline]
    pub(crate) fn record_miss(&self) {
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
        Registry::global().counter(CounterId::PageCacheMisses).inc();
    }

    #[inline]
    pub(crate) fn record_write(&self) {
        self.writes.fetch_add(1, Ordering::Relaxed);
        Registry::global().counter(CounterId::PageWrites).inc();
    }

    /// Atomically reads all counters.
    pub fn snapshot(&self) -> AccessStatsSnapshot {
        AccessStatsSnapshot {
            logical_reads: self.logical_reads.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
        }
    }

    /// Resets all counters to zero (called between queries when measuring
    /// per-query page accesses).
    pub fn reset(&self) {
        self.logical_reads.store(0, Ordering::Relaxed);
        self.cache_hits.store(0, Ordering::Relaxed);
        self.cache_misses.store(0, Ordering::Relaxed);
        self.writes.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time copy of [`AccessStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AccessStatsSnapshot {
    /// Pages fetched through the pager (the paper's Page Access).
    pub logical_reads: u64,
    /// Fetches served by the buffer pool.
    pub cache_hits: u64,
    /// Fetches that had to go to the backing storage.
    pub cache_misses: u64,
    /// Pages written.
    pub writes: u64,
}

impl AccessStatsSnapshot {
    /// Difference of two snapshots (self − earlier), for per-query deltas.
    pub fn delta_since(&self, earlier: &AccessStatsSnapshot) -> AccessStatsSnapshot {
        AccessStatsSnapshot {
            logical_reads: self.logical_reads - earlier.logical_reads,
            cache_hits: self.cache_hits - earlier.cache_hits,
            cache_misses: self.cache_misses - earlier.cache_misses,
            writes: self.writes - earlier.writes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        let s = AccessStats::new_shared();
        s.record_read();
        s.record_read();
        s.record_hit();
        s.record_miss();
        s.record_write();
        let snap = s.snapshot();
        assert_eq!(snap.logical_reads, 2);
        assert_eq!(snap.cache_hits, 1);
        assert_eq!(snap.cache_misses, 1);
        assert_eq!(snap.writes, 1);
        s.reset();
        assert_eq!(s.snapshot(), AccessStatsSnapshot::default());
    }

    #[test]
    fn delta_between_snapshots() {
        let s = AccessStats::new_shared();
        s.record_read();
        let a = s.snapshot();
        s.record_read();
        s.record_read();
        let b = s.snapshot();
        assert_eq!(b.delta_since(&a).logical_reads, 2);
    }

    #[test]
    fn concurrent_updates() {
        let s = AccessStats::new_shared();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let s = Arc::clone(&s);
                scope.spawn(move || {
                    for _ in 0..1000 {
                        s.record_read();
                    }
                });
            }
        });
        assert_eq!(s.snapshot().logical_reads, 4000);
    }
}
