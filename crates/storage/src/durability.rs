//! Crash-safety primitives shared by the persistence paths: directory
//! fsync, write-temp-then-rename file replacement, and a failpoint-style
//! fault-injection shim that crash-safety tests use to fail the Nth
//! fsync/rename/write deterministically.
//!
//! POSIX only guarantees a rename is durable once the *containing
//! directory* has been fsynced, and a freshly written file's contents are
//! durable only after `fsync` on the file itself. The manifest-swap
//! protocol of the sharded index (write `MANIFEST.pms.tmp`, fsync it,
//! rename over `MANIFEST.pms`, fsync the directory) rides these helpers,
//! and the WAL crate routes its own fsyncs and renames through the same
//! shim so a single fault plan covers every durability-relevant syscall
//! in the process.

use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::Path;

use faults::IoOp;

/// Fsyncs a directory so renames/creates inside it survive a crash.
pub fn fsync_dir(dir: impl AsRef<Path>) -> io::Result<()> {
    let dir = dir.as_ref();
    let f = File::open(dir)?;
    faults::check(IoOp::Fsync, dir)?;
    f.sync_all()
}

/// Fsyncs an open file's data (plus metadata needed to find it), counting
/// the operation and honouring any armed fault plan. `path` is only used
/// for fault-plan scoping and error messages.
pub fn sync_file_data(f: &File, path: &Path) -> io::Result<()> {
    faults::check(IoOp::Fsync, path)?;
    f.sync_data()
}

/// Fsyncs an open file's data and metadata through the fault shim.
pub fn sync_file_all(f: &File, path: &Path) -> io::Result<()> {
    faults::check(IoOp::Fsync, path)?;
    f.sync_all()
}

/// `std::fs::rename` routed through the fault shim (scoped on `dst`).
pub fn rename(src: impl AsRef<Path>, dst: impl AsRef<Path>) -> io::Result<()> {
    let dst = dst.as_ref();
    faults::check(IoOp::Rename, dst)?;
    std::fs::rename(src.as_ref(), dst)
}

/// `Write::write_all` routed through the fault shim. An injected failure
/// models a torn write: nothing is guaranteed about how many bytes landed.
pub fn write_all(f: &mut impl Write, bytes: &[u8], path: &Path) -> io::Result<()> {
    faults::check(IoOp::Write, path)?;
    f.write_all(bytes)
}

/// Atomically replaces `dst` with `bytes`: writes `dst` + `.tmp` suffix,
/// fsyncs it, renames over `dst`, and fsyncs the parent directory. A crash
/// at any point leaves either the old `dst` or the new one — never a
/// half-written file under the final name.
pub fn write_file_atomic(dst: impl AsRef<Path>, bytes: &[u8]) -> io::Result<()> {
    let dst = dst.as_ref();
    let tmp = tmp_sibling(dst);
    {
        let mut f = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp)?;
        write_all(&mut f, bytes, &tmp)?;
        sync_file_data(&f, &tmp)?;
    }
    rename(&tmp, dst)?;
    if let Some(parent) = dst.parent() {
        if !parent.as_os_str().is_empty() {
            fsync_dir(parent)?;
        }
    }
    Ok(())
}

/// The temp-file name the atomic writer uses (`<dst>.tmp`), exposed so
/// crash-recovery sweeps can recognise and discard leftovers.
pub fn tmp_sibling(dst: &Path) -> std::path::PathBuf {
    let mut name = dst.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    dst.with_file_name(name)
}

/// Failpoint-style IO fault injection and operation counters.
///
/// Every durability-relevant syscall issued through this crate (and the
/// WAL crate, which routes its fsyncs here) first consults this module: a
/// per-operation counter is bumped, and if a fault plan is armed for that
/// operation the plan's countdown advances — hitting zero makes the call
/// return an injected `io::Error` *instead of issuing the syscall*, which
/// is exactly what a crash at that instant would look like to the files
/// already on disk.
///
/// The state is process-global (syscalls are process-global too); tests
/// that arm plans must serialise against each other and disarm when done.
/// The disarmed fast path is one relaxed atomic load, so production code
/// pays nothing measurable.
pub mod faults {
    use promips_obs::{CounterId, Registry};
    use std::io;
    use std::path::Path;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Mutex;

    /// The classes of IO operation the shim can count and fail.
    #[derive(Clone, Copy, PartialEq, Eq, Debug)]
    pub enum IoOp {
        /// `fsync`/`fdatasync` on a file or directory.
        Fsync,
        /// `rename(2)` — scoped on the destination path.
        Rename,
        /// A data write (`write_all` of a record or blob).
        Write,
    }

    /// A one-shot fault: fail the `nth` matching operation (1-based) whose
    /// path contains `path_contains` (no scoping when `None`). The plan
    /// disarms itself after firing, so recovery code running after the
    /// "crash" sees healthy IO again — mirroring a restart.
    #[derive(Clone, Debug)]
    pub struct FaultPlan {
        pub op: IoOp,
        pub nth: u64,
        pub path_contains: Option<String>,
    }

    struct Armed {
        plan: FaultPlan,
        seen: u64,
    }

    static ARMED_FLAG: AtomicBool = AtomicBool::new(false);
    static ARMED: Mutex<Option<Armed>> = Mutex::new(None);

    /// Snapshot of the process-wide operation counters. Monotonic since
    /// process start; diff two snapshots to meter a workload (e.g. fsyncs
    /// per 1 000 inserts under group commit).
    ///
    /// Since the observability PR these are *views over the global
    /// metrics registry* (`promips_io_*_total`), so the fault shim and
    /// `Registry::render_prometheus()` report the same numbers from one
    /// source of truth.
    #[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
    pub struct IoCounters {
        pub fsyncs: u64,
        pub renames: u64,
        pub writes: u64,
        /// Faults fired so far (across all plans).
        pub injected: u64,
    }

    /// Reads the operation counters (from the global metrics registry).
    pub fn counters() -> IoCounters {
        let reg = Registry::global();
        IoCounters {
            fsyncs: reg.counter(CounterId::IoFsyncs).get(),
            renames: reg.counter(CounterId::IoRenames).get(),
            writes: reg.counter(CounterId::IoWrites).get(),
            injected: reg.counter(CounterId::IoFaultsInjected).get(),
        }
    }

    /// Arms `plan`, replacing any previous plan.
    pub fn arm(plan: FaultPlan) {
        assert!(plan.nth >= 1, "fault plans are 1-based: nth must be >= 1");
        let mut g = ARMED.lock().unwrap();
        *g = Some(Armed { plan, seen: 0 });
        ARMED_FLAG.store(true, Ordering::Release);
    }

    /// Disarms any pending plan; returns true if one was still armed
    /// (i.e. it never fired).
    pub fn disarm() -> bool {
        let mut g = ARMED.lock().unwrap();
        ARMED_FLAG.store(false, Ordering::Release);
        g.take().is_some()
    }

    /// The marker every injected error message carries, so tests can tell
    /// injected faults from real IO errors.
    pub const INJECTED_MARKER: &str = "injected fault";

    /// True if `err` was produced by the shim rather than the kernel.
    pub fn is_injected(err: &io::Error) -> bool {
        err.to_string().contains(INJECTED_MARKER)
    }

    /// Counts `op` against `path` and fails it if an armed plan says so.
    /// Called by every durability helper immediately before the syscall.
    pub fn check(op: IoOp, path: &Path) -> io::Result<()> {
        let reg = Registry::global();
        reg.counter(match op {
            IoOp::Fsync => CounterId::IoFsyncs,
            IoOp::Rename => CounterId::IoRenames,
            IoOp::Write => CounterId::IoWrites,
        })
        .inc();
        if !ARMED_FLAG.load(Ordering::Acquire) {
            return Ok(());
        }
        let mut g = ARMED.lock().unwrap();
        let Some(armed) = g.as_mut() else {
            return Ok(());
        };
        if armed.plan.op != op {
            return Ok(());
        }
        if let Some(ref needle) = armed.plan.path_contains {
            if !path.to_string_lossy().contains(needle.as_str()) {
                return Ok(());
            }
        }
        armed.seen += 1;
        if armed.seen < armed.plan.nth {
            return Ok(());
        }
        let plan = g.take().expect("checked above");
        ARMED_FLAG.store(false, Ordering::Release);
        reg.counter(CounterId::IoFaultsInjected).inc();
        Err(io::Error::other(format!(
            "{INJECTED_MARKER}: {:?} #{} on {}",
            plan.plan.op,
            plan.plan.nth,
            path.display()
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::faults::{self, FaultPlan, IoOp};
    use super::*;
    use std::sync::{Mutex, MutexGuard};

    /// Fault plans are process-global; tests arming them must not overlap.
    static FAULT_TESTS: Mutex<()> = Mutex::new(());

    fn fault_guard() -> MutexGuard<'static, ()> {
        FAULT_TESTS.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("promips-dur-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn atomic_write_replaces_and_cleans_tmp() {
        let dir = temp_dir("atomic");
        let dst = dir.join("MANIFEST.pms");
        write_file_atomic(&dst, b"one").unwrap();
        assert_eq!(std::fs::read(&dst).unwrap(), b"one");
        write_file_atomic(&dst, b"two-longer").unwrap();
        assert_eq!(std::fs::read(&dst).unwrap(), b"two-longer");
        assert!(
            !tmp_sibling(&dst).exists(),
            "tmp file must not survive a successful swap"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_tmp_is_overwritten_not_trusted() {
        let dir = temp_dir("stale");
        let dst = dir.join("MANIFEST.pms");
        // A crashed previous writer left a half-written temp file.
        std::fs::write(tmp_sibling(&dst), b"garbage from a crash").unwrap();
        write_file_atomic(&dst, b"fresh").unwrap();
        assert_eq!(std::fs::read(&dst).unwrap(), b"fresh");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fsync_dir_works_on_real_directory() {
        let dir = temp_dir("fsync");
        fsync_dir(&dir).unwrap();
        assert!(fsync_dir(dir.join("missing")).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn counters_advance_per_operation() {
        let _g = fault_guard();
        let dir = temp_dir("counters");
        let before = faults::counters();
        write_file_atomic(dir.join("f"), b"x").unwrap();
        let after = faults::counters();
        // write tmp (1 write), fsync tmp + fsync dir (2 fsyncs), 1 rename.
        assert!(after.writes > before.writes);
        assert!(after.fsyncs >= before.fsyncs + 2);
        assert!(after.renames > before.renames);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn injected_rename_fault_preserves_old_contents() {
        let _g = fault_guard();
        let dir = temp_dir("inject-rename");
        let dst = dir.join("MANIFEST.pms");
        write_file_atomic(&dst, b"old").unwrap();
        faults::arm(FaultPlan {
            op: IoOp::Rename,
            nth: 1,
            path_contains: Some("MANIFEST".into()),
        });
        let err = write_file_atomic(&dst, b"new").unwrap_err();
        assert!(faults::is_injected(&err), "unexpected error: {err}");
        assert!(!faults::disarm(), "plan must self-disarm after firing");
        // The swap never happened: the published file still reads "old".
        assert_eq!(std::fs::read(&dst).unwrap(), b"old");
        // Recovery IO works again without explicit disarm.
        write_file_atomic(&dst, b"new").unwrap();
        assert_eq!(std::fs::read(&dst).unwrap(), b"new");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn nth_and_path_scoping_select_the_target_op() {
        let _g = fault_guard();
        let dir = temp_dir("inject-nth");
        faults::arm(FaultPlan {
            op: IoOp::Fsync,
            nth: 2,
            path_contains: Some("inject-nth".into()),
        });
        // First fsync (tmp file) passes; second (directory) fails.
        let err = write_file_atomic(dir.join("a"), b"x").unwrap_err();
        assert!(faults::is_injected(&err));
        // Unscoped paths never count: arm for a non-matching substring.
        faults::arm(FaultPlan {
            op: IoOp::Write,
            nth: 1,
            path_contains: Some("no-such-path".into()),
        });
        write_file_atomic(dir.join("b"), b"y").unwrap();
        assert!(faults::disarm(), "non-matching plan stays armed");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
