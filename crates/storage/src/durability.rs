//! Crash-safety primitives shared by the persistence paths: directory
//! fsync, write-temp-then-rename file replacement, and a failpoint-style
//! fault-injection shim that crash-safety tests use to fail the Nth
//! fsync/rename/write deterministically.
//!
//! POSIX only guarantees a rename is durable once the *containing
//! directory* has been fsynced, and a freshly written file's contents are
//! durable only after `fsync` on the file itself. The manifest-swap
//! protocol of the sharded index (write `MANIFEST.pms.tmp`, fsync it,
//! rename over `MANIFEST.pms`, fsync the directory) rides these helpers,
//! and the WAL crate routes its own fsyncs and renames through the same
//! shim so a single fault plan covers every durability-relevant syscall
//! in the process.

use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::Path;

use faults::IoOp;

/// Fsyncs a directory so renames/creates inside it survive a crash.
pub fn fsync_dir(dir: impl AsRef<Path>) -> io::Result<()> {
    let dir = dir.as_ref();
    let f = File::open(dir)?;
    faults::check(IoOp::Fsync, dir)?;
    f.sync_all()
}

/// Fsyncs an open file's data (plus metadata needed to find it), counting
/// the operation and honouring any armed fault plan. `path` is only used
/// for fault-plan scoping and error messages.
pub fn sync_file_data(f: &File, path: &Path) -> io::Result<()> {
    faults::check(IoOp::Fsync, path)?;
    f.sync_data()
}

/// Fsyncs an open file's data and metadata through the fault shim.
pub fn sync_file_all(f: &File, path: &Path) -> io::Result<()> {
    faults::check(IoOp::Fsync, path)?;
    f.sync_all()
}

/// `std::fs::rename` routed through the fault shim (scoped on `dst`).
pub fn rename(src: impl AsRef<Path>, dst: impl AsRef<Path>) -> io::Result<()> {
    let dst = dst.as_ref();
    faults::check(IoOp::Rename, dst)?;
    std::fs::rename(src.as_ref(), dst)
}

/// `Write::write_all` routed through the fault shim. An injected failure
/// models a torn write: nothing is guaranteed about how many bytes landed.
pub fn write_all(f: &mut impl Write, bytes: &[u8], path: &Path) -> io::Result<()> {
    faults::check(IoOp::Write, path)?;
    f.write_all(bytes)
}

/// Atomically replaces `dst` with `bytes`: writes `dst` + `.tmp` suffix,
/// fsyncs it, renames over `dst`, and fsyncs the parent directory. A crash
/// at any point leaves either the old `dst` or the new one — never a
/// half-written file under the final name.
pub fn write_file_atomic(dst: impl AsRef<Path>, bytes: &[u8]) -> io::Result<()> {
    let dst = dst.as_ref();
    let tmp = tmp_sibling(dst);
    {
        let mut f = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp)?;
        write_all(&mut f, bytes, &tmp)?;
        sync_file_data(&f, &tmp)?;
    }
    rename(&tmp, dst)?;
    if let Some(parent) = dst.parent() {
        if !parent.as_os_str().is_empty() {
            fsync_dir(parent)?;
        }
    }
    Ok(())
}

/// The temp-file name the atomic writer uses (`<dst>.tmp`), exposed so
/// crash-recovery sweeps can recognise and discard leftovers.
pub fn tmp_sibling(dst: &Path) -> std::path::PathBuf {
    let mut name = dst.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    dst.with_file_name(name)
}

/// Failpoint-style IO fault injection and operation counters.
///
/// Every durability-relevant syscall issued through this crate (and the
/// WAL crate, which routes its fsyncs here) first consults this module: a
/// per-operation counter is bumped, and if a fault plan is armed for that
/// operation the plan's countdown advances — hitting zero makes the call
/// return an injected `io::Error` *instead of issuing the syscall*, which
/// is exactly what a crash at that instant would look like to the files
/// already on disk.
///
/// The state is process-global (syscalls are process-global too); tests
/// that arm plans must serialise against each other and disarm when done.
/// The disarmed fast path is one relaxed atomic load, so production code
/// pays nothing measurable.
pub mod faults {
    use promips_obs::{recorder, CounterId, Registry};
    use std::io;
    use std::path::Path;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Mutex;

    /// The classes of IO operation the shim can count and fail.
    #[derive(Clone, Copy, PartialEq, Eq, Debug)]
    pub enum IoOp {
        /// `fsync`/`fdatasync` on a file or directory.
        Fsync,
        /// `rename(2)` — scoped on the destination path.
        Rename,
        /// A data write (`write_all` of a record or blob).
        Write,
        /// A data read (page fetch, WAL replay, file slurp).
        Read,
    }

    /// A fault target: the `nth` matching operation (1-based) whose path
    /// contains `path_contains` (no scoping when `None`). How often it
    /// fires after that is the plan's [`Recurrence`]: [`arm`] gives the
    /// classic one-shot, [`arm_with`] picks.
    #[derive(Clone, Debug)]
    pub struct FaultPlan {
        pub op: IoOp,
        pub nth: u64,
        pub path_contains: Option<String>,
    }

    /// How often an armed plan fires once its `nth` gate is reached.
    #[derive(Clone, Copy, Debug, PartialEq)]
    pub enum Recurrence {
        /// Fire once at the `nth` matching op, then self-disarm — recovery
        /// code after the "crash" sees healthy IO again, mirroring a
        /// restart. This is [`arm`]'s behavior.
        Once,
        /// Fire at the `nth` matching op and every `n` matching ops after
        /// it; stays armed until [`disarm`]. Models a persistently sick
        /// device or a hot path that trips a flaky kernel bug.
        EveryNth(u32),
        /// From the `nth` matching op on, fire each matching op
        /// independently with probability `p`, driven by a deterministic
        /// xorshift stream from `seed`; stays armed until [`disarm`].
        /// Same seed + same op sequence → same fault sequence.
        Probabilistic { seed: u64, p: f64 },
    }

    struct Armed {
        plan: FaultPlan,
        recurrence: Recurrence,
        kind: io::ErrorKind,
        seen: u64,
        rng: u64,
    }

    static ARMED_FLAG: AtomicBool = AtomicBool::new(false);
    static ARMED: Mutex<Option<Armed>> = Mutex::new(None);

    /// Snapshot of the process-wide operation counters. Monotonic since
    /// process start; diff two snapshots to meter a workload (e.g. fsyncs
    /// per 1 000 inserts under group commit).
    ///
    /// Since the observability PR these are *views over the global
    /// metrics registry* (`promips_io_*_total`), so the fault shim and
    /// `Registry::render_prometheus()` report the same numbers from one
    /// source of truth.
    #[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
    pub struct IoCounters {
        pub fsyncs: u64,
        pub renames: u64,
        pub writes: u64,
        pub reads: u64,
        /// Faults fired so far (across all plans).
        pub injected: u64,
    }

    /// Reads the operation counters (from the global metrics registry).
    pub fn counters() -> IoCounters {
        let reg = Registry::global();
        IoCounters {
            fsyncs: reg.counter(CounterId::IoFsyncs).get(),
            renames: reg.counter(CounterId::IoRenames).get(),
            writes: reg.counter(CounterId::IoWrites).get(),
            reads: reg.counter(CounterId::IoReads).get(),
            injected: reg.counter(CounterId::IoFaultsInjected).get(),
        }
    }

    /// Arms `plan` as a classic one-shot (fires once, self-disarms,
    /// `ErrorKind::Other`), replacing any previous plan.
    pub fn arm(plan: FaultPlan) {
        arm_with(plan, Recurrence::Once, io::ErrorKind::Other);
    }

    /// Arms `plan` with an explicit recurrence and injected error kind,
    /// replacing any previous plan. Transient kinds (`Interrupted`,
    /// `TimedOut`, `WouldBlock`) let tests exercise the retry paths;
    /// recurring plans stay armed until [`disarm`].
    pub fn arm_with(plan: FaultPlan, recurrence: Recurrence, kind: io::ErrorKind) {
        assert!(plan.nth >= 1, "fault plans are 1-based: nth must be >= 1");
        if let Recurrence::EveryNth(n) = recurrence {
            assert!(n >= 1, "EveryNth period must be >= 1");
        }
        if let Recurrence::Probabilistic { p, .. } = recurrence {
            assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        }
        let rng = match recurrence {
            // splitmix64 scramble so seed 0 still yields a live stream.
            Recurrence::Probabilistic { seed, .. } => {
                let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                (z ^ (z >> 31)) | 1
            }
            _ => 0,
        };
        let mut g = ARMED.lock().unwrap();
        *g = Some(Armed {
            plan,
            recurrence,
            kind,
            seen: 0,
            rng,
        });
        ARMED_FLAG.store(true, Ordering::Release);
    }

    /// Disarms any pending plan; returns true if one was still armed
    /// (i.e. it never fired).
    pub fn disarm() -> bool {
        let mut g = ARMED.lock().unwrap();
        ARMED_FLAG.store(false, Ordering::Release);
        g.take().is_some()
    }

    /// The marker every injected error message carries, so tests can tell
    /// injected faults from real IO errors.
    pub const INJECTED_MARKER: &str = "injected fault";

    /// True if `err` was produced by the shim rather than the kernel.
    pub fn is_injected(err: &io::Error) -> bool {
        err.to_string().contains(INJECTED_MARKER)
    }

    /// xorshift64 step: cheap, never zero for a nonzero state.
    fn xorshift64(state: &mut u64) -> u64 {
        let mut x = *state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        *state = x;
        x
    }

    /// Counts `op` against `path` and fails it if an armed plan says so.
    /// Called by every durability helper immediately before the syscall.
    pub fn check(op: IoOp, path: &Path) -> io::Result<()> {
        let reg = Registry::global();
        reg.counter(match op {
            IoOp::Fsync => CounterId::IoFsyncs,
            IoOp::Rename => CounterId::IoRenames,
            IoOp::Write => CounterId::IoWrites,
            IoOp::Read => CounterId::IoReads,
        })
        .inc();
        if !ARMED_FLAG.load(Ordering::Acquire) {
            return Ok(());
        }
        let mut g = ARMED.lock().unwrap();
        let Some(armed) = g.as_mut() else {
            return Ok(());
        };
        if armed.plan.op != op {
            return Ok(());
        }
        if let Some(ref needle) = armed.plan.path_contains {
            if !path.to_string_lossy().contains(needle.as_str()) {
                return Ok(());
            }
        }
        armed.seen += 1;
        if armed.seen < armed.plan.nth {
            return Ok(());
        }
        let fires = match armed.recurrence {
            Recurrence::Once => true,
            Recurrence::EveryNth(n) => (armed.seen - armed.plan.nth) % u64::from(n) == 0,
            Recurrence::Probabilistic { p, .. } => {
                // 53 uniform bits → [0, 1); fires with probability p.
                let u = (xorshift64(&mut armed.rng) >> 11) as f64 / (1u64 << 53) as f64;
                u < p
            }
        };
        if !fires {
            return Ok(());
        }
        let (op, nth, kind) = (armed.plan.op, armed.seen, armed.kind);
        if armed.recurrence == Recurrence::Once {
            *g = None;
            ARMED_FLAG.store(false, Ordering::Release);
        }
        drop(g);
        reg.counter(CounterId::IoFaultsInjected).inc();
        recorder::emit(recorder::EventKind::FaultInjected {
            op: match op {
                IoOp::Fsync => "fsync",
                IoOp::Rename => "rename",
                IoOp::Write => "write",
                IoOp::Read => "read",
            },
        });
        let msg = format!("{INJECTED_MARKER}: {op:?} #{nth} on {}", path.display());
        Err(if kind == io::ErrorKind::Other {
            io::Error::other(msg)
        } else {
            io::Error::new(kind, msg)
        })
    }
}

/// Bounded retry with exponential backoff for *transient* IO failures.
///
/// Transience is classified by `io::ErrorKind` alone: `Interrupted`,
/// `TimedOut` and `WouldBlock` model recoverable conditions (signal
/// delivery, a momentarily saturated device, a non-blocking handle);
/// everything else — including the fault shim's default
/// `ErrorKind::Other` injections — fails through immediately, so
/// crash-safety tests still observe their fault on the first call.
///
/// Used by the WAL append path (before the record is acknowledged) and
/// the manifest-swap path; each retry ticks `promips_io_retries_total`.
pub mod retry {
    use promips_obs::{recorder, CounterId, Registry};
    use std::io;
    use std::time::Duration;

    /// Retry budget: total attempts (first try included) and the initial
    /// backoff, doubled after each failure.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub struct RetryPolicy {
        /// Total attempts, first call included; clamped to at least 1.
        pub attempts: u32,
        /// Sleep before the first retry; doubles per retry. Zero means
        /// retry immediately (useful in tests).
        pub base_backoff: Duration,
    }

    impl Default for RetryPolicy {
        fn default() -> Self {
            Self {
                attempts: 3,
                base_backoff: Duration::from_micros(500),
            }
        }
    }

    /// Whether `e` is worth retrying at all.
    pub fn is_transient(e: &io::Error) -> bool {
        matches!(
            e.kind(),
            io::ErrorKind::Interrupted | io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock
        )
    }

    /// Runs `op`, retrying transient failures up to the policy's attempt
    /// budget with doubling backoff. The terminal error (transient budget
    /// exhausted, or any non-transient failure) is returned unchanged.
    pub fn retry_io<T>(
        policy: &RetryPolicy,
        mut op: impl FnMut() -> io::Result<T>,
    ) -> io::Result<T> {
        let attempts = policy.attempts.max(1);
        let mut backoff = policy.base_backoff;
        let mut attempt = 1;
        loop {
            match op() {
                Ok(v) => return Ok(v),
                Err(e) if attempt < attempts && is_transient(&e) => {
                    Registry::global().counter(CounterId::IoRetries).inc();
                    recorder::emit(recorder::EventKind::IoRetried { attempt });
                    if !backoff.is_zero() {
                        std::thread::sleep(backoff);
                    }
                    backoff = backoff.saturating_mul(2);
                    attempt += 1;
                }
                Err(e) => return Err(e),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::faults::{self, FaultPlan, IoOp, Recurrence};
    use super::retry::{self, RetryPolicy};
    use super::*;
    use std::sync::{Mutex, MutexGuard};

    /// Fault plans are process-global; tests arming them must not overlap.
    static FAULT_TESTS: Mutex<()> = Mutex::new(());

    fn fault_guard() -> MutexGuard<'static, ()> {
        FAULT_TESTS.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("promips-dur-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn atomic_write_replaces_and_cleans_tmp() {
        let dir = temp_dir("atomic");
        let dst = dir.join("MANIFEST.pms");
        write_file_atomic(&dst, b"one").unwrap();
        assert_eq!(std::fs::read(&dst).unwrap(), b"one");
        write_file_atomic(&dst, b"two-longer").unwrap();
        assert_eq!(std::fs::read(&dst).unwrap(), b"two-longer");
        assert!(
            !tmp_sibling(&dst).exists(),
            "tmp file must not survive a successful swap"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_tmp_is_overwritten_not_trusted() {
        let dir = temp_dir("stale");
        let dst = dir.join("MANIFEST.pms");
        // A crashed previous writer left a half-written temp file.
        std::fs::write(tmp_sibling(&dst), b"garbage from a crash").unwrap();
        write_file_atomic(&dst, b"fresh").unwrap();
        assert_eq!(std::fs::read(&dst).unwrap(), b"fresh");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fsync_dir_works_on_real_directory() {
        let dir = temp_dir("fsync");
        fsync_dir(&dir).unwrap();
        assert!(fsync_dir(dir.join("missing")).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn counters_advance_per_operation() {
        let _g = fault_guard();
        let dir = temp_dir("counters");
        let before = faults::counters();
        write_file_atomic(dir.join("f"), b"x").unwrap();
        let after = faults::counters();
        // write tmp (1 write), fsync tmp + fsync dir (2 fsyncs), 1 rename.
        assert!(after.writes > before.writes);
        assert!(after.fsyncs >= before.fsyncs + 2);
        assert!(after.renames > before.renames);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn injected_rename_fault_preserves_old_contents() {
        let _g = fault_guard();
        let dir = temp_dir("inject-rename");
        let dst = dir.join("MANIFEST.pms");
        write_file_atomic(&dst, b"old").unwrap();
        faults::arm(FaultPlan {
            op: IoOp::Rename,
            nth: 1,
            path_contains: Some("MANIFEST".into()),
        });
        let err = write_file_atomic(&dst, b"new").unwrap_err();
        assert!(faults::is_injected(&err), "unexpected error: {err}");
        assert!(!faults::disarm(), "plan must self-disarm after firing");
        // The swap never happened: the published file still reads "old".
        assert_eq!(std::fs::read(&dst).unwrap(), b"old");
        // Recovery IO works again without explicit disarm.
        write_file_atomic(&dst, b"new").unwrap();
        assert_eq!(std::fs::read(&dst).unwrap(), b"new");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn nth_and_path_scoping_select_the_target_op() {
        let _g = fault_guard();
        let dir = temp_dir("inject-nth");
        faults::arm(FaultPlan {
            op: IoOp::Fsync,
            nth: 2,
            path_contains: Some("inject-nth".into()),
        });
        // First fsync (tmp file) passes; second (directory) fails.
        let err = write_file_atomic(dir.join("a"), b"x").unwrap_err();
        assert!(faults::is_injected(&err));
        // Unscoped paths never count: arm for a non-matching substring.
        faults::arm(FaultPlan {
            op: IoOp::Write,
            nth: 1,
            path_contains: Some("no-such-path".into()),
        });
        write_file_atomic(dir.join("b"), b"y").unwrap();
        assert!(faults::disarm(), "non-matching plan stays armed");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn every_nth_recurrence_keeps_firing_until_disarm() {
        let _g = fault_guard();
        let path = Path::new("recur-every-nth");
        faults::arm_with(
            FaultPlan {
                op: IoOp::Read,
                nth: 2,
                path_contains: Some("recur-every-nth".into()),
            },
            Recurrence::EveryNth(3),
            std::io::ErrorKind::Other,
        );
        let outcomes: Vec<bool> = (0..8)
            .map(|_| faults::check(IoOp::Read, path).is_err())
            .collect();
        // Gate at the 2nd op, then every 3rd matching op after it.
        assert_eq!(
            outcomes,
            [false, true, false, false, true, false, false, true]
        );
        assert!(faults::disarm(), "recurring plan stays armed after firing");
        assert!(faults::check(IoOp::Read, path).is_ok());
    }

    #[test]
    fn probabilistic_recurrence_is_deterministic_per_seed() {
        let _g = fault_guard();
        let path = Path::new("recur-prob");
        let run = |seed: u64| -> Vec<bool> {
            faults::arm_with(
                FaultPlan {
                    op: IoOp::Write,
                    nth: 1,
                    path_contains: Some("recur-prob".into()),
                },
                Recurrence::Probabilistic { seed, p: 0.5 },
                std::io::ErrorKind::Other,
            );
            let v = (0..64)
                .map(|_| faults::check(IoOp::Write, path).is_err())
                .collect();
            faults::disarm();
            v
        };
        let a = run(42);
        let b = run(42);
        assert_eq!(a, b, "same seed must replay the same fault sequence");
        let fired = a.iter().filter(|&&f| f).count();
        assert!(
            (8..=56).contains(&fired),
            "p=0.5 over 64 ops fired {fired} times — stream looks degenerate"
        );
        // p=1 always fires and the plan stays armed.
        faults::arm_with(
            FaultPlan {
                op: IoOp::Write,
                nth: 1,
                path_contains: Some("recur-prob".into()),
            },
            Recurrence::Probabilistic { seed: 9, p: 1.0 },
            std::io::ErrorKind::Other,
        );
        assert!(faults::check(IoOp::Write, path).is_err());
        assert!(faults::check(IoOp::Write, path).is_err());
        faults::disarm();
    }

    #[test]
    fn injected_kind_is_respected() {
        let _g = fault_guard();
        let path = Path::new("kind-scope");
        faults::arm_with(
            FaultPlan {
                op: IoOp::Fsync,
                nth: 1,
                path_contains: Some("kind-scope".into()),
            },
            Recurrence::Once,
            std::io::ErrorKind::Interrupted,
        );
        let err = faults::check(IoOp::Fsync, path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::Interrupted);
        assert!(faults::is_injected(&err));
        assert!(!faults::disarm(), "Once still self-disarms under arm_with");
    }

    #[test]
    fn retry_recovers_from_transient_faults() {
        let _g = fault_guard();
        let path = Path::new("retry-transient");
        // Fail the first two write attempts with a transient kind.
        faults::arm_with(
            FaultPlan {
                op: IoOp::Write,
                nth: 1,
                path_contains: Some("retry-transient".into()),
            },
            Recurrence::EveryNth(1),
            std::io::ErrorKind::Interrupted,
        );
        let before = faults::counters();
        let mut calls = 0u32;
        let policy = RetryPolicy {
            attempts: 3,
            base_backoff: std::time::Duration::ZERO,
        };
        let res = retry::retry_io(&policy, || {
            calls += 1;
            if calls >= 3 {
                faults::disarm();
            }
            faults::check(IoOp::Write, path)
        });
        assert!(res.is_ok(), "third attempt runs with the plan disarmed");
        assert_eq!(calls, 3);
        let after = faults::counters();
        assert_eq!(after.injected - before.injected, 2);
    }

    #[test]
    fn retry_fails_through_on_non_transient_and_exhaustion() {
        let _g = fault_guard();
        let path = Path::new("retry-hard");
        // Default injections are ErrorKind::Other: never retried, so the
        // crash-safety suites still see their fault on the first call.
        faults::arm(FaultPlan {
            op: IoOp::Write,
            nth: 1,
            path_contains: Some("retry-hard".into()),
        });
        let mut calls = 0u32;
        let err = retry::retry_io(&RetryPolicy::default(), || {
            calls += 1;
            faults::check(IoOp::Write, path)
        })
        .unwrap_err();
        assert!(faults::is_injected(&err));
        assert_eq!(calls, 1, "non-transient errors must not be retried");
        // A persistently transient fault exhausts the attempt budget.
        faults::arm_with(
            FaultPlan {
                op: IoOp::Write,
                nth: 1,
                path_contains: Some("retry-hard".into()),
            },
            Recurrence::EveryNth(1),
            std::io::ErrorKind::WouldBlock,
        );
        let mut calls = 0u32;
        let policy = RetryPolicy {
            attempts: 4,
            base_backoff: std::time::Duration::ZERO,
        };
        let err = retry::retry_io(&policy, || {
            calls += 1;
            faults::check(IoOp::Write, path)
        })
        .unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::WouldBlock);
        assert_eq!(calls, 4, "attempt budget is total calls, first included");
        assert!(faults::disarm());
    }
}
