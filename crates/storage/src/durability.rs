//! Crash-safety primitives shared by the persistence paths: directory
//! fsync and write-temp-then-rename file replacement.
//!
//! POSIX only guarantees a rename is durable once the *containing
//! directory* has been fsynced, and a freshly written file's contents are
//! durable only after `fsync` on the file itself. The manifest-swap
//! protocol of the sharded index (write `MANIFEST.pms.tmp`, fsync it,
//! rename over `MANIFEST.pms`, fsync the directory) rides these helpers;
//! the WAL crate carries its own copy of the directory sync for its
//! create path so the two crates stay dependency-free of each other.

use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::Path;

/// Fsyncs a directory so renames/creates inside it survive a crash.
pub fn fsync_dir(dir: impl AsRef<Path>) -> io::Result<()> {
    File::open(dir.as_ref())?.sync_all()
}

/// Atomically replaces `dst` with `bytes`: writes `dst` + `.tmp` suffix,
/// fsyncs it, renames over `dst`, and fsyncs the parent directory. A crash
/// at any point leaves either the old `dst` or the new one — never a
/// half-written file under the final name.
pub fn write_file_atomic(dst: impl AsRef<Path>, bytes: &[u8]) -> io::Result<()> {
    let dst = dst.as_ref();
    let tmp = tmp_sibling(dst);
    {
        let mut f = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp)?;
        f.write_all(bytes)?;
        f.sync_data()?;
    }
    std::fs::rename(&tmp, dst)?;
    if let Some(parent) = dst.parent() {
        if !parent.as_os_str().is_empty() {
            fsync_dir(parent)?;
        }
    }
    Ok(())
}

/// The temp-file name the atomic writer uses (`<dst>.tmp`), exposed so
/// crash-recovery sweeps can recognise and discard leftovers.
pub fn tmp_sibling(dst: &Path) -> std::path::PathBuf {
    let mut name = dst.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    dst.with_file_name(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("promips-dur-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn atomic_write_replaces_and_cleans_tmp() {
        let dir = temp_dir("atomic");
        let dst = dir.join("MANIFEST.pms");
        write_file_atomic(&dst, b"one").unwrap();
        assert_eq!(std::fs::read(&dst).unwrap(), b"one");
        write_file_atomic(&dst, b"two-longer").unwrap();
        assert_eq!(std::fs::read(&dst).unwrap(), b"two-longer");
        assert!(
            !tmp_sibling(&dst).exists(),
            "tmp file must not survive a successful swap"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_tmp_is_overwritten_not_trusted() {
        let dir = temp_dir("stale");
        let dst = dir.join("MANIFEST.pms");
        // A crashed previous writer left a half-written temp file.
        std::fs::write(tmp_sibling(&dst), b"garbage from a crash").unwrap();
        write_file_atomic(&dst, b"fresh").unwrap();
        assert_eq!(std::fs::read(&dst).unwrap(), b"fresh");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fsync_dir_works_on_real_directory() {
        let dir = temp_dir("fsync");
        fsync_dir(&dir).unwrap();
        assert!(fsync_dir(dir.join("missing")).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
