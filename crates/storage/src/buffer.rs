//! A lock-striped LRU buffer pool.
//!
//! The paper delegates caching to the operating system; we model the cache
//! explicitly so experiments can distinguish logical page accesses (the
//! Fig. 7 metric) from physical I/O, and so cold-cache runs are reproducible
//! regardless of host page-cache state.
//!
//! The pool is **sharded**: page ids map to `id % num_shards`, each shard
//! owns an independent mutex, hash map and LRU chain, and the total capacity
//! is split across shards. Concurrent `search_batch` workers therefore only
//! contend when they touch the same stripe, instead of convoying on one
//! global lock. Consecutive page ids — the access pattern of blob scans —
//! land on consecutive shards, spreading a sequential read across every
//! stripe. Eviction is LRU *per shard*: a skewed workload can evict from a
//! hot stripe while a cold stripe has room, which is the standard trade a
//! striped cache makes for lock scalability.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::page::{PageBuf, PageId};

/// Default shard count for [`BufferPool::new`]. Sixteen stripes cost ~1 KB
/// of mutexes and are enough to make same-stripe collisions rare at the
/// worker counts `search_batch` spawns (one per core).
pub const DEFAULT_SHARDS: usize = 16;

/// Doubly-linked-list node indices for the LRU chain (indices into `slots`).
const NIL: usize = usize::MAX;

struct Slot {
    id: PageId,
    page: Arc<PageBuf>,
    prev: usize,
    next: usize,
}

struct Inner {
    map: HashMap<PageId, usize>,
    slots: Vec<Slot>,
    free: Vec<usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
    capacity: usize,
}

impl Inner {
    fn with_capacity(capacity: usize) -> Self {
        Self {
            map: HashMap::with_capacity(capacity),
            slots: Vec::with_capacity(capacity),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }
}

/// A fixed-capacity, lock-striped LRU cache of immutable page snapshots.
///
/// Pages are shared via `Arc`, so an evicted page that a reader still holds
/// stays alive until the reader drops it — eviction can never invalidate a
/// borrow. The sum of shard capacities equals the requested capacity, so the
/// pool as a whole never holds more than `capacity` pages.
pub struct BufferPool {
    shards: Box<[Mutex<Inner>]>,
    capacity: usize,
}

impl BufferPool {
    /// Creates a pool holding at most `capacity` pages (minimum 1), striped
    /// across [`DEFAULT_SHARDS`] shards (fewer when `capacity` is smaller,
    /// so every shard can hold at least one page).
    pub fn new(capacity: usize) -> Self {
        Self::with_shards(capacity, DEFAULT_SHARDS)
    }

    /// Creates a pool with an explicit shard count (clamped to
    /// `1..=capacity`). `with_shards(capacity, 1)` reproduces a single
    /// global-LRU pool — tests and the contention benchmark use it as the
    /// unsharded baseline.
    pub fn with_shards(capacity: usize, shards: usize) -> Self {
        let capacity = capacity.max(1);
        let shards = shards.clamp(1, capacity);
        // Split capacity as evenly as possible; the first `capacity % shards`
        // stripes take the remainder so the total is exact.
        let base = capacity / shards;
        let extra = capacity % shards;
        let inners: Vec<Mutex<Inner>> = (0..shards)
            .map(|i| Mutex::new(Inner::with_capacity(base + usize::from(i < extra))))
            .collect();
        Self {
            shards: inners.into_boxed_slice(),
            capacity,
        }
    }

    /// Total page capacity (sum across shards).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of stripes.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    #[inline]
    fn shard(&self, id: PageId) -> &Mutex<Inner> {
        &self.shards[(id % self.shards.len() as u64) as usize]
    }

    /// Looks up a page, promoting it to most-recently-used on hit. Only the
    /// page's stripe is locked.
    pub fn get(&self, id: PageId) -> Option<Arc<PageBuf>> {
        let mut inner = self.shard(id).lock();
        let &slot_idx = inner.map.get(&id)?;
        inner.unlink(slot_idx);
        inner.push_front(slot_idx);
        Some(Arc::clone(&inner.slots[slot_idx].page))
    }

    /// Inserts (or replaces) a page, evicting the stripe's least-recently-
    /// used entry if the stripe is full.
    pub fn insert(&self, id: PageId, page: Arc<PageBuf>) {
        let mut inner = self.shard(id).lock();
        if let Some(&slot_idx) = inner.map.get(&id) {
            inner.slots[slot_idx].page = page;
            inner.unlink(slot_idx);
            inner.push_front(slot_idx);
            return;
        }
        if inner.map.len() >= inner.capacity {
            let victim = inner.tail;
            debug_assert_ne!(victim, NIL);
            inner.unlink(victim);
            let old_id = inner.slots[victim].id;
            inner.map.remove(&old_id);
            inner.free.push(victim);
        }
        let slot_idx = if let Some(idx) = inner.free.pop() {
            inner.slots[idx] = Slot {
                id,
                page,
                prev: NIL,
                next: NIL,
            };
            idx
        } else {
            inner.slots.push(Slot {
                id,
                page,
                prev: NIL,
                next: NIL,
            });
            inner.slots.len() - 1
        };
        inner.map.insert(id, slot_idx);
        inner.push_front(slot_idx);
    }

    /// Number of cached pages (sums the stripes; not atomic across them).
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().map.len()).sum()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all cached pages.
    pub fn clear(&self) {
        for shard in self.shards.iter() {
            let mut inner = shard.lock();
            inner.map.clear();
            inner.slots.clear();
            inner.free.clear();
            inner.head = NIL;
            inner.tail = NIL;
        }
    }
}

impl Inner {
    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.slots[idx].prev, self.slots[idx].next);
        if prev != NIL {
            self.slots[prev].next = next;
        } else if self.head == idx {
            self.head = next;
        }
        if next != NIL {
            self.slots[next].prev = prev;
        } else if self.tail == idx {
            self.tail = prev;
        }
        self.slots[idx].prev = NIL;
        self.slots[idx].next = NIL;
    }

    fn push_front(&mut self, idx: usize) {
        self.slots[idx].prev = NIL;
        self.slots[idx].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(tag: u8) -> Arc<PageBuf> {
        let mut p = PageBuf::zeroed(8);
        p.as_mut_slice()[0] = tag;
        Arc::new(p)
    }

    #[test]
    fn insert_and_get() {
        let pool = BufferPool::new(4);
        pool.insert(1, page(1));
        pool.insert(2, page(2));
        assert_eq!(pool.get(1).unwrap().as_slice()[0], 1);
        assert_eq!(pool.get(2).unwrap().as_slice()[0], 2);
        assert!(pool.get(3).is_none());
        assert_eq!(pool.len(), 2);
    }

    #[test]
    fn lru_eviction_order_single_shard() {
        // One stripe gives the classic global-LRU behaviour.
        let pool = BufferPool::with_shards(2, 1);
        pool.insert(1, page(1));
        pool.insert(2, page(2));
        // Touch 1 so 2 becomes LRU.
        pool.get(1).unwrap();
        pool.insert(3, page(3));
        assert!(pool.get(2).is_none(), "2 should have been evicted");
        assert!(pool.get(1).is_some());
        assert!(pool.get(3).is_some());
    }

    #[test]
    fn lru_eviction_order_within_a_stripe() {
        // Ids that are congruent mod num_shards share a stripe, so the LRU
        // discipline applies among them exactly as in the unsharded pool.
        let pool = BufferPool::new(16);
        let n = pool.num_shards() as u64;
        assert_eq!(pool.capacity() / pool.num_shards(), 1);
        pool.insert(0, page(1)); // stripe 0, fills its single slot
        pool.insert(n, page(2)); // stripe 0 again → evicts 0
        assert!(pool.get(0).is_none(), "0 should have been evicted");
        assert_eq!(pool.get(n).unwrap().as_slice()[0], 2);
        // A different stripe is untouched by stripe 0's churn.
        pool.insert(1, page(3));
        pool.insert(2 * n, page(4)); // stripe 0 churns again
        assert!(pool.get(1).is_some(), "stripe 1 must be unaffected");
    }

    #[test]
    fn capacity_splits_exactly_across_shards() {
        for cap in [1usize, 2, 5, 16, 17, 100] {
            let pool = BufferPool::new(cap);
            assert_eq!(pool.capacity(), cap);
            assert!(pool.num_shards() <= cap.max(1));
            // Overfill every stripe; the pool must never exceed capacity.
            for id in 0..(cap as u64 * 4) {
                pool.insert(id, page((id % 251) as u8));
            }
            assert!(
                pool.len() <= cap,
                "cap {cap}: len {} exceeds capacity",
                pool.len()
            );
        }
    }

    #[test]
    fn replace_existing_key() {
        let pool = BufferPool::new(2);
        pool.insert(1, page(1));
        pool.insert(1, page(9));
        assert_eq!(pool.get(1).unwrap().as_slice()[0], 9);
        assert_eq!(pool.len(), 1);
    }

    #[test]
    fn clear_empties_pool() {
        let pool = BufferPool::new(4);
        pool.insert(1, page(1));
        pool.insert(2, page(2));
        pool.clear();
        assert!(pool.is_empty());
        assert!(pool.get(1).is_none());
        // Pool must remain usable after clear.
        pool.insert(2, page(2));
        assert!(pool.get(2).is_some());
    }

    #[test]
    fn capacity_one_pool() {
        let pool = BufferPool::new(1);
        assert_eq!(pool.num_shards(), 1);
        for i in 0..10u8 {
            pool.insert(i as PageId, page(i));
            assert_eq!(pool.get(i as PageId).unwrap().as_slice()[0], i);
            assert_eq!(pool.len(), 1);
        }
    }

    #[test]
    fn heavy_churn_consistency() {
        let pool = BufferPool::new(16);
        for round in 0..1000u64 {
            let id = round % 40;
            pool.insert(id, page((id % 256) as u8));
            if let Some(p) = pool.get(id) {
                assert_eq!(p.as_slice()[0], (id % 256) as u8);
            }
        }
        assert!(pool.len() <= 16);
    }

    #[test]
    fn concurrent_readers_and_writers_stay_consistent() {
        // Multi-threaded stress: every thread inserts and reads tagged pages
        // over a shared striped pool. A get must either miss or return the
        // exact page content for that id, and the pool must never exceed its
        // total capacity.
        let pool = Arc::new(BufferPool::new(32));
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let pool = Arc::clone(&pool);
                s.spawn(move || {
                    for round in 0..2_000u64 {
                        let id = (round * 7 + t * 13) % 96;
                        pool.insert(id, page((id % 251) as u8));
                        let probe = (round * 11 + t) % 96;
                        if let Some(p) = pool.get(probe) {
                            assert_eq!(
                                p.as_slice()[0],
                                (probe % 251) as u8,
                                "stale or cross-wired page for id {probe}"
                            );
                        }
                        assert!(pool.len() <= 32, "capacity exceeded");
                    }
                });
            }
        });
        assert!(pool.len() <= 32);
    }
}
