//! A small LRU buffer pool.
//!
//! The paper delegates caching to the operating system; we model the cache
//! explicitly so experiments can distinguish logical page accesses (the
//! Fig. 7 metric) from physical I/O, and so cold-cache runs are reproducible
//! regardless of host page-cache state.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::page::{PageBuf, PageId};

/// Doubly-linked-list node indices for the LRU chain (indices into `slots`).
const NIL: usize = usize::MAX;

struct Slot {
    id: PageId,
    page: Arc<PageBuf>,
    prev: usize,
    next: usize,
}

struct Inner {
    map: HashMap<PageId, usize>,
    slots: Vec<Slot>,
    free: Vec<usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
    capacity: usize,
}

/// A fixed-capacity LRU cache of immutable page snapshots.
///
/// Pages are shared via `Arc`, so an evicted page that a reader still holds
/// stays alive until the reader drops it — eviction can never invalidate a
/// borrow.
pub struct BufferPool {
    inner: Mutex<Inner>,
}

impl BufferPool {
    /// Creates a pool holding at most `capacity` pages (minimum 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            inner: Mutex::new(Inner {
                map: HashMap::with_capacity(capacity),
                slots: Vec::with_capacity(capacity),
                free: Vec::new(),
                head: NIL,
                tail: NIL,
                capacity,
            }),
        }
    }

    /// Looks up a page, promoting it to most-recently-used on hit.
    pub fn get(&self, id: PageId) -> Option<Arc<PageBuf>> {
        let mut inner = self.inner.lock();
        let &slot_idx = inner.map.get(&id)?;
        inner.unlink(slot_idx);
        inner.push_front(slot_idx);
        Some(Arc::clone(&inner.slots[slot_idx].page))
    }

    /// Inserts (or replaces) a page, evicting the least-recently-used entry
    /// if the pool is full.
    pub fn insert(&self, id: PageId, page: Arc<PageBuf>) {
        let mut inner = self.inner.lock();
        if let Some(&slot_idx) = inner.map.get(&id) {
            inner.slots[slot_idx].page = page;
            inner.unlink(slot_idx);
            inner.push_front(slot_idx);
            return;
        }
        if inner.map.len() >= inner.capacity {
            let victim = inner.tail;
            debug_assert_ne!(victim, NIL);
            inner.unlink(victim);
            let old_id = inner.slots[victim].id;
            inner.map.remove(&old_id);
            inner.free.push(victim);
        }
        let slot_idx = if let Some(idx) = inner.free.pop() {
            inner.slots[idx] = Slot {
                id,
                page,
                prev: NIL,
                next: NIL,
            };
            idx
        } else {
            inner.slots.push(Slot {
                id,
                page,
                prev: NIL,
                next: NIL,
            });
            inner.slots.len() - 1
        };
        inner.map.insert(id, slot_idx);
        inner.push_front(slot_idx);
    }

    /// Number of cached pages.
    pub fn len(&self) -> usize {
        self.inner.lock().map.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all cached pages.
    pub fn clear(&self) {
        let mut inner = self.inner.lock();
        inner.map.clear();
        inner.slots.clear();
        inner.free.clear();
        inner.head = NIL;
        inner.tail = NIL;
    }
}

impl Inner {
    fn unlink(&mut self, idx: usize) {
        let (prev, next) = (self.slots[idx].prev, self.slots[idx].next);
        if prev != NIL {
            self.slots[prev].next = next;
        } else if self.head == idx {
            self.head = next;
        }
        if next != NIL {
            self.slots[next].prev = prev;
        } else if self.tail == idx {
            self.tail = prev;
        }
        self.slots[idx].prev = NIL;
        self.slots[idx].next = NIL;
    }

    fn push_front(&mut self, idx: usize) {
        self.slots[idx].prev = NIL;
        self.slots[idx].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page(tag: u8) -> Arc<PageBuf> {
        let mut p = PageBuf::zeroed(8);
        p.as_mut_slice()[0] = tag;
        Arc::new(p)
    }

    #[test]
    fn insert_and_get() {
        let pool = BufferPool::new(4);
        pool.insert(1, page(1));
        pool.insert(2, page(2));
        assert_eq!(pool.get(1).unwrap().as_slice()[0], 1);
        assert_eq!(pool.get(2).unwrap().as_slice()[0], 2);
        assert!(pool.get(3).is_none());
        assert_eq!(pool.len(), 2);
    }

    #[test]
    fn lru_eviction_order() {
        let pool = BufferPool::new(2);
        pool.insert(1, page(1));
        pool.insert(2, page(2));
        // Touch 1 so 2 becomes LRU.
        pool.get(1).unwrap();
        pool.insert(3, page(3));
        assert!(pool.get(2).is_none(), "2 should have been evicted");
        assert!(pool.get(1).is_some());
        assert!(pool.get(3).is_some());
    }

    #[test]
    fn replace_existing_key() {
        let pool = BufferPool::new(2);
        pool.insert(1, page(1));
        pool.insert(1, page(9));
        assert_eq!(pool.get(1).unwrap().as_slice()[0], 9);
        assert_eq!(pool.len(), 1);
    }

    #[test]
    fn clear_empties_pool() {
        let pool = BufferPool::new(4);
        pool.insert(1, page(1));
        pool.clear();
        assert!(pool.is_empty());
        assert!(pool.get(1).is_none());
        // Pool must remain usable after clear.
        pool.insert(2, page(2));
        assert!(pool.get(2).is_some());
    }

    #[test]
    fn capacity_one_pool() {
        let pool = BufferPool::new(1);
        for i in 0..10u8 {
            pool.insert(i as PageId, page(i));
            assert_eq!(pool.get(i as PageId).unwrap().as_slice()[0], i);
            assert_eq!(pool.len(), 1);
        }
    }

    #[test]
    fn heavy_churn_consistency() {
        let pool = BufferPool::new(16);
        for round in 0..1000u64 {
            let id = round % 40;
            pool.insert(id, page((id % 256) as u8));
            if let Some(p) = pool.get(id) {
                assert_eq!(p.as_slice()[0], (id % 256) as u8);
            }
        }
        assert!(pool.len() <= 16);
    }
}
