//! The [`Storage`] trait (raw page device) and the [`Pager`] (the metered,
//! cached access path every index component uses).

use std::fs::{File, OpenOptions};
use std::io;
use std::os::unix::fs::FileExt;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::buffer::BufferPool;
use crate::durability::faults::{self, IoOp};
use crate::metrics::AccessStats;
use crate::page::{PageBuf, PageId};

/// A raw page device: fixed page size, random-access read/write, append-only
/// allocation.
pub trait Storage: Send + Sync {
    /// Page size in bytes.
    fn page_size(&self) -> usize;
    /// Number of allocated pages.
    fn num_pages(&self) -> u64;
    /// Reads page `id` into `buf` (`buf.len() == page_size`).
    fn read_page(&self, id: PageId, buf: &mut [u8]) -> io::Result<()>;
    /// Writes page `id` from `buf`.
    fn write_page(&self, id: PageId, buf: &[u8]) -> io::Result<()>;
    /// Allocates a fresh zeroed page and returns its id.
    fn allocate(&self) -> io::Result<PageId>;
    /// Flushes to durable media (no-op for memory).
    fn sync(&self) -> io::Result<()>;
}

/// In-memory page device. Used by unit tests and by experiments that only
/// care about logical page-access counts.
pub struct MemStorage {
    page_size: usize,
    pages: Mutex<Vec<PageBuf>>,
}

impl MemStorage {
    /// Creates an empty in-memory device with the given page size.
    pub fn new(page_size: usize) -> Self {
        assert!(page_size >= 64, "page size too small: {page_size}");
        Self {
            page_size,
            pages: Mutex::new(Vec::new()),
        }
    }
}

impl Storage for MemStorage {
    fn page_size(&self) -> usize {
        self.page_size
    }

    fn num_pages(&self) -> u64 {
        self.pages.lock().len() as u64
    }

    fn read_page(&self, id: PageId, buf: &mut [u8]) -> io::Result<()> {
        let pages = self.pages.lock();
        let page = pages.get(id as usize).ok_or_else(|| {
            io::Error::new(io::ErrorKind::NotFound, format!("page {id} not allocated"))
        })?;
        buf.copy_from_slice(page.as_slice());
        Ok(())
    }

    fn write_page(&self, id: PageId, buf: &[u8]) -> io::Result<()> {
        assert_eq!(buf.len(), self.page_size);
        let mut pages = self.pages.lock();
        let page = pages.get_mut(id as usize).ok_or_else(|| {
            io::Error::new(io::ErrorKind::NotFound, format!("page {id} not allocated"))
        })?;
        page.as_mut_slice().copy_from_slice(buf);
        Ok(())
    }

    fn allocate(&self) -> io::Result<PageId> {
        let mut pages = self.pages.lock();
        pages.push(PageBuf::zeroed(self.page_size));
        Ok(pages.len() as u64 - 1)
    }

    fn sync(&self) -> io::Result<()> {
        Ok(())
    }
}

/// File-backed page device using positioned I/O (`pread`/`pwrite`).
pub struct FileStorage {
    page_size: usize,
    file: File,
    /// Kept for fault-plan scoping: page reads route through the
    /// durability shim so tests can fault one shard's data file.
    path: PathBuf,
    num_pages: Mutex<u64>,
}

impl FileStorage {
    /// Creates (truncating) a page file at `path`.
    pub fn create(path: impl AsRef<Path>, page_size: usize) -> io::Result<Self> {
        assert!(page_size >= 64, "page size too small: {page_size}");
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        Ok(Self {
            page_size,
            file,
            path,
            num_pages: Mutex::new(0),
        })
    }

    /// Opens an existing page file; its length must be a multiple of
    /// `page_size`.
    pub fn open(path: impl AsRef<Path>, page_size: usize) -> io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new().read(true).write(true).open(&path)?;
        let len = file.metadata()?.len();
        if len % page_size as u64 != 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("file length {len} not a multiple of page size {page_size}"),
            ));
        }
        Ok(Self {
            page_size,
            file,
            path,
            num_pages: Mutex::new(len / page_size as u64),
        })
    }

    /// Total file size in bytes (the paper's Index Size measurement unit).
    pub fn size_bytes(&self) -> u64 {
        *self.num_pages.lock() * self.page_size as u64
    }
}

impl Storage for FileStorage {
    fn page_size(&self) -> usize {
        self.page_size
    }

    fn num_pages(&self) -> u64 {
        *self.num_pages.lock()
    }

    fn read_page(&self, id: PageId, buf: &mut [u8]) -> io::Result<()> {
        faults::check(IoOp::Read, &self.path)?;
        self.file.read_exact_at(buf, id * self.page_size as u64)
    }

    fn write_page(&self, id: PageId, buf: &[u8]) -> io::Result<()> {
        assert_eq!(buf.len(), self.page_size);
        self.file.write_all_at(buf, id * self.page_size as u64)
    }

    fn allocate(&self) -> io::Result<PageId> {
        let mut n = self.num_pages.lock();
        let id = *n;
        // Extend the file eagerly so subsequent reads of the fresh page work.
        self.file.set_len((id + 1) * self.page_size as u64)?;
        *n += 1;
        Ok(id)
    }

    fn sync(&self) -> io::Result<()> {
        self.file.sync_data()
    }
}

/// The metered, cached page-access path.
///
/// Every component that touches disk (B+-tree, iDistance data pages, QALSH
/// tables, PQ inverted lists) goes through a `Pager`, so the experiment
/// harness can read one [`AccessStats`] per method and reproduce Fig. 7.
pub struct Pager {
    storage: Arc<dyn Storage>,
    pool: BufferPool,
    stats: Arc<AccessStats>,
}

impl Pager {
    /// Wraps a storage device with a buffer pool of `capacity` pages,
    /// striped across the default shard count (see
    /// [`crate::buffer::DEFAULT_SHARDS`]).
    pub fn new(storage: Arc<dyn Storage>, capacity: usize, stats: Arc<AccessStats>) -> Self {
        Self {
            storage,
            pool: BufferPool::new(capacity),
            stats,
        }
    }

    /// As [`Pager::new`] with an explicit buffer-pool shard count — `1`
    /// reproduces the old single-mutex pool (the contention benchmark's
    /// baseline).
    pub fn with_pool_shards(
        storage: Arc<dyn Storage>,
        capacity: usize,
        shards: usize,
        stats: Arc<AccessStats>,
    ) -> Self {
        Self {
            storage,
            pool: BufferPool::with_shards(capacity, shards),
            stats,
        }
    }

    /// Convenience constructor: in-memory device, fresh counters.
    pub fn in_memory(page_size: usize, pool_capacity: usize) -> Self {
        Self::new(
            Arc::new(MemStorage::new(page_size)),
            pool_capacity,
            AccessStats::new_shared(),
        )
    }

    /// Page size of the underlying device.
    pub fn page_size(&self) -> usize {
        self.storage.page_size()
    }

    /// Number of allocated pages.
    pub fn num_pages(&self) -> u64 {
        self.storage.num_pages()
    }

    /// Total bytes occupied (num_pages × page_size) — the Index Size metric.
    pub fn size_bytes(&self) -> u64 {
        self.num_pages() * self.page_size() as u64
    }

    /// The shared access counters.
    pub fn stats(&self) -> &Arc<AccessStats> {
        &self.stats
    }

    /// The underlying page device. Maintenance paths — whole-file copies
    /// like sharded snapshots — read through this instead of
    /// [`Pager::read`], so they neither inflate the access counters the
    /// experiments measure nor evict the query working set from the
    /// buffer pool.
    pub fn storage(&self) -> &Arc<dyn Storage> {
        &self.storage
    }

    /// Fetches a page, counting one logical read; served from the buffer
    /// pool when possible.
    pub fn read(&self, id: PageId) -> io::Result<Arc<PageBuf>> {
        self.stats.record_read();
        if let Some(page) = self.pool.get(id) {
            self.stats.record_hit();
            return Ok(page);
        }
        self.stats.record_miss();
        let mut buf = PageBuf::zeroed(self.storage.page_size());
        self.storage.read_page(id, buf.as_mut_slice())?;
        let page = Arc::new(buf);
        self.pool.insert(id, Arc::clone(&page));
        Ok(page)
    }

    /// Writes a page through to storage (write-through; the cached copy is
    /// replaced so readers never observe stale data).
    pub fn write(&self, id: PageId, buf: PageBuf) -> io::Result<()> {
        assert_eq!(buf.len(), self.storage.page_size());
        self.stats.record_write();
        self.storage.write_page(id, buf.as_slice())?;
        self.pool.insert(id, Arc::new(buf));
        Ok(())
    }

    /// Allocates a fresh zeroed page.
    pub fn allocate(&self) -> io::Result<PageId> {
        self.storage.allocate()
    }

    /// Allocates and immediately writes a page, returning its id.
    pub fn append(&self, buf: PageBuf) -> io::Result<PageId> {
        let id = self.allocate()?;
        self.write(id, buf)?;
        Ok(id)
    }

    /// Drops all cached pages (used to measure cold-cache behaviour).
    pub fn clear_cache(&self) {
        self.pool.clear();
    }

    /// Flushes the underlying device.
    pub fn sync(&self) -> io::Result<()> {
        self.storage.sync()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(storage: Arc<dyn Storage>) {
        let ps = storage.page_size();
        let id0 = storage.allocate().unwrap();
        let id1 = storage.allocate().unwrap();
        assert_eq!((id0, id1), (0, 1));
        let mut w = vec![0u8; ps];
        w[0] = 0xAB;
        w[ps - 1] = 0xCD;
        storage.write_page(id1, &w).unwrap();
        let mut r = vec![0u8; ps];
        storage.read_page(id1, &mut r).unwrap();
        assert_eq!(r, w);
        storage.read_page(id0, &mut r).unwrap();
        assert!(r.iter().all(|&b| b == 0));
    }

    #[test]
    fn mem_storage_roundtrip() {
        roundtrip(Arc::new(MemStorage::new(256)));
    }

    #[test]
    fn file_storage_roundtrip() {
        let dir = std::env::temp_dir().join(format!("promips-pager-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pages.bin");
        roundtrip(Arc::new(FileStorage::create(&path, 256).unwrap()));
        // Re-open and confirm persistence.
        let reopened = FileStorage::open(&path, 256).unwrap();
        assert_eq!(reopened.num_pages(), 2);
        let mut r = vec![0u8; 256];
        reopened.read_page(1, &mut r).unwrap();
        assert_eq!(r[0], 0xAB);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mem_storage_missing_page_errors() {
        let s = MemStorage::new(128);
        let mut buf = vec![0u8; 128];
        assert!(s.read_page(3, &mut buf).is_err());
    }

    #[test]
    fn pager_counts_logical_reads_and_cache() {
        let pager = Pager::in_memory(128, 8);
        let id = pager.allocate().unwrap();
        let mut page = PageBuf::zeroed(128);
        page.as_mut_slice()[7] = 9;
        pager.write(id, page).unwrap();

        // First read after write: cache hit (write-through populated pool).
        let p = pager.read(id).unwrap();
        assert_eq!(p.as_slice()[7], 9);
        let snap = pager.stats().snapshot();
        assert_eq!(snap.logical_reads, 1);
        assert_eq!(snap.cache_hits, 1);

        pager.clear_cache();
        let _ = pager.read(id).unwrap();
        let snap = pager.stats().snapshot();
        assert_eq!(snap.logical_reads, 2);
        assert_eq!(snap.cache_misses, 1);
    }

    #[test]
    fn concurrent_readers_get_correct_pages_within_capacity() {
        // Stress the striped pool through the full pager path: many threads
        // read a page set larger than the pool, so stripes churn constantly.
        // Every read must return the page's own content, and the cache must
        // never hold more pages than its total capacity.
        for shards in [1usize, 4, 16] {
            let storage = Arc::new(MemStorage::new(64));
            let pool_pages = 24;
            let pager = Arc::new(Pager::with_pool_shards(
                storage,
                pool_pages,
                shards,
                AccessStats::new_shared(),
            ));
            let n_pages = 200u64;
            for i in 0..n_pages {
                let mut b = PageBuf::zeroed(64);
                b.as_mut_slice()[0] = (i % 251) as u8;
                b.as_mut_slice()[63] = (i % 13) as u8;
                pager.append(b).unwrap();
            }
            pager.clear_cache();
            std::thread::scope(|s| {
                for t in 0..4u64 {
                    let pager = Arc::clone(&pager);
                    s.spawn(move || {
                        for round in 0..3_000u64 {
                            let id = (round * 31 + t * 47) % n_pages;
                            let p = pager.read(id).unwrap();
                            assert_eq!(p.as_slice()[0], (id % 251) as u8, "page {id}");
                            assert_eq!(p.as_slice()[63], (id % 13) as u8, "page {id}");
                        }
                    });
                }
            });
            let cached = pager.pool.len();
            assert!(
                cached <= pool_pages,
                "shards={shards}: {cached} cached pages exceed capacity {pool_pages}"
            );
            let snap = pager.stats().snapshot();
            assert_eq!(snap.logical_reads, 4 * 3_000);
            assert_eq!(snap.cache_hits + snap.cache_misses, snap.logical_reads);
        }
    }

    #[test]
    fn pager_eviction_still_correct() {
        let pager = Pager::in_memory(64, 2); // tiny pool forces eviction
        let ids: Vec<PageId> = (0..5)
            .map(|i| {
                let mut b = PageBuf::zeroed(64);
                b.as_mut_slice()[0] = i as u8;
                pager.append(b).unwrap()
            })
            .collect();
        for (i, &id) in ids.iter().enumerate() {
            assert_eq!(pager.read(id).unwrap().as_slice()[0], i as u8);
        }
    }
}
